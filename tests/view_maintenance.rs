//! Differential harness for **incremental view maintenance**: standing
//! queries registered with [`Database::create_view`] must stay exactly
//! equal (as a bag) to cold re-evaluation of the same query at every
//! published version — whatever their maintenance mode (delta-folded
//! aggregates, counted row bags, or the full-recompute fallback) and
//! whatever the update stream does to the rows they materialized.
//!
//! Three layers:
//!
//! * **Generated views × generated update streams** — a fixed panel of
//!   maintainable and fallback-shaped views plus grammar-generated ones,
//!   driven by the default update mix and by the delete-heavy churn
//!   preset, checked against cold re-evaluation after every commit;
//! * **Concurrent writers × pinned readers** — writer sessions race
//!   while readers pin snapshots and demand the view at the pinned
//!   version equals the pinned cold re-evaluation;
//! * **TCP subscription replay** — a remote subscriber's `ViewChange`
//!   frames, applied in version order to the subscribe-time contents,
//!   must reproduce the final maintained table bit-for-bag.
//!
//! The engine knobs (threads, morsel size, group commit) come from the
//! environment via `EngineConfig::default()`, so CI can sweep the
//! matrix without code changes.

use cypher::workload::QueryGenerator;
use cypher::{Database, EngineConfig, Params, Record, Session, Table};
use cypher_client::Client;
use cypher_server::{Server, ServerConfig};
use std::time::Duration;

fn memory_cfg() -> EngineConfig {
    let mut cfg = EngineConfig::default();
    cfg.persistence = None;
    cfg
}

/// The fixed view panel: names with the query and whether the classifier
/// is expected to maintain it incrementally (`true`) or fall back to
/// full recomputation (`false`) — asserted via `EXPLAIN VIEW` so a
/// classifier regression cannot silently turn the whole suite into a
/// test of the fallback path only.
fn view_panel() -> Vec<(&'static str, &'static str, bool)> {
    vec![
        (
            "agg_by_v",
            "MATCH (n:A) RETURN n.v AS v, count(*) AS c, sum(n.i) AS total",
            true,
        ),
        (
            "edge_rows",
            "MATCH (a:A)-[r:X]->(b) RETURN a.v AS av, r.w AS w, b.v AS bv",
            true,
        ),
        (
            "avg_per_pair",
            "MATCH (a)-[:Y]->(b:B) RETURN a.v AS av, b.v AS bv, avg(a.i) AS m",
            true,
        ),
        // min/max without DISTINCT cannot be retracted exactly: fallback.
        (
            "extrema",
            "MATCH (n:B) RETURN min(n.i) AS lo, max(n.i) AS hi",
            false,
        ),
        // Variable-length paths are outside the delta fragment: fallback.
        (
            "reach2",
            "MATCH (a:A)-[:X*1..2]->(b) RETURN b.v AS v, count(*) AS c",
            false,
        ),
        // LIMIT truncates: fallback.
        (
            "top3",
            "MATCH (n:A) RETURN n.i AS i ORDER BY n.i DESC LIMIT 3",
            false,
        ),
    ]
}

fn check_view_matches_cold(session: &mut Session, name: &str, query: &str, after: &str) {
    let maintained = session
        .view(name)
        .unwrap_or_else(|e| panic!("view {name} unreadable after {after:?}: {e}"));
    let cold = session
        .query(query, &Params::new())
        .unwrap_or_else(|e| panic!("cold re-evaluation of {name} failed after {after:?}: {e}"));
    assert!(
        maintained.bag_eq(&cold),
        "view {name} drifted from cold re-evaluation after {after:?}\n\
         maintained:\n{maintained:?}\ncold:\n{cold:?}"
    );
}

#[test]
fn generated_views_track_generated_update_streams() {
    let params = Params::new();
    let db = Database::open_with(memory_cfg()).unwrap();
    let mut session = db.session();
    let mut gen = QueryGenerator::new(0x1ea5);
    for _ in 0..30 {
        let u = gen.next_update();
        session.query(&u, &params).unwrap();
    }

    let mut views: Vec<(String, String)> = Vec::new();
    for (name, query, incremental) in view_panel() {
        db.create_view(name, query)
            .unwrap_or_else(|e| panic!("create_view({name}) failed: {e}"));
        let explain = db.explain_view(name).unwrap();
        assert_eq!(
            !explain.contains("full recomputation"),
            incremental,
            "classifier surprise for {name}:\n{explain}"
        );
        views.push((name.to_string(), query.to_string()));
    }
    // Grammar-generated views on top: whatever shape comes out, the
    // registry must classify it safely and keep it exact.
    let mut viewgen = QueryGenerator::new(0xbeef);
    for k in 0..3 {
        let q = viewgen.next_aggregate_query();
        let name = format!("gen_agg_{k}");
        db.create_view(&name, &q).unwrap();
        views.push((name, q));
    }
    for k in 0..3 {
        let q = viewgen.next_query();
        let name = format!("gen_match_{k}");
        db.create_view(&name, &q).unwrap();
        views.push((name, q));
    }

    // Creation materialized every view at the current version.
    for (name, query) in &views {
        check_view_matches_cold(&mut session, name, query, "creation");
    }

    // Phase 1: the default update mix. Phase 2: the delete/retraction-
    // heavy churn preset — the stream that actually exercises the
    // retraction algebra and the diverged-state rebuild path.
    for step in 0..60 {
        let u = if step < 30 {
            gen.next_update()
        } else {
            gen.next_churn_update()
        };
        session.query(&u, &params).unwrap();
        for (name, query) in &views {
            check_view_matches_cold(&mut session, name, query, &u);
        }
    }
}

#[test]
fn pinned_readers_see_exact_views_under_concurrent_writers() {
    let params = Params::new();
    let db = Database::open_with(memory_cfg()).unwrap();
    let mut seed_session = db.session();
    let mut gen = QueryGenerator::new(7);
    for _ in 0..20 {
        let u = gen.next_update();
        seed_session.query(&u, &params).unwrap();
    }
    let views = [
        ("w_agg", "MATCH (n:A) RETURN n.v AS v, count(*) AS c"),
        (
            "w_rows",
            "MATCH (a:A)-[:X]->(b:B) RETURN a.v AS av, b.v AS bv",
        ),
    ];
    for (name, query) in views {
        db.create_view(name, query).unwrap();
    }

    const WRITERS: usize = 2;
    const EACH: usize = 25;
    const READ_ROUNDS: usize = 15;
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let mut session = db.session();
            let mut wgen = QueryGenerator::new(100 + w as u64);
            scope.spawn(move || {
                for i in 0..EACH {
                    let u = if i % 2 == 0 {
                        wgen.next_update()
                    } else {
                        wgen.next_churn_update()
                    };
                    session.query(&u, &Params::new()).unwrap();
                }
            });
        }
        for r in 0..2 {
            let mut session = db.session();
            scope.spawn(move || {
                for round in 0..READ_ROUNDS {
                    let pinned = session.begin_read();
                    for (name, query) in views {
                        check_view_matches_cold(
                            &mut session,
                            name,
                            query,
                            &format!("reader {r} round {round} pinned at {pinned}"),
                        );
                    }
                    session.commit();
                }
            });
        }
    });

    // Quiesced: the final maintained tables equal final cold state too.
    let mut session = db.session();
    for (name, query) in views {
        check_view_matches_cold(&mut session, name, query, "all writers joined");
    }
}

/// Applies one subscription frame (a bag delta) to `rows`, panicking if
/// a removed row was not present — a frame that retracts a row the
/// subscriber never saw means the server's diffs are not replayable.
fn apply_frame(rows: &mut Vec<Record>, added: &Table, removed: &Table, version: u64) {
    for gone in removed.rows() {
        let at = rows
            .iter()
            .position(|r| r.equivalent(gone))
            .unwrap_or_else(|| panic!("frame v{version} removed a row the replay never had"));
        rows.swap_remove(at);
    }
    rows.extend(added.rows().iter().cloned());
}

#[test]
fn tcp_subscription_frames_replay_to_the_maintained_table() {
    let params = Params::new();
    let db = Database::open_with(memory_cfg()).unwrap();
    {
        let mut seed = db.session();
        let mut gen = QueryGenerator::new(21);
        for _ in 0..15 {
            let u = gen.next_update();
            seed.query(&u, &params).unwrap();
        }
    }
    db.create_view("sub", "MATCH (n:A) RETURN n.v AS v, count(*) AS c")
        .unwrap();

    let server = Server::bind(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut writer = Client::connect(addr).unwrap();
    let subscriber = Client::connect(addr).unwrap();
    // No writes happen between this baseline read and the subscribe, so
    // the frame stream continues exactly from `baseline`.
    let (v0, baseline) = writer.read_view("sub").unwrap();
    let mut sub = subscriber.subscribe("sub").unwrap();

    let mut gen = QueryGenerator::new(22);
    for i in 0..30 {
        let u = if i % 2 == 0 {
            gen.next_update()
        } else {
            gen.next_churn_update()
        };
        writer.query(&u, &params).unwrap();
    }
    let (v_final, final_table) = writer.read_view("sub").unwrap();
    assert!(v_final > v0, "the writer committed versions");

    let mut rows: Vec<Record> = baseline.rows().to_vec();
    let mut last_version = v0;
    while let Some(frame) = sub.next_timeout(Duration::from_secs(5)).unwrap() {
        assert_eq!(frame.name, "sub");
        assert!(
            frame.version > last_version,
            "frames must arrive in strictly increasing version order \
             ({} after {last_version})",
            frame.version
        );
        assert!(
            frame.added.len() + frame.removed.len() > 0,
            "v{}: empty frames are never pushed",
            frame.version
        );
        last_version = frame.version;
        apply_frame(&mut rows, &frame.added, &frame.removed, frame.version);
        if frame.version >= v_final {
            break;
        }
    }
    // Commits after the last view-changing one push no frame, so
    // `last_version` may stop short of `v_final`: the replay is judged
    // by whether it reproduces the final maintained table.
    let mut replayed = Table::empty(final_table.schema().clone());
    for r in rows {
        replayed.push(r);
    }
    assert!(
        replayed.bag_eq(&final_table),
        "replaying {last_version}-v{v0} frames over the baseline did not \
         reproduce the maintained table\nreplayed:\n{replayed:?}\n\
         maintained:\n{final_table:?}"
    );

    drop(writer);
    server.shutdown();
}
