//! The `Database` parse+plan cache: hit/miss accounting, LRU eviction,
//! statistics-driven invalidation (witnessed through `EXPLAIN`), and the
//! guarantee that cached plans honor fresh parameters.

use cypher::{Database, EngineConfig, Params, Value, WcoJoinMode};

/// An in-memory database with an explicit cache capacity (immune to the
/// CI matrix's environment overrides).
fn db_with_cache(capacity: usize) -> Database {
    let mut cfg = EngineConfig::default();
    cfg.persistence = None;
    cfg.plan_cache_size = capacity;
    Database::open_with(cfg).unwrap()
}

#[test]
fn repeated_query_hits_the_cache() {
    let params = Params::new();
    let mut db = db_with_cache(16);
    db.query("CREATE (:P {v: 1}), (:P {v: 2})", &params)
        .unwrap();
    let q = "MATCH (n:P) RETURN n.v AS v ORDER BY v";
    let first = db.query(q, &params).unwrap();
    let s = db.plan_cache_stats();
    assert_eq!((s.hits, s.invalidations), (0, 0), "{s:?}");
    // The CREATE moved the statistics fingerprint? No — the entry for
    // this text was created *after* the CREATE ran; repeated runs with an
    // unchanged graph must be pure hits.
    let second = db.query(q, &params).unwrap();
    let third = db.query(q, &params).unwrap();
    assert!(second.ordered_eq(&first) && third.ordered_eq(&first));
    let s = db.plan_cache_stats();
    assert!(s.hits >= 2, "repeated hot query did not hit: {s:?}");
    // Distinct texts miss independently.
    db.query("MATCH (n:P) RETURN count(*) AS c", &params)
        .unwrap();
    assert!(db.plan_cache_stats().misses >= 3);
}

#[test]
fn lru_evicts_under_capacity() {
    let params = Params::new();
    let mut db = db_with_cache(2);
    db.query("CREATE (:P {v: 1})", &params).unwrap(); // entry 1
    let qa = "MATCH (a:P) RETURN a.v AS v";
    let qb = "MATCH (b:P) RETURN b.v AS v";
    let qc = "MATCH (c:P) RETURN c.v AS v";
    db.query(qa, &params).unwrap(); // evicts the CREATE (LRU)
    db.query(qb, &params).unwrap(); // evicts…
    db.query(qa, &params).unwrap(); // refresh A
    db.query(qc, &params).unwrap(); // evicts B (least recently used)
    assert!(db.plan_cache_len() <= 2, "capacity not enforced");
    let before = db.plan_cache_stats();
    assert!(before.evictions >= 2, "{before:?}");
    // A stayed (recently used): hit. B was evicted: miss.
    db.query(qa, &params).unwrap();
    assert_eq!(db.plan_cache_stats().hits, before.hits + 1);
    db.query(qb, &params).unwrap();
    assert_eq!(db.plan_cache_stats().misses, before.misses + 1);
}

#[test]
fn statistics_drift_invalidates_and_replans() {
    let params = Params::new();
    let mut db = db_with_cache(16);
    // Parameterized updates keep each statement one cache entry — the
    // point of the test is statistics invalidation, not LRU churn.
    let with_i = |i: i64| {
        let mut p = Params::new();
        p.insert("i".into(), Value::int(i));
        p
    };
    // Label A is tiny, label B is big: the anchor of the path must be A.
    for i in 0..4 {
        db.query("CREATE (:A {i: $i})-[:X]->(:B {i: $i})", &with_i(i))
            .unwrap();
    }
    for i in 0..96 {
        db.query("CREATE (:B {i: $i})", &with_i(100 + i)).unwrap();
    }
    let q = "MATCH (a:A)-[:X]->(b:B) RETURN count(*) AS c";
    let before = db.explain(q).unwrap();
    assert!(
        before.contains("NodeIndexScan(a:A)"),
        "expected the A anchor before growth:\n{before}"
    );
    let out = db.query(q, &params).unwrap();
    assert_eq!(out.cell(0, "c"), Some(&Value::int(4)));
    db.query(q, &params).unwrap();
    let warm = db.plan_cache_stats();
    assert!(warm.hits >= 1, "{warm:?}");

    // Blow label A up far past B: the anchor decision flips, so the
    // bucketed statistics fingerprint must move and the cached plans must
    // be dropped (the parse is kept — invalidation, not a miss).
    for i in 0..1000 {
        db.query("CREATE (:A {i: $i})", &with_i(10_000 + i))
            .unwrap();
    }
    let after = db.explain(q).unwrap();
    assert!(
        after.contains("NodeIndexScan(b:B)"),
        "expected the anchor to flip to B after growth:\n{after}"
    );
    assert_ne!(before, after, "EXPLAIN witness did not change");
    let pre = db.plan_cache_stats();
    let out = db.query(q, &params).unwrap();
    assert_eq!(out.cell(0, "c"), Some(&Value::int(4)));
    let post = db.plan_cache_stats();
    assert!(
        post.invalidations > pre.invalidations,
        "statistics drift did not invalidate: {pre:?} → {post:?}"
    );
}

#[test]
fn statistics_drift_flips_intersect_and_expand_plans() {
    // The worst-case-optimal join decision is cost-based: on a sparse
    // graph the expand chain wins (estimates tie at the anchor scan); as
    // the graph densifies, chain intermediates blow up quadratically and
    // Auto mode flips the cached plan to the multiway intersection. The
    // flip must ride the statistics-fingerprint invalidation protocol
    // and be witnessed through EXPLAIN.
    let params = Params::new();
    let mut cfg = EngineConfig::default();
    cfg.persistence = None;
    cfg.plan_cache_size = 16;
    // Pin Auto explicitly: immune to the CI matrix's CYPHER_WCO_JOIN.
    cfg.wco_join = WcoJoinMode::Auto;
    let mut db = Database::open_with(cfg).unwrap();
    let with_ij = |i: i64, j: i64| {
        let mut p = Params::new();
        p.insert("i".into(), Value::int(i));
        p.insert("j".into(), Value::int(j));
        p
    };
    for i in 0..100 {
        db.query("CREATE (:P {i: $i})", &with_ij(i, 0)).unwrap();
    }
    // Sparse wiring: a 60-edge chain, average degree well under 1.
    for i in 0..60 {
        db.query(
            "MATCH (a:P {i: $i}), (b:P {i: $j}) CREATE (a)-[:X]->(b)",
            &with_ij(i, i + 1),
        )
        .unwrap();
    }
    let q = "MATCH (a)-[:X]->(b)-[:X]->(c), (a)-[:X]->(c) RETURN count(*) AS n";
    let before = db.explain(q).unwrap();
    assert!(
        !before.contains("MultiwayIntersect"),
        "sparse graph must keep the expand chain:\n{before}"
    );
    assert!(before.contains("Expand"), "{before}");
    let sparse = db.query(q, &params).unwrap();
    let oracle = db.query_reference(q, &params).unwrap();
    assert!(sparse.bag_eq(&oracle), "chain plan wrong on sparse graph");
    db.query(q, &params).unwrap();
    assert!(db.plan_cache_stats().hits >= 1);

    // Densify to average degree ~10: the rel-count bucket moves (60 →
    // 1000 crosses several powers of two), so the fingerprint flips.
    for k in 0i64..940 {
        let i = k % 100;
        let mut j = (k * 13 + 7) % 100;
        if j == i {
            j = (j + 1) % 100;
        }
        db.query(
            "MATCH (a:P {i: $i}), (b:P {i: $j}) CREATE (a)-[:X]->(b)",
            &with_ij(i, j),
        )
        .unwrap();
    }
    let after = db.explain(q).unwrap();
    assert!(
        after.contains("MultiwayIntersect"),
        "dense graph must flip to the intersection plan:\n{after}"
    );
    assert_ne!(before, after, "EXPLAIN witness did not change");
    // The flip is an invalidation (replan), not a parse miss.
    let pre = db.plan_cache_stats();
    let dense = db.query(q, &params).unwrap();
    let post = db.plan_cache_stats();
    assert!(
        post.invalidations > pre.invalidations,
        "statistics drift did not invalidate: {pre:?} → {post:?}"
    );
    assert_eq!(post.misses, pre.misses, "parse must be kept");
    let oracle = db.query_reference(q, &params).unwrap();
    assert!(
        dense.bag_eq(&oracle),
        "intersection plan wrong on dense graph"
    );
}

#[test]
fn cached_plans_honor_fresh_params() {
    let mut db = db_with_cache(16);
    let none = Params::new();
    db.query(
        "CREATE (:P {v: 1, i: 10}), (:P {v: 2, i: 20}), (:P {v: 2, i: 21})",
        &none,
    )
    .unwrap();
    let q = "MATCH (n:P {v: $x}) RETURN n.i AS i ORDER BY i";
    let mut p1 = Params::new();
    p1.insert("x".into(), Value::int(1));
    let mut p2 = Params::new();
    p2.insert("x".into(), Value::int(2));
    let r1 = db.query(q, &p1).unwrap();
    assert_eq!(r1.len(), 1);
    assert_eq!(r1.cell(0, "i"), Some(&Value::int(10)));
    let hits_before = db.plan_cache_stats().hits;
    // Same text, different parameters: must be a cache hit AND produce
    // the rows of the *new* parameters (plans embed the parameter
    // expression, never its value).
    let r2 = db.query(q, &p2).unwrap();
    assert_eq!(db.plan_cache_stats().hits, hits_before + 1);
    assert_eq!(r2.len(), 2);
    assert_eq!(r2.cell(0, "i"), Some(&Value::int(20)));
    assert_eq!(r2.cell(1, "i"), Some(&Value::int(21)));
}

#[test]
fn zero_capacity_disables_the_cache() {
    let params = Params::new();
    let mut db = db_with_cache(0);
    db.query("CREATE (:P {v: 1})", &params).unwrap();
    db.query("MATCH (n:P) RETURN n.v AS v", &params).unwrap();
    db.query("MATCH (n:P) RETURN n.v AS v", &params).unwrap();
    assert_eq!(db.plan_cache_stats(), Default::default());
    assert_eq!(db.plan_cache_len(), 0);
}

#[test]
fn concurrent_sessions_share_one_hot_plan() {
    // Many sessions across threads hammer the same query text: after the
    // first session plans it, every other execution must be a cache hit
    // (no invalidation churn — the graph, hence the statistics
    // fingerprint, is unchanged throughout), and every session must get
    // identical rows.
    let params = Params::new();
    let mut db = db_with_cache(16);
    for i in 0..64 {
        db.query(&format!("CREATE (:P {{v: {}, i: {i}}})", i % 8), &params)
            .unwrap();
    }
    let q = "MATCH (n:P) WHERE n.v = 3 RETURN n.i AS i ORDER BY i";
    let expected = db.query(q, &params).unwrap();
    let after_first = db.plan_cache_stats();
    let threads = 6;
    let per_thread = 25;
    let sessions: Vec<_> = (0..threads).map(|_| db.session()).collect();
    std::thread::scope(|sc| {
        for mut s in sessions {
            let expected = &expected;
            let params = &params;
            sc.spawn(move || {
                for _ in 0..per_thread {
                    let t = s.query(q, params).unwrap();
                    assert!(t.ordered_eq(expected), "session saw different rows");
                }
            });
        }
    });
    let s = db.plan_cache_stats();
    assert_eq!(
        s.hits,
        after_first.hits + (threads * per_thread) as u64,
        "every concurrent execution must hit the shared entry: {s:?}"
    );
    assert_eq!(
        s.invalidations, after_first.invalidations,
        "an unchanged graph must not invalidate: {s:?}"
    );
    assert_eq!(s.misses, after_first.misses, "{s:?}");
}

#[test]
fn session_pinned_before_a_mutation_keeps_its_own_plans() {
    // A session pins its snapshot, *then* a big mutation flips the
    // statistics fingerprint. The pinned session must (a) still answer
    // from its frozen version, and (b) observe the invalidation protocol:
    // its fingerprint differs from the head's, so the cache holds one
    // memo per fingerprint and neither session thrashes the other.
    let params = Params::new();
    let mut db = db_with_cache(16);
    // Parameterized updates: one cache entry per statement *shape*, so
    // the hot read entry below is never LRU-evicted by the setup.
    let with_i = |i: i64| {
        let mut p = Params::new();
        p.insert("i".into(), Value::int(i));
        p
    };
    for i in 0..4 {
        db.query("CREATE (:A {i: $i})-[:X]->(:B {i: $i})", &with_i(i))
            .unwrap();
    }
    for i in 0..96 {
        db.query("CREATE (:B {i: $i})", &with_i(100 + i)).unwrap();
    }
    let q = "MATCH (a:A)-[:X]->(b:B) RETURN count(*) AS c";
    let mut pinned = db.session();
    let pinned_version = pinned.begin_read();
    // Warm the cache at the pinned fingerprint.
    assert_eq!(
        pinned.query(q, &params).unwrap().cell(0, "c"),
        Some(&Value::int(4))
    );

    // Mutation big enough to flip the anchor (A outgrows B), committed
    // *after* the pin.
    let before = db.explain(q).unwrap();
    for i in 0..1000 {
        db.query("CREATE (:A {i: $i})", &with_i(10_000 + i))
            .unwrap();
    }
    let after = db.explain(q).unwrap();
    assert_ne!(before, after, "anchor flip must be EXPLAIN-visible");

    // A head session replans under the new fingerprint: invalidation,
    // not a miss (the parse is kept). Deltas are measured around the
    // read query alone — the parameterized CREATEs above are cache
    // entries too and rack up their own invalidations while the graph
    // grows through fingerprint buckets.
    let mut head = db.session();
    let pre_head = db.plan_cache_stats();
    assert_eq!(
        head.query(q, &params).unwrap().cell(0, "c"),
        Some(&Value::int(4))
    );
    let post_head = db.plan_cache_stats();
    assert_eq!(
        post_head.invalidations,
        pre_head.invalidations + 1,
        "statistics drift must invalidate for the head session: {post_head:?}"
    );
    assert_eq!(post_head.misses, pre_head.misses, "parse must be kept");

    // The pinned session still reads its frozen version — and its plans
    // (cached under the *old* fingerprint) are hits, not churn.
    assert_eq!(pinned.version(), Some(pinned_version));
    assert_eq!(
        pinned.query(q, &params).unwrap().cell(0, "c"),
        Some(&Value::int(4)),
        "pinned session must not see the 1000 new nodes' effect on the join"
    );
    let post_pinned = db.plan_cache_stats();
    assert_eq!(
        post_pinned.invalidations, post_head.invalidations,
        "the pinned session's old-fingerprint plans must still be cached: {post_pinned:?}"
    );
    assert_eq!(post_pinned.hits, post_head.hits + 1);

    // And both fingerprints' plans now coexist: alternating sessions hit.
    head.query(q, &params).unwrap();
    pinned.query(q, &params).unwrap();
    let final_stats = db.plan_cache_stats();
    assert_eq!(final_stats.hits, post_pinned.hits + 2);
    assert_eq!(final_stats.invalidations, post_pinned.invalidations);
    pinned.commit();
    // Released: the session follows the head again.
    let now = pinned
        .query("MATCH (a:A) RETURN count(*) AS c", &params)
        .unwrap();
    assert_eq!(now.cell(0, "c"), Some(&Value::int(1004)));
}

#[test]
fn cached_aggregate_queries_stay_correct_under_pushdown() {
    // The plan cache composes with the partial-aggregation pushdown: the
    // fused path plans through the same memo.
    let params = Params::new();
    let mut cfg = EngineConfig::default();
    cfg.persistence = None;
    cfg.plan_cache_size = 8;
    cfg.num_threads = 4;
    cfg.morsel_size = 2;
    let mut db = Database::open_with(cfg).unwrap();
    for i in 0..40 {
        db.query(&format!("CREATE (:P {{v: {}, i: {i}}})", i % 4), &params)
            .unwrap();
    }
    let q = "MATCH (n:P) RETURN n.v AS g, count(*) AS c, sum(n.i) AS s ORDER BY g";
    let first = db.query(q, &params).unwrap();
    assert_eq!(first.len(), 4);
    let hits_before = db.plan_cache_stats().hits;
    let second = db.query(q, &params).unwrap();
    assert!(second.ordered_eq(&first));
    assert!(db.plan_cache_stats().hits > hits_before);
    // The reference oracle agrees.
    let oracle = db.query_reference(q, &params).unwrap();
    assert!(first.bag_eq(&oracle));
}
