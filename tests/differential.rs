//! Experiment E18 (correctness half): differential testing of the three
//! evaluation strategies — the reference denotational evaluator, the
//! Expand-based planner engine, and the cartesian-baseline planner — over
//! randomized graphs and a corpus of read queries.
//!
//! The paper's Section 4 argues a formal semantics "paves a way to a
//! reference implementation against which others will be compared"; this
//! file is that comparison.

use cypher::workload::random_graph;
use cypher::{run_read_with, run_reference, EngineConfig, Params, PlannerMode, PropertyGraph};

/// The query corpus: read queries over labels A/B and types X/Y exercising
/// matching, optional matching, variable-length patterns, filtering,
/// aggregation, ordering, distinct, unwind and unions.
const CORPUS: &[&str] = &[
    "MATCH (a) RETURN count(*) AS c",
    "MATCH (a:A) RETURN a.i ORDER BY a.i",
    "MATCH (a)-[r:X]->(b) RETURN a.i, r.w, b.i",
    "MATCH (a)-[r]->(b) RETURN count(*) AS c",
    "MATCH (a)-[:X]->(b)-[:Y]->(c) RETURN a.i, b.i, c.i",
    "MATCH (a)-[:X]-(b) RETURN a.i, b.i",
    "MATCH (a)<-[:Y]-(b) RETURN a.i, b.i",
    "MATCH (a:A)-[*1..2]->(b:B) RETURN a.i, b.i",
    "MATCH (a)-[rs:X*0..2]->(b) RETURN a.i, size(rs) AS hops, b.i",
    "MATCH p = (a)-[:X*1..2]->(b) RETURN a.i, length(p) AS len",
    "MATCH (a:A) OPTIONAL MATCH (a)-[:X]->(b) RETURN a.i, b.i",
    "MATCH (a) OPTIONAL MATCH (a)-[:X]->(b:B) WHERE b.v > 5 RETURN a.i, b.i",
    "MATCH (a)-[r:X]->(b) WHERE r.w > 50 RETURN a.i, b.i",
    "MATCH (a:A), (b:B) RETURN count(*) AS pairs",
    "MATCH (a)-[r1]->(b)-[r2]->(a) RETURN a.i, b.i",
    "MATCH (a) WHERE (a)-[:X]->(:B) RETURN a.i",
    "MATCH (a) WHERE NOT (a)-[:X]->() RETURN a.i",
    "MATCH (a) RETURN DISTINCT a.v AS v ORDER BY v",
    "MATCH (a) RETURN a.v AS v, count(*) AS c ORDER BY v, c",
    "MATCH (a)-[:X]->(b) WITH a, count(b) AS deg WHERE deg > 1 RETURN a.i, deg",
    "MATCH (a) WITH a.v AS v, collect(a.i) AS is RETURN v, size(is) AS n ORDER BY v",
    "MATCH (a) RETURN sum(a.v) AS s, min(a.v) AS lo, max(a.v) AS hi, avg(a.v) AS mean",
    "UNWIND [1, 2, 3] AS x MATCH (a:A) RETURN x, count(a) AS c ORDER BY x",
    "MATCH (a:A) RETURN a.i AS i UNION MATCH (b:B) RETURN b.i AS i",
    "MATCH (a:A) RETURN a.i AS i UNION ALL MATCH (b:B) RETURN b.i AS i",
    "MATCH (a) RETURN a.i AS i ORDER BY i DESC SKIP 2 LIMIT 3",
    "MATCH (a) RETURN CASE WHEN a.v > 5 THEN 'hi' ELSE 'lo' END AS bucket, count(*) AS c",
    "MATCH (a) RETURN [x IN range(0, a.v) WHERE x % 2 = 0 | x] AS evens ORDER BY a.i LIMIT 5",
    "MATCH (a)-[rs:X*1..3]->(b) RETURN count(*) AS walks",
    "MATCH (a)-[:X]->(b), (b)-[:Y]->(c) RETURN a.i, b.i, c.i",
];

fn check_graph(g: &PropertyGraph, label: &str) {
    let params = Params::new();
    for q in CORPUS {
        let reference = run_reference(g, q, &params)
            .unwrap_or_else(|e| panic!("[{label}] reference failed on {q}: {e}"));
        let expand = run_read_with(g, q, &params, &EngineConfig::default())
            .unwrap_or_else(|e| panic!("[{label}] engine failed on {q}: {e}"));
        assert!(
            expand.bag_eq(&reference),
            "[{label}] expand-engine diverges on {q}\nreference:\n{reference}\nengine:\n{expand}"
        );
        let cartesian = run_read_with(
            g,
            q,
            &params,
            &EngineConfig {
                planner_mode: PlannerMode::CartesianJoin,
                ..EngineConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("[{label}] cartesian engine failed on {q}: {e}"));
        assert!(
            cartesian.bag_eq(&reference),
            "[{label}] cartesian baseline diverges on {q}\nreference:\n{reference}\nbaseline:\n{cartesian}"
        );
    }
}

#[test]
fn corpus_on_small_random_graphs() {
    for seed in 0..8 {
        let g = random_graph(12, 20, &["A", "B"], &["X", "Y"], seed);
        check_graph(&g, &format!("seed {seed}"));
    }
}

#[test]
fn corpus_on_denser_random_graphs() {
    for seed in 100..103 {
        let g = random_graph(20, 60, &["A", "B"], &["X", "Y"], seed);
        check_graph(&g, &format!("dense seed {seed}"));
    }
}

#[test]
fn corpus_on_edge_case_graphs() {
    // Empty graph.
    check_graph(&PropertyGraph::new(), "empty");
    // Single node, no relationships.
    let mut single = PropertyGraph::new();
    single.add_node(
        &["A"],
        [("i", cypher::Value::int(0)), ("v", cypher::Value::int(1))],
    );
    check_graph(&single, "single node");
    // Self-loops and parallel edges.
    let mut loops = PropertyGraph::new();
    let a = loops.add_node(
        &["A"],
        [("i", cypher::Value::int(0)), ("v", cypher::Value::int(3))],
    );
    let b = loops.add_node(
        &["B"],
        [("i", cypher::Value::int(1)), ("v", cypher::Value::int(7))],
    );
    loops
        .add_rel(a, a, "X", [("w", cypher::Value::int(1))])
        .unwrap();
    loops
        .add_rel(a, b, "X", [("w", cypher::Value::int(2))])
        .unwrap();
    loops
        .add_rel(a, b, "X", [("w", cypher::Value::int(3))])
        .unwrap();
    loops
        .add_rel(b, a, "Y", [("w", cypher::Value::int(4))])
        .unwrap();
    check_graph(&loops, "loops and parallel edges");
}

#[test]
fn workload_generators_agree_too() {
    let params = Params::new();
    let g = cypher::workload::citation_network(6, 30, 2, 11);
    for q in [
        "MATCH (r:Researcher)-[:AUTHORS]->(p) RETURN r.name, count(p) AS pubs",
        "MATCH (p1:Publication)<-[:CITES*1..3]-(p2) RETURN p1.acmid, count(DISTINCT p2) AS c",
        "MATCH (r:Researcher) OPTIONAL MATCH (r)-[:SUPERVISES]->(s) RETURN r.name, count(s) AS n",
    ] {
        let reference = run_reference(&g, q, &params).unwrap();
        let engine = cypher::run_read(&g, q, &params).unwrap();
        assert!(engine.bag_eq(&reference), "diverges on {q}");
    }
}
