//! Experiment E21: the update clauses of Section 2 ("Data modification"):
//! `CREATE`, `DELETE` / `DETACH DELETE`, `SET`, `REMOVE`, and `MERGE`'s
//! match-or-create semantics.

use cypher::{run, run_read, Params, PropertyGraph, Value};

fn fresh() -> (PropertyGraph, Params) {
    (PropertyGraph::new(), Params::new())
}

#[test]
fn create_nodes_and_relationships() {
    let (mut g, params) = fresh();
    run(
        &mut g,
        "CREATE (a:Person {name: 'Ada'})-[:KNOWS {since: 1985}]->(b:Person {name: 'Bo'}),
                (a)-[:KNOWS {since: 2001}]->(c:Person {name: 'Cy'})",
        &params,
    )
    .unwrap();
    assert_eq!(g.node_count(), 3);
    assert_eq!(g.rel_count(), 2);
    let t = run_read(
        &g,
        "MATCH (:Person {name: 'Ada'})-[r:KNOWS]->(x) RETURN x.name AS n ORDER BY n",
        &params,
    )
    .unwrap();
    assert_eq!(t.len(), 2);
    assert_eq!(t.cell(0, "n"), Some(&Value::str("Bo")));
}

#[test]
fn create_per_driving_row() {
    let (mut g, params) = fresh();
    run(
        &mut g,
        "UNWIND [1, 2, 3] AS i CREATE (:Item {rank: i})",
        &params,
    )
    .unwrap();
    assert_eq!(g.node_count(), 3);
    let t = run_read(&g, "MATCH (x:Item) RETURN sum(x.rank) AS s", &params).unwrap();
    assert_eq!(t.cell(0, "s"), Some(&Value::int(6)));
}

#[test]
fn create_binds_new_variables_for_return() {
    let (mut g, params) = fresh();
    let t = run(
        &mut g,
        "CREATE (a:Person {name: 'Ada'}) RETURN a.name AS n, id(a) AS i",
        &params,
    )
    .unwrap();
    assert_eq!(t.cell(0, "n"), Some(&Value::str("Ada")));
    assert_eq!(t.cell(0, "i"), Some(&Value::int(0)));
}

#[test]
fn set_properties_and_labels() {
    let (mut g, params) = fresh();
    run(&mut g, "CREATE (:Person {name: 'Ada', tmp: 1})", &params).unwrap();
    run(
        &mut g,
        "MATCH (p:Person) SET p.age = 36, p:Verified, p.tmp = null",
        &params,
    )
    .unwrap();
    let t = run_read(
        &g,
        "MATCH (p:Person:Verified) RETURN p.age AS age, p.tmp AS tmp",
        &params,
    )
    .unwrap();
    assert_eq!(t.cell(0, "age"), Some(&Value::int(36)));
    assert!(t.cell(0, "tmp").unwrap().is_null());
}

#[test]
fn set_replace_and_merge_maps() {
    let (mut g, params) = fresh();
    run(&mut g, "CREATE (:P {a: 1, b: 2})", &params).unwrap();
    run(&mut g, "MATCH (p:P) SET p += {b: 20, c: 30}", &params).unwrap();
    let t = run_read(&g, "MATCH (p:P) RETURN p.a, p.b, p.c", &params).unwrap();
    assert_eq!(t.cell(0, "p.a"), Some(&Value::int(1)));
    assert_eq!(t.cell(0, "p.b"), Some(&Value::int(20)));
    assert_eq!(t.cell(0, "p.c"), Some(&Value::int(30)));
    run(&mut g, "MATCH (p:P) SET p = {z: 9}", &params).unwrap();
    let t2 = run_read(&g, "MATCH (p:P) RETURN p.a, p.z", &params).unwrap();
    assert!(t2.cell(0, "p.a").unwrap().is_null());
    assert_eq!(t2.cell(0, "p.z"), Some(&Value::int(9)));
}

#[test]
fn remove_properties_and_labels() {
    let (mut g, params) = fresh();
    run(&mut g, "CREATE (:A:B {x: 1, y: 2})", &params).unwrap();
    run(&mut g, "MATCH (n:A) REMOVE n.x, n:B", &params).unwrap();
    let t = run_read(&g, "MATCH (n:A) RETURN n.x AS x, n.y AS y", &params).unwrap();
    assert!(t.cell(0, "x").unwrap().is_null());
    assert_eq!(t.cell(0, "y"), Some(&Value::int(2)));
    let b_count = run_read(&g, "MATCH (n:B) RETURN count(*) AS c", &params).unwrap();
    assert_eq!(b_count.cell(0, "c"), Some(&Value::int(0)));
}

#[test]
fn delete_requires_detach_for_connected_nodes() {
    let (mut g, params) = fresh();
    run(&mut g, "CREATE (:A)-[:R]->(:B)", &params).unwrap();
    // Plain DELETE of a connected node is an error (Cypher semantics).
    assert!(run(&mut g, "MATCH (a:A) DELETE a", &params).is_err());
    assert_eq!(g.node_count(), 2);
    run(&mut g, "MATCH (a:A) DETACH DELETE a", &params).unwrap();
    assert_eq!(g.node_count(), 1);
    assert_eq!(g.rel_count(), 0);
}

#[test]
fn delete_relationship_then_node() {
    let (mut g, params) = fresh();
    run(&mut g, "CREATE (:A)-[:R]->(:B)", &params).unwrap();
    run(&mut g, "MATCH (a:A)-[r:R]->(b) DELETE r, a, b", &params).unwrap();
    assert_eq!(g.node_count(), 0);
    assert_eq!(g.rel_count(), 0);
}

#[test]
fn delete_same_entity_from_multiple_rows() {
    let (mut g, params) = fresh();
    run(
        &mut g,
        "CREATE (hub:Hub), (:A)-[:R]->(hub), (:A)-[:R]->(hub)",
        &params,
    )
    .unwrap();
    // hub appears in two rows; collected deletions apply once.
    run(&mut g, "MATCH (:A)-[r:R]->(hub:Hub) DELETE r, hub", &params).unwrap();
    assert_eq!(g.rel_count(), 0);
    let t = run_read(&g, "MATCH (h:Hub) RETURN count(*) AS c", &params).unwrap();
    assert_eq!(t.cell(0, "c"), Some(&Value::int(0)));
}

#[test]
fn merge_matches_or_creates() {
    let (mut g, params) = fresh();
    // First MERGE creates…
    run(&mut g, "MERGE (p:Person {name: 'Ada'})", &params).unwrap();
    assert_eq!(g.node_count(), 1);
    // …second MERGE matches (paper: "creates the pattern if no match was
    // found", so uniqueness is preserved).
    run(&mut g, "MERGE (p:Person {name: 'Ada'})", &params).unwrap();
    assert_eq!(g.node_count(), 1);
    run(&mut g, "MERGE (p:Person {name: 'Bo'})", &params).unwrap();
    assert_eq!(g.node_count(), 2);
}

#[test]
fn merge_on_create_on_match() {
    let (mut g, params) = fresh();
    run(
        &mut g,
        "MERGE (p:Person {name: 'Ada'})
         ON CREATE SET p.created = true
         ON MATCH SET p.matched = true",
        &params,
    )
    .unwrap();
    let t = run_read(
        &g,
        "MATCH (p:Person) RETURN p.created AS c, p.matched AS m",
        &params,
    )
    .unwrap();
    assert_eq!(t.cell(0, "c"), Some(&Value::Bool(true)));
    assert!(t.cell(0, "m").unwrap().is_null());

    run(
        &mut g,
        "MERGE (p:Person {name: 'Ada'})
         ON CREATE SET p.created2 = true
         ON MATCH SET p.matched = true",
        &params,
    )
    .unwrap();
    let t2 = run_read(
        &g,
        "MATCH (p:Person) RETURN p.matched AS m, p.created2 AS c2",
        &params,
    )
    .unwrap();
    assert_eq!(t2.cell(0, "m"), Some(&Value::Bool(true)));
    assert!(t2.cell(0, "c2").unwrap().is_null());
}

#[test]
fn merge_relationship_per_row() {
    let (mut g, params) = fresh();
    run(&mut g, "CREATE (:P {n: 1}), (:P {n: 2})", &params).unwrap();
    // MERGE a HUB and attach each P; the hub pattern includes the rel, so
    // one rel per P is created, but re-running creates nothing new.
    run(
        &mut g,
        "MATCH (p:P) MERGE (p)-[:LINKED]->(:Hub {name: 'h'})",
        &params,
    )
    .unwrap();
    let rels_before = g.rel_count();
    run(
        &mut g,
        "MATCH (p:P) MERGE (p)-[:LINKED]->(:Hub {name: 'h'})",
        &params,
    )
    .unwrap();
    assert_eq!(g.rel_count(), rels_before, "MERGE is idempotent");
}

#[test]
fn updates_compose_linearly_with_reads() {
    let (mut g, params) = fresh();
    run(
        &mut g,
        "CREATE (:Account {id: 1, balance: 100}), (:Account {id: 2, balance: 50})",
        &params,
    )
    .unwrap();
    // Read + update + read in one query.
    let t = run(
        &mut g,
        "MATCH (a:Account) WHERE a.balance >= 100
         SET a.premium = true
         WITH a
         MATCH (a) RETURN a.id AS id, a.premium AS p",
        &params,
    )
    .unwrap();
    assert_eq!(t.len(), 1);
    assert_eq!(t.cell(0, "p"), Some(&Value::Bool(true)));
}

#[test]
fn parameters_in_updates() {
    let (mut g, mut params) = (PropertyGraph::new(), Params::new());
    params.insert("name".into(), Value::str("Dyn"));
    params.insert("age".into(), Value::int(7));
    run(&mut g, "CREATE (:P {name: $name, age: $age})", &params).unwrap();
    let t = run_read(&g, "MATCH (p:P {name: $name}) RETURN p.age AS a", &params).unwrap();
    assert_eq!(t.cell(0, "a"), Some(&Value::int(7)));
}

#[test]
fn create_rejects_invalid_patterns() {
    let (mut g, params) = fresh();
    // Undirected relationship cannot be created.
    assert!(run(&mut g, "CREATE (:A)-[:R]-(:B)", &params).is_err());
    // Variable-length cannot be created.
    assert!(run(&mut g, "CREATE (:A)-[:R*2]->(:B)", &params).is_err());
    // Typeless relationship cannot be created.
    assert!(run(&mut g, "CREATE (:A)-[]->(:B)", &params).is_err());
}
