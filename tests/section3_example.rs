//! Experiments E1–E5: the Section 3 walkthrough of the paper, reproduced
//! table by table.
//!
//! The paper develops one running query over the Figure 1 graph and shows
//! every intermediate binding table (Figure 2a, Figure 2b, the table after
//! line 4, the table after line 5 with its duplicate † rows) and the final
//! result. Each prefix of the query is executed here — against **both**
//! the planner engine and the reference semantics — and compared with the
//! exact bag the paper prints.

use cypher::workload::figure1;
use cypher::{run_read, run_reference, table_of, NodeId, Params, Table, Value};

fn node(i: u64) -> Value {
    // Figure 1's n1..n10 are NodeId(0)..NodeId(9) in insertion order.
    Value::Node(NodeId(i - 1))
}

fn both(query: &str) -> (Table, Table) {
    let g = figure1();
    let params = Params::new();
    let engine = run_read(&g, query, &params).unwrap();
    let reference = run_reference(&g, query, &params).unwrap();
    assert!(
        engine.bag_eq(&reference),
        "engine and reference disagree on {query}\nengine:\n{engine}\nreference:\n{reference}"
    );
    (engine, reference)
}

#[test]
fn e2_figure_2a_optional_match_bindings() {
    // Lines 1–2: MATCH researchers, OPTIONAL MATCH supervised students.
    let (out, _) = both(
        "MATCH (r:Researcher)
         OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
         RETURN r, s",
    );
    let expected = table_of(
        &["r", "s"],
        vec![
            vec![node(1), Value::Null],
            vec![node(6), node(7)],
            vec![node(6), node(8)],
            vec![node(10), node(7)],
        ],
    );
    out.assert_bag_eq(&expected);
}

#[test]
fn e3_figure_2b_with_aggregation() {
    // Line 3: WITH r, count(s) — grouping on r, counting non-null s.
    let (out, _) = both(
        "MATCH (r:Researcher)
         OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
         WITH r, count(s) AS studentsSupervised
         RETURN r, studentsSupervised",
    );
    let expected = table_of(
        &["r", "studentsSupervised"],
        vec![
            vec![node(1), Value::int(0)],
            vec![node(6), Value::int(2)],
            vec![node(10), Value::int(1)],
        ],
    );
    out.assert_bag_eq(&expected);
}

#[test]
fn e4_line4_authors_drops_thor() {
    // Line 4: Thor (n10) authored nothing, so no row with n10 survives.
    let (out, _) = both(
        "MATCH (r:Researcher)
         OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
         WITH r, count(s) AS studentsSupervised
         MATCH (r)-[:AUTHORS]->(p1:Publication)
         RETURN r, studentsSupervised, p1",
    );
    let expected = table_of(
        &["r", "studentsSupervised", "p1"],
        vec![
            vec![node(1), Value::int(0), node(2)],
            vec![node(6), Value::int(2), node(5)],
            vec![node(6), Value::int(2), node(9)],
        ],
    );
    out.assert_bag_eq(&expected);
}

#[test]
fn e5_line5_variable_length_with_duplicates() {
    // Line 5: the variable-length CITES* match. n9 reaches n2 through two
    // distinct paths (via n5 and via n4), producing the duplicate rows
    // marked † in the paper; n9 itself is cited by nothing → null.
    let (out, _) = both(
        "MATCH (r:Researcher)
         OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
         WITH r, count(s) AS studentsSupervised
         MATCH (r)-[:AUTHORS]->(p1:Publication)
         OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication)
         RETURN r, studentsSupervised, p1, p2",
    );
    let expected = table_of(
        &["r", "studentsSupervised", "p1", "p2"],
        vec![
            vec![node(1), Value::int(0), node(2), node(4)],
            vec![node(1), Value::int(0), node(2), node(9)], // †
            vec![node(1), Value::int(0), node(2), node(5)],
            vec![node(1), Value::int(0), node(2), node(9)], // †
            vec![node(6), Value::int(2), node(5), node(9)],
            vec![node(6), Value::int(2), node(9), Value::Null],
        ],
    );
    out.assert_bag_eq(&expected);
}

#[test]
fn e1_final_result_table() {
    // Lines 6–7: the output the paper prints — Nils 0 3, Elin 2 1.
    let (out, _) = both(
        "MATCH (r:Researcher)
         OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
         WITH r, count(s) AS studentsSupervised
         MATCH (r)-[:AUTHORS]->(p1:Publication)
         OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication)
         RETURN r.name, studentsSupervised,
                count(DISTINCT p2) AS citedCount",
    );
    let expected = table_of(
        &["r.name", "studentsSupervised", "citedCount"],
        vec![
            vec![Value::str("Nils"), Value::int(0), Value::int(3)],
            vec![Value::str("Elin"), Value::int(2), Value::int(1)],
        ],
    );
    out.assert_bag_eq(&expected);
    // Column headers match the paper's table.
    assert_eq!(
        out.schema().names(),
        &[
            "r.name".to_string(),
            "studentsSupervised".to_string(),
            "citedCount".to_string()
        ]
    );
}

#[test]
fn line1_initial_bindings() {
    // The very first clause: three researcher bindings n1, n6, n10.
    let (out, _) = both("MATCH (r:Researcher) RETURN r");
    let expected = table_of(&["r"], vec![vec![node(1)], vec![node(6)], vec![node(10)]]);
    out.assert_bag_eq(&expected);
}
