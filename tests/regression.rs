//! Regression suite: each test pins a bug found (and fixed) during the
//! development of this reproduction, so it stays fixed.

use cypher::{run_read, run_reference, Params, PropertyGraph, Value};

/// Zero-hop variable-length patterns must accept even when the
/// relationship type (or a property key) was never interned in the graph:
/// the per-hop conditions are vacuous over zero hops. (The engine's
/// Expand operator used to bail out entirely.)
#[test]
fn zero_hop_accepts_with_unknown_type() {
    let mut g = PropertyGraph::new();
    g.add_node(&["A"], [("i", Value::int(0))]);
    let params = Params::new();
    let q = "MATCH (a)-[rs:NEVER_USED*0..2]->(b) RETURN a.i, size(rs) AS hops, b.i";
    let engine = run_read(&g, q, &params).unwrap();
    let reference = run_reference(&g, q, &params).unwrap();
    assert!(engine.bag_eq(&reference));
    assert_eq!(engine.len(), 1);
    assert_eq!(engine.cell(0, "hops"), Some(&Value::int(0)));
}

/// `exists(<pattern>)` must return the pattern's truth value, not test the
/// resulting boolean for null-ness (which made every `exists` true).
#[test]
fn exists_of_non_matching_pattern_is_false() {
    let mut g = PropertyGraph::new();
    g.add_node(&["A"], []);
    let params = Params::new();
    let q = "MATCH (a:A) RETURN exists((a)-[:NOPE]->()) AS e";
    for t in [
        run_read(&g, q, &params).unwrap(),
        run_reference(&g, q, &params).unwrap(),
    ] {
        assert_eq!(t.cell(0, "e"), Some(&Value::Bool(false)));
    }
}

/// `ORDER BY` must be able to reference pre-projection variables
/// (`RETURN a.i ORDER BY a.x` is legal Cypher), with projected aliases
/// taking precedence on collision.
#[test]
fn order_by_sees_pre_projection_scope() {
    let mut g = PropertyGraph::new();
    g.add_node(&["P"], [("i", Value::int(1)), ("w", Value::int(9))]);
    g.add_node(&["P"], [("i", Value::int(2)), ("w", Value::int(8))]);
    let params = Params::new();
    let q = "MATCH (p:P) RETURN p.i AS i ORDER BY p.w";
    for t in [
        run_read(&g, q, &params).unwrap(),
        run_reference(&g, q, &params).unwrap(),
    ] {
        assert_eq!(t.rows()[0].get(0), &Value::int(2));
        assert_eq!(t.rows()[1].get(0), &Value::int(1));
    }
    // After DISTINCT, only projected columns are addressable.
    let bad = "MATCH (p:P) RETURN DISTINCT p.i AS i ORDER BY p.w";
    assert!(run_read(&g, bad, &params).is_err());
}

/// Negative numeric literals must round-trip through render/parse
/// (`-1` folds to the literal −1; `(-1).a` keeps its parens).
#[test]
fn negative_literal_roundtrip() {
    use cypher::ast::expr::{Expr, Literal};
    use cypher::parse_expression;
    let e = parse_expression("-1").unwrap();
    assert_eq!(e, Expr::Lit(Literal::Integer(-1)));
    let rendered = Expr::Prop(Box::new(Expr::Lit(Literal::Integer(-1))), "a".into()).to_string();
    assert_eq!(rendered, "(-1).a");
    let back = parse_expression(&rendered).unwrap();
    assert!(matches!(back, Expr::Prop(_, _)));
}

/// `1..3` must lex as integer–range–integer, not as the float `1.` etc.
#[test]
fn slice_bounds_not_floats() {
    assert_eq!(
        run_read(
            &PropertyGraph::new(),
            "RETURN [9, 8, 7][1..3] AS s",
            &Params::new()
        )
        .unwrap()
        .cell(0, "s")
        .unwrap()
        .to_string(),
        "[8, 7]"
    );
}

/// A duplicate output name in a projection is an error, not a panic.
#[test]
fn duplicate_projection_names_error_cleanly() {
    let g = PropertyGraph::new();
    let params = Params::new();
    assert!(run_read(&g, "RETURN 1 AS x, 2 AS x", &params).is_err());
}

/// An aggregate inside `WHERE` is an error even when rows exist.
#[test]
fn aggregate_in_where_is_error() {
    let mut g = PropertyGraph::new();
    g.add_node(&[], []);
    let params = Params::new();
    assert!(run_read(&g, "MATCH (n) WHERE count(n) > 0 RETURN n", &params).is_err());
}

/// Expanding from a null-bound variable yields no matches (and no error):
/// chaining MATCH after a failed OPTIONAL MATCH drops those rows.
#[test]
fn match_from_null_binding_drops_row() {
    let mut g = PropertyGraph::new();
    g.add_node(&["A"], []);
    let params = Params::new();
    let q = "MATCH (a:A)
             OPTIONAL MATCH (a)-[:X]->(b)
             MATCH (b)-[:Y]->(c)
             RETURN count(*) AS n";
    for t in [
        run_read(&g, q, &params).unwrap(),
        run_reference(&g, q, &params).unwrap(),
    ] {
        assert_eq!(t.cell(0, "n"), Some(&Value::int(0)));
    }
}

/// Self-loops appear exactly once in undirected expansion (not once per
/// orientation).
#[test]
fn self_loop_undirected_multiplicity() {
    let mut g = PropertyGraph::new();
    let n = g.add_node(&[], []);
    g.add_rel(n, n, "L", []).unwrap();
    let params = Params::new();
    let q = "MATCH (a)-[r:L]-(b) RETURN count(*) AS c";
    for t in [
        run_read(&g, q, &params).unwrap(),
        run_reference(&g, q, &params).unwrap(),
    ] {
        assert_eq!(t.cell(0, "c"), Some(&Value::int(1)));
    }
}

/// The property-index scan must not match `{k: null}` (equality with null
/// is never true, even though null ≡ null under equivalence).
#[test]
fn null_property_pattern_never_matches() {
    let mut g = PropertyGraph::new();
    g.add_node(&["P"], []); // no k at all
    let params = Params::new();
    let q = "MATCH (p:P {k: null}) RETURN count(*) AS c";
    for t in [
        run_read(&g, q, &params).unwrap(),
        run_reference(&g, q, &params).unwrap(),
    ] {
        assert_eq!(t.cell(0, "c"), Some(&Value::int(0)));
    }
}

/// Property-index lookups respect numeric equivalence (1 vs 1.0) while
/// the residual filter keeps `=` exactness.
#[test]
fn property_index_numeric_equivalence() {
    let mut g = PropertyGraph::new();
    g.add_node(&["P"], [("k", Value::int(1))]);
    g.add_node(&["P"], [("k", Value::float(1.0))]);
    let params = Params::new();
    let q = "MATCH (p:P {k: 1}) RETURN count(*) AS c";
    let engine = run_read(&g, q, &params).unwrap();
    let reference = run_reference(&g, q, &params).unwrap();
    assert!(engine.bag_eq(&reference));
    assert_eq!(engine.cell(0, "c"), Some(&Value::int(2)), "1 = 1.0 is true");
}

/// Aggregates nested under slices, indexing, CASE etc. must be extracted
/// by the projection rewriter (`collect(x)[..3]` used to error).
#[test]
fn aggregates_nested_in_composite_expressions() {
    let mut g = PropertyGraph::new();
    for i in 1..=5 {
        g.add_node(&["P"], [("v", Value::int(i))]);
    }
    let params = Params::new();
    for (q, expect) in [
        (
            "MATCH (p:P) WITH p.v AS v ORDER BY v RETURN collect(v)[..2] AS x",
            "[1, 2]",
        ),
        ("MATCH (p:P) RETURN collect(p.v)[0] IS NULL AS x", "false"),
        (
            "MATCH (p:P) RETURN CASE WHEN count(*) > 3 THEN 'many' ELSE 'few' END AS x",
            "'many'",
        ),
        ("MATCH (p:P) RETURN (sum(p.v) IN [15]) AS x", "true"),
        ("MATCH (p:P) RETURN {total: sum(p.v)}.total AS x", "15"),
    ] {
        let a = run_read(&g, q, &params).unwrap();
        let b = run_reference(&g, q, &params).unwrap();
        assert!(a.bag_eq(&b), "divergence on {q}");
        assert_eq!(a.cell(0, "x").unwrap().to_string(), expect, "{q}");
    }
}

/// Variable-length patterns whose *endpoint* variable is pre-bound used to
/// lose every traversal longer than the first acceptance attempt: the
/// reference matcher's DFS returned outright when the endpoint bind
/// failed, instead of continuing to deeper hop counts that might reach the
/// pinned node. Found by the grammar-driven parallel differential harness.
#[test]
fn var_length_to_prebound_endpoint_keeps_long_paths() {
    let mut g = PropertyGraph::new();
    let a = g.add_node(&["A"], [("i", Value::int(0))]);
    let b = g.add_node(&["B"], [("i", Value::int(1))]);
    let c = g.add_node(&["A"], [("i", Value::int(2))]);
    let d = g.add_node(&["B"], [("i", Value::int(3))]);
    g.add_rel(a, b, "X", []).unwrap();
    g.add_rel(b, c, "X", []).unwrap();
    g.add_rel(c, d, "Y", []).unwrap();
    let params = Params::new();
    // n0 is bound by the first pattern before the var-length pattern runs.
    let q = "MATCH (n0), (n1)<-[r*1..3]-(n0) RETURN n0.i AS s, n1.i AS t, size(r) AS hops";
    let engine = run_read(&g, q, &params).unwrap();
    let reference = run_reference(&g, q, &params).unwrap();
    assert!(
        engine.bag_eq(&reference),
        "engine:\n{engine}reference:\n{reference}"
    );
    // Chain of 3 relationships: 3 one-hop + 2 two-hop + 1 three-hop paths.
    assert_eq!(engine.len(), 6);
}

/// When the planner anchors a variable-length expand at the pattern's
/// *right* end (e.g. the right node is pre-bound), the traversed
/// relationship list must still bind in pattern order — left to right —
/// as the formal semantics (item (a')) and path projection require. The
/// engine used to bind it in traversal order, i.e. reversed.
#[test]
fn reversed_var_length_expand_binds_rels_in_pattern_order() {
    let mut g = PropertyGraph::new();
    let a = g.add_node(&["A"], []);
    let b = g.add_node(&["B"], []);
    let c = g.add_node(&["C"], []);
    g.add_rel(a, b, "X", [("ord", Value::int(1))]).unwrap();
    g.add_rel(b, c, "X", [("ord", Value::int(2))]).unwrap();
    let params = Params::new();
    // n2 (the right end) is pre-bound, so the expand runs right-to-left.
    let q = "MATCH (n2:C) MATCH (n0)-[r*2]->(n2) RETURN r[0].ord AS first, r[1].ord AS second";
    let engine = run_read(&g, q, &params).unwrap();
    let reference = run_reference(&g, q, &params).unwrap();
    assert!(
        engine.bag_eq(&reference),
        "engine:\n{engine}reference:\n{reference}"
    );
    assert_eq!(engine.cell(0, "first"), Some(&Value::int(1)));
    assert_eq!(engine.cell(0, "second"), Some(&Value::int(2)));
    // And the named-path projection over the same shape must not panic.
    let p = "MATCH (n2:C) MATCH p = (n0)-[*2]->(n2) RETURN length(p) AS l";
    let t = run_read(&g, p, &params).unwrap();
    assert_eq!(t.cell(0, "l"), Some(&Value::int(2)));
}

/// A filter that can match nothing (never-interned label, empty scan
/// list) must still surface evaluation errors raised upstream of it:
/// short-circuiting to "no rows" would diverge from the oracle, which
/// evaluates the erroring expression regardless.
#[test]
fn impossible_filters_still_surface_upstream_errors() {
    let mut g = PropertyGraph::new();
    let a = g.add_node(&["A"], []);
    let b = g.add_node(&["A"], []);
    g.add_rel(a, b, "X", [("w", Value::int(1))]).unwrap();
    let params = Params::new();
    // The per-hop property expression `a + 1` errors (node + integer);
    // `:Zzz` was never interned, so the label filter downstream of the
    // expand matches nothing — but must not swallow the error.
    let q = "MATCH (a:A), (b:A) MATCH (a)-[*1..2 {w: a + 1}]->(b:Zzz) RETURN a";
    let engine = run_read(&g, q, &params);
    let reference = run_reference(&g, q, &params);
    assert!(engine.is_err(), "engine must propagate the upstream error");
    assert!(reference.is_err(), "oracle errors on the same expression");
}
