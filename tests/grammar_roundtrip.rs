//! Experiments E6 and E12: the grammars of Figure 3 (patterns) and
//! Figure 5 (expressions, clauses, queries), validated by round-tripping —
//! `parse(render(ast)) == ast` — over a hand-written corpus covering every
//! production and over property-test-generated expression trees.

use cypher::ast::expr::{ArithOp, CmpOp, Expr, Literal};
use cypher::{parse_expression, parse_pattern, parse_query};
use proptest::prelude::*;

/// Every pattern production of Figure 3.
const PATTERN_CORPUS: &[&str] = &[
    "()",
    "(a)",
    "(a:Person)",
    "(a:Person:Male)",
    "(a {name: 'Nils', age: 42})",
    "(a:Person {name: 'Nils'})",
    "({since: 1985})",
    "(a)-->(b)",
    "(a)<--(b)",
    "(a)--(b)",
    "(a)-[r]->(b)",
    "(a)<-[r]-(b)",
    "(a)-[r]-(b)",
    "(a)-[:KNOWS]->(b)",
    "(a)-[:KNOWS|LIKES]->(b)",
    "(a)-[r:KNOWS {since: 1985}]->(b)",
    "(a)-[*]->(b)",
    "(a)-[*2]->(b)",
    "(a)-[*1..]->(b)",
    "(a)-[*..5]->(b)",
    "(a)-[*1..5]->(b)",
    "(a)-[r:KNOWS*1..2 {since: 1985}]-(b)",
    "p = (a)-[:KNOWS]->(b)",
    "(a)-[:A]->(b)<-[:B]-(c)--(d)",
    "(x:Teacher)-[:KNOWS*1..2]->(z)-[:KNOWS*1..2]->(y:Teacher)",
];

/// Query-level corpus exercising Figure 5 plus the surface extensions.
const QUERY_CORPUS: &[&str] = &[
    "MATCH (n) RETURN n",
    "MATCH (n) RETURN *",
    "MATCH (n) RETURN DISTINCT n.x AS x",
    "MATCH (a), (b) WHERE a.x = b.y RETURN a, b",
    "MATCH (a) WHERE (a)-[:X]->(b) RETURN a",
    "OPTIONAL MATCH (a)-[:X]->(b) RETURN b",
    "MATCH (a) WITH a.x AS x WHERE x > 1 RETURN x",
    "MATCH (a) WITH DISTINCT a RETURN a",
    "UNWIND [1, 2, 3] AS x RETURN x",
    "UNWIND $events AS e RETURN e.id",
    "MATCH (n) RETURN n.x ORDER BY n.x DESC SKIP 1 LIMIT 2",
    "MATCH (n) RETURN count(*)",
    "MATCH (n) RETURN count(DISTINCT n.x) AS c",
    "MATCH (n) RETURN collect(n.name) AS names",
    "RETURN 1 AS x UNION RETURN 2 AS x",
    "RETURN 1 AS x UNION ALL RETURN 2 AS x",
    "CREATE (a:P {x: 1})-[:R {w: 2}]->(b)",
    "MERGE (a:P {x: 1}) ON CREATE SET a.c = true ON MATCH SET a.m = true",
    "MATCH (a) SET a.x = 1, a:L, a += {y: 2}",
    "MATCH (a) REMOVE a.x, a:L",
    "MATCH (a) DETACH DELETE a",
    "MATCH (a)-[r]->(b) DELETE r",
    "FROM GRAPH soc_net MATCH (a) RETURN a",
    "FROM GRAPH soc_net AT 'hdfs://x/y' MATCH (a) RETURN a",
    "MATCH (a)-[:F]-(b) WITH DISTINCT a, b RETURN GRAPH friends OF (a)-[:SF]->(b)",
    "MATCH (n) RETURN CASE WHEN n.x > 0 THEN 'p' ELSE 'n' END AS sign",
    "MATCH (n) RETURN [x IN range(1, 10) WHERE x % 2 = 0 | x * x] AS sq",
    "MATCH (n) RETURN all(x IN n.xs WHERE x > 0) AS ok",
    "MATCH (n) WHERE n.name STARTS WITH 'N' AND n.name CONTAINS 'il' RETURN n",
    "MATCH (n) WHERE n.x IS NOT NULL XOR n.y IS NULL RETURN n",
    "MATCH (n) RETURN n.xs[0], n.xs[1..2], n.xs[..2], n.xs[1..]",
    "MATCH (n) WHERE n:SSN OR n:PhoneNumber RETURN labels(n)",
    "MATCH p = (a)-[:K*]->(b) RETURN nodes(p), relationships(p), length(p)",
    "MATCH (n) RETURN -n.x + 2 ^ 3 * 4 % 5 - 6 / 7",
    "RETURN date('2018-06-10') AS d, duration('P1D') AS dur",
];

#[test]
fn e6_pattern_grammar_roundtrip() {
    for src in PATTERN_CORPUS {
        let ast = parse_pattern(src)
            .unwrap_or_else(|e| panic!("pattern corpus entry failed to parse: {src}: {e}"));
        let rendered = ast.to_string();
        let reparsed = parse_pattern(&rendered)
            .unwrap_or_else(|e| panic!("rendered pattern failed to parse: {rendered}: {e}"));
        assert_eq!(ast, reparsed, "round-trip changed {src} → {rendered}");
    }
}

#[test]
fn e12_query_grammar_roundtrip() {
    for src in QUERY_CORPUS {
        let ast = parse_query(src)
            .unwrap_or_else(|e| panic!("query corpus entry failed to parse: {src}: {e}"));
        let rendered = ast.to_string();
        let reparsed = parse_query(&rendered)
            .unwrap_or_else(|e| panic!("rendered query failed to parse: {rendered}: {e}"));
        assert_eq!(ast, reparsed, "round-trip changed {src} → {rendered}");
    }
}

#[test]
fn rejects_malformed_inputs() {
    for src in [
        "MATCH (a RETURN a",
        "MATCH (a)-[>(b) RETURN a",
        "MATCH (a)<-[:X]->(b) RETURN a",
        "RETURN",
        "MATCH (a) RETURN a AS",
        "MATCH (a) WHERE RETURN a",
        "UNWIND [1,2] RETURN x",
        "MATCH (a) ORDER BY a RETURN a",
        "CREATE (a:P {x: })",
        "MERGE",
    ] {
        assert!(parse_query(src).is_err(), "should reject: {src}");
    }
}

// ---------------------------------------------------------------------------
// Property-based expression round-trip
// ---------------------------------------------------------------------------

fn arb_literal() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(Expr::Lit(Literal::Null)),
        any::<bool>().prop_map(|b| Expr::Lit(Literal::Bool(b))),
        (-1000i64..1000).prop_map(|i| Expr::Lit(Literal::Integer(i))),
        (0u32..1000).prop_map(|i| Expr::Lit(Literal::Float(i as f64 / 8.0))),
        "[a-z ]{0,6}".prop_map(|s| Expr::Lit(Literal::String(s))),
        "[a-z][a-z0-9]{0,4}".prop_map(Expr::Var),
        "[a-z][a-z0-9]{0,4}".prop_map(Expr::Param),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    arb_literal().prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Arith(
                ArithOp::Add,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Arith(
                ArithOp::Mul,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Cmp(
                CmpOp::Le,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Expr::Not(Box::new(a))),
            inner.clone().prop_map(|a| Expr::IsNull(Box::new(a))),
            (inner.clone(), "[a-z]{1,4}").prop_map(|(a, k)| Expr::Prop(Box::new(a), k)),
            proptest::collection::vec(inner.clone(), 0..3).prop_map(Expr::List),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::In(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Expr::Case {
                input: None,
                whens: vec![(a, b)],
                else_: Some(Box::new(c)),
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn e12_random_expressions_roundtrip(e in arb_expr()) {
        let rendered = e.to_string();
        let reparsed = parse_expression(&rendered)
            .unwrap_or_else(|err| panic!("rendered expr failed to parse: {rendered}: {err}"));
        prop_assert_eq!(e, reparsed, "render: {}", rendered);
    }
}
