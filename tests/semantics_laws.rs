//! Experiment E13: the algebraic content of Figures 6 and 7 — the
//! equations defining `[[·]]` — validated as laws, both on concrete
//! queries and property-based over randomized tables.

use cypher::workload::{figure1, random_graph};
use cypher::{run_read, run_reference, table_of, Params, Record, Schema, Table, Value};
use proptest::prelude::*;

fn both(g: &cypher::PropertyGraph, q: &str) -> Table {
    let params = Params::new();
    let engine = run_read(g, q, &params).unwrap();
    let reference = run_reference(g, q, &params).unwrap();
    assert!(engine.bag_eq(&reference), "divergence on {q}");
    engine
}

// ---------------------------------------------------------------------------
// Figure 6 laws
// ---------------------------------------------------------------------------

#[test]
fn return_star_is_identity() {
    // [[RETURN ∗]](T) = T (T has at least one field).
    let g = figure1();
    let plain = both(&g, "MATCH (r:Researcher) RETURN r");
    let star = both(&g, "MATCH (r:Researcher) RETURN *");
    assert!(plain.bag_eq(&star));
}

#[test]
fn return_star_plus_items_prepends_fields() {
    // [[RETURN ∗, e AS a]](T) = [[RETURN b₁ AS b₁, …, e AS a]](T).
    let g = figure1();
    let star = both(&g, "MATCH (r:Researcher) RETURN *, r.name AS n");
    let explicit = both(&g, "MATCH (r:Researcher) RETURN r AS r, r.name AS n");
    assert!(star.bag_eq(&explicit));
}

#[test]
fn union_all_is_bag_union() {
    // [[Q₁ UNION ALL Q₂]](T) = [[Q₁]](T) ⊎ [[Q₂]](T).
    let g = figure1();
    let left = both(&g, "MATCH (r:Researcher) RETURN r.name AS n");
    let right = both(&g, "MATCH (s:Student) RETURN s.name AS n");
    let union = both(
        &g,
        "MATCH (r:Researcher) RETURN r.name AS n
         UNION ALL
         MATCH (s:Student) RETURN s.name AS n",
    );
    assert!(union.bag_eq(&left.bag_union(right)));
}

#[test]
fn union_is_dedup_of_union_all() {
    // [[Q₁ UNION Q₂]](T) = ε([[Q₁]](T) ∪ [[Q₂]](T)).
    let g = figure1();
    let all = both(
        &g,
        "MATCH (:Publication)-[:CITES]->(p) RETURN p AS x
         UNION ALL
         MATCH (p:Publication) RETURN p AS x",
    );
    let set = both(
        &g,
        "MATCH (:Publication)-[:CITES]->(p) RETURN p AS x
         UNION
         MATCH (p:Publication) RETURN p AS x",
    );
    assert!(set.bag_eq(&all.dedup()));
}

#[test]
fn clause_composition_is_function_composition() {
    // [[C Q]](T) = [[Q]]([[C]](T)): splitting a pipeline at a WITH leaves
    // the result unchanged.
    let g = figure1();
    let fused = both(
        &g,
        "MATCH (r:Researcher)-[:AUTHORS]->(p) RETURN r.name AS n, count(p) AS c",
    );
    let split = both(
        &g,
        "MATCH (r:Researcher)-[:AUTHORS]->(p)
         WITH r, p
         RETURN r.name AS n, count(p) AS c",
    );
    assert!(fused.bag_eq(&split));
}

// ---------------------------------------------------------------------------
// Figure 7 laws
// ---------------------------------------------------------------------------

#[test]
fn optional_match_defaults_to_where_true() {
    // [[OPTIONAL MATCH π̄]] = [[OPTIONAL MATCH π̄ WHERE true]].
    let g = figure1();
    let bare = both(
        &g,
        "MATCH (r:Researcher) OPTIONAL MATCH (r)-[:SUPERVISES]->(s) RETURN r, s",
    );
    let with_true = both(
        &g,
        "MATCH (r:Researcher) OPTIONAL MATCH (r)-[:SUPERVISES]->(s) WHERE true RETURN r, s",
    );
    assert!(bare.bag_eq(&with_true));
}

#[test]
fn match_where_equals_where_after_match() {
    // [[MATCH π̄ WHERE e]] = [[WHERE e]] ∘ [[MATCH π̄]].
    let g = figure1();
    let fused = both(&g, "MATCH (p:Publication) WHERE p.acmid > 230 RETURN p");
    let split = both(
        &g,
        "MATCH (p:Publication) WITH * WHERE p.acmid > 230 RETURN p",
    );
    assert!(fused.bag_eq(&split));
}

#[test]
fn where_keeps_only_true_rows() {
    // Rows whose predicate is null (not just false) are dropped.
    let g = figure1();
    // s.name is null for non-Student nodes → comparison is null → dropped.
    let out = both(&g, "MATCH (s) WHERE s.name > 'S' RETURN s.name AS n");
    // Names > 'S': Sten, Thor (researchers/students with names; pubs have
    // no name → null → dropped).
    let expected = table_of(
        &["n"],
        vec![vec![Value::str("Sten")], vec![Value::str("Thor")]],
    );
    out.assert_bag_eq(&expected);
}

#[test]
fn unwind_figure7_cases() {
    let g = figure1();
    // list(v₀, …) → one row per element.
    let list = both(&g, "UNWIND [10, 20] AS x RETURN x");
    assert_eq!(list.len(), 2);
    // list() → no rows.
    let empty = both(&g, "UNWIND [] AS x RETURN x");
    assert_eq!(empty.len(), 0);
    // otherwise → the single value (paper-exact, including null).
    let null = both(&g, "UNWIND null AS x RETURN x");
    assert_eq!(null.len(), 1);
    assert!(null.rows()[0].get(0).is_null());
    // Nested per driving row.
    let per_row = both(
        &g,
        "MATCH (r:Researcher) UNWIND [1, 2] AS x RETURN r.name, x",
    );
    assert_eq!(per_row.len(), 6);
}

#[test]
fn with_star_is_identity() {
    let g = figure1();
    let a = both(&g, "MATCH (r:Researcher) WITH * RETURN r");
    let b = both(&g, "MATCH (r:Researcher) RETURN r");
    assert!(a.bag_eq(&b));
}

// ---------------------------------------------------------------------------
// Bag-algebra laws (the ⊎ / ε infrastructure of §4.1), property-based
// ---------------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-5i64..5).prop_map(Value::Integer),
        "[a-c]{0,2}".prop_map(Value::str),
    ]
}

fn arb_table() -> impl Strategy<Value = Table> {
    proptest::collection::vec((arb_value(), arb_value()), 0..12).prop_map(|rows| {
        let schema = Schema::new(vec!["x".into(), "y".into()]);
        Table::new(
            schema,
            rows.into_iter()
                .map(|(a, b)| Record::new(vec![a, b]))
                .collect(),
        )
    })
}

proptest! {
    #[test]
    fn bag_union_commutes(a in arb_table(), b in arb_table()) {
        let ab = a.clone().bag_union(b.clone());
        let ba = b.bag_union(a);
        prop_assert!(ab.bag_eq(&ba));
    }

    #[test]
    fn bag_union_is_associative(a in arb_table(), b in arb_table(), c in arb_table()) {
        let l = a.clone().bag_union(b.clone()).bag_union(c.clone());
        let r = a.bag_union(b.bag_union(c));
        prop_assert!(l.bag_eq(&r));
    }

    #[test]
    fn dedup_is_idempotent(t in arb_table()) {
        let once = t.clone().dedup();
        let twice = once.clone().dedup();
        prop_assert!(once.bag_eq(&twice));
    }

    #[test]
    fn dedup_absorbs_self_union(t in arb_table()) {
        // ε(T ⊎ T) = ε(T).
        let doubled = t.clone().bag_union(t.clone()).dedup();
        prop_assert!(doubled.bag_eq(&t.dedup()));
    }

    #[test]
    fn union_multiplicities_add(a in arb_table(), b in arb_table()) {
        let u = a.clone().bag_union(b.clone());
        prop_assert_eq!(u.len(), a.len() + b.len());
    }
}

// ---------------------------------------------------------------------------
// Randomized differential spot-check for the law suite
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn match_count_consistency(seed in 0u64..500) {
        // count(*) over MATCH (a)-->(b) equals the relationship count —
        // every edge is matched exactly once by a directed any-pattern.
        let g = random_graph(8, 14, &["A"], &["X"], seed);
        let params = Params::new();
        let t = run_read(&g, "MATCH ()-[r]->() RETURN count(*) AS c", &params).unwrap();
        prop_assert_eq!(t.cell(0, "c"), Some(&Value::int(g.rel_count() as i64)));
    }
}
