//! Experiment E14: the morphism discussion of Sections 4.2 and 8.
//!
//! Section 4.2 motivates relationship isomorphism with the pattern
//! `(x)-[*0..]->(x)` on a single-node, single-self-loop graph: under
//! homomorphism it matches infinitely often, under Cypher's semantics
//! exactly twice. Section 8 ("Configurable morphisms") envisions letting
//! queries choose; this suite pins the behaviour of all three modes.

use cypher::{
    run_read_with, run_reference_with, EngineConfig, MatchConfig, Morphism, Params, PropertyGraph,
    Value,
};

fn self_loop() -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let n = g.add_node(&[], []);
    g.add_rel(n, n, "LOOP", []).unwrap();
    g
}

fn cfg(morphism: Morphism, cap: u64) -> MatchConfig {
    MatchConfig {
        morphism,
        var_length_cap: cap,
    }
}

#[test]
fn e14_self_loop_edge_isomorphism_yields_two() {
    // "two matches will be returned: one for traversing the unique edge
    //  zero times, one for traversing it a single time."
    let g = self_loop();
    let params = Params::new();
    let q = "MATCH (x)-[*0..]->(x) RETURN count(*) AS c";
    let reference = run_reference_with(&g, q, &params, cfg(Morphism::EdgeIsomorphism, 64)).unwrap();
    assert_eq!(reference.cell(0, "c"), Some(&Value::int(2)));
    let engine = run_read_with(
        &g,
        q,
        &params,
        &EngineConfig {
            match_config: cfg(Morphism::EdgeIsomorphism, 64),
            ..EngineConfig::default()
        },
    )
    .unwrap();
    assert_eq!(engine.cell(0, "c"), Some(&Value::int(2)));
}

#[test]
fn e14_homomorphism_grows_with_the_cap() {
    // Under homomorphism the same pattern denotes unboundedly many walks;
    // the matcher clamps ∞ to the configured cap, and the count grows
    // linearly with it (cap + 1 walks: 0..=cap traversals).
    let g = self_loop();
    let params = Params::new();
    let q = "MATCH (x)-[*0..]->(x) RETURN count(*) AS c";
    for cap in [1u64, 4, 16] {
        let reference =
            run_reference_with(&g, q, &params, cfg(Morphism::Homomorphism, cap)).unwrap();
        assert_eq!(
            reference.cell(0, "c"),
            Some(&Value::int(cap as i64 + 1)),
            "cap {cap}"
        );
        let engine = run_read_with(
            &g,
            q,
            &params,
            &EngineConfig {
                match_config: cfg(Morphism::Homomorphism, cap),
                ..EngineConfig::default()
            },
        )
        .unwrap();
        assert!(engine.bag_eq(&reference), "engine/reference at cap {cap}");
    }
}

#[test]
fn e14_homomorphism_exponential_on_parallel_edges() {
    // Two parallel self-loops: k-hop homomorphic walks number 2^k, while
    // edge isomorphism caps at walks using each edge at most once.
    let mut g = PropertyGraph::new();
    let n = g.add_node(&[], []);
    g.add_rel(n, n, "L", []).unwrap();
    g.add_rel(n, n, "L", []).unwrap();
    let params = Params::new();
    let q = "MATCH (x)-[*2..2]->(x) RETURN count(*) AS c";
    let homo = run_reference_with(&g, q, &params, cfg(Morphism::Homomorphism, 8)).unwrap();
    assert_eq!(homo.cell(0, "c"), Some(&Value::int(4))); // 2^2
    let edge = run_reference_with(&g, q, &params, cfg(Morphism::EdgeIsomorphism, 8)).unwrap();
    assert_eq!(edge.cell(0, "c"), Some(&Value::int(2))); // the 2 orderings
}

#[test]
fn e14_node_isomorphism_strictest() {
    // Path a→b→c→a (triangle): 3-hop cycles exist under edge isomorphism
    // but not under node isomorphism; homomorphism adds back-and-forth
    // walks on top.
    let mut g = PropertyGraph::new();
    let a = g.add_node(&[], []);
    let b = g.add_node(&[], []);
    let c = g.add_node(&[], []);
    g.add_rel(a, b, "E", []).unwrap();
    g.add_rel(b, c, "E", []).unwrap();
    g.add_rel(c, a, "E", []).unwrap();
    let params = Params::new();
    let q = "MATCH (x)-[*3..3]->(x) RETURN count(*) AS c";

    let edge = run_reference_with(&g, q, &params, cfg(Morphism::EdgeIsomorphism, 8)).unwrap();
    assert_eq!(edge.cell(0, "c"), Some(&Value::int(3)));

    let node = run_reference_with(&g, q, &params, cfg(Morphism::NodeIsomorphism, 8)).unwrap();
    assert_eq!(node.cell(0, "c"), Some(&Value::int(0)));

    let homo = run_reference_with(&g, q, &params, cfg(Morphism::Homomorphism, 8)).unwrap();
    assert_eq!(
        homo.cell(0, "c"),
        Some(&Value::int(3)),
        "triangle has no 3-walk besides the cycles"
    );
}

#[test]
fn e14_engine_delegates_node_isomorphism() {
    // The planner engine falls back to the reference matcher for node
    // isomorphism; results must agree.
    let mut g = PropertyGraph::new();
    let a = g.add_node(&["P"], []);
    let b = g.add_node(&["P"], []);
    let c = g.add_node(&["P"], []);
    g.add_rel(a, b, "E", []).unwrap();
    g.add_rel(b, c, "E", []).unwrap();
    g.add_rel(c, a, "E", []).unwrap();
    let params = Params::new();
    for q in [
        "MATCH (x)-[]->(y)-[]->(z) RETURN count(*) AS c",
        "MATCH (x:P) OPTIONAL MATCH (x)-[]->(y)-[]->(x) RETURN x, y",
    ] {
        let config = cfg(Morphism::NodeIsomorphism, 8);
        let reference = run_reference_with(&g, q, &params, config).unwrap();
        let engine = run_read_with(
            &g,
            q,
            &params,
            &EngineConfig {
                match_config: config,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        assert!(engine.bag_eq(&reference), "node-iso divergence on {q}");
    }
}

#[test]
fn e14_morphisms_agree_on_acyclic_simple_graphs() {
    // On a DAG without parallel edges and patterns shorter than the
    // shortest cycle, all three morphisms coincide.
    let g = cypher::workload::chain(6);
    let params = Params::new();
    let q = "MATCH (a)-[:NEXT*1..3]->(b) RETURN count(*) AS c";
    let mut results = Vec::new();
    for m in [
        Morphism::EdgeIsomorphism,
        Morphism::NodeIsomorphism,
        Morphism::Homomorphism,
    ] {
        let t = run_reference_with(&g, q, &params, cfg(m, 16)).unwrap();
        results.push(t.cell(0, "c").unwrap().clone());
    }
    assert!(
        results.windows(2).all(|w| w[0].equivalent(&w[1])),
        "{results:?}"
    );
}
