//! Experiment E19: multiple named graphs and query composition (paper
//! Section 6, Example 6.1): project a `SHARE_FRIEND` graph out of a social
//! network, then compose a follow-up query that joins it with a citizen
//! register.

use cypher::{run_on_catalog, Catalog, MultiResult, Params, PropertyGraph, Value};

/// A social network in which a–b share friend c, and d is isolated; plus a
/// register assigning cities.
fn setup() -> Catalog {
    let mut soc = PropertyGraph::new();
    let a = soc.add_node(&["Person"], [("name", Value::str("a"))]);
    let b = soc.add_node(&["Person"], [("name", Value::str("b"))]);
    let c = soc.add_node(&["Person"], [("name", Value::str("c"))]);
    let d = soc.add_node(&["Person"], [("name", Value::str("d"))]);
    soc.add_rel(a, c, "FRIEND", [("since", Value::int(2000))])
        .unwrap();
    soc.add_rel(b, c, "FRIEND", [("since", Value::int(2002))])
        .unwrap();
    soc.add_rel(d, a, "FRIEND", [("since", Value::int(1990))])
        .unwrap();

    let mut register = PropertyGraph::new();
    let houston = register.add_node(&["City"], [("name", Value::str("Houston"))]);
    for name in ["a", "b"] {
        let p = register.add_node(&["Person"], [("name", Value::str(name))]);
        register.add_rel(p, houston, "IN", []).unwrap();
    }

    let mut cat = Catalog::new();
    cat.register("soc_net", soc);
    cat.register("register", register);
    cat
}

#[test]
fn e19_example_6_1_projection_then_composition() {
    let mut cat = setup();
    let mut params = Params::new();
    params.insert("duration".into(), Value::int(5));

    // Step 1 (Example 6.1): friends-of-friends whose friendships started
    // within $duration years of each other become directly connected in a
    // new graph `friends`.
    let res = run_on_catalog(
        &mut cat,
        "soc_net",
        "FROM GRAPH soc_net AT 'hdfs://cluster/soc_network'
         MATCH (a)-[r1:FRIEND]-()-[r2:FRIEND]-(b)
         WHERE abs(r2.since - r1.since) < $duration
         WITH DISTINCT a, b
         RETURN GRAPH friends OF (a)-[:SHARE_FRIEND]->(b)",
        &params,
    )
    .unwrap();
    let MultiResult::Graph(name) = res else {
        panic!("expected a graph result")
    };
    assert_eq!(name, "friends");
    assert!(cat.contains("friends"));
    {
        let friends = cat.get("friends").unwrap();
        let g = friends.read();
        // Pairs within the window: (a, b) and (b, a) via shared friend c
        // (|2002 − 2000| < 5); d's 1990 friendship is out of range of
        // nothing — d has no shared friends at all.
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.rel_count(), 2);
    }

    // Step 2: compose with the register — friend-sharing pairs living in
    // the same city.
    let res2 = run_on_catalog(
        &mut cat,
        "friends",
        "MATCH (x)-[:SHARE_FRIEND]->(y)
         WITH x.name AS xn, y.name AS yn
         FROM GRAPH register
         MATCH (p1:Person {name: xn})-[:IN]->(c:City)<-[:IN]-(p2:Person {name: yn})
         RETURN xn, yn, c.name AS city",
        &params,
    )
    .unwrap();
    let MultiResult::Table(t) = res2 else {
        panic!()
    };
    assert_eq!(t.len(), 2, "a and b share a city, both orders");
    assert_eq!(t.cell(0, "city"), Some(&Value::str("Houston")));
}

#[test]
fn from_graph_requires_known_name() {
    let mut cat = setup();
    let params = Params::new();
    assert!(run_on_catalog(
        &mut cat,
        "soc_net",
        "FROM GRAPH unknown MATCH (n) RETURN n",
        &params
    )
    .is_err());
}

#[test]
fn constructed_graph_copies_labels_and_props() {
    let mut cat = setup();
    let params = Params::new();
    run_on_catalog(
        &mut cat,
        "soc_net",
        "MATCH (a:Person {name: 'a'})-[:FRIEND]-(b)
         RETURN GRAPH pairs OF (a)-[:PAIRED {w: 1}]->(b)",
        &params,
    )
    .unwrap();
    let pairs = cat.get("pairs").unwrap();
    let g = pairs.read();
    // a, c, d are involved; each copied once with Person label + name.
    assert_eq!(g.node_count(), 3);
    let person = g.interner().get("Person").unwrap();
    assert_eq!(g.label_cardinality(person), 3);
    let r = g.rels().next().unwrap();
    assert_eq!(g.rel_prop_by_name(r, "w"), Some(&Value::int(1)));
}

#[test]
fn fresh_nodes_for_unbound_construct_vars() {
    let mut cat = setup();
    let params = Params::new();
    run_on_catalog(
        &mut cat,
        "soc_net",
        "MATCH (a:Person)
         RETURN GRAPH tagged OF (a)-[:TAGGED]->(:Tag {kind: 'person'})",
        &params,
    )
    .unwrap();
    let tagged = cat.get("tagged").unwrap();
    let g = tagged.read();
    // 4 persons copied once each + 4 fresh Tag nodes (one per row).
    assert_eq!(g.node_count(), 8);
    assert_eq!(g.rel_count(), 4);
}

#[test]
fn replacing_a_graph_updates_catalog() {
    let mut cat = setup();
    let params = Params::new();
    run_on_catalog(
        &mut cat,
        "soc_net",
        "MATCH (a:Person {name: 'a'}) RETURN GRAPH only_a OF (a)-[:SELF]->(a)",
        &params,
    )
    .unwrap();
    let first = cat.get("only_a").unwrap().read().node_count();
    assert_eq!(first, 1);
    // Re-project under the same name with a different pattern.
    run_on_catalog(
        &mut cat,
        "soc_net",
        "MATCH (a:Person) RETURN GRAPH only_a OF (a)-[:SELF]->(a)",
        &params,
    )
    .unwrap();
    assert_eq!(cat.get("only_a").unwrap().read().node_count(), 4);
}
