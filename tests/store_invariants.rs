//! Property-based tests for the storage substrate: random update
//! sequences (through the Cypher update language and through the raw API)
//! must preserve the structural invariants of the native store —
//! adjacency lists agree with `src`/`tgt`, the label index agrees with
//! `λ`, and cardinality counters agree with live entity counts.

use cypher::{run, Params, PropertyGraph, Value};
use cypher_graph::Direction;
use proptest::prelude::*;

/// Full structural audit of a graph.
fn audit(g: &PropertyGraph) {
    // Counters agree with iteration.
    assert_eq!(g.nodes().count(), g.node_count());
    assert_eq!(g.rels().count(), g.rel_count());

    // Every relationship is in exactly the right adjacency lists.
    for r in g.rels() {
        let s = g.src(r).unwrap();
        let t = g.tgt(r).unwrap();
        assert!(g.contains_node(s), "src of {r} is live");
        assert!(g.contains_node(t), "tgt of {r} is live");
        assert!(g.out_rels(s).contains(&r), "{r} in out({s})");
        assert!(g.in_rels(t).contains(&r), "{r} in in({t})");
    }
    // Adjacency lists contain only live incident relationships.
    for n in g.nodes() {
        for &r in g.out_rels(n) {
            assert_eq!(g.src(r), Some(n));
        }
        for &r in g.in_rels(n) {
            assert_eq!(g.tgt(r), Some(n));
        }
        // Degree identity.
        let loops = g
            .out_rels(n)
            .iter()
            .filter(|&&r| g.tgt(r) == Some(n))
            .count();
        assert_eq!(
            g.degree(n, Direction::Both),
            g.out_rels(n).len() + g.in_rels(n).len() - loops
        );
    }
    // Label index ↔ λ agreement, both directions.
    let labels: Vec<_> = g.interner().iter().map(|(s, _)| s).collect();
    for l in labels {
        for &n in g.nodes_with_label(l) {
            assert!(g.contains_node(n), "indexed node is live");
            assert!(g.has_label(n, l), "indexed node carries the label");
        }
        assert_eq!(g.label_cardinality(l), g.nodes_with_label(l).len());
    }
    for n in g.nodes() {
        for &l in g.labels(n) {
            assert!(
                g.nodes_with_label(l).contains(&n),
                "labelled node is indexed"
            );
        }
    }
    // Type counters.
    let mut by_type = std::collections::BTreeMap::new();
    for r in g.rels() {
        *by_type.entry(g.rel_type(r).unwrap()).or_insert(0usize) += 1;
    }
    for (t, count) in by_type {
        assert_eq!(g.type_cardinality(t), count);
    }
}

/// One random raw-API mutation.
#[derive(Debug, Clone)]
enum Op {
    AddNode(u8),
    AddRel(u8, u8, u8),
    DeleteRel(u8),
    DetachDeleteNode(u8),
    AddLabel(u8, u8),
    RemoveLabel(u8, u8),
    SetProp(u8, i64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::AddNode),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(a, b, t)| Op::AddRel(a, b, t)),
        any::<u8>().prop_map(Op::DeleteRel),
        any::<u8>().prop_map(Op::DetachDeleteNode),
        (any::<u8>(), any::<u8>()).prop_map(|(n, l)| Op::AddLabel(n, l)),
        (any::<u8>(), any::<u8>()).prop_map(|(n, l)| Op::RemoveLabel(n, l)),
        (any::<u8>(), any::<i64>()).prop_map(|(n, v)| Op::SetProp(n, v)),
    ]
}

fn pick_node(g: &PropertyGraph, salt: u8) -> Option<cypher::NodeId> {
    let nodes: Vec<_> = g.nodes().collect();
    if nodes.is_empty() {
        None
    } else {
        Some(nodes[salt as usize % nodes.len()])
    }
}

fn pick_rel(g: &PropertyGraph, salt: u8) -> Option<cypher::RelId> {
    let rels: Vec<_> = g.rels().collect();
    if rels.is_empty() {
        None
    } else {
        Some(rels[salt as usize % rels.len()])
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn raw_api_sequences_preserve_invariants(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let labels = ["L0", "L1", "L2"];
        let types = ["T0", "T1"];
        let mut g = PropertyGraph::new();
        for op in ops {
            match op {
                Op::AddNode(l) => {
                    g.add_node(&[labels[l as usize % 3]], []);
                }
                Op::AddRel(a, b, t) => {
                    if let (Some(x), Some(y)) = (pick_node(&g, a), pick_node(&g, b)) {
                        g.add_rel(x, y, types[t as usize % 2], []).unwrap();
                    }
                }
                Op::DeleteRel(r) => {
                    if let Some(r) = pick_rel(&g, r) {
                        g.delete_rel(r).unwrap();
                    }
                }
                Op::DetachDeleteNode(n) => {
                    if let Some(n) = pick_node(&g, n) {
                        g.detach_delete_node(n).unwrap();
                    }
                }
                Op::AddLabel(n, l) => {
                    if let Some(n) = pick_node(&g, n) {
                        let sym = g.intern(labels[l as usize % 3]);
                        g.add_label(n, sym).unwrap();
                    }
                }
                Op::RemoveLabel(n, l) => {
                    if let Some(n) = pick_node(&g, n) {
                        if let Some(sym) = g.interner().get(labels[l as usize % 3]) {
                            g.remove_label(n, sym).unwrap();
                        }
                    }
                }
                Op::SetProp(n, v) => {
                    if let Some(n) = pick_node(&g, n) {
                        let k = g.intern("p");
                        g.set_node_prop(n, k, Value::int(v)).unwrap();
                    }
                }
            }
            audit(&g);
        }
    }
}

#[test]
fn cypher_update_sequences_preserve_invariants() {
    let params = Params::new();
    let mut g = PropertyGraph::new();
    let steps: &[&str] = &[
        "UNWIND range(0, 9) AS i CREATE (:P {i: i})",
        "MATCH (a:P), (b:P) WHERE a.i + 1 = b.i CREATE (a)-[:NEXT]->(b)",
        "MATCH (a:P {i: 0}) SET a:Head, a.first = true",
        "MATCH (a:P)-[r:NEXT]->(b:P) WHERE a.i >= 7 DELETE r",
        "MATCH (a:P) WHERE a.i = 9 DETACH DELETE a",
        "MATCH (a:P) WHERE a.i < 3 MERGE (a)-[:TAGGED]->(:Tag {of: a.i})",
        "MATCH (a:P {i: 1}) REMOVE a.i",
        "MATCH (t:Tag) SET t += {seen: 1}",
        "MATCH (a:Head) REMOVE a:Head",
        "MATCH (a:P)-[r:TAGGED]->(t) DELETE r, t",
    ];
    for (i, q) in steps.iter().enumerate() {
        run(&mut g, q, &params).unwrap_or_else(|e| panic!("step {i} ({q}) failed: {e}"));
        audit(&g);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn tri_logic_laws(a in 0u8..3, b in 0u8..3, c in 0u8..3) {
        use cypher::Tri;
        let t = |x: u8| match x { 0 => Tri::True, 1 => Tri::False, _ => Tri::Null };
        let (a, b, c) = (t(a), t(b), t(c));
        // Kleene-logic algebra (§4.3 "the rules … are exactly the same as
        // in SQL").
        prop_assert_eq!(a.and(b), b.and(a));
        prop_assert_eq!(a.or(b), b.or(a));
        prop_assert_eq!(a.and(b.and(c)), a.and(b).and(c));
        prop_assert_eq!(a.or(b.or(c)), a.or(b).or(c));
        // De Morgan.
        prop_assert_eq!(a.and(b).not(), a.not().or(b.not()));
        prop_assert_eq!(a.or(b).not(), a.not().and(b.not()));
        // Double negation.
        prop_assert_eq!(a.not().not(), a);
        // Distributivity.
        prop_assert_eq!(a.and(b.or(c)), a.and(b).or(a.and(c)));
        // XOR symmetry and null absorption.
        prop_assert_eq!(a.xor(b), b.xor(a));
        prop_assert_eq!(a.xor(Tri::Null), Tri::Null);
    }
}
