//! Expression-language coverage through full queries, cross-checked
//! between the planner engine and the reference semantics: the
//! `expressions` productions of Figure 5 (values, maps, lists, strings,
//! logic, inequalities) plus the function library `F`.

use cypher::workload::figure1;
use cypher::{run_read, run_reference, Params, PropertyGraph, Value};

/// Runs `RETURN <expr> AS x` on an empty graph through both evaluators and
/// returns the single cell.
fn eval(expr: &str) -> Value {
    let g = PropertyGraph::new();
    let params = Params::new();
    let q = format!("RETURN {expr} AS x");
    let a = run_read(&g, &q, &params).unwrap();
    let b = run_reference(&g, &q, &params).unwrap();
    assert!(a.bag_eq(&b), "evaluator divergence on {expr}");
    a.cell(0, "x").unwrap().clone()
}

fn eval_err(expr: &str) {
    let g = PropertyGraph::new();
    let params = Params::new();
    let q = format!("RETURN {expr} AS x");
    assert!(run_read(&g, &q, &params).is_err(), "expected error: {expr}");
    assert!(
        run_reference(&g, &q, &params).is_err(),
        "expected reference error: {expr}"
    );
}

#[test]
fn numeric_tower() {
    assert_eq!(eval("1 + 2 * 3 - 4"), Value::int(3));
    assert_eq!(eval("2 ^ 3 ^ 2"), Value::float(512.0)); // right-assoc
    assert_eq!(eval("-2 ^ 2"), Value::float(4.0)); // (-2)^2, literal fold
    assert_eq!(eval("7 % 4"), Value::int(3));
    assert_eq!(eval("1 + 0.5"), Value::float(1.5));
    assert_eq!(eval("abs(-7)"), Value::int(7));
    assert_eq!(eval("sign(-0.1)"), Value::int(-1));
    assert_eq!(eval("round(2.5)"), Value::float(3.0));
    assert_eq!(eval("floor(2.9)"), Value::float(2.0));
    assert_eq!(eval("sqrt(16)"), Value::float(4.0));
    eval_err("1 / 0");
    eval_err("1 % 0");
    assert_eq!(eval("1.0 / 0"), Value::float(f64::INFINITY));
}

#[test]
fn string_library() {
    assert_eq!(eval("toUpper('abc')"), Value::str("ABC"));
    assert_eq!(eval("toLower('ABC')"), Value::str("abc"));
    assert_eq!(eval("trim('  x ')"), Value::str("x"));
    assert_eq!(eval("replace('banana', 'na', 'NA')"), Value::str("baNANA"));
    assert_eq!(eval("split('a,b,c', ',')[1]"), Value::str("b"));
    assert_eq!(eval("substring('hello', 1, 3)"), Value::str("ell"));
    assert_eq!(eval("left('hello', 2)"), Value::str("he"));
    assert_eq!(eval("right('hello', 2)"), Value::str("lo"));
    assert_eq!(eval("reverse('abc')"), Value::str("cba"));
    assert_eq!(eval("size('héllo')"), Value::int(5));
    assert_eq!(eval("'a' + 'b' + 1"), Value::str("ab1"));
}

#[test]
fn list_library() {
    assert_eq!(eval("size([1, 2, 3])"), Value::int(3));
    assert_eq!(eval("head([1, 2])"), Value::int(1));
    assert_eq!(eval("last([1, 2])"), Value::int(2));
    assert_eq!(eval("head([])"), Value::Null);
    assert_eq!(eval("tail([1, 2, 3])").to_string(), "[2, 3]");
    assert_eq!(eval("reverse([1, 2])").to_string(), "[2, 1]");
    assert_eq!(eval("range(1, 3)").to_string(), "[1, 2, 3]");
    assert_eq!(eval("range(5, 1, -2)").to_string(), "[5, 3, 1]");
    assert_eq!(eval("[1, 2, 3][1..]").to_string(), "[2, 3]");
    assert_eq!(eval("[1, 2, 3][-1]"), Value::int(3));
    assert_eq!(eval("[1, 2, 3][5]"), Value::Null);
    assert_eq!(eval("[1, 2] + [3]").to_string(), "[1, 2, 3]");
    eval_err("range(1, 10, 0)");
}

#[test]
fn null_propagation_catalogue() {
    for e in [
        "null + 1",
        "null * 2",
        "toUpper(null)",
        "size(null)",
        "head(null)",
        "null[0]",
        "[1, 2][null]",
        "null.prop",
        "null STARTS WITH 'a'",
        "null = null",
        "null <> 1",
        "null < 1",
        "abs(null)",
        "null IN [1, 2]",
        "1 IN null",
        "null ^ 2",
    ] {
        assert!(eval(e).is_null(), "{e} should be null");
    }
    // IS NULL is the only way to observe null positively.
    assert_eq!(eval("null IS NULL"), Value::Bool(true));
    assert_eq!(eval("coalesce(null, null, 3)"), Value::int(3));
    assert_eq!(eval("coalesce(null, null)"), Value::Null);
}

#[test]
fn map_expressions() {
    assert_eq!(eval("{a: 1, b: {c: 2}}.b.c"), Value::int(2));
    assert_eq!(eval("{a: 1}['a']"), Value::int(1));
    assert_eq!(eval("keys({b: 1, a: 2})").to_string(), "['a', 'b']");
    assert_eq!(eval("size({a: 1, b: 2})"), Value::int(2));
    assert_eq!(eval("{a: 1} = {a: 1}"), Value::Bool(true));
    assert_eq!(eval("{a: 1} = {a: 2}"), Value::Bool(false));
    assert_eq!(eval("{a: 1} = {b: 1}"), Value::Bool(false));
    assert_eq!(eval("{a: null} = {a: null}"), Value::Null);
}

#[test]
fn conversions() {
    assert_eq!(eval("toInteger('42')"), Value::int(42));
    assert_eq!(eval("toInteger('nope')"), Value::Null);
    assert_eq!(eval("toInteger(3.9)"), Value::int(3));
    assert_eq!(eval("toFloat('2.5')"), Value::float(2.5));
    assert_eq!(eval("toBoolean('true')"), Value::Bool(true));
    assert_eq!(eval("toString(42)"), Value::str("42"));
    assert_eq!(eval("toString(true)"), Value::str("true"));
}

#[test]
fn quantifiers_and_comprehensions() {
    assert_eq!(eval("[x IN [1,2,3] | x + 1]").to_string(), "[2, 3, 4]");
    assert_eq!(eval("[x IN [1,2,3] WHERE x <> 2]").to_string(), "[1, 3]");
    assert_eq!(
        eval("size([x IN range(1, 100) WHERE x % 7 = 0])"),
        Value::int(14)
    );
    // Shadowing: inner x hides outer x.
    assert_eq!(
        eval("[x IN [[1], [2, 3]] | size([y IN x | y])]").to_string(),
        "[1, 2]"
    );
    assert_eq!(eval("any(x IN [] WHERE x > 0)"), Value::Bool(false));
    assert_eq!(eval("all(x IN [] WHERE x > 0)"), Value::Bool(true));
    assert_eq!(eval("none(x IN [] WHERE x > 0)"), Value::Bool(true));
    assert_eq!(eval("single(x IN [] WHERE x > 0)"), Value::Bool(false));
}

#[test]
fn case_forms() {
    assert_eq!(
        eval("CASE 3 WHEN 1 THEN 'a' WHEN 3 THEN 'c' ELSE 'z' END"),
        Value::str("c")
    );
    assert_eq!(
        eval("CASE WHEN false THEN 1 WHEN null THEN 2 ELSE 3 END"),
        Value::int(3)
    );
    assert_eq!(eval("CASE WHEN false THEN 1 END"), Value::Null);
}

#[test]
fn exists_function() {
    let g = figure1();
    let params = Params::new();
    let q = "MATCH (r:Researcher)
             RETURN r.name AS n, exists(r.name) AS has_name,
                    exists(r.nothing) AS has_nothing,
                    exists((r)-[:SUPERVISES]->()) AS supervises";
    let a = run_read(&g, q, &params).unwrap();
    let b = run_reference(&g, q, &params).unwrap();
    assert!(a.bag_eq(&b));
    for row in a.rows() {
        assert_eq!(row.get(1), &Value::Bool(true));
        assert_eq!(row.get(2), &Value::Bool(false));
    }
    // Nils does not supervise; Elin and Thor do.
    let sup: Vec<&Value> = a.rows().iter().map(|r| r.get(3)).collect();
    assert_eq!(sup.iter().filter(|v| ***v == Value::Bool(true)).count(), 2);
}

#[test]
fn entity_functions_in_queries() {
    let g = figure1();
    let params = Params::new();
    let q = "MATCH (r:Researcher)-[a:AUTHORS]->(p)
             RETURN id(r) >= 0 AS has_id, type(a) AS t,
                    labels(p) AS ls, keys(p) AS ks,
                    startNode(a) = r AS s, endNode(a) = p AS e";
    let out = run_read(&g, q, &params).unwrap();
    let reference = run_reference(&g, q, &params).unwrap();
    assert!(out.bag_eq(&reference));
    for row in out.rows() {
        assert_eq!(row.get(0), &Value::Bool(true));
        assert_eq!(row.get(1), &Value::str("AUTHORS"));
        assert_eq!(row.get(2).to_string(), "['Publication']");
        assert_eq!(row.get(3).to_string(), "['acmid']");
        assert_eq!(row.get(4), &Value::Bool(true));
        assert_eq!(row.get(5), &Value::Bool(true));
    }
}

#[test]
fn comparison_chaining_and_in() {
    assert_eq!(eval("1 < 2 = true"), Value::Bool(true)); // (1<2) = true
    assert_eq!(eval("3 IN [1, 2] OR 3 IN [3]"), Value::Bool(true));
    assert_eq!(eval("[1, 2] = [1, 2]"), Value::Bool(true));
    assert_eq!(eval("[1, 2] < [1, 3]"), Value::Bool(true));
    assert_eq!(eval("[1] < [1, 0]"), Value::Bool(true));
    assert_eq!(eval("'abc' < 'abd'"), Value::Bool(true));
}

#[test]
fn aggregates_with_expressions() {
    let g = figure1();
    let params = Params::new();
    for (q, expect) in [
        (
            "MATCH (p:Publication) RETURN percentileDisc(p.acmid, 0.5) AS x",
            Value::int(235),
        ),
        (
            "MATCH (p:Publication) RETURN max(p.acmid) - min(p.acmid) AS x",
            Value::int(79),
        ),
        (
            "MATCH (p:Publication) RETURN size(collect(p.acmid)) AS x",
            Value::int(5),
        ),
        (
            "MATCH (p:Publication) RETURN count(p) + count(*) AS x",
            Value::int(10),
        ),
    ] {
        let a = run_read(&g, q, &params).unwrap();
        let b = run_reference(&g, q, &params).unwrap();
        assert!(a.bag_eq(&b), "divergence on {q}");
        assert_eq!(a.cell(0, "x"), Some(&expect), "{q}");
    }
}

#[test]
fn parameters_everywhere() {
    let g = figure1();
    let mut params = Params::new();
    params.insert("name".into(), Value::str("Elin"));
    params.insert("min".into(), Value::int(1));
    params.insert(
        "list".into(),
        Value::list([Value::int(220), Value::int(240)]),
    );
    let q = "MATCH (r:Researcher {name: $name})-[:AUTHORS]->(p)
             WHERE p.acmid IN $list
             RETURN count(p) >= $min AS ok";
    let a = run_read(&g, q, &params).unwrap();
    assert_eq!(a.cell(0, "ok"), Some(&Value::Bool(true)));
    let b = run_reference(&g, q, &params).unwrap();
    assert!(a.bag_eq(&b));
}

#[test]
fn pattern_comprehensions() {
    let g = figure1();
    let params = Params::new();
    // Names of students supervised by each researcher, as a list.
    let q = "MATCH (r:Researcher)
             RETURN r.name AS n,
                    [(r)-[:SUPERVISES]->(s) | s.name] AS students,
                    size([(r)-[:AUTHORS]->(p) WHERE p.acmid > 230 | p.acmid]) AS recent";
    let a = run_read(&g, q, &params).unwrap();
    let b = run_reference(&g, q, &params).unwrap();
    assert!(a.bag_eq(&b));
    let by_name = |name: &str| -> (String, i64) {
        let row = a
            .rows()
            .iter()
            .find(|r| r.get(0) == &Value::str(name))
            .unwrap();
        (row.get(1).to_string(), row.get(2).as_int().unwrap())
    };
    assert_eq!(by_name("Nils"), ("[]".to_string(), 0));
    assert_eq!(by_name("Elin"), ("['Sten', 'Linda']".to_string(), 2));
    assert_eq!(by_name("Thor"), ("['Sten']".to_string(), 0));
}

#[test]
fn pattern_comprehension_roundtrips() {
    use cypher::parse_expression;
    for src in [
        "[(a)-[:X]->(b) | b.name]",
        "[(a)-[:X]->(b) WHERE b.v > 1 | b]",
        "[(a)-[:X*1..2]->(b) | b.v]",
    ] {
        let e = parse_expression(src).unwrap();
        let rendered = e.to_string();
        let reparsed = parse_expression(&rendered).unwrap();
        assert_eq!(e, reparsed, "{src} → {rendered}");
    }
    // A plain list whose first element is a parenthesized expression must
    // not be mistaken for a pattern comprehension.
    let list = parse_expression("[(1 + 2), 3]").unwrap();
    assert!(matches!(list, cypher::ast::expr::Expr::List(v) if v.len() == 2));
}
