//! `Database::inject_fsync_failures` is a test hook, not a production
//! surface: without the `CYPHER_TEST_FAULTS` environment variable it
//! must arm nothing and report so. This lives in its own test binary —
//! the suites that *do* arm faults set the variable process-wide, and
//! this assertion needs a process where nothing ever set it.

use cypher::{Database, EngineConfig, FsyncMode, Params, Value};

#[test]
fn fault_injection_is_inert_without_the_env_guard() {
    assert!(
        std::env::var_os("CYPHER_TEST_FAULTS").is_none(),
        "this binary must run without CYPHER_TEST_FAULTS; the inertness \
         assertion below would be vacuous"
    );
    let dir = std::env::temp_dir().join(format!("cypher-fault-gate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = EngineConfig::default();
    cfg.persistence = Some(dir.clone());
    cfg.group_commit = false;
    cfg.fsync_mode = FsyncMode::Sync;
    let db = Database::open_with(cfg).expect("open durable");
    let params = Params::new();

    assert!(
        !db.inject_fsync_failures(3),
        "injection must refuse to arm without CYPHER_TEST_FAULTS"
    );
    // And it really armed nothing: writes keep committing.
    let mut s = db.session();
    for i in 0..5 {
        s.query(&format!("CREATE (:G {{i: {i}}})"), &params)
            .expect("writes must succeed — no fault was armed");
    }
    let t = s
        .query("MATCH (n:G) RETURN count(*) AS c", &params)
        .expect("read");
    assert_eq!(t.cell(0, "c"), Some(&Value::int(5)));
    db.close().expect("clean close");
    let _ = std::fs::remove_dir_all(&dir);
}
