//! Differential testing of the **multi-writer commit pipeline** (group
//! commit): N writer threads race generated update streams through one
//! database — their transactions coalesce into shared WAL seals — while
//! M reader threads pin snapshots mid-flight. Afterwards a sequential
//! oracle replays the *committed* statements in published-commit order
//! (each writer records [`cypher::Session::last_commit_version`] per
//! statement; commit version order **is** the serialization order,
//! because write execution is serialized by the apply lock and versions
//! are assigned at admission).
//!
//! What must hold, for every generated workload and every knob cell
//! (`CYPHER_GROUP_COMMIT` on/off × `CYPHER_FSYNC_MODE`
//! os/sync/pipelined × 2–8 writers):
//!
//! * **serializability witness** — the final graph is bit-identical
//!   (canonical dump, indexes included) to the oracle's replay of the
//!   committed statements in version order, and every statement's
//!   success/error outcome matches the oracle's at the same position;
//! * **dense, monotone versions** — the committed versions of all
//!   writers interleaved are exactly `base+1 ..= base+k`, no gaps
//!   (a lost or double-published group would tear this);
//! * **snapshot reads under write contention** — a reader pinned at
//!   version `v` sees exactly the oracle's state after the
//!   version-`≤ v` prefix: group commit publishes one version per
//!   group, so a reader can never observe a mid-group state;
//! * **durable modes survive reopen** — under `sync`/`pipelined` the
//!   recovered graph equals the oracle replay, batch-for-batch;
//! * **fsync faults poison exactly their group** — with an injected
//!   flush failure, every statement is accounted for (acknowledged ∪
//!   errored = all), acknowledged commits form a dense prefix, and both
//!   the live graph and the reopened graph equal the oracle of exactly
//!   that prefix (memory never diverges from disk).
//!
//! Workload count is tunable via `CYPHER_WRITER_WORKLOADS` (default 40);
//! writer threads via `CYPHER_CONC_WRITERS` (default 4; CI runs 2 and
//! 8); reader threads via `CYPHER_CONC_READERS` (default 2).
//! `CYPHER_TEST_SEED=<n>` replays exactly one seed — failure messages
//! name the seed that minted the workload.

use cypher::workload::QueryGenerator;
use cypher::{
    run_read_with, run_reference, run_with, Database, EngineConfig, FsyncMode, Params,
    PropertyGraph, Table,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, Mutex};

fn workload_count() -> u64 {
    std::env::var("CYPHER_WRITER_WORKLOADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(40)
}

fn writer_count() -> usize {
    std::env::var("CYPHER_CONC_WRITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4)
}

fn reader_count() -> usize {
    std::env::var("CYPHER_CONC_READERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2)
}

/// The seeds a test sweeps: `0..n`, or exactly the one named by
/// `CYPHER_TEST_SEED` (for replaying a CI failure locally).
fn seeds(n: u64) -> Vec<u64> {
    match std::env::var("CYPHER_TEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        Some(seed) => {
            eprintln!("CYPHER_TEST_SEED={seed}: replaying a single seed");
            vec![seed]
        }
        None => (0..n).collect(),
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("cypher-writers-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Base configuration of both the live database and the oracle. The
/// plan cache is off so reader row *order* is a pure function of the
/// pinned version (same rationale as `tests/concurrent_sessions.rs`);
/// `group_commit` / `fsync_mode` stay at whatever `EngineConfig::default`
/// resolved — i.e. the CI matrix cell's env vars.
fn base_cfg() -> EngineConfig {
    let mut cfg = EngineConfig::default();
    cfg.persistence = None;
    cfg.plan_cache_size = 0;
    cfg
}

/// One committed write: the version the ticket acknowledged, the
/// statement, and whether execution reported success (an errored Cypher
/// statement still commits its partial mutations — no rollback).
struct Committed {
    version: u64,
    stmt: String,
    ok: bool,
}

/// One reader observation at a pinned version.
struct Observation {
    version: u64,
    query: String,
    outcome: Result<Table, String>,
}

/// Runs one multi-writer workload against `cfg` and proves it against
/// the sequential oracle. When `cfg.persistence` is set, also closes,
/// reopens and proves the recovered state.
fn run_workload(seed: u64, writers: usize, readers: usize, cfg: &EngineConfig, params: &Params) {
    let label = format!("workload {seed}");

    // Deterministic statement streams: a seeding prefix every side
    // agrees on, then one disjoint update stream per writer.
    let mut gen = QueryGenerator::new(seed);
    let seed_stmts: Vec<String> = (0..6).map(|_| gen.next_update()).collect();
    let streams: Vec<Vec<String>> = (0..writers)
        .map(|w| {
            let mut g = QueryGenerator::new(seed.wrapping_mul(131).wrapping_add(w as u64 + 1));
            (0..10).map(|_| g.next_update()).collect()
        })
        .collect();
    let query_streams: Vec<Vec<String>> = (0..readers)
        .map(|r| {
            let mut g = QueryGenerator::new(seed.wrapping_mul(31).wrapping_add(777 + r as u64));
            (0..3).map(|_| g.next_query()).collect()
        })
        .collect();

    let db =
        Database::open_with(cfg.clone()).unwrap_or_else(|e| panic!("{label}: open failed: {e}"));
    let mut seeder = db.session();
    for s in &seed_stmts {
        seeder
            .query(s, params)
            .unwrap_or_else(|e| panic!("{label}: seed statement failed on {s}: {e}"));
    }
    let base = db.version();

    let committed: Mutex<Vec<Committed>> = Mutex::new(Vec::new());
    let writers_done = AtomicBool::new(false);
    let barrier = Barrier::new(writers + readers);
    let writer_sessions: Vec<_> = (0..writers).map(|_| db.session()).collect();
    let reader_sessions: Vec<_> = (0..readers).map(|_| db.session()).collect();

    let observations: Vec<Observation> = std::thread::scope(|sc| {
        let committed = &committed;
        let writers_done = &writers_done;
        let barrier = &barrier;
        let label = &label;

        let write_handles: Vec<_> = writer_sessions
            .into_iter()
            .zip(&streams)
            .map(|(mut session, stream)| {
                sc.spawn(move || {
                    barrier.wait();
                    for stmt in stream {
                        let ok = session.query(stmt, params).is_ok();
                        match session.last_commit_version() {
                            Some(v) => committed.lock().unwrap().push(Committed {
                                version: v,
                                stmt: stmt.clone(),
                                ok,
                            }),
                            // A statement that commits nothing must not
                            // have mutated anything — only a clean no-op
                            // (e.g. SET on an empty MATCH) or a query
                            // that errored before its first mutation.
                            None => {}
                        }
                    }
                })
            })
            .collect();

        let read_handles: Vec<_> = reader_sessions
            .into_iter()
            .zip(&query_streams)
            .map(|(mut session, queries)| {
                sc.spawn(move || {
                    barrier.wait();
                    let mut out = Vec::new();
                    let mut round = 0usize;
                    while round == 0 || (!writers_done.load(Ordering::SeqCst) && round < 16) {
                        for q in queries {
                            let version = session.begin_read();
                            let outcome = session.query(q, params).map_err(|e| e.to_string());
                            session.commit();
                            out.push(Observation {
                                version,
                                query: q.clone(),
                                outcome,
                            });
                        }
                        round += 1;
                    }
                    out
                })
            })
            .collect();

        for h in write_handles {
            h.join()
                .unwrap_or_else(|_| panic!("{label}: writer thread panicked"));
        }
        writers_done.store(true, Ordering::SeqCst);
        read_handles
            .into_iter()
            .flat_map(|h| {
                h.join()
                    .unwrap_or_else(|_| panic!("{label}: reader thread panicked"))
            })
            .collect()
    });

    // The interleaved commit versions must be dense and unique:
    // base+1 ..= base+k, exactly one statement per version.
    let mut log = committed.into_inner().unwrap();
    log.sort_by_key(|c| c.version);
    for (i, c) in log.iter().enumerate() {
        assert_eq!(
            c.version,
            base + 1 + i as u64,
            "{label}: commit versions are not dense — a group was lost or \
             double-published around {}",
            c.stmt
        );
    }
    assert_eq!(
        db.version(),
        base + log.len() as u64,
        "{label}: published head disagrees with the acknowledged commits"
    );

    // Sequential oracle: replay in commit-version order, re-evaluating
    // each reader observation at its pinned version along the way.
    let mut oracle = PropertyGraph::new();
    for s in &seed_stmts {
        run_with(&mut oracle, s, params, cfg)
            .unwrap_or_else(|e| panic!("{label}: oracle seed failed on {s}: {e}"));
    }
    let mut obs = observations;
    obs.sort_by_key(|o| o.version);
    let mut applied = 0usize;
    let replay_to = |oracle: &mut PropertyGraph, applied: &mut usize, upto: u64| {
        while *applied < log.len() && log[*applied].version <= upto {
            let c = &log[*applied];
            let r = run_with(oracle, &c.stmt, params, cfg);
            assert_eq!(
                r.is_ok(),
                c.ok,
                "{label}: outcome drift at v{} on {}: oracle said {r:?}",
                c.version,
                c.stmt
            );
            *applied += 1;
        }
    };
    for o in &obs {
        assert!(
            o.version <= base + log.len() as u64,
            "{label}: reader pinned version {} beyond every acknowledged commit",
            o.version
        );
        replay_to(&mut oracle, &mut applied, o.version);
        match &o.outcome {
            Ok(table) => {
                let seq = run_read_with(&oracle, &o.query, params, cfg).unwrap_or_else(|e| {
                    panic!(
                        "{label}: oracle errored where the reader succeeded on {} at v{}: {e}",
                        o.query, o.version
                    )
                });
                assert!(
                    table.ordered_eq(&seq),
                    "{label}: reader rows diverge from the oracle on {} at v{}\
                     \nreader:\n{table}\noracle:\n{seq}",
                    o.query,
                    o.version
                );
                let reference = run_reference(&oracle, &o.query, params)
                    .unwrap_or_else(|e| panic!("{label}: reference failed on {}: {e}", o.query));
                assert!(
                    table.bag_eq(&reference),
                    "{label}: reader diverges from the reference semantics on {} at v{}",
                    o.query,
                    o.version
                );
            }
            Err(msg) => {
                let oracle_err = run_read_with(&oracle, &o.query, params, cfg)
                    .err()
                    .unwrap_or_else(|| {
                        panic!(
                            "{label}: reader errored ({msg}) but the oracle succeeded \
                             on {} at v{}",
                            o.query, o.version
                        )
                    });
                assert_eq!(
                    msg,
                    &oracle_err.to_string(),
                    "{label}: error drift on {} at v{}",
                    o.query,
                    o.version
                );
            }
        }
    }
    replay_to(&mut oracle, &mut applied, u64::MAX);
    let final_dump = oracle.canonical_dump();
    assert_eq!(
        db.graph().canonical_dump(),
        final_dump,
        "{label}: final state diverged from the version-order oracle replay"
    );

    // Durable cells: the WAL must reconstruct the same state, batch for
    // batch, across a clean close/reopen.
    if let Some(dir) = &cfg.persistence {
        let total = base + log.len() as u64;
        assert_eq!(db.batches_committed(), Some(total), "{label}");
        db.close()
            .unwrap_or_else(|e| panic!("{label}: close failed: {e}"));
        let db2 = Database::open_with(cfg.clone())
            .unwrap_or_else(|e| panic!("{label}: reopen failed: {e}"));
        assert_eq!(
            db2.recovery().batches_replayed,
            total,
            "{label}: reopen lost or invented batches"
        );
        assert_eq!(
            db2.graph().canonical_dump(),
            final_dump,
            "{label}: recovered state diverged from the oracle"
        );
        drop(db2);
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn racing_writers_serialize_to_the_oracle_in_commit_version_order() {
    let params = Params::new();
    let writers = writer_count();
    let readers = reader_count();
    let cfg = base_cfg();
    for seed in seeds(workload_count()) {
        run_workload(seed, writers, readers, &cfg, &params);
    }
}

#[test]
fn serial_commit_mode_matches_the_oracle_too() {
    // `group_commit = false` drives the same protocol with groups of
    // one — the baseline the e24 bench compares against must be just as
    // correct under writer contention.
    let params = Params::new();
    let mut cfg = base_cfg();
    cfg.group_commit = false;
    for seed in seeds(8) {
        run_workload(seed, writer_count(), reader_count(), &cfg, &params);
    }
}

#[test]
fn durable_multi_writer_runs_survive_reopen_in_every_fsync_mode() {
    let params = Params::new();
    // Honor the CI matrix cell's mode when one is pinned via env;
    // otherwise sweep sync and pipelined (os is the recovery suite's
    // default diet).
    let modes: Vec<FsyncMode> = if std::env::var("CYPHER_FSYNC_MODE").is_ok() {
        vec![EngineConfig::default().fsync_mode]
    } else {
        vec![FsyncMode::Sync, FsyncMode::Pipelined]
    };
    for mode in modes {
        for seed in seeds(4) {
            let dir = fresh_dir(&format!("durable-{mode:?}-{seed}"));
            let mut cfg = base_cfg();
            cfg.persistence = Some(dir);
            cfg.fsync_mode = mode;
            run_workload(seed, writer_count(), reader_count(), &cfg, &params);
        }
    }
}

#[test]
fn pipelined_fault_poisons_followers_and_keeps_the_durable_prefix() {
    // Deterministic fault schedule: a sequential prefix commits and
    // flushes cleanly, then one injected flush failure is armed — the
    // first concurrent group hits it, and every concurrent statement
    // must fail (its own group's flush error, or the poison). The
    // durable prefix, the live graph and the reopened graph must all be
    // exactly the pre-fault oracle state.
    let params_owned = Params::new();
    let params = &params_owned;
    for seed in seeds(6) {
        let label = format!("workload {seed}");
        let dir = fresh_dir(&format!("fault-{seed}"));
        let mut cfg = base_cfg();
        cfg.persistence = Some(dir.clone());
        cfg.fsync_mode = FsyncMode::Pipelined;

        let mut gen = QueryGenerator::new(seed);
        let prefix: Vec<String> = (0..8).map(|_| gen.next_update()).collect();
        let streams: Vec<Vec<String>> = (0..writer_count())
            .map(|w| {
                let mut g = QueryGenerator::new(seed.wrapping_mul(97).wrapping_add(w as u64 + 1));
                (0..6).map(|_| g.next_update()).collect()
            })
            .collect();

        let db = Database::open_with(cfg.clone()).unwrap();
        let mut oracle = PropertyGraph::new();
        let mut seeder = db.session();
        for s in &prefix {
            seeder
                .query(s, params)
                .unwrap_or_else(|e| panic!("{label}: prefix failed on {s}: {e}"));
            run_with(&mut oracle, s, params, &cfg)
                .unwrap_or_else(|e| panic!("{label}: oracle prefix failed on {s}: {e}"));
        }
        let durable_versions = db.version();
        let durable_dump = oracle.canonical_dump();
        std::env::set_var("CYPHER_TEST_FAULTS", "1");
        assert!(
            db.inject_fsync_failures(1),
            "fault injection arms under CYPHER_TEST_FAULTS"
        );

        let total: usize = streams.iter().map(|s| s.len()).sum();
        let failed = Mutex::new(0usize);
        std::thread::scope(|sc| {
            for stream in &streams {
                let mut session = db.session();
                let failed = &failed;
                let label = &label;
                sc.spawn(move || {
                    for stmt in stream {
                        match session.query(stmt, params) {
                            // A clean no-op (MATCH bound nothing) seals
                            // nothing and may still succeed — but it
                            // must not claim a commit.
                            Ok(_) => assert_eq!(
                                session.last_commit_version(),
                                None,
                                "{label}: a post-fault write was acknowledged: {stmt}"
                            ),
                            Err(e) => {
                                let msg = e.to_string();
                                assert!(
                                    msg.contains("fsync")
                                        || msg.contains("read-only after a failed WAL commit"),
                                    "{label}: unexpected failure class on {stmt}: {msg}"
                                );
                                assert_eq!(
                                    session.last_commit_version(),
                                    None,
                                    "{label}: a failed statement claims a commit version"
                                );
                                *failed.lock().unwrap() += 1;
                            }
                        }
                    }
                });
            }
        });
        // Accounting: every statement either errored or was a committed
        // no-op — nothing mutating got through (each spawn asserted
        // that), and the armed fault actually fired.
        let failed = *failed.lock().unwrap();
        assert!(
            failed > 0 && failed <= total,
            "{label}: the injected fault never fired ({failed}/{total} errors)"
        );
        // Memory never ran ahead of disk: the published head is still
        // the durable prefix.
        assert_eq!(db.version(), durable_versions, "{label}");
        assert_eq!(
            db.graph().canonical_dump(),
            durable_dump,
            "{label}: live graph diverged from the durable prefix"
        );
        drop(seeder); // sessions keep the store (and its dir lock) alive
        drop(db);

        let mut reopen_cfg = cfg.clone();
        reopen_cfg.fsync_mode = FsyncMode::Os;
        let db2 = Database::open_with(reopen_cfg).unwrap();
        assert_eq!(
            db2.recovery().batches_replayed,
            durable_versions,
            "{label}: the WAL kept more (or less) than the pre-fault groups"
        );
        assert_eq!(
            db2.graph().canonical_dump(),
            durable_dump,
            "{label}: recovered state diverged from the pre-fault oracle"
        );
        drop(db2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
