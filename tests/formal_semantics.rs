//! Experiments E7–E11: the formal examples of Section 4, reproduced as
//! end-to-end queries over the Figure 4 graph and checked against both
//! evaluators.

use cypher::workload::figure4;
use cypher::{run_read, run_reference, table_of, NodeId, Params, Table, Value};

fn node(i: u64) -> Value {
    // Figure 4's n1..n4 are NodeId(0)..NodeId(3).
    Value::Node(NodeId(i - 1))
}

fn both(query: &str) -> Table {
    let g = figure4();
    let params = Params::new();
    let engine = run_read(&g, query, &params).unwrap();
    let reference = run_reference(&g, query, &params).unwrap();
    assert!(
        engine.bag_eq(&reference),
        "divergence on {query}\nengine:\n{engine}\nreference:\n{reference}"
    );
    engine
}

#[test]
fn e7_example_4_2_node_pattern_satisfaction() {
    // (x:Teacher) is satisfied by n1, n3, n4 and not by n2.
    let out = both("MATCH (x:Teacher) RETURN x");
    out.assert_bag_eq(&table_of(
        &["x"],
        vec![vec![node(1)], vec![node(3)], vec![node(4)]],
    ));
    // (y) is satisfied by each of the four nodes.
    let out_any = both("MATCH (y) RETURN y");
    assert_eq!(out_any.len(), 4);
}

#[test]
fn e8_example_4_3_rigid_pattern_unique_assignment() {
    // (x:Teacher)-[:KNOWS*2]->(y): the only satisfying path is
    // n1 r1 n2 r2 n3, and the assignment is uniquely x=n1, y=n3.
    let out = both("MATCH (x:Teacher)-[:KNOWS*2]->(y) RETURN x, y");
    out.assert_bag_eq(&table_of(&["x", "y"], vec![vec![node(1), node(3)]]));
}

#[test]
fn e9_example_4_4_variable_length_assignments() {
    // With the middle node named, three assignments exist:
    // (x=n1, z=n2, y=n3), (x=n1, z=n2, y=n4), (x=n1, z=n3, y=n4).
    let out =
        both("MATCH (x:Teacher)-[:KNOWS*1..2]->(z)-[:KNOWS*1..2]->(y:Teacher) RETURN x, z, y");
    out.assert_bag_eq(&table_of(
        &["x", "z", "y"],
        vec![
            vec![node(1), node(2), node(3)],
            vec![node(1), node(2), node(4)],
            vec![node(1), node(3), node(4)],
        ],
    ));
}

#[test]
fn e10_example_4_5_bag_multiplicity() {
    // Anonymous middle: the n1→n4 path satisfies the pattern through two
    // rigid expansions (splits 1+2 and 2+1), so two copies of the same
    // assignment appear in the bag.
    let out = both("MATCH (x:Teacher)-[:KNOWS*1..2]->()-[:KNOWS*1..2]->(y:Teacher) RETURN x, y");
    out.assert_bag_eq(&table_of(
        &["x", "y"],
        vec![
            vec![node(1), node(3)],
            vec![node(1), node(4)],
            vec![node(1), node(4)], // second copy of u (Example 4.5)
        ],
    ));
}

#[test]
fn e11_example_4_6_match_on_driving_table() {
    // [[MATCH (x)-[:KNOWS*]->(y)]] over T = {(x: n1), (x: n3)}: the
    // driving table is emulated by pinning x via id().
    let out = both(
        "MATCH (x) WHERE id(x) = 0 OR id(x) = 2
         MATCH (x)-[:KNOWS*]->(y)
         RETURN x, y",
    );
    out.assert_bag_eq(&table_of(
        &["x", "y"],
        vec![
            vec![node(1), node(2)],
            vec![node(1), node(3)],
            vec![node(1), node(4)],
            vec![node(3), node(4)],
        ],
    ));
}

#[test]
fn named_paths_are_values() {
    // §2: "Cypher also supports matching and returning paths as values."
    let out = both("MATCH p = (x:Student)-[:KNOWS*]->(y) RETURN length(p) AS len");
    out.assert_bag_eq(&table_of(
        &["len"],
        vec![vec![Value::int(1)], vec![Value::int(2)]],
    ));
}

#[test]
fn path_functions_on_named_paths() {
    let out = both(
        "MATCH p = (x:Teacher)-[:KNOWS*2]->(y)
         RETURN size(nodes(p)) AS n, size(relationships(p)) AS r",
    );
    out.assert_bag_eq(&table_of(
        &["n", "r"],
        vec![vec![Value::int(3), Value::int(2)]],
    ));
}

#[test]
fn undirected_and_reverse_patterns_agree() {
    // (a)-[r]-(b) matches each relationship in both orientations; the
    // reverse arrow form binds the same pairs swapped.
    let undirected = both("MATCH (a)-[:KNOWS]-(b) RETURN a, b");
    assert_eq!(undirected.len(), 6); // 3 rels × 2 orientations
    let fwd = both("MATCH (a)-[:KNOWS]->(b) RETURN a AS x, b AS y");
    let rev = both("MATCH (b)<-[:KNOWS]-(a) RETURN a AS x, b AS y");
    assert!(fwd.bag_eq(&rev));
}
