//! Experiment E20: the Cypher 10 temporal types (paper Section 6,
//! "Temporal types") exercised through full queries: construction,
//! component access, comparison, arithmetic and ordering.

use cypher::{run, run_read, run_reference, Params, PropertyGraph, Value};

fn event_graph() -> (PropertyGraph, Params) {
    let mut g = PropertyGraph::new();
    let params = Params::new();
    run(
        &mut g,
        "CREATE (:Event {name: 'kickoff',  on: date('2018-06-10')}),
                (:Event {name: 'review',   on: date('2018-06-12')}),
                (:Event {name: 'retro',    on: date('2018-07-01')}),
                (:Event {name: 'undated'})",
        &params,
    )
    .unwrap();
    (g, params)
}

#[test]
fn dates_compare_in_where() {
    let (g, params) = event_graph();
    let t = run_read(
        &g,
        "MATCH (e:Event) WHERE e.on < date('2018-06-15')
         RETURN e.name AS n ORDER BY n",
        &params,
    )
    .unwrap();
    assert_eq!(t.len(), 2);
    assert_eq!(t.cell(0, "n"), Some(&Value::str("kickoff")));
    assert_eq!(t.cell(1, "n"), Some(&Value::str("review")));
}

#[test]
fn date_ordering_and_null_last() {
    let (g, params) = event_graph();
    let t = run_read(
        &g,
        "MATCH (e:Event) RETURN e.name AS n ORDER BY e.on",
        &params,
    )
    .unwrap();
    // undated sorts last (null greatest in ascending order).
    assert_eq!(t.cell(3, "n"), Some(&Value::str("undated")));
    assert_eq!(t.cell(0, "n"), Some(&Value::str("kickoff")));
}

#[test]
fn duration_arithmetic_in_queries() {
    let (g, params) = event_graph();
    let t = run_read(
        &g,
        "MATCH (e:Event {name: 'kickoff'})
         RETURN e.on + duration('P1M') AS moved,
                (e.on + duration('P10D')).month AS m",
        &params,
    )
    .unwrap();
    assert_eq!(t.cell(0, "moved").unwrap().to_string(), "2018-07-10");
    assert_eq!(t.cell(0, "m"), Some(&Value::int(6)));
}

#[test]
fn duration_between_dates() {
    let (g, params) = event_graph();
    let t = run_read(
        &g,
        "MATCH (a:Event {name: 'kickoff'}), (b:Event {name: 'retro'})
         RETURN durationBetween(a.on, b.on) AS gap,
                durationBetween(a.on, b.on).days AS days",
        &params,
    )
    .unwrap();
    assert_eq!(t.cell(0, "gap").unwrap().to_string(), "P21D");
    assert_eq!(t.cell(0, "days"), Some(&Value::int(21)));
}

#[test]
fn datetime_zones_normalize_for_comparison() {
    let g = PropertyGraph::new();
    let params = Params::new();
    let t = run_read(
        &g,
        "RETURN datetime('2018-06-10T12:00:00+02:00') < datetime('2018-06-10T11:00:00Z') AS earlier",
        &params,
    )
    .unwrap();
    assert_eq!(t.cell(0, "earlier"), Some(&Value::Bool(true)));
}

#[test]
fn temporal_components() {
    let g = PropertyGraph::new();
    let params = Params::new();
    let t = run_read(
        &g,
        "RETURN date('2018-06-10').year AS y,
                date('2018-06-10').weekday AS wd,
                localtime('14:30:15.5').minute AS min,
                localtime('14:30:15.5').nanosecond AS ns,
                localdatetime('2018-06-10T14:30:15').hour AS h,
                duration('P1Y2M3DT4H').months AS months",
        &params,
    )
    .unwrap();
    assert_eq!(t.cell(0, "y"), Some(&Value::int(2018)));
    assert_eq!(t.cell(0, "wd"), Some(&Value::int(7))); // Sunday
    assert_eq!(t.cell(0, "min"), Some(&Value::int(30)));
    assert_eq!(t.cell(0, "ns"), Some(&Value::int(500_000_000)));
    assert_eq!(t.cell(0, "h"), Some(&Value::int(14)));
    assert_eq!(t.cell(0, "months"), Some(&Value::int(14)));
}

#[test]
fn temporal_values_group_and_dedup() {
    let (g, params) = event_graph();
    // Two events share June; DISTINCT on month gives 2 groups.
    let t = run_read(
        &g,
        "MATCH (e:Event) WHERE e.on IS NOT NULL
         RETURN e.on.month AS m, count(*) AS c ORDER BY m",
        &params,
    )
    .unwrap();
    assert_eq!(t.len(), 2);
    assert_eq!(t.cell(0, "c"), Some(&Value::int(2)));
    assert_eq!(t.cell(1, "c"), Some(&Value::int(1)));
}

#[test]
fn invalid_temporal_literals_error() {
    let g = PropertyGraph::new();
    let params = Params::new();
    assert!(run_read(&g, "RETURN date('2018-02-30') AS d", &params).is_err());
    assert!(run_read(&g, "RETURN duration('xyz') AS d", &params).is_err());
    assert!(run_read(&g, "RETURN localtime('25:00') AS t", &params).is_err());
}

#[test]
fn engines_agree_on_temporal_queries() {
    let (g, params) = event_graph();
    for q in [
        "MATCH (e:Event) WHERE e.on >= date('2018-06-12') RETURN e.name",
        "MATCH (e:Event) RETURN min(e.on) AS first, max(e.on) AS last",
        "MATCH (e:Event) WHERE e.on IS NOT NULL RETURN e.on + duration('P1D') AS next ORDER BY next",
    ] {
        let a = run_read(&g, q, &params).unwrap();
        let b = run_reference(&g, q, &params).unwrap();
        assert!(a.bag_eq(&b), "temporal divergence on {q}");
    }
}
