//! Property tests for the **retraction algebra** behind incremental
//! view maintenance: feeding rows into a mergeable partial state and
//! then retracting them must leave a state whose finalized output is
//! **bit-identical** (float bit patterns included — `ExactFloatSum`,
//! `stdev`'s exact moments) to a state that was never fed those rows —
//! under arbitrary interleavings of kept and retracted rows, arbitrary
//! retraction orders, and arbitrary merge shapes (the morsel-parallel
//! fold splits the stream at random chunk boundaries and merges).
//!
//! Covered states: [`GroupedAggState`] (count/sum/avg/stdev/stdevp and
//! the DISTINCT min/max family), [`TopKState`] (unbounded, as view
//! maintenance uses it), and [`DistinctSet`] (counted multiplicity and
//! full-retraction order transparency).
//!
//! Output-row *order* of a grouped state is first-group-appearance
//! order, which retracted rows legitimately influence (a group opened
//! by a retracted row and later joined by a kept row survives in its
//! original slot) — so grouped outputs compare as sorted row sets; the
//! cells themselves must match bit-for-bit. `TopKState` promises more
//! (sequence-number tie-breaking survives retraction) and is compared
//! as an exact row sequence.

use cypher::{parse_query, Params, PropertyGraph, Record, Schema, Table, Value};
use cypher_core::aggregate::DistinctSet;
use cypher_core::project::{GroupedAggState, ProjectionPlan, TopKState};
use cypher_core::EvalContext;
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Material: rows over schema (g, x), with floats spanning ~80 orders of
// binary magnitude so naive summation would actually lose bits.
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Num {
    Int(i64),
    Float(i64, i32),
    Null,
}

impl Num {
    fn value(&self) -> Value {
        match self {
            Num::Int(i) => Value::int(*i),
            Num::Float(m, e) => Value::float((*m as f64) * 2f64.powi(*e)),
            Num::Null => Value::Null,
        }
    }
}

fn arb_num() -> BoxedStrategy<Num> {
    prop_oneof![
        (-1_000i64..1_000).prop_map(Num::Int),
        ((-9_999i64..10_000), (-40i32..40)).prop_map(|(m, e)| Num::Float(m, e)),
        Just(Num::Null),
    ]
    .boxed()
}

/// One source row: `extra` rows are fed and later retracted; the rest
/// form the oracle stream.
fn arb_rows() -> BoxedStrategy<Vec<(bool, u8, Num)>> {
    proptest::collection::vec((0u8..5, 0u8..4, arb_num()), 0..48)
        .prop_map(|v| {
            v.into_iter()
                // ~2 in 5 rows are later retracted.
                .map(|(tag, g, n)| (tag < 2, g, n))
                .collect()
        })
        .boxed()
}

fn src_schema() -> Arc<Schema> {
    Schema::new(vec!["g".to_string(), "x".to_string()])
}

fn record(g: u8, n: &Num) -> Record {
    Record::new(vec![Value::int(g as i64), n.value()])
}

/// Compiles the projection plan of `RETURN …` against the (g, x) schema.
fn plan_of(ret: &str) -> ProjectionPlan {
    let q = parse_query(&format!("MATCH (g) {ret}")).unwrap();
    let cypher::ast::query::Query::Single(sq) = q else {
        panic!("not a single query");
    };
    ProjectionPlan::compile(sq.ret.as_ref().unwrap(), &src_schema()).unwrap()
}

/// Renders a value so equal fingerprints mean equal **bits** for floats
/// (NaN payloads and signed zeros included), not just Cypher equality.
fn fingerprint_value(out: &mut String, v: &Value) {
    match v {
        Value::Float(f) => out.push_str(&format!("f:{:016x}", f.to_bits())),
        other => out.push_str(&format!("{other:?}")),
    }
}

fn row_fingerprint(r: &Record) -> String {
    let mut s = String::new();
    for v in r.values() {
        fingerprint_value(&mut s, v);
        s.push('|');
    }
    s
}

fn sorted_fingerprints(t: &Table) -> Vec<String> {
    let mut v: Vec<String> = t.rows().iter().map(row_fingerprint).collect();
    v.sort();
    v
}

/// A tiny deterministic shuffle (the proptest shim has no
/// `prop_shuffle`): Fisher–Yates driven by an LCG over `seed`.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

/// Folds the stream into chunked partial states (split where `splits`
/// says) merged in order — the exact shape of the morsel-parallel fold.
/// With `include_extras = false` this is the never-fed oracle.
fn fold_grouped(
    ctx: &EvalContext<'_>,
    plan: &ProjectionPlan,
    rows: &[(bool, u8, Num)],
    splits: &[bool],
    include_extras: bool,
) -> GroupedAggState {
    let schema = src_schema();
    let mut states = vec![GroupedAggState::new(false)];
    for (i, (extra, g, n)) in rows.iter().enumerate() {
        if splits.get(i).copied().unwrap_or(false) {
            states.push(GroupedAggState::new(false));
        }
        if *extra && !include_extras {
            continue;
        }
        states
            .last_mut()
            .unwrap()
            .feed(ctx, plan, &schema, &record(*g, n))
            .unwrap();
    }
    let mut it = states.into_iter();
    let mut acc = it.next().unwrap();
    for s in it {
        acc.merge(s, plan);
    }
    acc
}

fn check_grouped_retraction(ret: &str, rows: &[(bool, u8, Num)], splits: &[bool], order_seed: u64) {
    let graph = PropertyGraph::new();
    let params = Params::new();
    let ctx = EvalContext::new(&graph, &params);
    let plan = plan_of(ret);
    let schema = src_schema();

    let mut state = fold_grouped(&ctx, &plan, rows, splits, true);
    let mut extras: Vec<&(bool, u8, Num)> = rows.iter().filter(|(e, _, _)| *e).collect();
    shuffle(&mut extras, order_seed);
    for (_, g, n) in extras {
        let hit = state.retract(&ctx, &plan, &schema, &record(*g, n)).unwrap();
        prop_assert!(hit, "retracting a row that was fed must find its group");
    }

    let oracle = fold_grouped(&ctx, &plan, rows, splits, false);
    let got = state.finalize_snapshot(&ctx, &plan, &schema).unwrap();
    let want = oracle.finalize_snapshot(&ctx, &plan, &schema).unwrap();
    prop_assert_eq!(
        sorted_fingerprints(&got),
        sorted_fingerprints(&want),
        "feed-then-retract diverged from never-fed for {}",
        ret
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn grouped_agg_feed_then_retract_is_identity(
        rows in arb_rows(),
        splits in proptest::collection::vec(any::<bool>(), 0..48),
        order_seed in any::<u64>(),
    ) {
        // count/sum/avg and both stdev flavors: i128 integer sums,
        // ExactFloatSum and the exact-moments subtraction all on the line.
        check_grouped_retraction(
            "RETURN g AS g, count(*) AS c, count(x) AS cx, sum(x) AS s, \
             avg(x) AS a, stdev(x) AS sd, stdevp(x) AS sp",
            &rows, &splits, order_seed,
        );
    }

    #[test]
    fn distinct_min_max_feed_then_retract_is_identity(
        rows in arb_rows(),
        splits in proptest::collection::vec(any::<bool>(), 0..48),
        order_seed in any::<u64>(),
    ) {
        // The DISTINCT family rides DistinctSet's counted slots; min/max
        // are only retractable under DISTINCT.
        check_grouped_retraction(
            "RETURN g AS g, min(DISTINCT x) AS lo, max(DISTINCT x) AS hi, \
             sum(DISTINCT x) AS s, count(DISTINCT x) AS c",
            &rows, &splits, order_seed,
        );
    }

    #[test]
    fn ungrouped_aggregates_survive_full_retraction(
        rows in arb_rows(),
        order_seed in any::<u64>(),
    ) {
        // No grouping keys: the single global group must survive total
        // retraction (RETURN count(*) over nothing is still one row).
        check_grouped_retraction(
            "RETURN count(x) AS c, sum(x) AS s, stdev(x) AS sd",
            &rows, &[], order_seed,
        );
    }

    #[test]
    fn topk_feed_then_retract_is_identity(
        rows in arb_rows(),
        order_seed in any::<u64>(),
        ascending in any::<bool>(),
    ) {
        let q = parse_query(&format!(
            "MATCH (g) RETURN x AS x ORDER BY x {}",
            if ascending { "ASC" } else { "DESC" }
        )).unwrap();
        let cypher::ast::query::Query::Single(sq) = q else { panic!() };
        let keys = sq.ret.unwrap().order_by;
        let out_schema = Schema::new(vec!["x".to_string()]);

        let mut state = TopKState::new_unbounded(&keys);
        let mut oracle = TopKState::new_unbounded(&keys);
        for (extra, _, n) in &rows {
            let row = Record::new(vec![n.value()]);
            state.offer(vec![n.value()], row.clone());
            if !*extra {
                oracle.offer(vec![n.value()], row);
            }
        }
        let mut extras: Vec<&(bool, u8, Num)> =
            rows.iter().filter(|(e, _, _)| *e).collect();
        shuffle(&mut extras, order_seed);
        for (_, _, n) in extras {
            let row = Record::new(vec![n.value()]);
            prop_assert!(
                state.retract(&[n.value()], &row),
                "retracting an offered row must match an entry"
            );
        }

        let got = TopKState::merge_sorted(
            vec![state], &keys, 0, usize::MAX, out_schema.clone());
        let want = TopKState::merge_sorted(
            vec![oracle], &keys, 0, usize::MAX, out_schema);
        // Sequence-number tie-breaking must survive retraction: the
        // comparison is the exact row sequence, not a sorted bag.
        let got_rows: Vec<String> = got.rows().iter().map(row_fingerprint).collect();
        let want_rows: Vec<String> = want.rows().iter().map(row_fingerprint).collect();
        prop_assert_eq!(got_rows, want_rows);
    }

    #[test]
    fn distinct_set_counts_multiplicity_and_restores_order(
        base in proptest::collection::vec((0i64..12, 1u8..4), 0..24),
        extra in proptest::collection::vec((100i64..112, 1u8..4), 0..24),
        order_seed in any::<u64>(),
    ) {
        // `base` and `extra` draw from disjoint value ranges so full
        // retraction of the extras must restore the *exact* visible
        // sequence, not just the set.
        let mut set = DistinctSet::new();
        let mut oracle = DistinctSet::new();
        let (mut bi, mut ei) = (0usize, 0usize);
        let mut seed = order_seed;
        while bi < base.len() || ei < extra.len() {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let take_extra = if ei >= extra.len() {
                false
            } else if bi >= base.len() {
                true
            } else {
                (seed >> 40) & 1 == 1
            };
            let (v, copies) = if take_extra {
                ei += 1;
                extra[ei - 1]
            } else {
                bi += 1;
                base[bi - 1]
            };
            for _ in 0..copies {
                set.insert(Value::int(v));
                if v < 100 {
                    oracle.insert(Value::int(v));
                }
            }
        }
        // Multiplicity law: only the removal of the *last* live copy of
        // a value reports "became invisible", and over-draining is an
        // absent no-op. (The same value can appear in several `extra`
        // tuples, so drain per distinct value.)
        let mut totals: std::collections::HashMap<i64, u32> = std::collections::HashMap::new();
        for &(v, copies) in &extra {
            *totals.entry(v).or_default() += copies as u32;
        }
        for (&v, &copies) in &totals {
            for i in 0..copies {
                let became_invisible = set.remove(&Value::int(v));
                prop_assert_eq!(
                    became_invisible,
                    i + 1 == copies,
                    "copy {} of {} for value {}",
                    i + 1,
                    copies,
                    v
                );
            }
            prop_assert!(
                !set.remove(&Value::int(v)),
                "an over-drained value must report absent"
            );
        }
        let got: Vec<String> = set.values().map(|v| format!("{v:?}")).collect();
        let want: Vec<String> = oracle.values().map(|v| format!("{v:?}")).collect();
        prop_assert_eq!(got, want, "full retraction must be order-transparent");
    }
}
