//! The rigid-expansion oracle (DESIGN.md, E13 support): Section 4.2
//! defines satisfaction of a variable-length pattern π through the set
//! `rigid(π)` of rigid patterns it subsumes, and `match(π̄, G, u)` as a bag
//! union over `π̄′ ∈ rigid(π̄)`. Our matcher instead runs a DFS over hop
//! counts. This suite *materializes* `rigid(π)` for bounded ranges,
//! evaluates every rigid expansion separately, takes the bag union, and
//! checks it equals the DFS result — multiplicities included.

use cypher::ast::pattern::{PathPattern, RangeSpec};
use cypher::workload::random_graph;
use cypher::{parse_pattern, EvalContext, Params, PropertyGraph, Value};
use cypher_core::expr::NoVars;
use cypher_core::matching::match_patterns;

/// All rigid expansions of a path pattern with bounded ranges: the
/// cartesian product over each variable-length step's `[lo, hi]` choices,
/// each choice `k` yielding the rigid range `(k, k)`.
fn rigid_expansions(pat: &PathPattern) -> Vec<PathPattern> {
    let mut out = vec![pat.clone()];
    for (i, (rho, _)) in pat.steps.iter().enumerate() {
        if let RangeSpec::Var(lo, hi) = rho.range {
            let lo = lo.unwrap_or(1);
            let hi = hi.expect("oracle requires bounded ranges");
            let mut next = Vec::new();
            for p in &out {
                for k in lo..=hi {
                    let mut q = p.clone();
                    q.steps[i].0.range = RangeSpec::Var(Some(k), Some(k));
                    next.push(q);
                }
            }
            out = next;
        }
    }
    out
}

/// Canonical, comparable form of a match row.
fn canon(rows: Vec<Vec<(String, Value)>>) -> Vec<String> {
    let mut out: Vec<String> = rows
        .into_iter()
        .map(|mut r| {
            r.sort_by(|a, b| a.0.cmp(&b.0));
            r.iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    out.sort();
    out
}

fn check_pattern(g: &PropertyGraph, pattern: &str) {
    let params = Params::new();
    let ctx = EvalContext::new(g, &params);
    let pat = parse_pattern(pattern).unwrap();

    // Direct DFS evaluation.
    let direct = match_patterns(&ctx, &NoVars, std::slice::from_ref(&pat)).unwrap();

    // Oracle: bag union over all rigid expansions.
    let mut oracle = Vec::new();
    for rigid in rigid_expansions(&pat) {
        let rows = match_patterns(&ctx, &NoVars, std::slice::from_ref(&rigid)).unwrap();
        oracle.extend(rows);
    }

    assert_eq!(
        canon(direct),
        canon(oracle),
        "DFS ≠ rigid-expansion oracle for {pattern}"
    );
}

const PATTERNS: &[&str] = &[
    "(a)-[:X*1..3]->(b)",
    "(a)-[:X*0..2]->(b)",
    "(a)-[r:X*1..2]->(b)",
    "(a)-[:X*2..2]->(b)",
    "(a)-[:X*1..2]->(b)-[:Y*1..2]->(c)",
    "(a:A)-[:X*1..3]->(b:B)",
    "(a)-[:X*1..2]-(b)",
    "(a)<-[:X*1..2]-(b)",
    "(a)-[:X*0..1]->(a)",
    "(a)-[:X*1..2]->()-[:Y]->(c)",
];

#[test]
fn oracle_on_random_graphs() {
    for seed in 0..6 {
        let g = random_graph(8, 14, &["A", "B"], &["X", "Y"], seed);
        for p in PATTERNS {
            check_pattern(&g, p);
        }
    }
}

#[test]
fn oracle_on_figure4() {
    let g = cypher::workload::figure4();
    for p in [
        "(x:Teacher)-[:KNOWS*1..2]->(z)-[:KNOWS*1..2]->(y:Teacher)",
        "(x:Teacher)-[:KNOWS*1..2]->()-[:KNOWS*1..2]->(y:Teacher)",
        "(x)-[:KNOWS*1..3]->(y)",
        "(x)-[:KNOWS*0..3]->(y)",
    ] {
        check_pattern(&g, p);
    }
}

#[test]
fn oracle_on_cyclic_graphs() {
    // Cycles stress the relationship-isomorphism bookkeeping.
    let mut g = PropertyGraph::new();
    let a = g.add_node(&["A"], []);
    let b = g.add_node(&["B"], []);
    let c = g.add_node(&[], []);
    g.add_rel(a, b, "X", []).unwrap();
    g.add_rel(b, c, "X", []).unwrap();
    g.add_rel(c, a, "X", []).unwrap();
    g.add_rel(a, a, "X", []).unwrap(); // self-loop
    g.add_rel(b, a, "Y", []).unwrap(); // back edge
    for p in PATTERNS {
        check_pattern(&g, p);
    }
}

#[test]
fn oracle_on_parallel_edges() {
    let mut g = PropertyGraph::new();
    let a = g.add_node(&["A"], []);
    let b = g.add_node(&["B"], []);
    for _ in 0..3 {
        g.add_rel(a, b, "X", []).unwrap();
    }
    g.add_rel(b, a, "X", []).unwrap();
    for p in PATTERNS {
        check_pattern(&g, p);
    }
}

#[test]
fn rigid_expansion_counts() {
    // |rigid(π)| for π with two *1..2 steps is 4, as in Example 4.4.
    let pat = parse_pattern("(x:Teacher)-[:KNOWS*1..2]->(z)-[:KNOWS*1..2]->(y:Teacher)").unwrap();
    assert_eq!(rigid_expansions(&pat).len(), 4);
    let single = parse_pattern("(a)-[:X]->(b)").unwrap();
    assert_eq!(rigid_expansions(&single).len(), 1);
    let wide = parse_pattern("(a)-[:X*0..3]->(b)").unwrap();
    assert_eq!(rigid_expansions(&wide).len(), 4);
}
