//! Differential testing of the **index subsystem**: the engine with the
//! label/property indexes enabled, the engine with them disabled (pure
//! scans + filters), and the reference evaluator must produce identical
//! bags on every read query — including immediately after interleaved
//! updates, which is exactly when a stale index would diverge.
//!
//! The incremental-maintenance obligation mirrors *Answering FO+MOD
//! queries under updates* (Berkholz et al.): each `CREATE`/`DELETE`/`SET`
//! must leave the index answers equal to recomputation from scratch. Here
//! "recomputation" is the index-free engine and the reference oracle.

use cypher::workload::random_graph;
use cypher::{
    explain, run_read_with, run_reference, run_with, EngineConfig, Params, PropertyGraph, Value,
};

/// Read queries whose anchors exercise every index family: label scans,
/// key-only property seeks, composite label+property seeks, multi-label
/// and multi-property patterns, and seeks under OPTIONAL MATCH / MERGE
/// driving rows.
const READ_CORPUS: &[&str] = &[
    "MATCH (n) RETURN count(*) AS c",
    "MATCH (n:A) RETURN n",
    "MATCH (n:B) RETURN count(n) AS c",
    "MATCH (n {v: 3}) RETURN n",
    "MATCH (n:A {v: 3}) RETURN n",
    "MATCH (n:A {v: 3, i: 7}) RETURN n",
    "MATCH (a:A {v: 1})-[r]->(b) RETURN a, b",
    "MATCH (a:A)-[:X]->(b {v: 2}) RETURN a, b",
    "MATCH (a {v: 0})-[:X*1..2]->(b) RETURN a, b",
    "MATCH (a:A {v: 1}), (b:B {v: 2}) RETURN count(*) AS c",
    "MATCH (n:A) WHERE n.v > 2 RETURN n.v AS v ORDER BY v",
    "OPTIONAL MATCH (n:A {v: 9}) RETURN n",
    "MATCH (a:A) OPTIONAL MATCH (a)-[:X]->(b:B {v: 1}) RETURN a, b",
];

/// Asserts the three evaluation strategies agree on `q` over `g`.
fn assert_agree(g: &PropertyGraph, q: &str, params: &Params) {
    let with_idx = run_read_with(g, q, params, &EngineConfig::default())
        .unwrap_or_else(|e| panic!("indexed engine failed on {q}: {e}"));
    let without_idx = run_read_with(g, q, params, &EngineConfig::default().without_indexes())
        .unwrap_or_else(|e| panic!("index-free engine failed on {q}: {e}"));
    let oracle =
        run_reference(g, q, params).unwrap_or_else(|e| panic!("reference failed on {q}: {e}"));
    assert!(
        with_idx.bag_eq(&without_idx),
        "indexes changed the result of {q}\nwith:\n{with_idx}\nwithout:\n{without_idx}"
    );
    assert!(
        with_idx.bag_eq(&oracle),
        "engine diverges from reference on {q}\nengine:\n{with_idx}\nreference:\n{oracle}"
    );
}

#[test]
fn corpus_agrees_on_random_graphs() {
    let params = Params::new();
    for seed in 0..8 {
        let g = random_graph(30, 60, &["A", "B"], &["X", "Y"], seed);
        for q in READ_CORPUS {
            assert_agree(&g, q, &params);
        }
    }
}

#[test]
fn corpus_agrees_after_interleaved_updates() {
    let params = Params::new();
    for seed in 0..4 {
        let mut g = random_graph(20, 30, &["A", "B"], &["X", "Y"], seed);
        // Each step mutates labels, properties or topology through the
        // Cypher surface; after each one every index family must still
        // agree with the scan-based plans and the oracle.
        let steps: &[&str] = &[
            "CREATE (:A {v: 3, fresh: true})-[:X]->(:B {v: 3})",
            "MATCH (n:A {v: 3}) SET n.v = 4",
            "MATCH (n:B) WHERE n.v = 3 SET n:A",
            "MATCH (n:A {v: 4}) REMOVE n:A",
            "MATCH (n {fresh: true}) SET n = {v: 5, recycled: true}",
            "MATCH (n:A {v: 1}) SET n.v = null",
            "MATCH (a:A)-[r:X]->(b:B {v: 2}) DELETE r",
            "MATCH (n {recycled: true}) DETACH DELETE n",
            "MERGE (m:Marker {slot: 1}) ON CREATE SET m.created = true",
            "MERGE (m:Marker {slot: 1}) ON MATCH SET m.matched = true",
            "MATCH (m:Marker) REMOVE m.slot",
        ];
        for step in steps {
            run_with(&mut g, step, &params, &EngineConfig::default())
                .unwrap_or_else(|e| panic!("update step failed ({step}): {e}"));
            for q in READ_CORPUS {
                assert_agree(&g, q, &params);
            }
            assert_agree(&g, "MATCH (m:Marker {slot: 1}) RETURN m", &params);
            assert_agree(&g, "MATCH (m:Marker) RETURN count(*) AS c", &params);
        }
    }
}

#[test]
fn parameterized_seeks_agree() {
    let mut params = Params::new();
    params.insert("wanted".into(), Value::int(2));
    let g = random_graph(40, 60, &["A", "B"], &["X"], 99);
    // A parameter is a planning-time constant: the seek must use it and
    // agree with the oracle.
    let q = "MATCH (n:A {v: $wanted}) RETURN n";
    assert_agree(&g, q, &params);
    let plan = explain(&g, q).unwrap();
    assert!(plan.contains("PropertyIndexSeek"), "{plan}");
}

#[test]
fn explain_surfaces_index_choice() {
    let params = Params::new();
    let mut g = PropertyGraph::new();
    run_with(
        &mut g,
        "CREATE (:Person {name: 'Ada'}), (:Person {name: 'Bo'}), (:Bot {name: 'Ada'})",
        &params,
        &EngineConfig::default(),
    )
    .unwrap();
    let plan = explain(&g, "MATCH (n:Person {name: 'Ada'}) RETURN n").unwrap();
    assert!(
        plan.contains("PropertyIndexSeek(n:Person.name = 'Ada')"),
        "composite seek missing from plan:\n{plan}"
    );
    let label_only = explain(&g, "MATCH (n:Person) RETURN n").unwrap();
    assert!(
        label_only.contains("NodeIndexScan(n:Person)"),
        "label index scan missing from plan:\n{label_only}"
    );
}

#[test]
fn seeks_respect_equality_semantics_on_numerics() {
    // 1 and 1.0 are *equivalent* (same index bucket) and also `=`-equal;
    // the seek plus residual filter must return both, like the oracle.
    let params = Params::new();
    let mut g = PropertyGraph::new();
    run_with(
        &mut g,
        "CREATE (:N {v: 1}), (:N {v: 1.0}), (:N {v: 2})",
        &params,
        &EngineConfig::default(),
    )
    .unwrap();
    assert_agree(&g, "MATCH (n:N {v: 1}) RETURN count(*) AS c", &params);
    assert_agree(&g, "MATCH (n:N {v: 1.0}) RETURN count(*) AS c", &params);
    let t = run_read_with(
        &g,
        "MATCH (n:N {v: 1}) RETURN count(*) AS c",
        &params,
        &EngineConfig::default(),
    )
    .unwrap();
    assert_eq!(t.cell(0, "c"), Some(&Value::int(2)));
}
