//! End-to-end tests of the observability subsystem: `PROFILE`, the
//! engine-wide metrics registry, the structured slow-query log, and
//! their exposition over the wire.
//!
//! What must hold:
//!
//! * **PROFILE is an observer, not a participant** — a profiled query's
//!   result table is bit-identical (same row sequence) to the
//!   unprofiled run of the same statement, across a matrix of
//!   thread-count × morsel-size configurations;
//! * **metrics tell the truth** — query/commit/session counters move by
//!   exactly the amounts the workload implies, histogram counts equal
//!   the sum of their buckets, and turning metrics off freezes every
//!   instrument without changing results;
//! * **the slow-query log fires on its threshold exactly** — threshold
//!   0 logs every query (with hash, rows, cache-hit, commit version and
//!   trace id fields filled truthfully), a huge threshold logs none,
//!   and an unset threshold disables the path entirely;
//! * **the wire exposes all of it** — a `Metrics` request returns a
//!   parseable Prometheus-style page whose counters are monotone under
//!   concurrent load, `PROFILE` over TCP returns structured operator
//!   rows, and a remote write's trace id is witnessed at the WAL seal.

use cypher::{Database, EngineConfig, Params, SlowQueryEntry, SlowQuerySink, Value};
use cypher_client::Client;
use cypher_server::{Server, ServerConfig};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

fn mem_cfg() -> EngineConfig {
    let mut cfg = EngineConfig::default();
    cfg.persistence = None;
    cfg
}

/// Seeds a small two-label graph with enough rows for parallel scans to
/// actually split into morsels.
fn seed(db: &Database, rows: usize) {
    let params = Params::new();
    let mut session = db.session();
    let mut k = 0usize;
    while k < rows {
        let batch = (rows - k).min(200);
        let stmt = (k..k + batch)
            .map(|i| format!("(:P {{x: {i}}})-[:R]->(:Q {{y: {}}})", i * 2))
            .collect::<Vec<_>>()
            .join(", ");
        session
            .query(&format!("CREATE {stmt}"), &params)
            .expect("seed batch");
        k += batch;
    }
}

const QUERIES: &[&str] = &[
    "MATCH (p:P) RETURN p.x ORDER BY p.x",
    "MATCH (p:P) WHERE p.x < 50 RETURN p.x ORDER BY p.x",
    "MATCH (p:P)-[:R]->(q:Q) RETURN p.x, q.y ORDER BY p.x",
    "MATCH (p:P) RETURN count(p) AS c, sum(p.x) AS s",
    "MATCH (p:P)-[:R]->(q) WHERE q.y > 100 RETURN count(q) AS c",
];

// ---------------------------------------------------------------------
// PROFILE: bit-identical results, structured output, update refusal.
// ---------------------------------------------------------------------

/// A profiled query must return exactly the rows of its unprofiled twin
/// — same multiset, same order — no matter how the executor is
/// parallelised.
#[test]
fn profile_results_bit_identical_across_parallel_configs() {
    let params = Params::new();
    for &(threads, morsel) in &[(1usize, 1024usize), (2, 1), (3, 7), (4, 64), (8, 1024)] {
        let mut cfg = mem_cfg();
        cfg.num_threads = threads;
        cfg.morsel_size = morsel;
        let db = Database::open_with(cfg).expect("open");
        seed(&db, 300);
        let mut session = db.session();
        for q in QUERIES {
            let plain = session.query(q, &params).expect("plain run");
            let report = db.profile(q, &params).expect("profiled run");
            assert!(
                report.result.ordered_eq(&plain),
                "threads={threads} morsel={morsel}: profiled rows diverged for {q}"
            );
            assert_eq!(report.profile.rows, plain.len() as u64);
            // The annotated text names at least one operator and the
            // structured table is one row per operator.
            assert!(!report.profile.clauses.is_empty());
            assert!(!report.operators.is_empty());
            assert_eq!(
                report.operators.schema().names(),
                &["clause", "operator", "est_rows", "rows", "batches", "time_us"]
            );
        }
    }
}

/// `PROFILE` is read-only: an update under it must refuse rather than
/// commit as a side effect of being observed. The prefix itself is
/// accepted and stripped by [`Database::profile`].
#[test]
fn profile_strips_prefix_and_refuses_updates() {
    let db = Database::open_with(mem_cfg()).expect("open");
    seed(&db, 20);
    let params = Params::new();
    let bare = db.profile("MATCH (p:P) RETURN p.x", &params).expect("bare");
    let prefixed = db
        .profile("PROFILE MATCH (p:P) RETURN p.x", &params)
        .expect("prefixed");
    assert!(bare.result.ordered_eq(&prefixed.result));
    let before = db.version();
    let err = db
        .profile("CREATE (:Nope)", &params)
        .map(|r| r.text)
        .unwrap_err();
    assert!(err.to_string().contains("read-only"), "got: {err}");
    assert_eq!(db.version(), before, "refused PROFILE must not commit");
}

/// Through the normal statement path, `PROFILE <q>` answers the
/// structured per-operator table — that is what a remote client sees.
#[test]
fn profile_statement_returns_operator_rows() {
    let db = Database::open_with(mem_cfg()).expect("open");
    seed(&db, 20);
    let mut session = db.session();
    let t = session
        .query(
            "PROFILE MATCH (p:P)-[:R]->(q:Q) RETURN p.x, q.y",
            &Params::new(),
        )
        .expect("profile statement");
    assert_eq!(
        t.schema().names(),
        &["clause", "operator", "est_rows", "rows", "batches", "time_us"]
    );
    assert!(!t.is_empty());
}

/// Every `EXPLAIN` plan line of a `MATCH` step carries the planner's
/// estimated cardinality next to what will actually run.
#[test]
fn explain_lines_carry_estimates() {
    let db = Database::open_with(mem_cfg()).expect("open");
    seed(&db, 50);
    let mut session = db.session();
    let t = session
        .query(
            "EXPLAIN MATCH (p:P)-[:R]->(q:Q) RETURN p.x, q.y",
            &Params::new(),
        )
        .expect("explain");
    assert_eq!(t.schema().names(), &["plan"]);
    let mut step_lines = 0usize;
    for row in t.rows() {
        if let Some(line) = row.values().first().and_then(Value::as_str) {
            if line.contains("(est rows:") {
                step_lines += 1;
            }
        }
    }
    assert!(step_lines >= 2, "expected estimates on plan steps: {t:?}");
}

// ---------------------------------------------------------------------
// Metrics registry: counters move exactly, histograms stay consistent.
// ---------------------------------------------------------------------

#[test]
fn metrics_counters_track_the_workload_exactly() {
    let db = Database::open_with(mem_cfg()).expect("open");
    let m = db.metrics();
    assert!(m.enabled());
    seed(&db, 40);
    let params = Params::new();
    let mut session = db.session();

    let reads0 = m.queries_read.get();
    let writes0 = m.queries_write.get();
    let failed0 = m.queries_failed.get();
    let rows0 = m.rows_returned.get();
    let lat0 = m.query_latency_us.snapshot().count;

    let t = session
        .query("MATCH (p:P) RETURN p.x ORDER BY p.x", &params)
        .expect("read");
    session
        .query("CREATE (:P {x: -1})", &params)
        .expect("write");
    session.query("RETURN nosuch", &params).unwrap_err();

    // A failed statement still counts as the read (or write) it was,
    // *plus* one failure — `failed / (read + write)` is the error rate.
    assert_eq!(m.queries_read.get(), reads0 + 2);
    assert_eq!(m.queries_write.get(), writes0 + 1);
    assert_eq!(m.queries_failed.get(), failed0 + 1);
    // Only the successful read returned rows (`CREATE` returns none).
    assert_eq!(m.rows_returned.get(), rows0 + t.len() as u64);
    // Reads, writes and failures all pay one latency observation.
    let lat = m.query_latency_us.snapshot();
    assert_eq!(lat.count, lat0 + 3);
    assert_eq!(lat.count, lat.buckets.iter().sum::<u64>());
    assert!(m.commit_groups.get() >= 1, "the writes sealed groups");

    // Session gauges: one live session here; a pin moves the pinned
    // gauge and the pin registry's age witness.
    assert_eq!(m.sessions_active.get(), 1);
    assert_eq!(m.sessions_pinned.get(), 0);
    session.begin_read();
    assert_eq!(m.sessions_pinned.get(), 1);
    session.commit();
    assert_eq!(m.sessions_pinned.get(), 0);
    drop(session);
    assert_eq!(m.sessions_active.get(), 0);
}

/// With `metrics_enabled = false` results are unchanged and every
/// instrument stays at zero — the off switch is really off.
#[test]
fn disabled_metrics_freeze_but_do_not_change_results() {
    let mut cfg = mem_cfg();
    cfg.metrics_enabled = false;
    let db = Database::open_with(cfg).expect("open");
    seed(&db, 30);
    let params = Params::new();
    let mut session = db.session();
    let on_db = Database::open_with(mem_cfg()).expect("open twin");
    seed(&on_db, 30);
    let mut on_session = on_db.session();
    for q in QUERIES {
        let off = session.query(q, &params).expect("metrics-off run");
        let on = on_session.query(q, &params).expect("metrics-on run");
        assert!(off.ordered_eq(&on), "metrics toggle changed rows for {q}");
    }
    let m = db.metrics();
    assert!(!m.enabled());
    assert_eq!(m.queries_read.get(), 0);
    assert_eq!(m.queries_write.get(), 0);
    assert_eq!(m.query_latency_us.snapshot().count, 0);
    assert_eq!(m.sessions_active.get(), 0);
    // The page still renders, and says the registry is off.
    let snap = db.metrics_snapshot();
    assert!(snap.text.contains("cypher_metrics_enabled 0"));
}

/// The rendered exposition parses line by line: every non-comment line
/// is `name[{labels}] value` with a numeric value, and histogram
/// `_count` lines agree with their cumulative last bucket.
#[test]
fn metrics_snapshot_text_parses() {
    let db = Database::open_with(mem_cfg()).expect("open");
    seed(&db, 25);
    let mut session = db.session();
    let params = Params::new();
    for q in QUERIES {
        session.query(q, &params).expect("warm instruments");
    }
    let snap = db.metrics_snapshot();
    assert_eq!(snap.version, db.version());
    let samples = parse_exposition(&snap.text);
    assert!(samples.get("cypher_queries_read_total").copied() >= Some(5.0));
    assert!(samples.contains_key("cypher_uptime_ms"));
    assert!(samples.contains_key("cypher_query_latency_us_sum"));
    assert_eq!(
        samples.get("cypher_query_latency_us_count"),
        samples.get("cypher_query_latency_us_bucket{le=\"+Inf\"}"),
        "histogram count must equal its +Inf cumulative bucket"
    );
}

/// Splits a Prometheus-style page into `name -> value` samples,
/// panicking on any malformed line.
fn parse_exposition(text: &str) -> HashMap<String, f64> {
    let mut out = HashMap::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("unsplittable sample line: {line:?}"));
        let value: f64 = value
            .parse()
            .unwrap_or_else(|e| panic!("bad value in {line:?}: {e}"));
        out.insert(name.to_string(), value);
    }
    out
}

// ---------------------------------------------------------------------
// Slow-query log: threshold exactness and truthful fields.
// ---------------------------------------------------------------------

#[derive(Default)]
struct CaptureSink(Mutex<Vec<SlowQueryEntry>>);

impl SlowQuerySink for CaptureSink {
    fn record(&self, entry: &SlowQueryEntry) {
        self.0.lock().unwrap().push(entry.clone());
    }
}

#[test]
fn slow_query_log_threshold_zero_logs_everything_truthfully() {
    let mut cfg = mem_cfg();
    cfg.slow_query_ms = Some(0);
    let db = Database::open_with(cfg).expect("open");
    let sink = Arc::new(CaptureSink::default());
    db.set_slow_query_sink(Arc::clone(&sink) as Arc<dyn SlowQuerySink>);
    let params = Params::new();
    let mut session = db.session();

    session
        .query("CREATE (:P {x: 1}), (:P {x: 2})", &params)
        .expect("write");
    let t = session
        .query("MATCH (p:P) RETURN p.x ORDER BY p.x", &params)
        .expect("read");
    session.query("RETURN nosuch", &params).unwrap_err();
    session
        .query_traced("MATCH (p:P) RETURN p.x ORDER BY p.x", &params, 99)
        .expect("traced read");

    let entries = sink.0.lock().unwrap().clone();
    assert_eq!(
        entries.len(),
        4,
        "threshold 0 logs every query: {entries:?}"
    );

    let write = &entries[0];
    assert!(write.write);
    assert_eq!(write.committed_version, Some(db.version()));
    assert_eq!(write.trace_id, None);

    let read = &entries[1];
    assert!(!read.write);
    assert_eq!(read.rows, Some(t.len() as u64));
    assert_eq!(read.committed_version, None);

    let failed = &entries[2];
    assert_eq!(failed.rows, None, "failed queries log rows=err");

    let traced = &entries[3];
    assert_eq!(traced.trace_id, Some(99));
    assert_eq!(
        traced.query_hash, read.query_hash,
        "same text, same hash — that is what makes the log groupable"
    );
    assert_ne!(write.query_hash, read.query_hash);

    // The rendered line is one machine-parseable record.
    let line = traced.to_string();
    assert!(line.starts_with("slow_query "), "got: {line}");
    for key in [
        "query_hash=",
        "duration_us=",
        "rows=",
        "cache_hit=",
        "trace_id=99",
    ] {
        assert!(line.contains(key), "missing {key} in {line}");
    }
    assert_eq!(db.metrics().slow_queries.get(), 4);
}

#[test]
fn slow_query_log_high_threshold_and_unset_stay_silent() {
    for threshold in [Some(u64::MAX), None] {
        let mut cfg = mem_cfg();
        cfg.slow_query_ms = threshold;
        let db = Database::open_with(cfg).expect("open");
        let sink = Arc::new(CaptureSink::default());
        db.set_slow_query_sink(Arc::clone(&sink) as Arc<dyn SlowQuerySink>);
        let params = Params::new();
        let mut session = db.session();
        session.query("CREATE (:P {x: 1})", &params).expect("write");
        session
            .query("MATCH (p:P) RETURN p.x", &params)
            .expect("read");
        assert!(
            sink.0.lock().unwrap().is_empty(),
            "threshold {threshold:?} must not log sub-threshold queries"
        );
        assert_eq!(db.metrics().slow_queries.get(), 0);
    }
}

/// A write's trace id survives the whole pipeline: session → pending
/// commit → group seal, where the registry witnesses it.
#[test]
fn trace_ids_are_witnessed_at_the_seal() {
    let db = Database::open_with(mem_cfg()).expect("open");
    assert_eq!(db.metrics().last_sealed_trace(), None);
    let params = Params::new();
    let mut session = db.session();
    session
        .query_traced("CREATE (:P {x: 7})", &params, 0xDEAD_BEEF)
        .expect("traced write");
    assert_eq!(db.metrics().last_sealed_trace(), Some(0xDEAD_BEEF));
    // Untraced writes do not overwrite the witness with garbage.
    session
        .query("CREATE (:P {x: 8})", &params)
        .expect("untraced write");
    assert_eq!(db.metrics().last_sealed_trace(), Some(0xDEAD_BEEF));
    // The one unrepresentable id, u64::MAX, clamps rather than erasing
    // the witness.
    session
        .query_traced("CREATE (:P {x: 9})", &params, u64::MAX)
        .expect("max-id write");
    assert_eq!(db.metrics().last_sealed_trace(), Some(u64::MAX - 1));
}

// ---------------------------------------------------------------------
// Over the wire: Metrics requests under load, PROFILE rows, trace ids.
// ---------------------------------------------------------------------

fn start_server() -> Server {
    let db = Database::open_with(mem_cfg()).expect("open");
    Server::bind(db, "127.0.0.1:0", ServerConfig::default()).expect("bind")
}

#[test]
fn wire_metrics_page_is_monotone_and_parseable_under_load() {
    let server = start_server();
    let addr = server.local_addr();
    let workers: Vec<_> = (0..4)
        .map(|w| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let params = Params::new();
                for i in 0..40 {
                    if i % 8 == 0 {
                        client
                            .query(&format!("CREATE (:W {{w: {w}, i: {i}}})"), &params)
                            .expect("remote write");
                    } else {
                        client
                            .query("MATCH (n:W) RETURN count(n) AS c", &params)
                            .expect("remote read");
                    }
                }
                client.goodbye().expect("goodbye");
            })
        })
        .collect();

    let mut poller = Client::connect(addr).expect("connect poller");
    let mut last_requests = 0.0f64;
    let mut last_uptime = 0u64;
    for _ in 0..20 {
        let page = poller.metrics().expect("metrics request");
        assert!(page.uptime_ms >= last_uptime);
        last_uptime = page.uptime_ms;
        let samples = parse_exposition(&page.text);
        let requests = samples["cypher_server_requests_total"];
        assert!(
            requests >= last_requests,
            "requests counter went backwards: {requests} < {last_requests}"
        );
        last_requests = requests;
        assert!(samples["cypher_server_connections"] >= 1.0);
        assert_eq!(samples["cypher_server_frame_errors_total"], 0.0);
    }
    for w in workers {
        w.join().expect("worker");
    }
    let page = poller.metrics().expect("final metrics");
    let samples = parse_exposition(&page.text);
    // 4 workers × 40 statements, plus this poller's traffic.
    assert!(samples["cypher_server_requests_query_total"] >= 160.0);
    assert!(samples["cypher_queries_write_total"] >= 4.0 * 5.0);
    assert!(samples["cypher_server_bytes_in_total"] > 0.0);
    assert!(samples["cypher_server_bytes_out_total"] > 0.0);
    assert_eq!(page.version, server.db().version());
    poller.goodbye().expect("goodbye");
}

#[test]
fn wire_profile_returns_structured_rows_and_seal_sees_the_trace() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let params = Params::new();
    client
        .query("CREATE (:P {x: 1})-[:R]->(:Q {y: 2})", &params)
        .expect("remote write");
    // The remote write was stamped (conn_id << 32) | req_seq by the
    // server; the seal witnessed some such nonzero id.
    let sealed = server.db().metrics().last_sealed_trace();
    assert!(sealed.is_some_and(|t| t > 0), "got {sealed:?}");

    let rows = client
        .query("PROFILE MATCH (p:P)-[:R]->(q:Q) RETURN p.x, q.y", &params)
        .expect("remote profile");
    assert_eq!(
        rows.table.schema().names(),
        &["clause", "operator", "est_rows", "rows", "batches", "time_us"]
    );
    assert!(!rows.table.is_empty());
    client.goodbye().expect("goodbye");
}
