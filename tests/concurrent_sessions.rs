//! Differential testing of **snapshot-isolated concurrent sessions**: N
//! reader threads replay generated queries against pinned snapshots
//! while a single writer streams generated update statements, commit by
//! commit. Every reader records the version it pinned; afterwards a
//! sequential oracle replays the same deterministic statement stream and
//! re-evaluates every recorded query at exactly that reader's version.
//!
//! What must hold, for every one of ≥ 200 generated workloads:
//!
//! * **snapshot correctness** — a reader's rows are *exactly* (same row
//!   sequence) what the sequential engine produces on the oracle graph
//!   at the reader's pinned version, and a bag-equal match for the
//!   reference evaluator (the paper's denotational semantics);
//! * **no torn reads** — a reader can never observe a mid-batch state:
//!   any such observation would match no committed prefix of the
//!   statement stream and fail the oracle comparison;
//! * **repeatable reads** — re-running a query inside one read
//!   transaction returns bit-identical rows, no matter how many commits
//!   landed in between;
//! * **readers are not blocked by the writer** — reader queries complete
//!   *while a write batch is open*; the run asserts such overlapped
//!   completions were actually observed (across the whole run, so a
//!   single unlucky scheduling slice cannot flake the suite).
//!
//! Workload count is tunable via `CYPHER_CONC_WORKLOADS` (default 200,
//! the acceptance floor); reader-thread count via `CYPHER_CONC_READERS`
//! (default 3; CI runs 2 and 8).

use cypher::workload::QueryGenerator;
use cypher::{
    run_read_with, run_reference, run_with, Database, EngineConfig, Params, PropertyGraph, Table,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

fn workload_count() -> u64 {
    std::env::var("CYPHER_CONC_WORKLOADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200)
}

fn reader_count() -> usize {
    std::env::var("CYPHER_CONC_READERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(3)
}

/// The engine configuration of both the live database and the oracle.
/// The plan cache is disabled so every query is planned freshly against
/// the statistics of its own snapshot — that makes *row order* (not just
/// the multiset) a pure function of the pinned version, which is what
/// the exact-sequence assertion needs. Plan-cache sharing across
/// sessions has its own suite (`tests/plan_cache.rs`).
fn conc_cfg() -> EngineConfig {
    let mut cfg = EngineConfig::default();
    cfg.persistence = None;
    cfg.plan_cache_size = 0;
    cfg
}

/// One reader observation: the pinned version, the query, and what the
/// session returned (errors by message — both sides must agree on those
/// too).
struct Observation {
    version: u64,
    query: String,
    outcome: Result<Table, String>,
}

/// Replays `seeds` then a growing prefix of `updates` on a fresh graph,
/// re-evaluating each observation at its pinned version. `prefix_of`
/// maps a published version to the statement prefix that produced it.
fn check_against_oracle(
    label: &str,
    seeds: &[String],
    updates: &[String],
    prefix_of: &HashMap<u64, usize>,
    mut observations: Vec<Observation>,
    params: &Params,
    cfg: &EngineConfig,
) {
    observations.sort_by_key(|o| o.version);
    let mut oracle = PropertyGraph::new();
    for s in seeds {
        run_with(&mut oracle, s, params, cfg)
            .unwrap_or_else(|e| panic!("{label}: oracle seed failed on {s}: {e}"));
    }
    let mut applied = 0usize;
    for obs in &observations {
        let need = *prefix_of.get(&obs.version).unwrap_or_else(|| {
            panic!(
                "{label}: reader pinned version {} which no commit ever published — \
                 a torn or invented state",
                obs.version
            )
        });
        while applied < need {
            run_with(&mut oracle, &updates[applied], params, cfg).unwrap_or_else(|e| {
                panic!("{label}: oracle update failed on {}: {e}", updates[applied])
            });
            applied += 1;
        }
        match &obs.outcome {
            Ok(table) => {
                // Exact row sequence vs the sequential engine at the
                // pinned version (the engine's output is deterministic
                // per version, independent of threads/morsels).
                let seq = run_read_with(&oracle, &obs.query, params, cfg).unwrap_or_else(|e| {
                    panic!(
                        "{label}: oracle engine errored where the reader succeeded \
                         on {} at v{}: {e}",
                        obs.query, obs.version
                    )
                });
                assert!(
                    table.ordered_eq(&seq),
                    "{label}: reader rows diverge from the sequential oracle \
                     on {} at v{}\nreader:\n{table}\noracle:\n{seq}",
                    obs.query,
                    obs.version
                );
                // And the reference semantics agree on the multiset.
                let reference = run_reference(&oracle, &obs.query, params)
                    .unwrap_or_else(|e| panic!("{label}: reference failed on {}: {e}", obs.query));
                assert!(
                    table.bag_eq(&reference),
                    "{label}: reader diverges from the reference oracle on {} at v{}\
                     \nreader:\n{table}\nreference:\n{reference}",
                    obs.query,
                    obs.version
                );
            }
            Err(msg) => {
                let oracle_err = run_read_with(&oracle, &obs.query, params, cfg)
                    .err()
                    .unwrap_or_else(|| {
                        panic!(
                            "{label}: reader errored ({msg}) but the oracle succeeded \
                             on {} at v{}",
                            obs.query, obs.version
                        )
                    });
                assert_eq!(
                    msg,
                    &oracle_err.to_string(),
                    "{label}: error drift on {} at v{}",
                    obs.query,
                    obs.version
                );
            }
        }
    }
}

/// Runs one generated workload; returns how many reader queries were
/// observed to complete while a write batch was open.
fn run_workload(seed: u64, readers: usize, params: &Params) -> usize {
    let label = format!("workload {seed}");
    let cfg = conc_cfg();

    // Deterministic statement streams: a seeding prefix, then the
    // concurrent update stream. One mid-stream statement is a *bulk*
    // batch (thousands of rows in one transaction), so every workload
    // has a write window wide enough for readers to visibly complete
    // inside it even on a single-core machine.
    let mut gen = QueryGenerator::new(seed);
    let seeds: Vec<String> = (0..8).map(|_| gen.next_update()).collect();
    let mut updates: Vec<String> = (0..10).map(|_| gen.next_update()).collect();
    updates.insert(
        5,
        format!(
            "UNWIND range(1, 800) AS b CREATE (:A {{i: {}, v: 7, bulk: b}})",
            20_000 + (seed % 1000)
        ),
    );
    // Per-reader query streams (disjoint generator seeds). Readers
    // cycle their stream until the writer finishes, so observations
    // spread across the whole version history.
    let query_streams: Vec<Vec<String>> = (0..readers)
        .map(|r| {
            let mut qg = QueryGenerator::new(seed.wrapping_mul(31).wrapping_add(r as u64 + 1));
            (0..4).map(|_| qg.next_query()).collect()
        })
        .collect();

    let db = Database::open_with(cfg.clone()).expect("in-memory open");
    let mut seeder = db.session();
    for s in &seeds {
        seeder
            .query(s, params)
            .unwrap_or_else(|e| panic!("{label}: seed statement failed on {s}: {e}"));
    }
    let base_version = db.version();

    // version → number of update statements applied when it was
    // published. Statements that mutate nothing publish nothing; a later
    // entry overwriting the same version is therefore content-identical.
    let commit_log: Mutex<Vec<(u64, usize)>> = Mutex::new(Vec::new());
    let writer_busy = AtomicBool::new(false);
    let writer_done = AtomicBool::new(false);
    let overlapped = AtomicUsize::new(0);
    let barrier = Barrier::new(readers + 1);

    let mut writer_session = db.session();
    let reader_sessions: Vec<_> = (0..readers).map(|_| db.session()).collect();

    let observations: Vec<Observation> = std::thread::scope(|sc| {
        let commit_log = &commit_log;
        let writer_busy = &writer_busy;
        let writer_done = &writer_done;
        let overlapped = &overlapped;
        let barrier = &barrier;
        let updates = &updates;

        let writer = sc.spawn(move || {
            barrier.wait();
            for (i, stmt) in updates.iter().enumerate() {
                writer_busy.store(true, Ordering::SeqCst);
                writer_session
                    .query(stmt, params)
                    .unwrap_or_else(|e| panic!("update statement failed on {stmt}: {e}"));
                writer_busy.store(false, Ordering::SeqCst);
                let v = writer_session.snapshot().version();
                commit_log.lock().unwrap().push((v, i));
            }
            writer_done.store(true, Ordering::SeqCst);
        });

        let handles: Vec<_> = reader_sessions
            .into_iter()
            .zip(&query_streams)
            .map(|(mut session, queries)| {
                sc.spawn(move || {
                    barrier.wait();
                    let mut out = Vec::new();
                    let mut round = 0usize;
                    // At least one full pass; then keep cycling while
                    // the writer is still committing (bounded).
                    while round == 0 || (!writer_done.load(Ordering::SeqCst) && round < 16) {
                        for q in queries {
                            let version = session.begin_read();
                            let first = session.query(q, params).map_err(|e| e.to_string());
                            // The writer never holds a lock a reader
                            // needs: a query completing while the flag
                            // is up just finished *inside* an open
                            // write batch.
                            if writer_busy.load(Ordering::SeqCst) {
                                overlapped.fetch_add(1, Ordering::Relaxed);
                            }
                            // Repeatable reads: same pin, same rows —
                            // no matter what committed meanwhile.
                            let again = session.query(q, params).map_err(|e| e.to_string());
                            match (&first, &again) {
                                (Ok(a), Ok(b)) => assert!(
                                    a.ordered_eq(b),
                                    "read transaction at v{version} was not repeatable on {q}\
                                     \nfirst:\n{a}\nagain:\n{b}"
                                ),
                                (a, b) => assert_eq!(
                                    a.as_ref().err(),
                                    b.as_ref().err(),
                                    "repeatable-read error drift on {q}"
                                ),
                            }
                            session.commit();
                            out.push(Observation {
                                version,
                                query: q.clone(),
                                outcome: first,
                            });
                        }
                        round += 1;
                    }
                    out
                })
            })
            .collect();

        writer.join().expect("writer thread");
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("reader thread"))
            .collect()
    });

    // Every pinned version must be a published one.
    let mut prefix_of: HashMap<u64, usize> = HashMap::new();
    prefix_of.insert(base_version, 0);
    for (v, i) in commit_log.into_inner().unwrap() {
        prefix_of.insert(v, i + 1);
    }

    check_against_oracle(
        &label,
        &seeds,
        &updates,
        &prefix_of,
        observations,
        params,
        &cfg,
    );
    overlapped.load(Ordering::Relaxed)
}

#[test]
fn concurrent_readers_match_the_sequential_oracle_at_their_pinned_versions() {
    let params = Params::new();
    let readers = reader_count();
    let n = workload_count();
    // CYPHER_TEST_SEED replays exactly one workload seed (the failure
    // messages name it as `workload <seed>`); default sweeps the range.
    let workload_seeds: Vec<u64> = match std::env::var("CYPHER_TEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        Some(seed) => {
            eprintln!("CYPHER_TEST_SEED={seed}: replaying a single workload");
            vec![seed]
        }
        None => (0..n).map(|w| 0xC0FFEE + w).collect(),
    };
    let mut overlapped_total = 0usize;
    for seed in workload_seeds {
        overlapped_total += run_workload(seed, readers, &params);
    }
    // Readers must actually have proceeded during open write batches.
    // Asserted across the whole run: per-workload scheduling on a small
    // machine can legitimately serialize a single round.
    assert!(
        overlapped_total > 0,
        "no reader query ever completed while a write batch was open \
         ({n} workloads × {readers} readers) — readers appear to be \
         blocked by the writer"
    );
}

/// A reader holding one pinned snapshot across a long streak of commits:
/// the view must stay frozen (same rows, same version) from first to
/// last, while an unpinned session tracks the head.
#[test]
fn long_pin_stays_frozen_under_write_pressure() {
    let params = Params::new();
    let db = Database::open_with(conc_cfg()).expect("in-memory open");
    let mut writer = db.session();
    let mut pinned = db.session();
    let mut head = db.session();
    writer.query("CREATE (:A {v: 0})", &params).unwrap();
    let v = pinned.begin_read();
    let frozen = pinned
        .query("MATCH (n:A) RETURN n.v AS v ORDER BY v", &params)
        .unwrap();
    for i in 1..=150 {
        writer
            .query(&format!("CREATE (:A {{v: {i}}})"), &params)
            .unwrap();
        if i % 25 == 0 {
            let again = pinned
                .query("MATCH (n:A) RETURN n.v AS v ORDER BY v", &params)
                .unwrap();
            assert!(
                again.ordered_eq(&frozen),
                "pinned view drifted at commit {i}"
            );
            assert_eq!(pinned.version(), Some(v));
            let now = head
                .query("MATCH (n:A) RETURN count(*) AS c", &params)
                .unwrap();
            assert_eq!(
                format!("{:?}", now.cell(0, "c").unwrap()),
                format!("Integer({})", i + 1),
                "unpinned session must track the latest version"
            );
        }
    }
    assert_eq!(db.version(), 151);
}

/// A writer holds a **single write batch open** (one multi-clause query
/// over a large `UNWIND`) while readers pin snapshots, finish queries
/// and release, repeatedly — demonstrating that reader admission never
/// waits on the writer's in-flight transaction.
#[test]
fn readers_complete_while_one_write_batch_is_open() {
    let params = Params::new();
    let db = Database::open_with(conc_cfg()).expect("in-memory open");
    let mut seeder = db.session();
    seeder.query("CREATE (:Seed {v: 1})", &params).unwrap();
    let base = db.version();

    let started = AtomicBool::new(false);
    let done = AtomicBool::new(false);
    let mut writer = db.session();
    let mut reader = db.session();

    let params = &params;
    std::thread::scope(|sc| {
        let started = &started;
        let done = &done;
        let w = sc.spawn(move || {
            started.store(true, Ordering::SeqCst);
            // One query = one write batch: thousands of CREATEs inside a
            // single open transaction.
            writer
                .query("UNWIND range(1, 20000) AS i CREATE (:Bulk {i: i})", &params)
                .unwrap();
            done.store(true, Ordering::SeqCst);
        });
        // Readers run until the writer finishes; every query that
        // completes after `started` and before `done` completed while
        // the batch was open.
        let mut completed_during_batch = 0usize;
        let mut spins = 0usize;
        while !done.load(Ordering::SeqCst) {
            let v = reader.begin_read();
            let t = reader
                .query("MATCH (n:Bulk) RETURN count(*) AS c", &params)
                .unwrap();
            let still_open = started.load(Ordering::SeqCst) && !done.load(Ordering::SeqCst);
            reader.commit();
            // The batch is all-or-nothing: either the pre-batch version
            // (no Bulk nodes) or the committed one (all 20000) — any
            // other count is a torn mid-batch observation.
            let count = format!("{:?}", t.cell(0, "c").unwrap());
            match v {
                v if v == base => assert_eq!(count, "Integer(0)", "torn state at v{v}"),
                v if v == base + 1 => assert_eq!(count, "Integer(20000)", "torn state at v{v}"),
                other => panic!("reader pinned unpublished version {other}"),
            }
            // Completing a pre-batch read while the writer is still
            // inside its transaction is exactly "a reader proceeding
            // while a write batch is open".
            if v == base && still_open {
                completed_during_batch += 1;
            }
            spins += 1;
            if spins > 5_000_000 {
                panic!("writer never finished; readers starved it?");
            }
        }
        w.join().unwrap();
        assert!(
            completed_during_batch > 0,
            "no reader query completed inside the open write batch"
        );
    });

    // The batch became visible atomically.
    assert_eq!(db.version(), base + 1);
    let mut check = db.session();
    let t = check
        .query("MATCH (n:Bulk) RETURN count(*) AS c", &params)
        .unwrap();
    assert_eq!(format!("{:?}", t.cell(0, "c").unwrap()), "Integer(20000)");
}
