//! End-to-end tests of the TCP front-end: real sockets, real frames,
//! real concurrency.
//!
//! * **Differential harness** — N client threads replay generated
//!   update + query workloads over TCP against one server; every
//!   pinned-read observation is re-evaluated by an in-process
//!   [`Session`] oracle replaying the committed statements in published
//!   version order. Rows must match exactly (same sequence), errors by
//!   message, and pinned reads must be repeatable across interleaved
//!   remote writers.
//! * **Hardening** — hostile bytes (wrong magic, hostile length
//!   prefixes, garbage payloads, random blobs) can neither kill the
//!   server nor make it over-allocate; statement failures (parse, eval,
//!   update-while-pinned, poisoned write path, handler panics) answer
//!   structured protocol errors on a connection that stays usable.
//! * **Lifecycle** — abrupt disconnects release the session and its
//!   pinned version; the connection cap answers `Limit`; a durable
//!   database round-trips through server shutdown and reopen.
//!
//! Workload count for the differential harness is tunable via
//! `CYPHER_TCP_WORKLOADS` (default 4).

use cypher::workload::QueryGenerator;
use cypher::{Database, EngineConfig, Params, Value};
use cypher_client::{Client, ClientError};
use cypher_server::{Server, ServerConfig};
use cypher_wire::{
    client_handshake, read_exact_frame, write_frame, ErrorCode, Request, Response,
    DEFAULT_MAX_FRAME_BYTES,
};
use std::collections::HashSet;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

fn mem_cfg(plan_cache: bool) -> EngineConfig {
    let mut cfg = EngineConfig::default();
    cfg.persistence = None;
    if !plan_cache {
        // Row order becomes a pure function of the pinned version when
        // every query is planned against its own snapshot's statistics
        // (same rationale as tests/concurrent_sessions.rs).
        cfg.plan_cache_size = 0;
    }
    cfg
}

fn start(cfg: EngineConfig, server_cfg: ServerConfig) -> Server {
    let db = Database::open_with(cfg).expect("open database");
    Server::bind(db, "127.0.0.1:0", server_cfg).expect("bind server")
}

fn connect(server: &Server) -> Client {
    Client::connect(server.local_addr()).expect("connect client")
}

fn wait_until(label: &str, mut cond: impl FnMut() -> bool) {
    for _ in 0..5000 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("timed out waiting for {label}");
}

// ---------------------------------------------------------------------
// Exactness: remote execution vs the in-process session, one to one.
// ---------------------------------------------------------------------

/// Every remote answer — auto-commit queries and prepared `EXECUTE`s
/// with fresh parameter bindings — must equal what an in-process
/// [`cypher::Session`] produces for the same statement stream.
#[test]
fn remote_results_match_in_process_session_exactly() {
    let server = start(mem_cfg(true), ServerConfig::default());
    let oracle_db = Database::open_with(mem_cfg(true)).expect("oracle open");
    let mut oracle = oracle_db.session();
    let mut client = connect(&server);
    let params = Params::new();

    let setup = [
        "CREATE (:Person {name: 'Nils', age: 40})-[:KNOWS]->(:Person {name: 'Tobias', age: 37})",
        "CREATE (:Person {name: 'Petra', age: 41})",
        "MATCH (a:Person {name: 'Petra'}), (b:Person {name: 'Nils'}) CREATE (a)-[:KNOWS]->(b)",
    ];
    for stmt in setup {
        let remote = client.query(stmt, &params).expect("remote setup");
        let local = oracle.query(stmt, &params).expect("oracle setup");
        assert!(
            remote.table.ordered_eq(&local),
            "setup diverged on {stmt}\nremote:\n{}\noracle:\n{local}",
            remote.table
        );
        assert!(remote.committed.is_some(), "setup must commit");
    }

    let reads = [
        "MATCH (p:Person) RETURN p.name AS name, p.age AS age ORDER BY name",
        "MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a.name, b.name ORDER BY a.name",
        "MATCH (p:Person) WHERE p.age > 38 RETURN count(*) AS c",
    ];
    for q in reads {
        let remote = client.query(q, &params).expect("remote read");
        let local = oracle.query(q, &params).expect("oracle read");
        assert!(
            remote.table.ordered_eq(&local),
            "read diverged on {q}\nremote:\n{}\noracle:\n{local}",
            remote.table
        );
        assert!(remote.committed.is_none(), "reads commit nothing");
    }

    // Prepared statement, executed with a fresh binding each time.
    let text = "MATCH (p:Person {name: $who}) RETURN p.age AS age";
    let stmt = client.prepare(text).expect("prepare");
    for who in ["Nils", "Tobias", "Petra", "Nobody"] {
        let mut p = Params::new();
        p.insert("who".to_string(), Value::from(who));
        let remote = client.execute(stmt, &p).expect("execute");
        let local = oracle.query(text, &p).expect("oracle parameterized");
        assert!(
            remote.table.ordered_eq(&local),
            "prepared execution diverged for $who = {who}"
        );
    }
    client.deallocate(stmt).expect("deallocate");
    client.goodbye().expect("goodbye");
}

/// Prepared statements ride the server-wide plan cache: the same text
/// prepared on two different connections plans once and hits after.
#[test]
fn prepared_statements_share_the_plan_cache_across_connections() {
    let server = start(mem_cfg(true), ServerConfig::default());
    let mut seeder = connect(&server);
    let params = Params::new();
    for i in 0..16 {
        seeder
            .query(
                &format!("CREATE (:Point {{k: {i}, v: {}}})", i * 10),
                &params,
            )
            .expect("seed");
    }
    let text = "MATCH (n:Point {k: $k}) RETURN n.v AS v";

    let run_on_fresh_connection = |ks: std::ops::Range<i64>| {
        let mut c = connect(&server);
        let stmt = c.prepare(text).expect("prepare");
        for k in ks {
            let mut p = Params::new();
            p.insert("k".to_string(), Value::int(k));
            let rows = c.execute(stmt, &p).expect("execute");
            assert_eq!(
                rows.table.cell(0, "v"),
                Some(&Value::int(k * 10)),
                "wrong answer for k={k}"
            );
        }
        c.goodbye().expect("goodbye");
    };
    run_on_fresh_connection(0..8);
    run_on_fresh_connection(8..16);

    let stats = seeder.stats().expect("stats");
    assert!(
        stats.plan_misses >= 1,
        "someone must have planned the text once: {stats:?}"
    );
    assert!(
        stats.plan_hits >= 8,
        "prepared executions across connections must hit the shared plan \
         cache: {stats:?}"
    );
    seeder.goodbye().expect("goodbye");
}

// ---------------------------------------------------------------------
// The concurrent-clients differential harness.
// ---------------------------------------------------------------------

struct Observation {
    version: u64,
    query: String,
    outcome: Result<cypher::Table, String>,
}

fn tcp_workload(seed: u64, clients: usize, rounds: usize) {
    let label = format!("tcp workload {seed}");
    let server = start(mem_cfg(false), ServerConfig::default());
    let params = Params::new();

    let mut gen = QueryGenerator::new(seed);
    let seed_stmts: Vec<String> = (0..6).map(|_| gen.next_update()).collect();
    let mut admin = connect(&server);
    for s in &seed_stmts {
        admin
            .query(s, &params)
            .unwrap_or_else(|e| panic!("{label}: seeding failed on {s}: {e}"));
    }
    admin.goodbye().expect("goodbye");
    let base = server.db().version();

    // Each client thread: its own deterministic update + query streams.
    let committed: Mutex<Vec<(u64, String)>> = Mutex::new(Vec::new());
    let observations: Mutex<Vec<Observation>> = Mutex::new(Vec::new());
    let addr = server.local_addr();

    std::thread::scope(|sc| {
        for c in 0..clients {
            let committed = &committed;
            let observations = &observations;
            let params = &params;
            let label = &label;
            sc.spawn(move || {
                let mut upd_gen =
                    QueryGenerator::new(seed.wrapping_mul(131).wrapping_add(c as u64 + 1));
                let mut q_gen =
                    QueryGenerator::new(seed.wrapping_mul(31).wrapping_add(777 + c as u64));
                let mut client = Client::connect(addr).expect("connect workload client");
                for _ in 0..rounds {
                    // One update in auto-commit mode; `committed` names
                    // the version this statement (alone) published.
                    let stmt = upd_gen.next_update();
                    let rows = client
                        .query(&stmt, params)
                        .unwrap_or_else(|e| panic!("{label}: update failed on {stmt}: {e}"));
                    if let Some(v) = rows.committed {
                        committed.lock().unwrap().push((v, stmt));
                    }

                    // A pinned read transaction: queries repeat
                    // bit-identically however many remote writers commit
                    // meanwhile, and both runs count as one observation
                    // at the pinned version.
                    let q = q_gen.next_query();
                    let version = client.begin_read().expect("begin read");
                    let stmt_id = client.prepare(&q).ok();
                    let run = |client: &mut Client| match stmt_id {
                        Some(id) => client.execute(id, params),
                        None => client.query(&q, params),
                    };
                    let first = run(&mut client).map(|r| r.table).map_err(|e| match e {
                        ClientError::Server { message, .. } => message,
                        other => panic!("{label}: transport failure on {q}: {other}"),
                    });
                    let again = run(&mut client).map(|r| r.table).map_err(|e| e.to_string());
                    match (&first, &again) {
                        (Ok(a), Ok(b)) => assert!(
                            a.ordered_eq(b),
                            "{label}: pinned read at v{version} not repeatable on {q}\
                             \nfirst:\n{a}\nagain:\n{b}"
                        ),
                        (a, b) => assert_eq!(
                            a.is_err(),
                            b.is_err(),
                            "{label}: repeatable-read error drift on {q}"
                        ),
                    }
                    if let Some(id) = stmt_id {
                        client.deallocate(id).expect("deallocate");
                    }
                    client.commit_read().expect("commit read");
                    observations.lock().unwrap().push(Observation {
                        version,
                        query: q,
                        outcome: first,
                    });
                }
                client.goodbye().expect("goodbye");
            });
        }
    });

    // Commit versions must be dense and unique: every version the
    // clients pinned was published by exactly one statement.
    let mut log = committed.into_inner().unwrap();
    log.sort_by_key(|(v, _)| *v);
    for (i, (v, stmt)) in log.iter().enumerate() {
        assert_eq!(
            *v,
            base + 1 + i as u64,
            "{label}: commit versions not dense around {stmt}"
        );
    }
    assert_eq!(server.db().version(), base + log.len() as u64);

    // The in-process Session oracle: replay the committed statements in
    // published order, re-evaluating every observation at its version.
    let published: HashSet<u64> = log.iter().map(|(v, _)| *v).collect();
    let mut observations = observations.into_inner().unwrap();
    observations.sort_by_key(|o| o.version);
    let oracle_db = Database::open_with(mem_cfg(false)).expect("oracle open");
    let mut oracle = oracle_db.session();
    for s in &seed_stmts {
        oracle
            .query(s, &params)
            .unwrap_or_else(|e| panic!("{label}: oracle seed failed on {s}: {e}"));
    }
    let mut applied = 0usize;
    for obs in &observations {
        assert!(
            obs.version == base || published.contains(&obs.version),
            "{label}: client pinned version {} which no commit published — \
             a torn or invented state",
            obs.version
        );
        while applied < log.len() && log[applied].0 <= obs.version {
            let stmt = &log[applied].1;
            oracle
                .query(stmt, &params)
                .unwrap_or_else(|e| panic!("{label}: oracle update failed on {stmt}: {e}"));
            applied += 1;
        }
        match &obs.outcome {
            Ok(table) => {
                let expect = oracle.query(&obs.query, &params).unwrap_or_else(|e| {
                    panic!(
                        "{label}: oracle errored where the remote client succeeded \
                         on {} at v{}: {e}",
                        obs.query, obs.version
                    )
                });
                assert!(
                    table.ordered_eq(&expect),
                    "{label}: remote rows diverge from the in-process session \
                     on {} at v{}\nremote:\n{table}\noracle:\n{expect}",
                    obs.query,
                    obs.version
                );
            }
            Err(msg) => {
                let expect = oracle.query(&obs.query, &params).err().unwrap_or_else(|| {
                    panic!(
                        "{label}: remote errored ({msg}) but the oracle succeeded \
                             on {} at v{}",
                        obs.query, obs.version
                    )
                });
                assert_eq!(
                    msg,
                    &expect.to_string(),
                    "{label}: error drift on {}",
                    obs.query
                );
            }
        }
    }
    server.shutdown();
}

/// N real TCP clients interleave generated updates and pinned reads
/// against one server; an in-process `Session` oracle must reproduce
/// every observation exactly.
#[test]
fn concurrent_tcp_clients_match_the_in_process_session_oracle() {
    let workloads: u64 = std::env::var("CYPHER_TCP_WORKLOADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    for w in 0..workloads {
        tcp_workload(0xBEEF + w, 3, 5);
    }
}

/// One client pins a snapshot while another commits; the pinned view
/// must not move until the read transaction is committed.
#[test]
fn pinned_read_is_repeatable_across_remote_writers() {
    let server = start(mem_cfg(true), ServerConfig::default());
    let params = Params::new();
    let mut reader = connect(&server);
    let mut writer = connect(&server);
    writer.query("CREATE (:R {v: 1})", &params).expect("seed");

    let v = reader.begin_read().expect("begin read");
    let q = "MATCH (n:R) RETURN count(*) AS c";
    let frozen = reader.query(q, &params).expect("pinned read").table;
    for i in 2..=5 {
        writer
            .query(&format!("CREATE (:R {{v: {i}}})"), &params)
            .expect("remote write");
        let again = reader.query(q, &params).expect("pinned reread").table;
        assert!(
            again.ordered_eq(&frozen),
            "pinned view drifted after {i} remote commits (pinned v{v})"
        );
    }
    reader.commit_read().expect("commit read");
    let fresh = reader.query(q, &params).expect("unpinned read").table;
    assert_eq!(
        fresh.cell(0, "c"),
        Some(&Value::int(5)),
        "release must see the head"
    );
    assert_eq!(server.pinned_connections(), 0);
}

// ---------------------------------------------------------------------
// Hardened error paths: structured errors, never drops or panics.
// ---------------------------------------------------------------------

fn expect_server_error(r: Result<cypher_client::Rows, ClientError>, code: ErrorCode) -> String {
    match r {
        Err(ClientError::Server { code: got, message }) => {
            assert_eq!(got, code, "wrong error code: {message}");
            message
        }
        other => panic!("wanted server error {code:?}, got {other:?}"),
    }
}

/// Parse errors, eval errors, unknown statements and update-while-pinned
/// all answer structured codes — and the connection keeps working.
#[test]
fn statement_failures_answer_structured_errors_and_connection_survives() {
    let server = start(mem_cfg(true), ServerConfig::default());
    let mut client = connect(&server);
    let params = Params::new();

    expect_server_error(client.query("MATCH (", &params), ErrorCode::Parse);
    expect_server_error(client.query("RETURN nosuch", &params), ErrorCode::Eval);
    let e = client.execute(99, &params);
    match e {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownStatement),
        other => panic!("wanted UnknownStatement, got {other:?}"),
    }
    match client.deallocate(99) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownStatement),
        other => panic!("wanted UnknownStatement, got {other:?}"),
    }

    // Updates inside a pinned read transaction are refused with the
    // engine's own guidance, not a dropped connection.
    client.begin_read().expect("begin read");
    let msg = expect_server_error(client.query("CREATE (:X)", &params), ErrorCode::Eval);
    assert!(
        msg.contains("release the pinned snapshot"),
        "refusal must explain itself: {msg}"
    );
    client.commit_read().expect("commit read");
    client
        .query("CREATE (:X)", &params)
        .expect("write after release");

    // The connection survived every failure above. The server-side
    // guard drops a beat after the client reads `Bye`, so poll.
    client.ping().expect("ping after failures");
    client.goodbye().expect("goodbye");
    wait_until("connection teardown", || server.active_connections() == 0);
}

/// A panicking request handler answers `Internal` and keeps serving the
/// same connection. (The panic is injected through a hook that is inert
/// without `CYPHER_TEST_FAULTS`.)
#[test]
fn handler_panic_answers_internal_error_and_connection_survives() {
    std::env::set_var("CYPHER_TEST_FAULTS", "1");
    let server = start(mem_cfg(true), ServerConfig::default());
    let mut client = connect(&server);
    let params = Params::new();
    let msg = expect_server_error(
        client.query("__CYPHER_TEST_PANIC__", &params),
        ErrorCode::Internal,
    );
    assert!(msg.contains("panicked"), "message should say so: {msg}");
    client.ping().expect("connection survives a handler panic");
    client
        .query("RETURN 1 AS one", &params)
        .expect("statements keep working");
    client.goodbye().expect("goodbye");
}

/// A poisoned write path (failed WAL fsync) surfaces as a structured
/// `Unavailable` error on every subsequent remote write; reads keep
/// answering on the same connection.
#[test]
fn poisoned_write_path_answers_unavailable_not_a_dropped_connection() {
    std::env::set_var("CYPHER_TEST_FAULTS", "1");
    let dir = std::env::temp_dir().join(format!("cypher-server-poison-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = EngineConfig::default();
    cfg.persistence = Some(dir.clone());
    cfg.group_commit = false;
    cfg.fsync_mode = cypher::FsyncMode::Sync;
    let server = start(cfg, ServerConfig::default());
    let mut client = connect(&server);
    let params = Params::new();
    client.query("CREATE (:P {v: 1})", &params).expect("seed");

    assert!(
        server.db().inject_fsync_failures(1),
        "fault injection arms under CYPHER_TEST_FAULTS"
    );
    // The statement whose fsync fails reports the storage error itself.
    expect_server_error(
        client.query("CREATE (:P {v: 2})", &params),
        ErrorCode::Storage,
    );
    // Every write after that: structured Unavailable, same connection.
    let msg = expect_server_error(
        client.query("CREATE (:P {v: 3})", &params),
        ErrorCode::Unavailable,
    );
    assert!(
        msg.contains("read-only after a failed WAL commit"),
        "unexpected poison message: {msg}"
    );
    // Reads still answer, on this very connection.
    let t = client
        .query("MATCH (n:P) RETURN count(*) AS c", &params)
        .expect("reads survive the poisoned write path")
        .table;
    assert_eq!(
        t.cell(0, "c"),
        Some(&Value::int(1)),
        "failed writes must not be visible"
    );
    client.goodbye().expect("goodbye");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Hostile bytes and lifecycle.
// ---------------------------------------------------------------------

/// Raw-socket attacks: wrong magic, hostile length prefixes, garbage in
/// valid frames, random blobs. The server answers what it can answer,
/// drops what it cannot trust — and always survives.
#[test]
fn hostile_bytes_cannot_kill_the_server() {
    let server = start(mem_cfg(true), ServerConfig::default());
    let addr = server.local_addr();
    let params = Params::new();

    // Wrong magic: dropped without an answer.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET / HT").unwrap();
        let mut buf = Vec::new();
        let _ = std::io::Read::read_to_end(&mut s, &mut buf); // EOF, not a hang
        assert!(buf.is_empty(), "garbage handshake must not be answered");
    }

    // A 4 GiB length prefix: rejected before allocation, with a
    // structured Protocol error as the last answer.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        client_handshake(&mut s).unwrap();
        s.write_all(&[0xFF, 0xFF, 0xFF, 0xFF]).unwrap();
        s.write_all(&[0u8; 64]).unwrap();
        let payload = read_exact_frame(&mut s, DEFAULT_MAX_FRAME_BYTES).expect("error frame");
        match Response::decode(&payload).expect("decodable error") {
            Response::Error { code, message } => {
                assert_eq!(code, ErrorCode::Protocol);
                assert!(
                    message.contains("frame"),
                    "should name the frame cap: {message}"
                );
            }
            other => panic!("wanted Protocol error, got {other:?}"),
        }
    }

    // Garbage payload inside a *valid* frame: structured Protocol error,
    // and the connection keeps serving.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        client_handshake(&mut s).unwrap();
        write_frame(&mut s, &[0xEE, 0xDD, 0xCC]).unwrap();
        let payload = read_exact_frame(&mut s, DEFAULT_MAX_FRAME_BYTES).expect("error frame");
        match Response::decode(&payload).expect("decodable error") {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
            other => panic!("wanted Protocol error, got {other:?}"),
        }
        write_frame(&mut s, &Request::Ping.encode()).unwrap();
        let payload = read_exact_frame(&mut s, DEFAULT_MAX_FRAME_BYTES).expect("pong frame");
        assert!(matches!(Response::decode(&payload), Ok(Response::Pong)));
    }

    // Deterministic random blobs straight after the handshake.
    let mut state = 0x5EEDu64;
    for _ in 0..32 {
        let mut s = TcpStream::connect(addr).unwrap();
        client_handshake(&mut s).unwrap();
        let len = 1 + (splitmix(&mut state) % 256) as usize;
        let blob: Vec<u8> = (0..len).map(|_| splitmix(&mut state) as u8).collect();
        let _ = s.write_all(&blob);
        drop(s);
    }

    wait_until("hostile connections to drain", || {
        server.active_connections() == 0
    });
    // After all of that: a well-behaved client gets clean service.
    let mut client = connect(&server);
    client.ping().expect("server survived the hostile sweep");
    client
        .query("RETURN 1 AS one", &params)
        .expect("and still answers queries");
    client.goodbye().expect("goodbye");
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// An abruptly dropped connection — even one holding a pinned read
/// transaction and a half-written frame — leaks nothing: the session
/// dies, the pinned version is released, the gauges fall back to zero.
#[test]
fn abrupt_disconnect_releases_session_and_pinned_version() {
    let server = start(mem_cfg(true), ServerConfig::default());
    let addr = server.local_addr();

    let mut s = TcpStream::connect(addr).unwrap();
    client_handshake(&mut s).unwrap();
    write_frame(&mut s, &Request::BeginRead.encode()).unwrap();
    let payload = read_exact_frame(&mut s, DEFAULT_MAX_FRAME_BYTES).unwrap();
    assert!(matches!(
        Response::decode(&payload),
        Ok(Response::BeganRead { .. })
    ));
    wait_until("pin gauge to rise", || server.pinned_connections() == 1);
    assert_eq!(server.active_connections(), 1);

    // Die mid-frame: two bytes of a length prefix, then gone.
    s.write_all(&[0xAB, 0xCD]).unwrap();
    drop(s);

    wait_until("session and pin to be released", || {
        server.active_connections() == 0 && server.pinned_connections() == 0
    });

    // The released pin no longer holds old versions alive: writes and
    // reads proceed normally.
    let mut client = connect(&server);
    let params = Params::new();
    client
        .query("CREATE (:A)", &params)
        .expect("write after abrupt drop");
    client.goodbye().expect("goodbye");
}

/// One connection past the cap is answered `Limit` and closed; existing
/// connections keep their service.
#[test]
fn connection_limit_answers_limit_error() {
    let mut cfg = ServerConfig::default();
    cfg.max_connections = 1;
    let server = start(mem_cfg(true), cfg);
    let mut first = connect(&server);
    first.ping().expect("first connection serves");

    let mut second = TcpStream::connect(server.local_addr()).unwrap();
    client_handshake(&mut second).unwrap();
    let payload = read_exact_frame(&mut second, DEFAULT_MAX_FRAME_BYTES).expect("limit frame");
    match Response::decode(&payload).expect("decodable") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Limit),
        other => panic!("wanted Limit, got {other:?}"),
    }
    drop(second);
    first.ping().expect("first connection unaffected");
    first.goodbye().expect("goodbye");
}

/// The per-connection prepared-statement cap answers `Limit` instead of
/// letting one client grow server memory without bound.
#[test]
fn prepared_statement_cap_answers_limit_error() {
    let mut cfg = ServerConfig::default();
    cfg.max_prepared = 4;
    let server = start(mem_cfg(true), cfg);
    let mut client = connect(&server);
    let ids: Vec<u32> = (0..4)
        .map(|_| {
            client
                .prepare("RETURN 1 AS one")
                .expect("prepare under cap")
        })
        .collect();
    match client.prepare("RETURN 2 AS two") {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Limit),
        other => panic!("wanted Limit, got {other:?}"),
    }
    client.deallocate(ids[0]).expect("free one");
    client.prepare("RETURN 2 AS two").expect("room again");
    client.goodbye().expect("goodbye");
}

/// Writes made over TCP survive server shutdown and database reopen.
#[test]
fn durable_writes_over_tcp_survive_shutdown_and_reopen() {
    let dir = std::env::temp_dir().join(format!("cypher-server-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = EngineConfig::default();
    cfg.persistence = Some(dir.clone());
    let server = start(cfg, ServerConfig::default());
    let params = Params::new();
    let mut client = connect(&server);
    for i in 0..10 {
        let rows = client
            .query(&format!("CREATE (:D {{i: {i}}})"), &params)
            .expect("durable write");
        assert!(rows.committed.is_some());
    }
    client.goodbye().expect("goodbye");

    let db = server.shutdown();
    db.close().expect("clean close");

    let reopened = Database::open(&dir).expect("reopen");
    let mut session = reopened.session();
    let t = session
        .query("MATCH (n:D) RETURN count(*) AS c", &params)
        .expect("read recovered");
    assert_eq!(t.cell(0, "c"), Some(&Value::int(10)));
    reopened.close().expect("close");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `Stats` answers server-wide gauges that the in-process handle agrees
/// with.
#[test]
fn stats_report_connections_requests_and_version() {
    let server = start(mem_cfg(true), ServerConfig::default());
    let mut client = connect(&server);
    let params = Params::new();
    client.query("CREATE (:S {k: 1})", &params).expect("seed");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.connections as usize, server.active_connections());
    assert!(
        stats.requests >= 2,
        "the stats call itself counts: {stats:?}"
    );
    assert_eq!(stats.version, server.db().version());
    client.goodbye().expect("goodbye");
}
