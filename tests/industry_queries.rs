//! Experiments E15 and E16: the two industry queries quoted verbatim in
//! Section 3 of the paper — network management (transitive `DEPENDS_ON`)
//! and fraud-ring detection (shared personal information) — run over the
//! synthetic workload generators and cross-checked between evaluators.

use cypher::workload::{datacenter, fraud_rings};
use cypher::{run_read, run_reference, Params, Value};

#[test]
fn e15_network_management_top_dependency() {
    // "The query returns the component that is depended upon — both
    //  directly and indirectly — by the largest number of entities."
    let g = datacenter(120, 4, 2, 42);
    let params = Params::new();
    let q = "MATCH (svc:Service)<-[:DEPENDS_ON*]-(dep:Service)
             RETURN svc.name AS svc, count(DISTINCT dep) AS dependents
             ORDER BY dependents DESC
             LIMIT 1";
    let engine = run_read(&g, q, &params).unwrap();
    let reference = run_reference(&g, q, &params).unwrap();
    assert!(engine.bag_eq(&reference));
    assert_eq!(engine.len(), 1);
    // The hub must be shared infrastructure from the lowest layer.
    let name = engine.cell(0, "svc").unwrap().as_str().unwrap().to_string();
    assert!(
        name.starts_with("core-switch"),
        "expected a layer-0 hub, got {name}"
    );
    // And its dependent count must dominate any single node's in-degree.
    let dependents = engine.cell(0, "dependents").unwrap().as_int().unwrap();
    assert!(
        dependents > 2,
        "hub should accumulate transitive dependents"
    );
}

#[test]
fn e15_transitive_closure_exceeds_direct() {
    let g = datacenter(80, 4, 2, 7);
    let params = Params::new();
    let direct = run_read(
        &g,
        "MATCH (s:Service)<-[:DEPENDS_ON]-(d:Service)
         RETURN s.name AS n, count(DISTINCT d) AS c ORDER BY c DESC LIMIT 1",
        &params,
    )
    .unwrap();
    let transitive = run_read(
        &g,
        "MATCH (s:Service)<-[:DEPENDS_ON*]-(d:Service)
         RETURN s.name AS n, count(DISTINCT d) AS c ORDER BY c DESC LIMIT 1",
        &params,
    )
    .unwrap();
    let d = direct.cell(0, "c").unwrap().as_int().unwrap();
    let t = transitive.cell(0, "c").unwrap().as_int().unwrap();
    assert!(t >= d, "transitive closure dominates direct dependents");
}

#[test]
fn e16_fraud_ring_detection() {
    // Section 3's second example: account holders sharing SSN, phone
    // number or address. The generator plants exactly 3 rings of size 4.
    let g = fraud_rings(40, 3, 4, 99);
    let params = Params::new();
    let q = "MATCH (accHolder:AccountHolder)-[:HAS]->(pInfo)
             WHERE pInfo:SSN OR pInfo:PhoneNumber OR pInfo:Address
             WITH pInfo,
                  collect(accHolder.uniqueId) AS accountHolders,
                  count(*) AS fraudRingCount
             WHERE fraudRingCount > 1
             RETURN accountHolders,
                    labels(pInfo) AS personalInformation,
                    fraudRingCount";
    let engine = run_read(&g, q, &params).unwrap();
    let reference = run_reference(&g, q, &params).unwrap();
    assert!(engine.bag_eq(&reference));
    assert_eq!(engine.len(), 3, "exactly the planted rings surface");
    for row in engine.rows() {
        let count = row
            .get(engine.schema().index_of("fraudRingCount").unwrap())
            .as_int()
            .unwrap();
        assert_eq!(count, 4, "each ring has 4 members");
        let Value::List(holders) = row.get(0) else {
            panic!("collect() returns a list")
        };
        assert_eq!(holders.len(), 4);
    }
}

#[test]
fn e16_no_false_positives_without_rings() {
    let g = fraud_rings(40, 0, 4, 99);
    let params = Params::new();
    let q = "MATCH (a:AccountHolder)-[:HAS]->(p)
             WITH p, count(*) AS c WHERE c > 1
             RETURN count(*) AS rings";
    let t = run_read(&g, q, &params).unwrap();
    assert_eq!(t.cell(0, "rings"), Some(&Value::int(0)));
}

#[test]
fn collect_and_labels_functions_from_paper() {
    // "the collect function returns a list containing the values returned
    //  by the expression, and the labels function returns a list
    //  containing all the labels of a node."
    let g = fraud_rings(10, 1, 3, 5);
    let params = Params::new();
    let t = run_read(
        &g,
        "MATCH (h:AccountHolder)-[:HAS]->(p:Address)
         RETURN labels(p) AS ls, collect(h.uniqueId) AS ids",
        &params,
    )
    .unwrap();
    assert_eq!(t.len(), 1);
    let Value::List(ls) = t.cell(0, "ls").unwrap() else {
        panic!()
    };
    assert_eq!(ls[0], Value::str("Address"));
    let Value::List(ids) = t.cell(0, "ids").unwrap() else {
        panic!()
    };
    assert_eq!(ids.len(), 3);
}
