//! Differential testing of the **durable storage engine**, in the style
//! the morsel executor was verified (`tests/parallel_differential.rs`):
//! a grammar-driven random workload of mixed reads and updates runs
//! simultaneously against an in-memory oracle graph and a persistent
//! [`Database`], then the write-ahead log is killed at **every record
//! boundary and mid-record** and reopened. Each kill point must recover
//! exactly the oracle's state after the corresponding committed batch
//! prefix — entities, adjacency, statistics *and* all three index
//! families, compared through [`PropertyGraph::canonical_dump`], which
//! renders index posting lists verbatim (so "bit-identical indexes" is
//! literally asserted, not approximated by query sampling).
//!
//! Workload count is tunable via `CYPHER_RECOVERY_WORKLOADS` (default
//! 200, the acceptance floor). `CYPHER_TEST_SEED=<n>` replays exactly
//! one seed — every failure message names the seed it was minted from,
//! so a red CI line reproduces locally with one env var.

use cypher::storage::wal;
use cypher::workload::QueryGenerator;
use cypher::{Change, Database, EngineConfig, Params, PropertyGraph, SharedChangeBuffer, Store};
use std::path::PathBuf;

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("cypher-recovery-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn durable_cfg(dir: &PathBuf, compact_bytes: u64) -> EngineConfig {
    let mut cfg = EngineConfig::default();
    cfg.persistence = Some(dir.clone());
    cfg.wal_compact_bytes = compact_bytes;
    cfg
}

/// One mixed workload: two update statements for every read query, drawn
/// from the same deterministic generator both sides replay.
fn workload(seed: u64, len: usize) -> Vec<String> {
    let mut gen = QueryGenerator::new(seed);
    (0..len)
        .map(|i| {
            if i % 3 == 2 {
                gen.next_query()
            } else {
                gen.next_update()
            }
        })
        .collect()
}

fn workload_count() -> u64 {
    std::env::var("CYPHER_RECOVERY_WORKLOADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200)
}

/// The seeds a differential test sweeps: `0..n`, or exactly the one
/// named by `CYPHER_TEST_SEED` (for replaying a failure from a CI log —
/// every assertion message includes the seed that minted the workload).
fn seeds(n: u64) -> Vec<u64> {
    match std::env::var("CYPHER_TEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        Some(seed) => {
            eprintln!("CYPHER_TEST_SEED={seed}: replaying a single seed");
            vec![seed]
        }
        None => (0..n).collect(),
    }
}

#[test]
fn generated_workloads_survive_kill_points_at_every_record_boundary() {
    let params = Params::new();
    let seed_list = seeds(workload_count());
    let swept = seed_list.len();
    let mut total_kill_points = 0usize;
    for seed in seed_list {
        let stmts = workload(seed, 12);
        let dir = fresh_dir(&format!("sweep-{seed}"));
        let cfg = durable_cfg(&dir, u64::MAX); // no compaction: one WAL holds the history
        let mut db = Database::open_with(cfg.clone()).unwrap();
        let mut oracle = PropertyGraph::new();

        // Run both sides in lockstep; record the oracle's canonical state
        // after every committed batch (read-only statements commit none).
        let mut dump_at_batches: Vec<String> = vec![oracle.canonical_dump()];
        for s in &stmts {
            let mem = cypher::run(&mut oracle, s, &params);
            let dur = db.query(s, &params);
            match (mem, dur) {
                (Ok(a), Ok(b)) => assert!(
                    a.ordered_eq(&b),
                    "result drift on {s} (seed {seed})\nmem:\n{a}\ndurable:\n{b}"
                ),
                (a, b) => panic!("generated statement errored: {s}\nmem: {a:?}\ndurable: {b:?}"),
            }
            let batches = db.batches_committed().unwrap() as usize;
            while dump_at_batches.len() <= batches {
                dump_at_batches.push(oracle.canonical_dump());
            }
        }
        let final_dump = oracle.canonical_dump();
        assert_eq!(
            db.graph().canonical_dump(),
            final_dump,
            "live durable graph diverged (seed {seed})"
        );
        db.close().unwrap();

        // Clean reopen: state, indexes and query answers all match.
        {
            let mut db2 = Database::open_with(cfg.clone()).unwrap();
            assert_eq!(
                db2.graph().canonical_dump(),
                final_dump,
                "clean reopen diverged (seed {seed})"
            );
            let mut qgen = QueryGenerator::new(100_000 + seed);
            for _ in 0..3 {
                let q = qgen.next_query();
                let recovered = db2.query(&q, &params).unwrap();
                let mem = cypher::run_read(&oracle, &q, &params).unwrap();
                assert!(
                    recovered.ordered_eq(&mem),
                    "read drift after reopen on {q} (seed {seed})"
                );
                let reference = db2.query_reference(&q, &params).unwrap();
                assert!(
                    recovered.bag_eq(&reference),
                    "recovered engine diverges from the reference oracle on {q}"
                );
            }
        }

        // Kill-point sweep: truncate the WAL at every record boundary and
        // in the middle of every record; recovery must land exactly on
        // the committed-batch prefix state.
        let wal_path = dir.join("wal-0000000000.log");
        let wal_bytes = std::fs::read(&wal_path).unwrap();
        let records = wal::scan(&wal_path).unwrap();
        let mut kill_points: Vec<(u64, usize)> = Vec::new(); // (cut offset, batches expected)
        kill_points.push((4, 0)); // mid-magic
        kill_points.push((wal::WAL_MAGIC.len() as u64, 0)); // empty log

        // A batch is recoverable only once its *group* record is on
        // disk: commit records alone stage it, so the expected prefix
        // at any cut is `durable_through`, not `commits_through`.
        let mut durable_before = 0usize;
        for r in &records {
            let mid = (r.start + r.end) / 2;
            if mid > r.start {
                kill_points.push((mid, durable_before)); // mid-record tear
            }
            kill_points.push((r.end, r.durable_through as usize)); // boundary
            durable_before = r.durable_through as usize;
        }
        for &(cut, expected_batches) in &kill_points {
            let kdir = fresh_dir(&format!("kill-{seed}-{cut}"));
            std::fs::create_dir_all(&kdir).unwrap();
            std::fs::write(kdir.join("wal-0000000000.log"), &wal_bytes[..cut as usize]).unwrap();
            let db3 = Database::open_with(durable_cfg(&kdir, u64::MAX)).unwrap();
            assert_eq!(
                db3.recovery().batches_replayed as usize,
                expected_batches,
                "wrong batch count at kill point {cut} (seed {seed})"
            );
            assert_eq!(
                db3.graph().canonical_dump(),
                dump_at_batches[expected_batches],
                "recovered state at kill point {cut} is not the batch-{expected_batches} \
                 prefix (seed {seed})"
            );
            drop(db3);
            let _ = std::fs::remove_dir_all(&kdir);
        }
        total_kill_points += kill_points.len();
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(
        total_kill_points >= swept * 10,
        "sweep too shallow: {total_kill_points} kill points over {swept} workloads"
    );
}

#[test]
fn multi_batch_group_seals_recover_at_group_granularity() {
    // Group commit seals several transactions behind ONE group record:
    // cutting the WAL at **every byte** of each seal must recover
    // exactly the last *fully sealed* group's prefix — never a partial
    // group, even though every member batch before the cut is a
    // complete, checksummed record (staged, not durable).
    let params = Params::new();
    const GROUP_SIZES: [usize; 3] = [2, 3, 4];
    for seed in seeds(10) {
        let dir = fresh_dir(&format!("group-{seed}"));
        let (mut store, _empty) = Store::open(&dir).unwrap();
        let mut oracle = PropertyGraph::new();
        let buffer = SharedChangeBuffer::new();
        oracle.set_change_sink(Box::new(buffer.clone()));
        let mut gen = QueryGenerator::new(seed);

        // One non-empty change batch per update statement, with the
        // oracle's canonical state after each.
        let want: usize = GROUP_SIZES.iter().sum();
        let mut batches: Vec<Vec<Change>> = Vec::new();
        let mut dump_after_batch = vec![PropertyGraph::new().canonical_dump()];
        while batches.len() < want {
            let s = gen.next_update();
            cypher::run(&mut oracle, &s, &params)
                .unwrap_or_else(|e| panic!("generated update errored: {s}: {e} (seed {seed})"));
            let changes = buffer.drain();
            if changes.is_empty() {
                continue; // no-op update: the database would not commit it either
            }
            batches.push(changes);
            dump_after_batch.push(oracle.canonical_dump());
        }

        // Seal them as three multi-transaction groups.
        let mut it = batches.iter();
        for take in GROUP_SIZES {
            let group: Vec<&[Change]> = (&mut it).take(take).map(|b| b.as_slice()).collect();
            store.commit_group(&group).unwrap();
        }
        store.sync().unwrap();
        drop(store); // release the directory lock for the reopen sweep

        let wal_path = dir.join("wal-0000000000.log");
        let wal_bytes = std::fs::read(&wal_path).unwrap();
        let records = wal::scan(&wal_path).unwrap();
        // Group-boundary prefixes are the only legal recovery states.
        let legal: Vec<usize> = GROUP_SIZES
            .iter()
            .scan(0usize, |acc, g| {
                *acc += g;
                Some(*acc)
            })
            .collect();

        // Every byte of every group seal record, plus every record
        // boundary in between.
        let mut cuts: Vec<(u64, usize)> = Vec::new();
        let mut durable_before = 0usize;
        for r in &records {
            if r.kind == wal::KIND_GROUP {
                for cut in r.start..r.end {
                    cuts.push((cut, durable_before));
                }
            }
            cuts.push((r.end, r.durable_through as usize));
            durable_before = r.durable_through as usize;
        }
        for &(cut, expected) in &cuts {
            let kdir = fresh_dir(&format!("groupkill-{seed}-{cut}"));
            std::fs::create_dir_all(&kdir).unwrap();
            std::fs::write(kdir.join("wal-0000000000.log"), &wal_bytes[..cut as usize]).unwrap();
            let db = Database::open_with(durable_cfg(&kdir, u64::MAX)).unwrap();
            assert_eq!(
                db.recovery().batches_replayed as usize,
                expected,
                "wrong committed-group prefix at kill point {cut} (seed {seed})"
            );
            assert!(
                expected == 0 || legal.contains(&expected),
                "recovered a PARTIAL group: {expected} batches at kill point {cut} (seed {seed})"
            );
            assert_eq!(
                db.graph().canonical_dump(),
                dump_after_batch[expected],
                "recovered state at kill point {cut} is not the batch-{expected} prefix \
                 (seed {seed})"
            );
            drop(db);
            let _ = std::fs::remove_dir_all(&kdir);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn compaction_preserves_the_differential_under_churn() {
    // A tiny compaction threshold forces many snapshot+truncate cycles
    // mid-workload; reopening across them must still match the oracle.
    let params = Params::new();
    for seed in seeds(10) {
        let dir = fresh_dir(&format!("compact-{seed}"));
        let cfg = durable_cfg(&dir, 700);
        let mut db = Database::open_with(cfg.clone()).unwrap();
        let mut oracle = PropertyGraph::new();
        let stmts = workload(500 + seed, 30);
        for (i, s) in stmts.iter().enumerate() {
            let mem = cypher::run(&mut oracle, s, &params);
            let dur = db.query(s, &params);
            assert_eq!(mem.is_ok(), dur.is_ok(), "{s}");
            // Periodically bounce the process (close + reopen).
            if i % 11 == 10 {
                db.close().unwrap();
                db = Database::open_with(cfg.clone()).unwrap();
                assert_eq!(
                    db.graph().canonical_dump(),
                    oracle.canonical_dump(),
                    "reopen across compaction diverged (seed {seed}, step {i})"
                );
            }
        }
        assert!(
            db.generation().unwrap() > 0,
            "threshold never triggered a checkpoint (seed {seed})"
        );
        assert_eq!(db.graph().canonical_dump(), oracle.canonical_dump());
        db.close().unwrap();
        let db2 = Database::open_with(cfg).unwrap();
        assert_eq!(db2.graph().canonical_dump(), oracle.canonical_dump());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn random_wal_corruption_never_panics() {
    // Flip bytes throughout a real WAL; opening must always return — a
    // prefix recovery or a structured error, never a panic or a wrong
    // "clean" recovery (the recovered state must be one of the oracle's
    // batch-prefix states).
    let params = Params::new();
    let dir = fresh_dir("corrupt");
    let cfg = durable_cfg(&dir, u64::MAX);
    let mut db = Database::open_with(cfg).unwrap();
    let mut oracle = PropertyGraph::new();
    let mut prefix_dumps = vec![oracle.canonical_dump()];
    for s in workload(9_999, 12) {
        let mem = cypher::run(&mut oracle, &s, &params);
        let dur = db.query(&s, &params);
        assert_eq!(mem.is_ok(), dur.is_ok());
        let batches = db.batches_committed().unwrap() as usize;
        while prefix_dumps.len() <= batches {
            prefix_dumps.push(oracle.canonical_dump());
        }
    }
    db.close().unwrap();
    let wal_path = dir.join("wal-0000000000.log");
    let wal_bytes = std::fs::read(&wal_path).unwrap();
    let step = (wal_bytes.len() / 97).max(1);
    for flip_at in (0..wal_bytes.len()).step_by(step) {
        for mask in [0x01u8, 0x80] {
            let kdir = fresh_dir(&format!("corrupt-{flip_at}-{mask}"));
            std::fs::create_dir_all(&kdir).unwrap();
            let mut bad = wal_bytes.clone();
            bad[flip_at] ^= mask;
            std::fs::write(kdir.join("wal-0000000000.log"), &bad).unwrap();
            match Database::open_with(durable_cfg(&kdir, u64::MAX)) {
                Ok(recovered) => {
                    let dump = recovered.graph().canonical_dump();
                    assert!(
                        prefix_dumps.contains(&dump),
                        "corruption at byte {flip_at} (mask {mask:#x}) recovered to a state \
                         that is not any committed prefix"
                    );
                }
                Err(cypher::Error::Storage(_)) => {} // detected, structured
                Err(other) => panic!("unexpected error class: {other}"),
            }
            let _ = std::fs::remove_dir_all(&kdir);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovered_database_keeps_assigning_fresh_ids() {
    // Tombstones survive persistence: ids deleted before a crash are
    // never reused after recovery.
    let params = Params::new();
    let dir = fresh_dir("tombstone");
    let cfg = durable_cfg(&dir, u64::MAX);
    {
        let mut db = Database::open_with(cfg.clone()).unwrap();
        db.query("CREATE (:A {i: 0}), (:A {i: 1}), (:A {i: 2})", &params)
            .unwrap();
        db.query("MATCH (n:A {i: 2}) DETACH DELETE n", &params)
            .unwrap();
        db.close().unwrap();
    }
    let mut db = Database::open_with(cfg).unwrap();
    assert_eq!(db.graph().node_slot_count(), 3, "tombstone slot survived");
    db.query("CREATE (:A {i: 3})", &params).unwrap();
    let out = db
        .query("MATCH (n:A) RETURN n.i AS i ORDER BY i", &params)
        .unwrap();
    assert_eq!(out.len(), 3);
    // The new node occupies slot 3, not the tombstoned slot 2.
    assert_eq!(db.graph().node_slot_count(), 4);
    let _ = std::fs::remove_dir_all(&dir);
}
