//! The mini-TCK corpus (paper Section 5: openCypher ships "a Technology
//! Compatibility Kit (TCK)"). Every scenario runs against both the planner
//! engine and the reference semantics; see `crates/tck` for the DSL.

use cypher_tck::run_scenarios;

#[test]
fn matching_scenarios() {
    let n = run_scenarios(
        "
SCENARIO: match all nodes
GIVEN
  CREATE (:A), (:B), ()
WHEN
  MATCH (n) RETURN count(*) AS c
THEN
  | c |
  | 3 |

SCENARIO: match by label
GIVEN
  CREATE (:A {x: 1}), (:A {x: 2}), (:B {x: 3})
WHEN
  MATCH (n:A) RETURN n.x AS x
THEN
  | x |
  | 1 |
  | 2 |

SCENARIO: match on property map
GIVEN
  CREATE (:P {name: 'Ada'}), (:P {name: 'Bo'})
WHEN
  MATCH (p:P {name: 'Ada'}) RETURN p.name AS n
THEN
  | n |
  | 'Ada' |

SCENARIO: directed relationship
GIVEN
  CREATE (:A {i: 1})-[:R]->(:A {i: 2})
WHEN
  MATCH (a)-[:R]->(b) RETURN a.i AS s, b.i AS t
THEN
  | s | t |
  | 1 | 2 |

SCENARIO: undirected matches both ways
GIVEN
  CREATE (:A {i: 1})-[:R]->(:A {i: 2})
WHEN
  MATCH (a)-[:R]-(b) RETURN a.i AS s, b.i AS t
THEN
  | s | t |
  | 1 | 2 |
  | 2 | 1 |

SCENARIO: relationship property in pattern
GIVEN
  CREATE (:A)-[:R {w: 1}]->(:B)
  CREATE (:A)-[:R {w: 2}]->(:B)
WHEN
  MATCH ()-[r:R {w: 2}]->() RETURN count(*) AS c
THEN
  | c |
  | 1 |

SCENARIO: multiple relationship types
GIVEN
  CREATE (:A {i: 1})-[:X]->(:B), (:A {i: 2})-[:Y]->(:B), (:A {i: 3})-[:Z]->(:B)
WHEN
  MATCH (a)-[:X|Y]->() RETURN a.i AS i
THEN
  | i |
  | 1 |
  | 2 |

SCENARIO: variable length bounded
GIVEN
  CREATE (:N {i: 0})-[:R]->(:N {i: 1})-[:R]->(:N {i: 2})-[:R]->(:N {i: 3})
WHEN
  MATCH (a {i: 0})-[:R*1..2]->(b) RETURN b.i AS i
THEN
  | i |
  | 1 |
  | 2 |

SCENARIO: variable length zero hops binds same node
GIVEN
  CREATE (:N {i: 0})-[:R]->(:N {i: 1})
WHEN
  MATCH (a {i: 0})-[:R*0..1]->(b) RETURN b.i AS i
THEN
  | i |
  | 0 |
  | 1 |

SCENARIO: relationship isomorphism forbids reuse
GIVEN
  CREATE (:N {i: 0})-[:R]->(:N {i: 1})
WHEN
  MATCH (a)-[r1:R]->(b)-[r2:R]->(c) RETURN count(*) AS c
THEN
  | c |
  | 0 |

SCENARIO: disconnected patterns form cross product
GIVEN
  CREATE (:A), (:A), (:B)
WHEN
  MATCH (a:A), (b:B) RETURN count(*) AS c
THEN
  | c |
  | 2 |
",
    )
    .unwrap();
    assert_eq!(n, 11);
}

#[test]
fn filtering_and_expression_scenarios() {
    let n = run_scenarios(
        "
SCENARIO: where with comparison
GIVEN
  CREATE (:P {x: 1}), (:P {x: 5}), (:P {x: 9})
WHEN
  MATCH (p:P) WHERE p.x > 4 RETURN p.x AS x
THEN
  | x |
  | 5 |
  | 9 |

SCENARIO: null property comparisons drop rows
GIVEN
  CREATE (:P {x: 1}), (:P)
WHEN
  MATCH (p:P) WHERE p.x > 0 RETURN count(*) AS c
THEN
  | c |
  | 1 |

SCENARIO: three valued logic in where
GIVEN
  CREATE (:P {x: 1}), (:P)
WHEN
  MATCH (p:P) WHERE p.x > 0 OR p.x IS NULL RETURN count(*) AS c
THEN
  | c |
  | 2 |

SCENARIO: string predicates
GIVEN
  CREATE (:P {name: 'Nils'}), (:P {name: 'Elin'}), (:P {name: 'Thor'})
WHEN
  MATCH (p:P) WHERE p.name STARTS WITH 'N' OR p.name ENDS WITH 'or' RETURN p.name AS n
THEN
  | n |
  | 'Nils' |
  | 'Thor' |

SCENARIO: in list
GIVEN
  CREATE (:P {x: 1}), (:P {x: 2}), (:P {x: 3})
WHEN
  MATCH (p:P) WHERE p.x IN [1, 3] RETURN p.x AS x
THEN
  | x |
  | 1 |
  | 3 |

SCENARIO: label predicate expression
GIVEN
  CREATE (:SSN {v: 1}), (:Address {v: 2}), (:Other {v: 3})
WHEN
  MATCH (n) WHERE n:SSN OR n:Address RETURN n.v AS v
THEN
  | v |
  | 1 |
  | 2 |

SCENARIO: case expression
GIVEN
  CREATE (:P {x: -2}), (:P {x: 3})
WHEN
  MATCH (p:P) RETURN CASE WHEN p.x < 0 THEN 'neg' ELSE 'pos' END AS s
THEN
  | s |
  | 'neg' |
  | 'pos' |

SCENARIO: list comprehension and quantifier
WHEN
  RETURN [x IN range(1, 5) WHERE x % 2 = 1 | x * 10] AS odds, all(y IN [1, 2] WHERE y > 0) AS ok
THEN
  | odds | ok |
  | [10, 30, 50] | true |

SCENARIO: arithmetic and coalesce
WHEN
  RETURN 7 / 2 AS intdiv, 7.0 / 2 AS floatdiv, coalesce(null, 'x') AS c
THEN
  | intdiv | floatdiv | c |
  | 3 | 3.5 | 'x' |

SCENARIO: pattern predicate existential
GIVEN
  CREATE (:P {i: 1})-[:L]->(:Q)
  CREATE (:P {i: 2})
WHEN
  MATCH (p:P) WHERE (p)-[:L]->(:Q) RETURN p.i AS i
THEN
  | i |
  | 1 |
",
    )
    .unwrap();
    assert_eq!(n, 10);
}

#[test]
fn projection_and_aggregation_scenarios() {
    let n = run_scenarios(
        "
SCENARIO: implicit grouping keys
GIVEN
  CREATE (:P {g: 'a', v: 1}), (:P {g: 'a', v: 2}), (:P {g: 'b', v: 3})
WHEN
  MATCH (p:P) RETURN p.g AS g, sum(p.v) AS s
THEN
  | g | s |
  | 'a' | 3 |
  | 'b' | 3 |

SCENARIO: count star versus count expr
GIVEN
  CREATE (:P {v: 1}), (:P)
WHEN
  MATCH (p:P) RETURN count(*) AS rows, count(p.v) AS vals
THEN
  | rows | vals |
  | 2 | 1 |

SCENARIO: collect builds lists
GIVEN
  CREATE (:P {v: 2}), (:P {v: 1})
WHEN
  MATCH (p:P) WITH p.v AS v ORDER BY v RETURN collect(v) AS vs
THEN
  | vs |
  | [1, 2] |

SCENARIO: distinct projection
GIVEN
  CREATE (:P {v: 1}), (:P {v: 1}), (:P {v: 2})
WHEN
  MATCH (p:P) RETURN DISTINCT p.v AS v
THEN
  | v |
  | 1 |
  | 2 |

SCENARIO: order skip limit
GIVEN
  CREATE (:P {v: 3}), (:P {v: 1}), (:P {v: 4}), (:P {v: 2})
WHEN
  MATCH (p:P) RETURN p.v AS v ORDER BY v DESC SKIP 1 LIMIT 2
THEN
  | v |
  | 3 |
  | 2 |

SCENARIO: with chains aggregations
GIVEN
  CREATE (:P {g: 'a', v: 1}), (:P {g: 'a', v: 2}), (:P {g: 'b', v: 30})
WHEN
  MATCH (p:P) WITH p.g AS g, sum(p.v) AS s WHERE s > 5 RETURN g, s
THEN
  | g | s |
  | 'b' | 30 |

SCENARIO: min max avg
GIVEN
  CREATE (:P {v: 1}), (:P {v: 2}), (:P {v: 3})
WHEN
  MATCH (p:P) RETURN min(p.v) AS lo, max(p.v) AS hi, avg(p.v) AS mean
THEN
  | lo | hi | mean |
  | 1 | 3 | 2.0 |

SCENARIO: union distinct and all
GIVEN
  CREATE (:A {v: 1}), (:B {v: 1})
WHEN
  MATCH (a:A) RETURN a.v AS v UNION MATCH (b:B) RETURN b.v AS v
THEN
  | v |
  | 1 |

SCENARIO: unwind expands lists
WHEN
  UNWIND [1, 2] AS x UNWIND ['a', 'b'] AS y RETURN x, y
THEN
  | x | y |
  | 1 | 'a' |
  | 1 | 'b' |
  | 2 | 'a' |
  | 2 | 'b' |

SCENARIO: aggregation over empty match is zero
WHEN
  MATCH (n:Nope) RETURN count(n) AS c
THEN
  | c |
  | 0 |
",
    )
    .unwrap();
    assert_eq!(n, 10);
}

#[test]
fn pipeline_scenarios() {
    let n = run_scenarios(
        "
SCENARIO: collect then unwind roundtrip
GIVEN
  CREATE (:P {v: 1}), (:P {v: 2})
WHEN
  MATCH (p:P) WITH collect(p) AS ps UNWIND ps AS q RETURN q.v AS v
THEN
  | v |
  | 1 |
  | 2 |

SCENARIO: rebind node variable across clauses
GIVEN
  CREATE (:A {i: 1})-[:R]->(:B {i: 2})-[:R]->(:C {i: 3})
WHEN
  MATCH (a:A)-[:R]->(b) MATCH (b)-[:R]->(c) RETURN a.i, b.i, c.i
THEN
  | a.i | b.i | c.i |
  | 1 | 2 | 3 |

SCENARIO: relationship reuse allowed across separate match clauses
GIVEN
  CREATE (:A {i: 1})-[:R]->(:B {i: 2})
WHEN
  MATCH (a)-[r:R]->(b) MATCH (x)-[r]->(y) RETURN x.i, y.i
THEN
  | x.i | y.i |
  | 1 | 2 |

SCENARIO: with limits intermediate results
GIVEN
  CREATE (:P {v: 1}), (:P {v: 2}), (:P {v: 3})
WHEN
  MATCH (p:P) WITH p ORDER BY p.v DESC LIMIT 1 RETURN p.v AS v
THEN
  | v |
  | 3 |

SCENARIO: where after with sees aliases only
GIVEN
  CREATE (:P {v: 5})
WHEN
  MATCH (p:P) WITH p.v AS v WHERE v = 5 RETURN v
THEN
  | v |
  | 5 |

SCENARIO: optional match keeps rows when pattern var prebound
GIVEN
  CREATE (:A {i: 1})
WHEN
  MATCH (a:A) OPTIONAL MATCH (a)-[:NOPE]->(b) RETURN a.i, b
THEN
  | a.i | b |
  | 1 | null |

SCENARIO: cross product of unwinds with filtering
WHEN
  UNWIND [1, 2, 3] AS x UNWIND [10, 20] AS y WITH x, y WHERE x * y > 39 RETURN x, y
THEN
  | x | y |
  | 2 | 20 |
  | 3 | 20 |

SCENARIO: union all across different matches
GIVEN
  CREATE (:A {v: 1}), (:B {v: 1})
WHEN
  MATCH (a:A) RETURN a.v AS v UNION ALL MATCH (b:B) RETURN b.v AS v
THEN
  | v |
  | 1 |
  | 1 |
",
    )
    .unwrap();
    assert_eq!(n, 8);
}

#[test]
fn path_and_temporal_scenarios() {
    let n = run_scenarios(
        "
SCENARIO: named path length
GIVEN
  CREATE (:N {i: 0})-[:R]->(:N {i: 1})-[:R]->(:N {i: 2})
WHEN
  MATCH p = (a {i: 0})-[:R*]->(b {i: 2}) RETURN length(p) AS len
THEN
  | len |
  | 2 |

SCENARIO: nodes and relationships of a path
GIVEN
  CREATE (:N {i: 0})-[:R]->(:N {i: 1})
WHEN
  MATCH p = (a {i: 0})-[:R]->(b) RETURN size(nodes(p)) AS n, size(relationships(p)) AS r
THEN
  | n | r |
  | 2 | 1 |

SCENARIO: zero length named path
GIVEN
  CREATE (:N {i: 0})
WHEN
  MATCH p = (a:N) RETURN length(p) AS len
THEN
  | len |
  | 0 |

SCENARIO: date comparison in where
GIVEN
  CREATE (:E {on: date('2018-06-10')})
  CREATE (:E {on: date('2019-06-10')})
WHEN
  MATCH (e:E) WHERE e.on < date('2019-01-01') RETURN e.on.year AS y
THEN
  | y |
  | 2018 |

SCENARIO: duration arithmetic
WHEN
  RETURN (date('2018-06-10') + duration('P1M2D')).month AS m,
         (date('2018-06-10') + duration('P1M2D')).day AS d
THEN
  | m | d |
  | 7 | 12 |

SCENARIO: order by with nulls last
GIVEN
  CREATE (:P {v: 2}), (:P), (:P {v: 1})
WHEN
  MATCH (p:P) RETURN p.v AS v ORDER BY v LIMIT 2
THEN
  | v |
  | 1 |
  | 2 |

SCENARIO: order by descending on strings
GIVEN
  CREATE (:P {s: 'a'}), (:P {s: 'c'}), (:P {s: 'b'})
WHEN
  MATCH (p:P) RETURN p.s AS s ORDER BY s DESC LIMIT 1
THEN
  | s |
  | 'c' |

SCENARIO: order by pre projection variable
GIVEN
  CREATE (:P {a: 1, b: 9}), (:P {a: 2, b: 8})
WHEN
  MATCH (p:P) RETURN p.a AS a ORDER BY p.b
THEN
  | a |
  | 2 |
  | 1 |

SCENARIO: merge inside tck given
GIVEN
  MERGE (a:Hub {name: 'h'})
  MERGE (a:Hub {name: 'h'})
WHEN
  MATCH (h:Hub) RETURN count(*) AS c
THEN
  | c |
  | 1 |

SCENARIO: property index lookup agrees with filter
GIVEN
  CREATE (:P {k: 1}), (:P {k: 2}), (:P {k: 2}), (:Q {k: 2})
WHEN
  MATCH (p:P {k: 2}) RETURN count(*) AS c
THEN
  | c |
  | 2 |
",
    )
    .unwrap();
    assert_eq!(n, 10);
}

#[test]
fn error_scenarios() {
    let n = run_scenarios(
        "
SCENARIO: undefined variable
WHEN
  RETURN nosuchvar
THEN ERROR

SCENARIO: division by zero
WHEN
  RETURN 1 / 0 AS x
THEN ERROR

SCENARIO: union with different columns
WHEN
  RETURN 1 AS x UNION RETURN 1 AS y
THEN ERROR

SCENARIO: missing parameter
WHEN
  RETURN $missing AS x
THEN ERROR

SCENARIO: aggregate in where
GIVEN
  CREATE ()
WHEN
  MATCH (n) WHERE count(n) > 0 RETURN n
THEN ERROR
",
    )
    .unwrap();
    assert_eq!(n, 5);
}

/// `ORDER BY` / `SKIP` / `LIMIT` / `DISTINCT` determinism under parallel
/// execution: every scenario here runs (like all scenarios) on the
/// sequential engine, the 4-thread morsel-parallel engine, and the
/// reference oracle — and the `THEN ORDERED` ones demand the exact row
/// sequence, not just the right bag. The runner separately asserts that
/// the parallel row order never drifts from the sequential one.
#[test]
fn parallel_determinism_scenarios() {
    let n = run_scenarios(
        "
SCENARIO: order by ascending is exact under parallel execution
GIVEN
  CREATE (:N {v: 3}), (:N {v: 1}), (:N {v: 2}), (:N {v: 5}), (:N {v: 4})
WHEN
  MATCH (n:N) RETURN n.v AS v ORDER BY v
THEN ORDERED
  | v |
  | 1 |
  | 2 |
  | 3 |
  | 4 |
  | 5 |

SCENARIO: order by descending with a secondary key
GIVEN
  CREATE (:P {a: 1, b: 'x'}), (:P {a: 2, b: 'y'}), (:P {a: 1, b: 'w'}), (:P {a: 2, b: 'z'})
WHEN
  MATCH (p:P) RETURN p.a AS a, p.b AS b ORDER BY a DESC, b
THEN ORDERED
  | a | b |
  | 2 | 'y' |
  | 2 | 'z' |
  | 1 | 'w' |
  | 1 | 'x' |

SCENARIO: null sorts last whatever the thread count
GIVEN
  CREATE (:N {v: 2}), (:N), (:N {v: 1})
WHEN
  MATCH (n:N) RETURN n.v AS v ORDER BY v
THEN ORDERED
  | v |
  | 1 |
  | 2 |
  | null |

SCENARIO: order by with skip and limit stays deterministic
GIVEN
  CREATE (:M {i: 1}), (:M {i: 2}), (:M {i: 3}), (:M {i: 4}), (:M {i: 5}), (:M {i: 6})
WHEN
  MATCH (m:M) RETURN m.i AS i ORDER BY i SKIP 2 LIMIT 3
THEN ORDERED
  | i |
  | 3 |
  | 4 |
  | 5 |

SCENARIO: limit over a sorted expand keeps the smallest keys
GIVEN
  CREATE (a:Hub {name: 'h'})
  MATCH (a:Hub) CREATE (a)-[:R]->(:Leaf {i: 4}), (a)-[:R]->(:Leaf {i: 2}), (a)-[:R]->(:Leaf {i: 3}), (a)-[:R]->(:Leaf {i: 1})
WHEN
  MATCH (:Hub)-[:R]->(l:Leaf) RETURN l.i AS i ORDER BY i DESC LIMIT 2
THEN ORDERED
  | i |
  | 4 |
  | 3 |

SCENARIO: distinct collapses duplicates identically across workers
GIVEN
  CREATE (:D {v: 1}), (:D {v: 2}), (:D {v: 1}), (:D {v: 2}), (:D {v: 1})
WHEN
  MATCH (d:D) RETURN DISTINCT d.v AS v ORDER BY v
THEN ORDERED
  | v |
  | 1 |
  | 2 |

SCENARIO: distinct without order is a bag of unique rows
GIVEN
  CREATE (:D {v: 1}), (:D {v: 2}), (:D {v: 1})
WHEN
  MATCH (d:D) RETURN DISTINCT d.v AS v
THEN
  | v |
  | 1 |
  | 2 |

SCENARIO: grouped aggregation ordered by the aggregate
GIVEN
  CREATE (:G {k: 'a'}), (:G {k: 'b'}), (:G {k: 'a'}), (:G {k: 'a'}), (:G {k: 'b'}), (:G {k: 'c'})
WHEN
  MATCH (g:G) RETURN g.k AS k, count(*) AS c ORDER BY c DESC, k
THEN ORDERED
  | k | c |
  | 'a' | 3 |
  | 'b' | 2 |
  | 'c' | 1 |

SCENARIO: order by over a parallel expand with aggregation upstream
GIVEN
  CREATE (:S {i: 1})-[:T]->(:S {i: 2})-[:T]->(:S {i: 3})-[:T]->(:S {i: 4})
WHEN
  MATCH (a:S)-[:T]->(b:S) WITH a.i AS src, count(b) AS fanout RETURN src, fanout ORDER BY src DESC
THEN ORDERED
  | src | fanout |
  | 3 | 1 |
  | 2 | 1 |
  | 1 | 1 |
",
    )
    .unwrap();
    assert_eq!(n, 9);
}
