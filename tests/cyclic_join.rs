//! Differential testing of the **worst-case-optimal multiway intersection
//! join**: every query of a grammar-driven cyclic-pattern workload
//! (triangles, diamonds, 4-cycles) must produce
//!
//! * the **same row sequence** at every thread count and morsel size
//!   *within* one plan policy (`CYPHER_WCO_JOIN` force / off / auto) —
//!   morsel-order merging makes parallel output bit-identical to
//!   sequential output, intersection operators included;
//! * the **same sorted multiset** *across* plan policies and against the
//!   reference oracle — intersection and expand plans bind variables in
//!   different orders, so only bag equality is meaningful across plans.
//!
//! Substrates: the uniform `random_graph` the other differential suites
//! fuzz on, and the preferential-attachment `powerlaw_social` graph whose
//! dense core is the workload the intersection join exists for. A third
//! test churns the graph with generated updates between corpus slices, so
//! the sorted-adjacency snapshot cache must invalidate correctly.

use cypher::workload::{powerlaw_social, random_graph, QueryGenerator, QueryVocabulary};
use cypher::{
    run_read_with, run_reference, EngineConfig, Params, PropertyGraph, Table, WcoJoinMode,
};

fn cfg(threads: usize, morsel: usize, wco: WcoJoinMode) -> EngineConfig {
    EngineConfig::default()
        .with_threads(threads)
        .with_morsel_size(morsel)
        .with_wco_join(wco)
}

/// Runs one cyclic query under the full plan-policy × parallelism matrix,
/// cross-checks everything, and returns the forced-intersection table.
fn check_cyclic_query(g: &PropertyGraph, q: &str, params: &Params) -> Table {
    let modes = [WcoJoinMode::Force, WcoJoinMode::Off, WcoJoinMode::Auto];
    let mut baselines: Vec<Table> = Vec::new();
    for mode in modes {
        let seq = run_read_with(g, q, params, &cfg(1, 1024, mode))
            .unwrap_or_else(|e| panic!("sequential ({mode:?}) failed on {q}: {e}"));
        // 4 threads × 1-row morsels is the worst-case interleaving; the
        // merge must still reproduce the sequential sequence exactly.
        for (threads, morsel) in [(4, 1), (2, 8), (3, 1024)] {
            let par = run_read_with(g, q, params, &cfg(threads, morsel, mode)).unwrap_or_else(
                |e| panic!("parallel ({mode:?}, threads={threads}, morsel={morsel}) failed on {q}: {e}"),
            );
            assert!(
                par.ordered_eq(&seq),
                "parallel result drifted ({mode:?}, threads={threads}, morsel={morsel}) on {q}\n\
                 sequential:\n{seq}\nparallel:\n{par}"
            );
        }
        baselines.push(seq);
    }
    let force = &baselines[0];
    for (mode, other) in modes.iter().zip(&baselines).skip(1) {
        assert!(
            force.bag_eq(other),
            "intersection and expand plans disagree ({mode:?}) on {q}\n\
             force:\n{force}\n{mode:?}:\n{other}"
        );
    }
    let oracle =
        run_reference(g, q, params).unwrap_or_else(|e| panic!("reference failed on {q}: {e}"));
    assert!(
        force.bag_eq(&oracle),
        "intersection join diverges from the reference oracle on {q}\n\
         engine:\n{force}\nreference:\n{oracle}"
    );
    baselines.swap_remove(0)
}

fn social_vocabulary() -> QueryVocabulary {
    QueryVocabulary {
        labels: vec!["Person".into(), "Bot".into()],
        types: vec!["FOLLOWS".into()],
        int_props: vec!["v".into(), "i".into()],
    }
}

#[test]
fn cyclic_corpus_agrees_across_plans_threads_and_oracle() {
    let params = Params::new();
    let mut total = 0usize;
    let mut nonempty = 0usize;
    for seed in 0..3u64 {
        let g = random_graph(20, 60, &["A", "B"], &["X", "Y"], 400 + seed);
        let mut gen = QueryGenerator::new(5000 + seed);
        for _ in 0..50 {
            let q = gen.next_cyclic_query();
            total += 1;
            if !check_cyclic_query(&g, &q, &params).is_empty() {
                nonempty += 1;
            }
        }
    }
    assert!(total >= 150, "only {total} cyclic queries generated");
    // Dense 20-node substrates close plenty of cycles: the corpus must
    // exercise real intersections, not prove that empty equals empty.
    assert!(
        nonempty * 4 >= total,
        "cyclic workload too vacuous: {nonempty}/{total} queries returned rows"
    );
}

#[test]
fn powerlaw_corpus_agrees_across_plans_threads_and_oracle() {
    let params = Params::new();
    let mut nonempty = 0usize;
    for seed in 0..2u64 {
        let g = powerlaw_social(60, 3, 600 + seed);
        let mut gen = QueryGenerator::with_vocabulary(6000 + seed, social_vocabulary());
        for _ in 0..40 {
            let q = gen.next_cyclic_query();
            if !check_cyclic_query(&g, &q, &params).is_empty() {
                nonempty += 1;
            }
        }
    }
    assert!(
        nonempty >= 10,
        "power-law workload too vacuous: only {nonempty} queries returned rows"
    );
}

#[test]
fn cyclic_corpus_agrees_after_graph_mutations() {
    // Updates bump the graph version; the sorted-adjacency snapshot the
    // intersection operators read must be rebuilt, never served stale.
    let params = Params::new();
    let mut g = random_graph(18, 50, &["A", "B"], &["X", "Y"], 123);
    let mut ugen = QueryGenerator::new(7777);
    for step in 0..6u64 {
        let u = ugen.next_update();
        cypher::run(&mut g, &u, &params).unwrap_or_else(|e| panic!("update failed ({u}): {e}"));
        let mut gen = QueryGenerator::new(8000 + step);
        for _ in 0..12 {
            let q = gen.next_cyclic_query();
            check_cyclic_query(&g, &q, &params);
        }
    }
}
