//! Differential testing of the **morsel-driven parallel executor**: every
//! query of a grammar-driven random workload must produce the same sorted
//! multiset of rows at `threads = 1`, at `threads = N` (several morsel
//! sizes, including the degenerate 1-row morsel), and on the reference
//! oracle — the paper's denotational semantics, which knows nothing about
//! batches or threads.
//!
//! The engine actually promises more than multiset equality: morsels are
//! merged in claim-index order, so parallel output is the *same row
//! sequence* as sequential output. Both properties are asserted.

use cypher::workload::{random_graph, QueryGenerator};
use cypher::{
    run_read_with, run_reference, EngineConfig, Params, PartialAggMode, PropertyGraph, Record,
    Table, Value,
};

fn cfg(threads: usize, morsel: usize) -> EngineConfig {
    EngineConfig::default()
        .with_threads(threads)
        .with_morsel_size(morsel)
}

/// Runs one query under every configuration, cross-checks the results,
/// and returns the sequential table.
fn check_query(g: &PropertyGraph, q: &str, params: &Params) -> Table {
    let seq = run_read_with(g, q, params, &cfg(1, 1024))
        .unwrap_or_else(|e| panic!("sequential engine failed on {q}: {e}"));
    for (threads, morsel) in [(4, 8), (2, 1), (3, 1024)] {
        let par = run_read_with(g, q, params, &cfg(threads, morsel)).unwrap_or_else(|e| {
            panic!("parallel engine (threads={threads}, morsel={morsel}) failed on {q}: {e}")
        });
        // Exact row-sequence equality — which subsumes multiset equality.
        assert!(
            par.ordered_eq(&seq),
            "parallel result drifted (threads={threads}, morsel={morsel}) on {q}\n\
             sequential:\n{seq}\nparallel:\n{par}"
        );
    }
    let oracle =
        run_reference(g, q, params).unwrap_or_else(|e| panic!("reference failed on {q}: {e}"));
    assert!(
        seq.bag_eq(&oracle),
        "engine diverges from the reference oracle on {q}\nengine:\n{seq}\nreference:\n{oracle}"
    );
    seq
}

/// Sorts every list cell (collect output) by the orderability order, so
/// tables can be compared against the reference oracle, which feeds
/// aggregation in a different row order than the engine pipelines.
fn canonicalize_lists(t: &Table) -> Table {
    let mut out = Table::empty(t.schema().clone());
    for r in t.rows() {
        let vals: Vec<Value> = r
            .values()
            .iter()
            .map(|v| match v {
                Value::List(items) => {
                    let mut sorted = items.clone();
                    sorted.sort_by(|a, b| a.cmp_order(b));
                    Value::List(sorted)
                }
                other => other.clone(),
            })
            .collect();
        out.push(Record::new(vals));
    }
    out
}

/// Runs one aggregation-heavy query under the full pushdown matrix —
/// merged-table baseline (pushdown off), sequential fused fold, parallel
/// partial aggregation at several thread/morsel combinations (including
/// force mode, which exercises the merge path regardless of input size) —
/// and cross-checks every result row-for-row, then checks the baseline
/// against the reference oracle.
fn check_aggregate_query(g: &PropertyGraph, q: &str, params: &Params) -> Table {
    let base_cfg = cfg(1, 1024).with_partial_agg(PartialAggMode::Off);
    let base = run_read_with(g, q, params, &base_cfg)
        .unwrap_or_else(|e| panic!("baseline engine failed on {q}: {e}"));
    let variants: [(usize, usize, PartialAggMode); 5] = [
        (1, 1024, PartialAggMode::Auto), // sequential fused fold
        (4, 8, PartialAggMode::Auto),
        (2, 1, PartialAggMode::Force), // worst-case merge interleaving
        (4, 1, PartialAggMode::Force),
        (3, 1024, PartialAggMode::Force),
    ];
    for (threads, morsel, mode) in variants {
        let c = cfg(threads, morsel).with_partial_agg(mode);
        let out = run_read_with(g, q, params, &c).unwrap_or_else(|e| {
            panic!(
                "pushdown engine (threads={threads}, morsel={morsel}, {mode:?}) failed on {q}: {e}"
            )
        });
        // Exact row sequence — aggregation results must not merely agree
        // as bags, they must be bit-identical in order and value (floats
        // included) for every thread count and morsel size.
        assert!(
            out.ordered_eq(&base),
            "pushdown drifted (threads={threads}, morsel={morsel}, {mode:?}) on {q}\n\
             baseline:\n{base}\npushdown:\n{out}"
        );
    }
    let oracle =
        run_reference(g, q, params).unwrap_or_else(|e| panic!("reference failed on {q}: {e}"));
    let canon_engine = canonicalize_lists(&base);
    let canon_oracle = canonicalize_lists(&oracle);
    if q.contains("ORDER BY") {
        // Every ordered query of the aggregate grammar sorts by a total
        // order (up to identical rows), so even the oracle must agree on
        // the exact row sequence.
        assert!(
            canon_engine.ordered_eq(&canon_oracle),
            "engine diverges from the oracle row order on {q}\n\
             engine:\n{base}\nreference:\n{oracle}"
        );
    } else {
        assert!(
            canon_engine.bag_eq(&canon_oracle),
            "engine diverges from the reference oracle on {q}\n\
             engine:\n{base}\nreference:\n{oracle}"
        );
    }
    base
}

#[test]
fn five_hundred_generated_queries_agree_across_thread_counts() {
    let params = Params::new();
    let mut total = 0usize;
    let mut nonempty = 0usize;
    for seed in 0..4u64 {
        let g = random_graph(22, 40, &["A", "B"], &["X", "Y"], seed);
        let mut gen = QueryGenerator::new(1000 + seed);
        for _ in 0..130 {
            let q = gen.next_query();
            total += 1;
            if !check_query(&g, &q, &params).is_empty() {
                nonempty += 1;
            }
        }
    }
    assert!(total >= 500, "only {total} queries generated");
    // The workload must actually exercise the executor, not just prove
    // that empty agrees with empty.
    assert!(
        nonempty * 2 >= total,
        "workload too vacuous: {nonempty}/{total} queries returned rows"
    );
}

#[test]
fn aggregation_corpus_agrees_across_pushdown_configs() {
    let params = Params::new();
    let mut total = 0usize;
    let mut nonempty = 0usize;
    for seed in 0..4u64 {
        let g = random_graph(22, 40, &["A", "B"], &["X", "Y"], 50 + seed);
        let mut gen = QueryGenerator::new(3000 + seed);
        for _ in 0..110 {
            let q = gen.next_aggregate_query();
            total += 1;
            if !check_aggregate_query(&g, &q, &params).is_empty() {
                nonempty += 1;
            }
        }
    }
    assert!(total >= 400, "only {total} aggregate queries generated");
    assert!(
        nonempty * 2 >= total,
        "aggregate workload too vacuous: {nonempty}/{total} queries returned rows"
    );
}

#[test]
fn aggregation_corpus_agrees_after_graph_mutations() {
    // The same corpus with update statements churning the graph (and the
    // index statistics the planner anchors the fused pipelines on).
    let params = Params::new();
    let mut g = random_graph(18, 30, &["A", "B"], &["X", "Y"], 77);
    let mut ugen = QueryGenerator::new(8888);
    for step in 0..6u64 {
        let u = ugen.next_update();
        cypher::run(&mut g, &u, &params).unwrap_or_else(|e| panic!("update failed ({u}): {e}"));
        let mut gen = QueryGenerator::new(9000 + step);
        for _ in 0..12 {
            let q = gen.next_aggregate_query();
            check_aggregate_query(&g, &q, &params);
        }
    }
}

#[test]
fn generated_queries_agree_after_graph_mutations() {
    // Re-check a slice of the workload after update clauses have churned
    // the graph (and thus the indexes the parallel sources seek through).
    // The update statements come from the same grammar-driven generator
    // the crash-recovery differential replays (`QueryGenerator::
    // next_update`), so both harnesses exercise one mutation surface.
    let params = Params::new();
    let mut g = random_graph(18, 30, &["A", "B"], &["X", "Y"], 99);
    let mut ugen = QueryGenerator::new(4242);
    for step in 0..8u64 {
        let u = ugen.next_update();
        cypher::run(&mut g, &u, &params).unwrap_or_else(|e| panic!("update failed ({u}): {e}"));
        let mut gen = QueryGenerator::new(7000 + step);
        for _ in 0..15 {
            let q = gen.next_query();
            check_query(&g, &q, &params);
        }
    }
}
