//! # cypher
//!
//! The facade crate of this reproduction of *Cypher: An Evolving Query
//! Language for Property Graphs* (Francis et al., SIGMOD 2018): parse,
//! plan and execute Cypher queries over in-memory property graphs.
//!
//! Two interchangeable evaluators are provided:
//!
//! * [`run`] / [`run_read`] — the production-style engine
//!   ([`cypher_engine`]): cost-based planning, `Expand` chains over native
//!   adjacency, Volcano iterators, update clauses;
//! * [`run_reference`] — the literal transcription of the paper's formal
//!   semantics ([`cypher_core`]), used as the differential-testing oracle.
//!
//! For graphs that must outlive the process, [`Database`] wraps the
//! engine in the durable open/query/checkpoint/close lifecycle of
//! [`cypher_storage`]: every query's mutations are committed to a
//! write-ahead log as one atomic batch and compacted into snapshots,
//! and reopening the data directory recovers the graph — indexes
//! included — exactly.
//!
//! ```
//! use cypher::{run, run_read, Params, PropertyGraph};
//!
//! let mut g = PropertyGraph::new();
//! let params = Params::new();
//! run(&mut g, "CREATE (:Researcher {name: 'Nils'})-[:AUTHORS]->(:Publication {acmid: 220})",
//!     &params).unwrap();
//! let out = run_read(&g, "MATCH (r:Researcher)-[:AUTHORS]->(p) RETURN r.name, p.acmid",
//!     &params).unwrap();
//! assert_eq!(out.len(), 1);
//! ```

#![warn(missing_docs)]

use std::fmt;

pub use cypher_ast as ast;
pub use cypher_core::{
    eval_query, table_of, EvalContext, EvalError, MatchConfig, Morphism, Params, Record, Schema,
    Table,
};
pub use cypher_engine::{
    env_config_issues, ClauseProfile, EngineConfig, EnvConfigIssue, ExecMetrics, FsyncMode,
    MultiResult, OpProfile, PartialAggMode, PlanMemo, PlannerMode, QueryProfile, WcoJoinMode,
};
pub use cypher_graph::{
    Catalog, Change, Direction, GraphView, NodeId, Path, PropertyGraph, RelId, SharedChangeBuffer,
    Symbol, Temporal, Tri, Value, VersionedGraph, ViewRef, WriteTxn,
};
pub use cypher_metrics as metrics;
pub use cypher_parser::{parse_expression, parse_pattern, parse_query, ParseError};
pub use cypher_storage as storage;
pub use cypher_storage::{RecoveryReport, StorageError, Store};
pub use cypher_workload as workload;

mod database;
mod view;
pub use database::{
    Database, DatabaseMetrics, MetricsSnapshot, PlanCacheStats, ProfileReport, Session,
    SlowQueryEntry, SlowQuerySink,
};
pub use view::{SubscriptionPoll, ViewChange, ViewSubscription};

/// Anything that can go wrong between query text and result table.
#[derive(Debug, Clone)]
pub enum Error {
    /// The text did not parse.
    Parse(ParseError),
    /// Evaluation failed.
    Eval(EvalError),
    /// The durable storage engine failed (I/O, corruption, recovery).
    Storage(std::sync::Arc<StorageError>),
    /// The write path is unavailable: the database was closed, or turned
    /// read-only after a failed WAL commit. Reads keep working. Clients
    /// (in-process or remote) should treat this as "retry against a
    /// reopened database", not as a statement-level failure — which is
    /// why it is a dedicated variant rather than an [`EvalError`]: a
    /// network front-end maps it to its own protocol error code.
    Unavailable(String),
}

/// Structural equality; storage errors (which wrap non-comparable
/// `io::Error`s) compare by rendered message.
impl PartialEq for Error {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Error::Parse(a), Error::Parse(b)) => a == b,
            (Error::Eval(a), Error::Eval(b)) => a == b,
            (Error::Storage(a), Error::Storage(b)) => a.to_string() == b.to_string(),
            (Error::Unavailable(a), Error::Unavailable(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "{e}"),
            Error::Eval(e) => write!(f, "{e}"),
            Error::Storage(e) => write!(f, "{e}"),
            Error::Unavailable(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Parse(e)
    }
}

impl From<EvalError> for Error {
    fn from(e: EvalError) -> Self {
        Error::Eval(e)
    }
}

impl From<StorageError> for Error {
    fn from(e: StorageError) -> Self {
        Error::Storage(std::sync::Arc::new(e))
    }
}

/// Parses and executes a query (reads and updates) with the default
/// engine configuration.
pub fn run(graph: &mut PropertyGraph, query: &str, params: &Params) -> Result<Table, Error> {
    run_with(graph, query, params, &EngineConfig::default())
}

/// Parses and executes a query with an explicit configuration.
pub fn run_with(
    graph: &mut PropertyGraph,
    query: &str,
    params: &Params,
    cfg: &EngineConfig,
) -> Result<Table, Error> {
    let q = parse_query(query)?;
    Ok(cypher_engine::execute(graph, &q, params, cfg)?)
}

/// Parses and executes a read-only query through the planner engine.
pub fn run_read(graph: &PropertyGraph, query: &str, params: &Params) -> Result<Table, Error> {
    run_read_with(graph, query, params, &EngineConfig::default())
}

/// Read-only execution with an explicit configuration.
pub fn run_read_with(
    graph: &PropertyGraph,
    query: &str,
    params: &Params,
    cfg: &EngineConfig,
) -> Result<Table, Error> {
    let q = parse_query(query)?;
    Ok(cypher_engine::execute_read(graph, &q, params, cfg)?)
}

/// Parses and evaluates a read query with the **reference evaluator** —
/// the paper's denotational semantics, used as the testing oracle.
pub fn run_reference(graph: &PropertyGraph, query: &str, params: &Params) -> Result<Table, Error> {
    run_reference_with(graph, query, params, MatchConfig::default())
}

/// Reference evaluation with an explicit matching configuration.
pub fn run_reference_with(
    graph: &PropertyGraph,
    query: &str,
    params: &Params,
    config: MatchConfig,
) -> Result<Table, Error> {
    let q = parse_query(query)?;
    let ctx = EvalContext::new(graph, params).with_config(config);
    Ok(cypher_core::eval_query(&ctx, &q)?)
}

/// Renders the physical plans of a query's `MATCH` clauses (`EXPLAIN`).
pub fn explain(graph: &PropertyGraph, query: &str) -> Result<String, Error> {
    let q = parse_query(query)?;
    Ok(cypher_engine::explain(graph, &q, &EngineConfig::default()))
}

/// Executes a composed query over a catalog of named graphs (Cypher 10,
/// paper Section 6).
pub fn run_on_catalog(
    catalog: &mut Catalog,
    default_graph: &str,
    query: &str,
    params: &Params,
) -> Result<MultiResult, Error> {
    let q = parse_query(query)?;
    Ok(cypher_engine::execute_on_catalog(
        catalog,
        default_graph,
        &q,
        params,
        &EngineConfig::default(),
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_roundtrip() {
        let mut g = PropertyGraph::new();
        let params = Params::new();
        run(&mut g, "CREATE (:P {x: 1}), (:P {x: 2})", &params).unwrap();
        let t = run_read(&g, "MATCH (p:P) RETURN sum(p.x) AS s", &params).unwrap();
        assert_eq!(t.cell(0, "s"), Some(&Value::int(3)));
        let r = run_reference(&g, "MATCH (p:P) RETURN sum(p.x) AS s", &params).unwrap();
        assert!(t.bag_eq(&r));
    }

    #[test]
    fn parse_errors_surface() {
        let mut g = PropertyGraph::new();
        let params = Params::new();
        let e = run(&mut g, "MATCH (", &params).unwrap_err();
        assert!(matches!(e, Error::Parse(_)));
        let e2 = run(&mut g, "RETURN nosuch", &params).unwrap_err();
        assert!(matches!(e2, Error::Eval(_)));
    }

    #[test]
    fn explain_works_via_facade() {
        let g = workload::figure4();
        let plan = explain(&g, "MATCH (t:Teacher)-[:KNOWS]->(x) RETURN x").unwrap();
        assert!(plan.contains("Expand"));
    }
}
