//! The `Database` facade: open / query / checkpoint / close over an
//! optionally durable property graph.
//!
//! This is the layer that turns the storage engine's pieces into one
//! coherent lifecycle:
//!
//! 1. **open** — `cypher_storage::Store::open` recovers the graph from
//!    the latest valid snapshot plus the replayed WAL tail, then a
//!    [`SharedChangeBuffer`] sink is installed into the graph so every
//!    subsequent mutation is captured;
//! 2. **query** — the engine executes; afterwards, whatever change
//!    records the query produced are drained and appended to the WAL as
//!    **one atomic batch** (all-or-nothing on replay). A query that
//!    errors midway still commits the mutations it *did* apply — the
//!    in-memory graph keeps them (Cypher has no rollback), so the disk
//!    must too, or memory and disk would diverge;
//! 3. **checkpoint** — when the WAL outgrows
//!    [`EngineConfig::wal_compact_bytes`] (or on demand), the graph is
//!    snapshotted and the WAL truncated;
//! 4. **close** — fsyncs the WAL. Every committed batch is handed to
//!    the OS at commit time, so dropping without closing survives
//!    *process* crashes; surviving OS crashes / power loss additionally
//!    needs the fsync that `close` and every checkpoint perform (a torn
//!    not-yet-synced tail is truncated on recovery, never mis-read).

use crate::{run_reference_with, Error, Table};
use cypher_ast::query::Query;
use cypher_core::Params;
use cypher_engine::{stats_fingerprint, EngineConfig, PlanMemo};
use cypher_graph::{PropertyGraph, SharedChangeBuffer};
use cypher_storage::{RecoveryReport, Store};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// Counters of the `Database` parse+plan cache. All zeros when the cache
/// is disabled (`EngineConfig::plan_cache_size == 0`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Queries answered entirely from cache (no parse, no planning).
    pub hits: u64,
    /// Queries that were parsed (and planned) fresh.
    pub misses: u64,
    /// Cache entries whose plans were discarded because the index
    /// statistics drifted far enough to re-plan (the parse is kept).
    pub invalidations: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
}

/// One cached query: the parsed AST, the memoized plans, and the
/// fingerprints they are valid under.
struct CacheEntry {
    query: Arc<Query>,
    memo: Arc<PlanMemo>,
    stats_fp: u64,
    cfg_fp: u64,
    last_used: u64,
}

/// An LRU parse+plan cache keyed by query text.
#[derive(Default)]
struct PlanCache {
    entries: HashMap<String, CacheEntry>,
    tick: u64,
    stats: PlanCacheStats,
}

impl PlanCache {
    /// Looks up (or creates) the entry for `text`, validating fingerprints.
    fn resolve(
        &mut self,
        text: &str,
        capacity: usize,
        cfg_fp: u64,
        stats_fp: u64,
    ) -> Result<(Arc<Query>, Arc<PlanMemo>), Error> {
        self.tick += 1;
        if let Some(e) = self.entries.get_mut(text) {
            if e.cfg_fp == cfg_fp {
                e.last_used = self.tick;
                if e.stats_fp != stats_fp {
                    // Statistics moved: keep the parse, drop the plans.
                    e.memo = Arc::new(PlanMemo::new());
                    e.stats_fp = stats_fp;
                    self.stats.invalidations += 1;
                } else {
                    self.stats.hits += 1;
                }
                return Ok((Arc::clone(&e.query), Arc::clone(&e.memo)));
            }
            // Config changed under the same text: replace below.
            self.entries.remove(text);
        }
        self.stats.misses += 1;
        let query = Arc::new(crate::parse_query(text)?);
        let memo = Arc::new(PlanMemo::new());
        if self.entries.len() >= capacity {
            // Evict the least-recently-used entry (capacity ≥ 1 here).
            if let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&lru);
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(
            text.to_string(),
            CacheEntry {
                query: Arc::clone(&query),
                memo: Arc::clone(&memo),
                stats_fp,
                cfg_fp,
                last_used: self.tick,
            },
        );
        Ok((query, memo))
    }
}

/// A property graph with an optional durable store behind it.
///
/// ```
/// use cypher::{Database, Params};
///
/// let dir = std::env::temp_dir().join(format!("cypher-doc-{}", std::process::id()));
/// let _ = std::fs::remove_dir_all(&dir);
/// let params = Params::new();
/// {
///     let mut db = Database::open(&dir).unwrap();
///     db.query("CREATE (:Person {name: 'Ada'})", &params).unwrap();
/// } // dropped: committed batches are already with the OS
/// let mut db = Database::open(&dir).unwrap();
/// let out = db.query("MATCH (p:Person) RETURN p.name", &params).unwrap();
/// assert_eq!(out.len(), 1);
/// std::fs::remove_dir_all(&dir).unwrap();
/// ```
pub struct Database {
    graph: PropertyGraph,
    cfg: EngineConfig,
    buffer: SharedChangeBuffer,
    store: Option<Store>,
    recovery: RecoveryReport,
    cache: PlanCache,
    /// `(graph version, statistics fingerprint)` memo: the fingerprint is
    /// only recomputed after a mutation actually happened, so cache hits
    /// on read-only workloads cost one counter comparison.
    stats_fp: Option<(u64, u64)>,
}

impl Database {
    /// Opens (creating if necessary) a durable database at `dir`,
    /// recovering whatever a previous process committed there.
    pub fn open(dir: impl AsRef<Path>) -> Result<Database, Error> {
        let mut cfg = EngineConfig::default();
        cfg.persistence = Some(dir.as_ref().to_path_buf());
        Database::open_with(cfg)
    }

    /// Opens a database as configured: durable when
    /// [`EngineConfig::persistence`] is set (which defaults from the
    /// `CYPHER_DATA_DIR` environment variable), in-memory otherwise.
    pub fn open_with(cfg: EngineConfig) -> Result<Database, Error> {
        let (graph, store, recovery) = match &cfg.persistence {
            Some(dir) => {
                let (store, graph) = Store::open(dir)?;
                let recovery = store.report().clone();
                (graph, Some(store), recovery)
            }
            None => (PropertyGraph::new(), None, RecoveryReport::default()),
        };
        let mut db = Database {
            graph,
            cfg,
            buffer: SharedChangeBuffer::new(),
            store,
            recovery,
            cache: PlanCache::default(),
            stats_fp: None,
        };
        if db.store.is_some() {
            db.graph.set_change_sink(Box::new(db.buffer.clone()));
        }
        Ok(db)
    }

    /// An in-memory database (no files, no WAL); mostly for tests and as
    /// the oracle half of differential harnesses.
    pub fn in_memory() -> Database {
        let mut cfg = EngineConfig::default();
        cfg.persistence = None;
        Database::open_with(cfg).expect("in-memory open cannot fail")
    }

    /// Executes one query (reads and updates). A mutating query's change
    /// records are committed to the WAL as one atomic batch after the
    /// engine finishes; the snapshot-compaction trigger runs afterwards.
    ///
    /// Repeated query texts skip parsing and `MATCH` planning entirely via
    /// the LRU plan cache (capacity [`EngineConfig::plan_cache_size`];
    /// `0` disables). Cached plans are dropped — the parse is kept — when
    /// the index statistics drift far enough to change plan choice
    /// (log₂-bucketed fingerprint; see `cypher_engine::stats_fingerprint`).
    /// Parameters are *not* part of the cache key: plans embed parameter
    /// *expressions*, evaluated freshly on every execution.
    pub fn query(&mut self, query: &str, params: &Params) -> Result<Table, Error> {
        let result = (|| {
            let capacity = self.cfg.plan_cache_size;
            if capacity == 0 {
                let q = crate::parse_query(query)?;
                return Ok(cypher_engine::execute(
                    &mut self.graph,
                    &q,
                    params,
                    &self.cfg,
                )?);
            }
            let version = self.graph.version();
            let stats_fp = match self.stats_fp {
                Some((v, fp)) if v == version => fp,
                _ => {
                    let fp = stats_fingerprint(&self.graph);
                    self.stats_fp = Some((version, fp));
                    fp
                }
            };
            let (q, memo) =
                self.cache
                    .resolve(query, capacity, self.cfg.plan_fingerprint(), stats_fp)?;
            Ok(cypher_engine::execute_cached(
                &mut self.graph,
                &q,
                params,
                &self.cfg,
                Some(&memo),
            )?)
        })();
        // Commit even when the query errored: the in-memory graph keeps
        // whatever mutations were applied before the error, so the log
        // must record them to stay the graph's source of truth.
        let changes = self.buffer.drain();
        if let Some(store) = &mut self.store {
            if !changes.is_empty() {
                store.commit(&changes)?;
            }
            if store.wal_bytes() > self.cfg.wal_compact_bytes {
                store.checkpoint(&self.graph)?;
            }
        }
        result
    }

    /// Evaluates a read query with the reference evaluator (the paper's
    /// denotational semantics) against the current graph.
    pub fn query_reference(&self, query: &str, params: &Params) -> Result<Table, Error> {
        run_reference_with(&self.graph, query, params, self.cfg.match_config)
    }

    /// Forces a snapshot + WAL truncation now. No-op for in-memory
    /// databases.
    pub fn checkpoint(&mut self) -> Result<(), Error> {
        if let Some(store) = &mut self.store {
            store.checkpoint(&self.graph)?;
        }
        Ok(())
    }

    /// Syncs the WAL to stable storage and consumes the database. Every
    /// committed batch is handed to the OS at commit time (durable
    /// against process crashes); `close` forces the fsync that makes the
    /// tail durable against OS crashes and power loss too.
    pub fn close(mut self) -> Result<(), Error> {
        if let Some(store) = &mut self.store {
            store.sync()?;
        }
        Ok(())
    }

    /// Read access to the underlying graph.
    pub fn graph(&self) -> &PropertyGraph {
        &self.graph
    }

    /// What recovery found when this database was opened (all zeros for
    /// in-memory databases).
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Number of WAL batches committed over the store's lifetime; `None`
    /// for in-memory databases. The recovery differential uses this to
    /// map kill points back to statement prefixes.
    pub fn batches_committed(&self) -> Option<u64> {
        self.store.as_ref().map(|s| s.batches_committed())
    }

    /// Current WAL size in bytes; `None` for in-memory databases.
    pub fn wal_bytes(&self) -> Option<u64> {
        self.store.as_ref().map(|s| s.wal_bytes())
    }

    /// Current snapshot generation; `None` for in-memory databases.
    pub fn generation(&self) -> Option<u64> {
        self.store.as_ref().map(|s| s.generation())
    }

    /// The engine configuration this database executes with.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Hit/miss/invalidation/eviction counters of the parse+plan cache.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.cache.stats
    }

    /// Number of query texts currently cached.
    pub fn plan_cache_len(&self) -> usize {
        self.cache.entries.len()
    }

    /// Renders the physical plans (and projection pushdowns) this
    /// database's configuration produces for `query` against the current
    /// graph and statistics — the `EXPLAIN` witness the plan-cache tests
    /// compare before and after invalidation.
    pub fn explain(&self, query: &str) -> Result<String, Error> {
        let q = crate::parse_query(query)?;
        Ok(cypher_engine::explain(&self.graph, &q, &self.cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_graph::Value;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("cypher-db-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn durable_roundtrip_across_open() {
        let dir = tmpdir("roundtrip");
        let params = Params::new();
        {
            let mut db = Database::open(&dir).unwrap();
            db.query(
                "CREATE (:P {name: 'Ada'})-[:KNOWS {since: 1985}]->(:P {name: 'Bo'})",
                &params,
            )
            .unwrap();
            db.query("MATCH (n:P {name: 'Bo'}) SET n.age = 3", &params)
                .unwrap();
            assert_eq!(db.batches_committed(), Some(2));
            db.close().unwrap();
        }
        let mut db = Database::open(&dir).unwrap();
        assert_eq!(db.recovery().batches_replayed, 2);
        let out = db
            .query(
                "MATCH (a:P)-[r:KNOWS]->(b) RETURN a.name, r.since, b.age",
                &params,
            )
            .unwrap();
        assert_eq!(out.cell(0, "a.name"), Some(&Value::str("Ada")));
        assert_eq!(out.cell(0, "r.since"), Some(&Value::int(1985)));
        assert_eq!(out.cell(0, "b.age"), Some(&Value::int(3)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_trigger_snapshots_and_truncates() {
        let dir = tmpdir("compact");
        let params = Params::new();
        let mut cfg = EngineConfig::default();
        cfg.persistence = Some(dir.clone());
        cfg.wal_compact_bytes = 512; // tiny: trigger quickly
        let mut db = Database::open_with(cfg.clone()).unwrap();
        for i in 0..50 {
            db.query(&format!("CREATE (:N {{i: {i}}})"), &params)
                .unwrap();
        }
        assert!(db.generation().unwrap() > 0, "compaction never triggered");
        assert!(db.wal_bytes().unwrap() <= 512 + 200, "wal was truncated");
        let dump = db.graph().canonical_dump();
        db.close().unwrap();
        let db2 = Database::open_with(cfg).unwrap();
        assert_eq!(db2.graph().canonical_dump(), dump);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_query_keeps_memory_and_disk_aligned() {
        let dir = tmpdir("failed");
        let params = Params::new();
        {
            let mut db = Database::open(&dir).unwrap();
            db.query("CREATE (:A {v: 1}), (:A {v: 2})", &params)
                .unwrap();
            // DELETE without DETACH on a connected node errors after the
            // CREATE clause already ran.
            db.query("CREATE (a:B)-[:X]->(b:B) WITH a DELETE a", &params)
                .unwrap_err();
            let dump = db.graph().canonical_dump();
            db.close().unwrap();
            let db2 = Database::open(&dir).unwrap();
            assert_eq!(
                db2.graph().canonical_dump(),
                dump,
                "partial mutations of a failed query must be durable too"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_memory_database_has_no_files() {
        let params = Params::new();
        let mut db = Database::in_memory();
        db.query("CREATE (:N)", &params).unwrap();
        assert_eq!(db.batches_committed(), None);
        assert_eq!(db.wal_bytes(), None);
        assert!(!db.graph().has_change_sink());
    }
}
