//! The `Database` facade: a **transactional, multi-version** property
//! graph — open / session / query / checkpoint / close — over the
//! versioned core of [`cypher_graph::VersionedGraph`] and the durable
//! store of [`cypher_storage`].
//!
//! ## Concurrency model (snapshot isolation, group commit)
//!
//! * Any number of [`Session`]s (cheap handles onto one shared database)
//!   run **read queries concurrently**, each against a frozen
//!   [`GraphView`]. Reader admission is lock-free (a few atomics — see
//!   `cypher_graph::version`), so an in-flight writer never blocks
//!   readers and readers never block the writer.
//! * **Write execution is serialized** by the apply lock: each updating
//!   query executes against a copy-on-write clone of the *apply head*
//!   (the working graph carrying every commit admitted so far, published
//!   or not), and its clone becomes the next apply head. Durability and
//!   visibility are **decoupled from execution** by the group-commit
//!   queue: the finished transaction enqueues its change batch and
//!   candidate graph, and one *leader* drains the queue, sealing every
//!   queued batch in a **single WAL write (+ fsync)** and publishing one
//!   version that covers the whole group. Concurrent writers therefore
//!   amortize the per-commit fsync; a solo writer forms groups of one
//!   and behaves exactly like the classic serial path.
//! * Batch seqs stay **per-transaction**: member `i` of a group sealed
//!   at `first_seq` commits as seq `first_seq + i` and its version id is
//!   `seq + 1`, so transaction id = batch seq = version survives
//!   grouping (intermediate versions of a group are simply never
//!   published — the group's last candidate is, covering them all).
//! * [`EngineConfig::fsync_mode`] picks the durability schedule:
//!   `Os` (seal, no fsync), `Sync` (fsync before publish), `Pipelined`
//!   (a dedicated fsync thread flushes group N through a duplicate file
//!   handle while the leader appends group N+1; publish and commit
//!   acknowledgements happen after the flush). A failed seal or flush
//!   **poisons exactly its group**: the member transactions get the
//!   error, the WAL is rolled back to the last durable group, prior
//!   groups stay durable, and the database turns read-only. The *first*
//!   failure owns that rollback — groups sealed behind it are already
//!   cut by its truncation and just fail their tickets (a rollback
//!   never extends the file).
//! * [`Session::begin_read`] pins the latest version for a multi-query
//!   read transaction: every query until [`Session::commit`] sees that
//!   one frozen state, regardless of concurrent commits.
//!
//! ## Durability lifecycle (unchanged from the storage engine's design)
//!
//! 1. **open** — `cypher_storage::Store::open` recovers the graph from
//!    the latest valid snapshot plus the replayed WAL tail; the result
//!    is published as the initial version (= batches recovered);
//! 2. **query** — one WAL batch per mutating query, sealed inside a
//!    group record; a query that errors midway still commits the
//!    mutations it *did* apply (Cypher has no rollback), atomically, so
//!    memory and disk stay aligned;
//! 3. **checkpoint** — when the WAL outgrows
//!    [`EngineConfig::wal_compact_bytes`] (or on demand), the commit
//!    pipeline is quiesced (queue drained, in-flight fsyncs retired),
//!    the latest version is snapshotted and the WAL truncated;
//! 4. **close** — quiesces the pipeline and fsyncs the WAL (committed
//!    batches are already with the OS, so dropping without closing
//!    survives *process* crashes).

use crate::{run_reference_with, Error, Record, Schema, Table};
use cypher_ast::query::Query;
use cypher_core::error::EvalError;
use cypher_core::Params;
use cypher_engine::{stats_fingerprint, EngineConfig, FsyncMode, PlanMemo, QueryProfile};
use cypher_graph::{Change, GraphView, PropertyGraph, SharedChangeBuffer, Value, VersionedGraph};
use cypher_metrics::{fmt_counter, fmt_gauge, fmt_histogram, Counter, Gauge, Histogram};
use cypher_storage::{RecoveryReport, StorageError, Store};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::path::Path;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// Counters of the `Database` parse+plan cache. All zeros when the cache
/// is disabled (`EngineConfig::plan_cache_size == 0`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Queries answered entirely from cache (no parse, no planning).
    pub hits: u64,
    /// Queries that were parsed (and planned) fresh.
    pub misses: u64,
    /// Cache entries that held no plans valid under the querying
    /// session's statistics fingerprint, so the plans were compiled
    /// fresh (the parse is kept).
    pub invalidations: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
}

/// The engine-wide metrics registry: every layer of one database —
/// query dispatch, the commit pipeline, checkpointing, sessions —
/// records into these lock-free instruments (see [`cypher_metrics`]).
/// Recording is gated on [`EngineConfig::metrics_enabled`]
/// (`CYPHER_METRICS`); when disabled every hook is a single branch on a
/// plain bool, so the hot path pays nothing.
///
/// Exposed through [`Database::metrics`] (typed, for tests and embedded
/// monitoring) and [`Database::metrics_snapshot`] (Prometheus-style
/// text, served over the wire protocol's `Metrics` request).
#[derive(Debug)]
pub struct DatabaseMetrics {
    enabled: bool,
    /// Read queries executed (successful or not; `EXPLAIN` excluded,
    /// `PROFILE` included — it executes the query).
    pub queries_read: Counter,
    /// Updating queries executed (successful or not, including updates
    /// refused inside a read transaction).
    pub queries_write: Counter,
    /// Queries that returned an error.
    pub queries_failed: Counter,
    /// Rows returned to clients by successful queries.
    pub rows_returned: Counter,
    /// End-to-end statement latency, microseconds (parse through
    /// commit acknowledgement).
    pub query_latency_us: Histogram,
    /// Queries at or above the [`EngineConfig::slow_query_ms`]
    /// threshold (0 when the slow-query log is disabled).
    pub slow_queries: Counter,
    /// Commit groups sealed by the group-commit leader.
    pub commit_groups: Counter,
    /// Member transactions per sealed group.
    pub commit_group_size: Histogram,
    /// Transactions currently waiting in the group-commit queue.
    pub commit_queue_depth: Gauge,
    /// Wall time of one group seal (WAL write + fsync handoff),
    /// microseconds.
    pub seal_latency_us: Histogram,
    /// Wall time of one successful WAL flush, microseconds (`Sync` and
    /// `Pipelined` fsync modes; `Os` mode never flushes).
    pub fsync_latency_us: Histogram,
    /// Times the database turned read-only after a failed WAL commit
    /// (first failure only — the cascade it causes is not re-counted).
    pub poison_events: Counter,
    /// Explicit checkpoints ([`Database::checkpoint`] and `close`).
    pub checkpoints: Counter,
    /// Checkpoints triggered by the WAL outgrowing
    /// [`EngineConfig::wal_compact_bytes`].
    pub wal_compactions: Counter,
    /// Open [`Session`] handles.
    pub sessions_active: Gauge,
    /// Sessions currently holding a pinned read snapshot.
    pub sessions_pinned: Gauge,
    /// Wall time of one standing-view refresh (delta fold + snapshot),
    /// microseconds, recorded per view per published commit group.
    pub view_refresh_us: Histogram,
    /// Delta rows folded into view states (retractions + insertions).
    pub view_delta_rows: Counter,
    /// View refreshes (or reads) that fell back to re-running the whole
    /// query: `Full`-mode views pay one per commit; a delta-maintained
    /// view counts one only when its state diverged, and a pinned reader
    /// counts one when its snapshot predates the published ring.
    pub view_full_recomputes: Counter,
    /// `trace_id + 1` of the most recent commit whose group was sealed
    /// and published carrying a trace id; 0 = none yet. The end-to-end
    /// witness that a request's trace id survives from server accept to
    /// WAL seal.
    last_sealed_trace: AtomicU64,
    /// Live read pins: `(token, pinned-at)`, for the oldest-pin-age
    /// gauge (a long-forgotten pin is the classic version-GC leak).
    pins: Mutex<Vec<(u64, Instant)>>,
    next_pin: AtomicU64,
}

impl DatabaseMetrics {
    fn new(enabled: bool) -> DatabaseMetrics {
        DatabaseMetrics {
            enabled,
            queries_read: Counter::new(),
            queries_write: Counter::new(),
            queries_failed: Counter::new(),
            rows_returned: Counter::new(),
            query_latency_us: Histogram::new(),
            slow_queries: Counter::new(),
            commit_groups: Counter::new(),
            commit_group_size: Histogram::new(),
            commit_queue_depth: Gauge::new(),
            seal_latency_us: Histogram::new(),
            fsync_latency_us: Histogram::new(),
            poison_events: Counter::new(),
            checkpoints: Counter::new(),
            wal_compactions: Counter::new(),
            sessions_active: Gauge::new(),
            sessions_pinned: Gauge::new(),
            view_refresh_us: Histogram::new(),
            view_delta_rows: Counter::new(),
            view_full_recomputes: Counter::new(),
            last_sealed_trace: AtomicU64::new(0),
            pins: Mutex::new(Vec::new()),
            next_pin: AtomicU64::new(0),
        }
    }

    /// Whether recording is on ([`EngineConfig::metrics_enabled`]).
    /// When off, every instrument stays at zero.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The trace id of the most recent published commit that carried
    /// one (threaded from the server's accept loop through
    /// [`Session::query_traced`] into the WAL seal).
    pub fn last_sealed_trace(&self) -> Option<u64> {
        match self.last_sealed_trace.load(Ordering::Relaxed) {
            0 => None,
            v => Some(v - 1),
        }
    }

    fn note_sealed_trace(&self, trace: Option<u64>) {
        if let Some(t) = trace {
            // Saturate rather than wrap: id u64::MAX must not read back
            // as "none" (it clamps to u64::MAX - 1 instead — the one
            // unrepresentable id in the zero-means-none encoding).
            self.last_sealed_trace
                .store(t.saturating_add(1), Ordering::Relaxed);
        }
    }

    fn register_pin(&self) -> u64 {
        let id = self.next_pin.fetch_add(1, Ordering::Relaxed);
        if self.enabled {
            self.sessions_pinned.inc();
            self.pins
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push((id, Instant::now()));
        }
        id
    }

    fn release_pin(&self, id: u64) {
        if self.enabled {
            let mut pins = self.pins.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(i) = pins.iter().position(|(p, _)| *p == id) {
                pins.remove(i);
                self.sessions_pinned.dec();
            }
        }
    }

    /// Age of the oldest live read pin, microseconds (0 when nothing is
    /// pinned or metrics are disabled).
    pub fn oldest_pin_age_us(&self) -> u64 {
        self.pins
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(_, at)| at.elapsed().as_micros() as u64)
            .max()
            .unwrap_or(0)
    }

    /// Appends this registry's instruments to a Prometheus-style text
    /// page.
    pub fn render_into(&self, out: &mut String) {
        fmt_counter(
            out,
            "cypher_queries_read_total",
            "read queries executed",
            self.queries_read.get(),
        );
        fmt_counter(
            out,
            "cypher_queries_write_total",
            "updating queries executed",
            self.queries_write.get(),
        );
        fmt_counter(
            out,
            "cypher_queries_failed_total",
            "queries that returned an error",
            self.queries_failed.get(),
        );
        fmt_counter(
            out,
            "cypher_rows_returned_total",
            "rows returned by successful queries",
            self.rows_returned.get(),
        );
        fmt_histogram(
            out,
            "cypher_query_latency_us",
            "end-to-end statement latency (microseconds)",
            &self.query_latency_us.snapshot(),
        );
        fmt_counter(
            out,
            "cypher_slow_queries_total",
            "queries at or above the slow-query threshold",
            self.slow_queries.get(),
        );
        fmt_counter(
            out,
            "cypher_commit_groups_total",
            "commit groups sealed",
            self.commit_groups.get(),
        );
        fmt_histogram(
            out,
            "cypher_commit_group_size",
            "member transactions per sealed group",
            &self.commit_group_size.snapshot(),
        );
        fmt_gauge(
            out,
            "cypher_commit_queue_depth",
            "transactions waiting in the group-commit queue",
            self.commit_queue_depth.get(),
        );
        fmt_histogram(
            out,
            "cypher_seal_latency_us",
            "group seal wall time (microseconds)",
            &self.seal_latency_us.snapshot(),
        );
        fmt_histogram(
            out,
            "cypher_fsync_latency_us",
            "WAL flush wall time (microseconds)",
            &self.fsync_latency_us.snapshot(),
        );
        fmt_counter(
            out,
            "cypher_poison_events_total",
            "times the database turned read-only after a failed WAL commit",
            self.poison_events.get(),
        );
        fmt_counter(
            out,
            "cypher_checkpoints_total",
            "explicit checkpoints",
            self.checkpoints.get(),
        );
        fmt_counter(
            out,
            "cypher_wal_compactions_total",
            "checkpoints triggered by WAL growth",
            self.wal_compactions.get(),
        );
        fmt_gauge(
            out,
            "cypher_sessions_active",
            "open session handles",
            self.sessions_active.get(),
        );
        fmt_gauge(
            out,
            "cypher_sessions_pinned",
            "sessions holding a pinned read snapshot",
            self.sessions_pinned.get(),
        );
        fmt_gauge(
            out,
            "cypher_oldest_pin_age_us",
            "age of the oldest live read pin (microseconds)",
            self.oldest_pin_age_us() as i64,
        );
        fmt_histogram(
            out,
            "cypher_view_refresh_us",
            "standing-view refresh wall time per commit group (microseconds)",
            &self.view_refresh_us.snapshot(),
        );
        fmt_counter(
            out,
            "cypher_view_delta_rows_total",
            "delta rows folded into standing-view states",
            self.view_delta_rows.get(),
        );
        fmt_counter(
            out,
            "cypher_view_full_recomputes_total",
            "standing-view refreshes or reads that re-ran the whole query",
            self.view_full_recomputes.get(),
        );
    }
}

/// One page of the database's metrics, with the headline identity
/// fields broken out so the wire protocol can carry them as typed
/// values next to the text exposition.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Milliseconds since this database handle was opened.
    pub uptime_ms: u64,
    /// The latest published version id.
    pub version: u64,
    /// Snapshot generation of the store (0 for in-memory databases).
    pub wal_generation: u64,
    /// Prometheus-style text exposition of every instrument: the
    /// database registry, executor counters, plan-cache stats, store
    /// mirror and recovery report.
    pub text: String,
}

/// One structured slow-query record, emitted when a statement's latency
/// reaches [`EngineConfig::slow_query_ms`]. `Display` renders the
/// machine-parseable single-line `key=value` form the default stderr
/// sink logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQueryEntry {
    /// Stable hash of the query text (the text itself may hold
    /// sensitive literals; the hash is enough to group repeat
    /// offenders).
    pub query_hash: u64,
    /// End-to-end statement latency, microseconds.
    pub duration_us: u64,
    /// Rows returned; `None` when the statement failed.
    pub rows: Option<u64>,
    /// Whether the parse+plan cache answered without planning.
    pub plan_cache_hit: bool,
    /// The version the statement committed at, if it committed one.
    pub committed_version: Option<u64>,
    /// The caller-supplied trace id ([`Session::query_traced`]), if any.
    pub trace_id: Option<u64>,
    /// Whether the statement was an updating query.
    pub write: bool,
}

impl fmt::Display for SlowQueryEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "slow_query query_hash={:016x} duration_us={} rows={} cache_hit={} \
             committed_version={} trace_id={} write={}",
            self.query_hash,
            self.duration_us,
            self.rows
                .map_or_else(|| "err".to_string(), |r| r.to_string()),
            self.plan_cache_hit,
            self.committed_version
                .map_or_else(|| "-".to_string(), |v| v.to_string()),
            self.trace_id
                .map_or_else(|| "-".to_string(), |t| t.to_string()),
            self.write,
        )
    }
}

/// Where slow-query records go. The default sink writes the `Display`
/// line to stderr; embedders swap in their own collector with
/// [`Database::set_slow_query_sink`]. Called on the query's own thread
/// (only for statements past the threshold), so implementations should
/// be quick or hand off.
pub trait SlowQuerySink: Send + Sync {
    /// Accepts one slow-query record.
    fn record(&self, entry: &SlowQueryEntry);
}

/// The default sink: one machine-parseable line per slow query on
/// stderr.
struct StderrSlowQueryLog;

impl SlowQuerySink for StderrSlowQueryLog {
    fn record(&self, entry: &SlowQueryEntry) {
        eprintln!("{entry}");
    }
}

/// The result of profiling one query ([`Database::profile`]): the query
/// result plus per-operator actuals, in both structured and rendered
/// form.
pub struct ProfileReport {
    /// The query's own result table (bit-identical to an unprofiled
    /// run).
    pub result: Table,
    /// One row per pipeline operator: `clause`, `operator`, `est_rows`,
    /// `rows`, `batches`, `time_us` — what `PROFILE <query>` returns
    /// over the wire.
    pub operators: Table,
    /// The annotated plan tree, rendered for humans.
    pub text: String,
    /// The raw structured profile.
    pub profile: QueryProfile,
}

/// Case-insensitively strips leading keyword `kw` (which must be
/// followed by whitespace) from `text`, returning the remainder.
/// `EXPLAIN` / `PROFILE` are dispatch prefixes, not grammar: no valid
/// Cypher statement starts with either token, so prefix matching here
/// cannot shadow a real query.
fn keyword_prefix<'t>(text: &'t str, kw: &str) -> Option<&'t str> {
    let t = text.trim_start();
    if t.len() <= kw.len() || !t.as_bytes()[..kw.len()].eq_ignore_ascii_case(kw.as_bytes()) {
        return None;
    }
    let rest = &t[kw.len()..];
    rest.starts_with(|c: char| c.is_whitespace())
        .then(|| rest.trim_start())
}

/// A one-column table holding `text` line by line (how `EXPLAIN`
/// renders into a result table).
fn lines_table(column: &str, text: &str) -> Table {
    let mut t = Table::empty(Schema::new(vec![column.to_string()]));
    for line in text.lines() {
        t.push(Record::new(vec![Value::str(line)]));
    }
    t
}

/// Plan memos kept per cached query text: one per recent statistics
/// fingerprint, so concurrent sessions pinned at different versions
/// (hence different statistics) don't thrash each other's plans.
const MEMOS_PER_ENTRY: usize = 4;

/// One cached query: the parsed AST plus memoized plans per recent
/// statistics fingerprint.
struct CacheEntry {
    query: Arc<Query>,
    cfg_fp: u64,
    /// `(stats fingerprint, plans, last used)` — tiny LRU within the
    /// entry.
    memos: Vec<(u64, Arc<PlanMemo>, u64)>,
    last_used: u64,
}

/// An LRU parse+plan cache keyed by query text, shared by every session
/// of a database (interior `Mutex`, held only to resolve entries —
/// never across execution).
#[derive(Default)]
struct PlanCache {
    entries: HashMap<String, CacheEntry>,
    tick: u64,
    stats: PlanCacheStats,
}

impl PlanCache {
    /// Looks up the entry for `text`, returning the parsed query plus
    /// the plan memo valid under `stats_fp`. `None` means the text is
    /// not cached (or was cached under another config and has been
    /// dropped) — the caller parses **outside the cache lock** and
    /// completes with [`PlanCache::insert`].
    ///
    /// `count` suppresses the public counters for internal re-lookups
    /// (a write transaction re-validating its memo against its actual
    /// base statistics, or the adopt path after a racing insert).
    /// The returned `bool` is the *full hit* flag — `true` only when
    /// both the parse and a valid plan memo were served from cache
    /// (what the slow-query log reports as `cache_hit`).
    fn lookup(
        &mut self,
        text: &str,
        cfg_fp: u64,
        stats_fp: u64,
        count: bool,
    ) -> Option<(Arc<Query>, Arc<PlanMemo>, bool)> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.entries.get_mut(text) {
            if e.cfg_fp == cfg_fp {
                e.last_used = tick;
                if let Some(slot) = e.memos.iter_mut().find(|(fp, _, _)| *fp == stats_fp) {
                    slot.2 = tick;
                    if count {
                        self.stats.hits += 1;
                    }
                    return Some((Arc::clone(&e.query), Arc::clone(&slot.1), true));
                }
                // Statistics moved (or this session is pinned at another
                // version): keep the parse, plan fresh under this
                // fingerprint. Older fingerprints stay cached so a
                // session still pinned before the mutation keeps *its*
                // plans too.
                let memo = Arc::new(PlanMemo::new());
                if e.memos.len() >= MEMOS_PER_ENTRY {
                    if let Some(lru) = e
                        .memos
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, (_, _, used))| *used)
                        .map(|(i, _)| i)
                    {
                        e.memos.remove(lru);
                    }
                }
                e.memos.push((stats_fp, Arc::clone(&memo), tick));
                if count {
                    self.stats.invalidations += 1;
                }
                return Some((Arc::clone(&e.query), memo, false));
            }
            // Config changed under the same text: drop; the caller
            // reparses and reinserts.
            self.entries.remove(text);
        }
        None
    }

    /// Completes a miss: records the externally parsed query (evicting
    /// LRU at capacity) and returns its fresh memo.
    fn insert(
        &mut self,
        text: &str,
        query: Arc<Query>,
        capacity: usize,
        cfg_fp: u64,
        stats_fp: u64,
    ) -> (Arc<Query>, Arc<PlanMemo>) {
        self.tick += 1;
        let tick = self.tick;
        self.stats.misses += 1;
        let memo = Arc::new(PlanMemo::new());
        if self.entries.len() >= capacity {
            // Evict the least-recently-used entry (capacity ≥ 1 here).
            if let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&lru);
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(
            text.to_string(),
            CacheEntry {
                query: Arc::clone(&query),
                cfg_fp,
                memos: vec![(stats_fp, Arc::clone(&memo), tick)],
                last_used: tick,
            },
        );
        (query, memo)
    }
}

/// Lock-free mirror of the store's observability counters, refreshed
/// under the store lock after every seal/checkpoint. Monitoring getters
/// (`batches_committed`, `wal_bytes`, `generation`) read these instead
/// of taking a lock the commit pipeline may hold for a while.
struct StoreMetrics {
    durable: bool,
    batches: AtomicU64,
    wal_bytes: AtomicU64,
    generation: AtomicU64,
}

impl StoreMetrics {
    fn of(store: &Option<Store>) -> StoreMetrics {
        let m = StoreMetrics {
            durable: store.is_some(),
            batches: AtomicU64::new(0),
            wal_bytes: AtomicU64::new(0),
            generation: AtomicU64::new(0),
        };
        if let Some(s) = store {
            m.refresh(s);
        }
        m
    }

    fn refresh(&self, store: &Store) {
        self.batches
            .store(store.batches_committed(), Ordering::Relaxed);
        self.wal_bytes.store(store.wal_bytes(), Ordering::Relaxed);
        self.generation.store(store.generation(), Ordering::Relaxed);
    }

    fn read(&self, counter: &AtomicU64) -> Option<u64> {
        self.durable.then(|| counter.load(Ordering::Relaxed))
    }
}

/// A finished-but-unsealed write transaction waiting in the group-commit
/// queue: its batch seq, the change records to seal, the candidate graph
/// that becomes the published state once its group is durable, and the
/// ticket its writer blocks on.
struct PendingCommit {
    seq: u64,
    changes: Vec<Change>,
    candidate: Arc<PropertyGraph>,
    ticket: Arc<Ticket>,
    /// The caller's trace id ([`Session::query_traced`]), carried to
    /// the seal so the metrics registry can witness it end to end.
    trace: Option<u64>,
}

/// The commit a follower blocks on while the group leader (or the
/// pipelined fsync thread) seals and publishes its group: completed
/// exactly once with the member's version id or the group's error.
#[derive(Default)]
struct Ticket {
    state: Mutex<Option<Result<u64, Error>>>,
    done: Condvar,
}

impl Ticket {
    fn complete(&self, r: Result<u64, Error>) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(s.is_none(), "tickets complete exactly once");
        *s = Some(r);
        self.done.notify_all();
    }

    fn wait(&self) -> Result<u64, Error> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = s.take() {
                return r;
            }
            s = self.done.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Execution-side state of the commit pipeline, everything touched under
/// the apply lock: the apply head (the working graph carrying every
/// admitted commit, sealed or not), the next batch seq, the group-commit
/// queue and the leader flag.
struct ApplyState {
    /// The apply head: the state every admitted commit has been applied
    /// to, whether or not its group has been sealed/published yet. The
    /// next write transaction clones this (copy-on-write) and executes
    /// against the clone.
    working: Arc<PropertyGraph>,
    /// Seq the next admitted batch receives (= the apply head's version
    /// id; the published version trails this while groups are in
    /// flight).
    next_seq: u64,
    /// Admitted commits not yet handed to a seal. Invariant: non-empty
    /// only while `leader_running` (the writer that enqueues into an
    /// idle queue becomes the leader in the same critical section).
    queue: Vec<PendingCommit>,
    /// Exactly one leader drains the queue at a time.
    leader_running: bool,
    /// Change-record collector wired into each write transaction's
    /// clone while it executes (only ever one executor: the apply lock).
    buffer: SharedChangeBuffer,
}

/// A sealed group handed to the pipelined fsync thread: flush `file`,
/// then publish the group's last candidate and complete the tickets —
/// or, on a failed flush, poison the database, roll the WAL back to
/// `wal_len_before` (first failure only — see
/// [`CommitShared::set_poison`]) and fail exactly this group's tickets.
struct FsyncJob {
    file: std::fs::File,
    wal_len_before: u64,
    group: Vec<PendingCommit>,
}

/// Everything the commit pipeline shares between sessions, the group
/// leader and the pipelined fsync thread. Lock hierarchy (outer →
/// inner): `apply` → `store` → `inflight` → `poison`; `views` is a leaf
/// lock (taken by the publisher with no other lock held, and under
/// `apply` by view registration and the write path's has-views probe);
/// the metrics mirror and the fail-injection counter are atomics.
struct CommitShared {
    versioned: VersionedGraph,
    apply: Mutex<ApplyState>,
    /// Signalled when the leader retires (queue drained); quiesce waits
    /// here.
    leader_done: Condvar,
    store: Mutex<Option<Store>>,
    /// First failure wins; set before any rollback I/O so a racing seal
    /// leader aborts instead of appending past the truncation point.
    poison: Mutex<Option<String>>,
    /// Groups handed to the fsync thread and not yet published/failed.
    inflight: Mutex<usize>,
    /// Signalled when `inflight` drops; quiesce waits here.
    drained: Condvar,
    /// Test double: the next `n` pipelined flushes fail without touching
    /// the file (the `Sync`-mode double lives in the store itself).
    pipeline_fail_injections: AtomicU32,
    metrics: StoreMetrics,
    /// The engine-wide metrics registry; lives here so the commit
    /// pipeline (including the detached fsync thread) can record into
    /// it.
    db_metrics: Arc<DatabaseMetrics>,
    /// The standing-query registry (see [`crate::view`]); refreshed by
    /// whichever thread publishes a commit group, *before* the data
    /// version becomes visible.
    views: Mutex<crate::view::ViewRegistry>,
}

impl CommitShared {
    fn lock_apply(&self) -> MutexGuard<'_, ApplyState> {
        self.apply.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_store(&self) -> MutexGuard<'_, Option<Store>> {
        self.store.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn poison_msg(&self) -> Option<String> {
        self.poison
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// First poison wins: the original failure is the one later writers
    /// should see, not whatever cascade it caused. Returns whether this
    /// call won — the winner, and only the winner, owns the WAL
    /// rollback: its truncation restores the last durable boundary, and
    /// any later group's rollback target lies *past* that boundary, so
    /// truncating to it would zero-extend the file into garbage.
    fn set_poison(&self, msg: String) -> bool {
        let mut p = self.poison.lock().unwrap_or_else(|e| e.into_inner());
        if p.is_none() {
            *p = Some(msg);
            if self.db_metrics.enabled {
                self.db_metrics.poison_events.inc();
            }
            true
        } else {
            false
        }
    }

    /// Publishes a sealed-and-durable group: one version covering every
    /// member (the last candidate at `last_seq + 1`), then each member's
    /// ticket completes with its own version id `seq + 1`.
    ///
    /// Standing views refresh here, **before** the version publishes:
    /// the publishers are serialized (the seal leader in `Os`/`Sync`
    /// mode, the single fsync thread in `Pipelined` mode), so each
    /// refresh folds exactly one group's delta from the previously
    /// published graph to this group's candidate, and a reader that sees
    /// the new version sees the matching view contents.
    fn publish_group(&self, group: &[PendingCommit]) {
        let last = group.last().expect("groups are non-empty");
        {
            let mut views = self.views.lock().unwrap_or_else(|e| e.into_inner());
            if !views.is_empty() {
                let old = self.versioned.latest();
                let changes: Vec<&[Change]> = group.iter().map(|p| p.changes.as_slice()).collect();
                views.refresh_all(
                    &old,
                    &last.candidate,
                    last.seq + 1,
                    &changes,
                    &self.db_metrics,
                );
            }
        }
        self.versioned
            .publish_view(Arc::clone(&last.candidate), last.seq + 1);
        if self.db_metrics.enabled {
            for p in group {
                self.db_metrics.note_sealed_trace(p.trace);
            }
        }
        for p in group {
            p.ticket.complete(Ok(p.seq + 1));
        }
    }

    fn fail_group(&self, group: &[PendingCommit], err: &Error) {
        for p in group {
            p.ticket.complete(Err(err.clone()));
        }
    }

    /// Blocks until the commit pipeline is idle — queue drained, no
    /// leader, no in-flight fsyncs — and returns the apply guard, which
    /// the caller holds to keep new writers out while it operates on the
    /// store (checkpoint, close, compaction). On return the latest
    /// published version is exactly the state of every sealed batch.
    fn quiesce(&self) -> MutexGuard<'_, ApplyState> {
        let mut apply = self.lock_apply();
        while apply.leader_running || !apply.queue.is_empty() {
            apply = self
                .leader_done
                .wait(apply)
                .unwrap_or_else(|e| e.into_inner());
        }
        let mut inflight = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        while *inflight > 0 {
            inflight = self
                .drained
                .wait(inflight)
                .unwrap_or_else(|e| e.into_inner());
        }
        drop(inflight);
        apply
    }
}

/// The pipelined fsync scheduler: flushes sealed groups in seal order
/// through duplicate file handles, overlapping the flush of group N with
/// the leader's append of group N+1. Publish (and the members' commit
/// acknowledgements) happen here, *after* the flush — so in `Pipelined`
/// mode no reader can pin a version whose group isn't on stable storage,
/// the same guarantee `Sync` gives, at pipeline depth.
/// The worker holds only a `Weak` so a dropped (not closed) `Database`
/// releases its store — and with it the data directory's lock —
/// synchronously, instead of waiting for this thread to notice the
/// disconnected channel. A job can only be in flight while its writer
/// blocks on the ticket (holding the database alive), so the upgrade
/// cannot fail under a pending job.
fn fsync_worker(shared: std::sync::Weak<CommitShared>, rx: Receiver<FsyncJob>) {
    while let Ok(job) = rx.recv() {
        let Some(shared) = shared.upgrade() else {
            return;
        };
        let injected = shared
            .pipeline_fail_injections
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok();
        let flushed: Result<(), Error> = if let Some(msg) = shared.poison_msg() {
            // An earlier group already failed: this group was sealed
            // after the failure point and its bytes are gone (or going)
            // with the rollback — it must not publish.
            Err(Error::Unavailable(msg))
        } else if injected {
            Err(StorageError::Io(std::io::Error::other("injected fsync failure")).into())
        } else {
            let flush_started = Instant::now();
            let r = job.file.sync_all().map_err(|e| StorageError::Io(e).into());
            if r.is_ok() && shared.db_metrics.enabled {
                shared
                    .db_metrics
                    .fsync_latency_us
                    .record(flush_started.elapsed().as_micros() as u64);
            }
            r
        };
        match flushed {
            Ok(()) => shared.publish_group(&job.group),
            Err(e) => {
                // Poison FIRST, then roll back under the store lock: a
                // seal leader already holding the store lock gets its
                // append cut by our truncation; one that hasn't acquired
                // it yet sees the poison and aborts. Either way disk
                // never keeps a group that memory refused.
                //
                // Only the poison *winner* rolls back. With two groups
                // in flight (the pipelined steady state), the first
                // failure truncates to its own `wal_len_before` — which
                // already cuts every later group's bytes. A later
                // group's job lands here via the poison check above; its
                // rollback target is past the restored boundary, and
                // truncating to it would zero-extend the log past the
                // durable prefix, turning a clean rollback into a
                // corrupt, unopenable file.
                let won = shared.set_poison(format!(
                    "database is read-only after a failed WAL commit: {e}"
                ));
                if won {
                    let mut store = shared.lock_store();
                    if let Some(store) = &mut *store {
                        let _ = store.truncate_wal(job.wal_len_before);
                        shared.metrics.refresh(store);
                    }
                }
                shared.fail_group(&job.group, &e);
            }
        }
        let mut inflight = shared.inflight.lock().unwrap_or_else(|e| e.into_inner());
        *inflight -= 1;
        shared.drained.notify_all();
    }
}

/// Everything shared between a [`Database`] and its [`Session`]s.
struct DbInner {
    shared: Arc<CommitShared>,
    cfg: EngineConfig,
    recovery: RecoveryReport,
    cache: Mutex<PlanCache>,
    /// `(version, statistics fingerprint)` memo for recent versions: the
    /// fingerprint is recomputed only when a session reads a version it
    /// hasn't been computed for — read-only traffic on a quiet graph
    /// costs one lookup.
    stats_fp: Mutex<Vec<(u64, u64)>>,
    /// Live only in `Pipelined` mode on a durable database. Dropping the
    /// sender (close, or the last handle going away) retires the fsync
    /// thread.
    fsync_tx: Mutex<Option<Sender<FsyncJob>>>,
    /// The pipelined fsync thread itself, joined when the last handle
    /// drops: mid-job it holds the store alive (and with it the data
    /// directory's single-writer lock), so dropping the database must
    /// not return until the lock is actually free — a reopen right
    /// after the drop would otherwise race the release and see
    /// `Locked`.
    fsync_join: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// When this handle was opened (the metrics page's uptime).
    opened: Instant,
    /// Where slow-query records go; locked only on the slow path.
    slow_sink: Mutex<Arc<dyn SlowQuerySink>>,
}

impl Drop for DbInner {
    fn drop(&mut self) {
        // Disconnect the pipelined fsync thread and wait for it. The
        // worker may hold the store — and with it the data directory's
        // single-writer lock — mid-job; without the join, a reopen of
        // the same directory immediately after this drop races the
        // worker's exit and fails with `Locked`. The worker only ever
        // holds a `Weak` on `CommitShared` and nothing on `DbInner`,
        // so joining from here cannot deadlock.
        *self.fsync_tx.lock().unwrap_or_else(|e| e.into_inner()) = None;
        if let Some(handle) = self
            .fsync_join
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            let _ = handle.join();
        }
    }
}

impl DbInner {
    /// Resolves `text` through the shared plan cache: the cache `Mutex`
    /// is held only for lookup/insert — a cache-miss **parse runs
    /// unlocked**, so one session parsing a large query never serializes
    /// other sessions' query startup. `count` as in
    /// [`PlanCache::lookup`].
    fn resolve_cached(
        &self,
        text: &str,
        capacity: usize,
        stats_fp: u64,
        count: bool,
    ) -> Result<(Arc<Query>, Arc<PlanMemo>, bool), Error> {
        let cfg_fp = self.cfg.plan_fingerprint();
        if let Some(hit) = self
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .lookup(text, cfg_fp, stats_fp, count)
        {
            return Ok(hit);
        }
        let parsed = Arc::new(crate::parse_query(text)?);
        let mut c = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        // A racing session may have inserted while we parsed: adopt its
        // entry. Counted under the caller's flag — an absent-entry
        // lookup increments nothing, so this query's outcome has not
        // been accounted yet and the adoption *is* its cache hit.
        if let Some(hit) = c.lookup(text, cfg_fp, stats_fp, count) {
            return Ok(hit);
        }
        let (q, memo) = c.insert(text, parsed, capacity, cfg_fp, stats_fp);
        Ok((q, memo, false))
    }

    /// The statistics fingerprint of `view`, memoized by version.
    fn stats_fp_for(&self, view: &GraphView) -> u64 {
        let mut memo = self.stats_fp.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(&(_, fp)) = memo.iter().find(|(v, _)| *v == view.version()) {
            return fp;
        }
        let fp = stats_fingerprint(view.graph());
        memo.push((view.version(), fp));
        if memo.len() > 16 {
            memo.remove(0);
        }
        fp
    }

    /// Executes one query: reads run lock-free against `view`; updating
    /// queries enter the commit pipeline (refused when `pinned` — a read
    /// transaction never mutates). `committed` reports the version id
    /// the statement committed at, if it committed one. An `EXPLAIN ` /
    /// `PROFILE ` prefix dispatches to plan rendering / instrumented
    /// execution instead (neither token starts a valid Cypher
    /// statement). `trace` is the caller's request id, threaded into
    /// the slow-query log and the WAL seal.
    fn query_at(
        self: &Arc<Self>,
        view: &GraphView,
        pinned: bool,
        text: &str,
        params: &Params,
        committed: &mut Option<u64>,
        trace: Option<u64>,
    ) -> Result<Table, Error> {
        if let Some(rest) = keyword_prefix(text, "EXPLAIN") {
            // `EXPLAIN VIEW <name>` renders a standing view's
            // maintenance plan (VIEW is not a Cypher keyword, so the
            // prefix cannot shadow a real query).
            if let Some(name) = keyword_prefix(rest, "VIEW") {
                let text = self
                    .shared
                    .views
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .explain(name.trim())?;
                return Ok(lines_table("view", &text));
            }
            let q = crate::parse_query(rest)?;
            return Ok(lines_table(
                "plan",
                &cypher_engine::explain(view, &q, &self.cfg),
            ));
        }
        if let Some(rest) = keyword_prefix(text, "PROFILE") {
            // PROFILE executes the query for real, so it is observed
            // like any read (its results are bit-identical to an
            // unprofiled run; only the instrumentation differs).
            let started = Instant::now();
            let report = self.profile_at(view, rest, params);
            let rows = report.as_ref().ok().map(|r| r.result.len() as u64);
            self.observe_query(rest, started, false, false, None, trace, rows);
            return report.map(|r| r.operators);
        }
        let started = Instant::now();
        let capacity = self.cfg.plan_cache_size;
        let resolved = if capacity == 0 {
            crate::parse_query(text)
                .map(|q| (Arc::new(q), None, false))
                .map_err(Error::from)
        } else {
            let stats_fp = self.stats_fp_for(view);
            self.resolve_cached(text, capacity, stats_fp, true)
                .map(|(q, memo, hit)| (q, Some(memo), hit))
        };
        let (q, memo, cache_hit) = match resolved {
            Ok(r) => r,
            Err(e) => {
                self.observe_query(text, started, false, false, None, trace, None);
                return Err(e);
            }
        };
        let write = q.is_updating();
        let result = if !write {
            cypher_engine::execute_read_cached(view, &q, params, &self.cfg, memo.as_deref())
                .map_err(Error::from)
        } else if pinned {
            Err(Error::Eval(EvalError::new(
                "updating query inside a read transaction: \
                 call Session::commit() to release the pinned snapshot first",
            )))
        } else {
            self.write_query(text, &q, params, committed, trace)
        };
        let rows = result.as_ref().ok().map(|t| t.len() as u64);
        self.observe_query(text, started, write, cache_hit, *committed, trace, rows);
        result
    }

    /// Profiles a read query against `view`: instrumented execution,
    /// result bit-identical to the unprofiled run (see
    /// `cypher_engine::profile_read` — profiling bypasses only the
    /// fused-projection fast path, whose contract is result equality).
    fn profile_at(
        &self,
        view: &GraphView,
        text: &str,
        params: &Params,
    ) -> Result<ProfileReport, Error> {
        let q = crate::parse_query(text)?;
        if q.is_updating() {
            return Err(Error::Eval(EvalError::new(
                "PROFILE supports read-only queries: run the update without the prefix",
            )));
        }
        let (result, profile) = cypher_engine::profile_read(view, &q, params, &self.cfg)?;
        let schema = Schema::new(
            [
                "clause", "operator", "est_rows", "rows", "batches", "time_us",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        );
        let mut operators = Table::empty(schema);
        for c in &profile.clauses {
            if c.operators.is_empty() {
                // Clause answered by the reference matcher (node
                // isomorphism): no operator pipeline to report.
                operators.push(Record::new(vec![
                    Value::str(c.label.as_str()),
                    Value::str("ReferenceMatcher"),
                    Value::float(0.0),
                    Value::int(0),
                    Value::int(0),
                    Value::int(0),
                ]));
                continue;
            }
            for op in &c.operators {
                operators.push(Record::new(vec![
                    Value::str(c.label.as_str()),
                    Value::str(op.operator.as_str()),
                    Value::float(op.estimated_rows),
                    Value::int(op.rows as i64),
                    Value::int(op.batches as i64),
                    Value::int(op.time_us as i64),
                ]));
            }
        }
        let text = profile.render();
        Ok(ProfileReport {
            result,
            operators,
            text,
            profile,
        })
    }

    /// Registers and materializes a standing view (see [`crate::view`]).
    /// The commit pipeline is quiesced first, so the view materializes
    /// against a fully published state and no commit group can publish
    /// mid-registration.
    fn create_view(&self, name: &str, query: &str) -> Result<u64, Error> {
        let shared = &self.shared;
        let _apply = shared.quiesce();
        let latest = shared.versioned.latest();
        shared
            .views
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .create(name, query, &latest)
    }

    /// Unregisters a standing view; its subscriptions disconnect.
    fn drop_view(&self, name: &str) -> Result<(), Error> {
        self.shared
            .views
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drop_view(name)
    }

    /// Reads a view's contents as of `at`: the published table when the
    /// snapshot is within the retained ring, a cold re-evaluation of the
    /// view query against `at` otherwise (counted as a full recompute).
    fn read_view(&self, name: &str, at: &GraphView) -> Result<Table, Error> {
        let (published, query) = {
            let views = self.shared.views.lock().unwrap_or_else(|e| e.into_inner());
            (views.read_at(name, at.version())?, views.query_of(name)?)
        };
        if let Some(t) = published {
            return Ok((*t).clone());
        }
        // The pin predates the retained publications: re-evaluate at the
        // pinned snapshot — same contents, full query cost.
        if self.shared.db_metrics.enabled {
            self.shared.db_metrics.view_full_recomputes.inc();
        }
        Ok(cypher_engine::execute_read_cached(
            at,
            &query,
            &Params::new(),
            &self.cfg,
            None,
        )?)
    }

    /// Opens a change-stream subscription on a view.
    fn subscribe(&self, name: &str) -> Result<crate::view::ViewSubscription, Error> {
        self.shared
            .views
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .subscribe(name)
    }

    /// The per-statement observation tail: metrics (when enabled) and
    /// the slow-query log (when configured). `rows` is `None` for a
    /// failed statement.
    #[allow(clippy::too_many_arguments)]
    fn observe_query(
        &self,
        text: &str,
        started: Instant,
        write: bool,
        plan_cache_hit: bool,
        committed: Option<u64>,
        trace: Option<u64>,
        rows: Option<u64>,
    ) {
        let elapsed = started.elapsed();
        let m = &self.shared.db_metrics;
        if m.enabled {
            if write {
                m.queries_write.inc();
            } else {
                m.queries_read.inc();
            }
            match rows {
                Some(n) => m.rows_returned.add(n),
                None => m.queries_failed.inc(),
            }
            m.query_latency_us.record(elapsed.as_micros() as u64);
        }
        let Some(threshold_ms) = self.cfg.slow_query_ms else {
            return;
        };
        if (elapsed.as_millis() as u64) < threshold_ms {
            return;
        }
        if m.enabled {
            m.slow_queries.inc();
        }
        let mut h = DefaultHasher::new();
        text.hash(&mut h);
        let entry = SlowQueryEntry {
            query_hash: h.finish(),
            duration_us: elapsed.as_micros() as u64,
            rows,
            plan_cache_hit,
            committed_version: committed,
            trace_id: trace,
            write,
        };
        let sink = Arc::clone(&*self.slow_sink.lock().unwrap_or_else(|e| e.into_inner()));
        sink.record(&entry);
    }

    /// Executes an updating query as one transaction: private
    /// copy-on-write clone of the apply head → execute → drain the
    /// change records → enqueue into the group-commit queue → the group
    /// leader seals the queued batches in one atomic WAL write → the new
    /// version publishes once the group is durable (per
    /// [`EngineConfig::fsync_mode`]).
    fn write_query(
        &self,
        text: &str,
        q: &Arc<Query>,
        params: &Params,
        committed: &mut Option<u64>,
        trace: Option<u64>,
    ) -> Result<Table, Error> {
        let shared = &self.shared;
        let mut apply = shared.lock_apply();
        if let Some(msg) = shared.poison_msg() {
            return Err(Error::Unavailable(msg));
        }
        // Resolve the plan memo against the statistics this transaction
        // will *actually* execute under — the apply head, frozen for the
        // duration (we hold the apply lock). The caller's pre-lock
        // resolution may have been computed against an older version;
        // caching plans chosen under these statistics into that older
        // fingerprint's slot would poison it for sessions genuinely
        // pinned there. Quiet: this query's cache outcome was already
        // counted.
        let capacity = self.cfg.plan_cache_size;
        let memo = if capacity == 0 {
            None
        } else {
            let base = GraphView::new(Arc::clone(&apply.working), apply.next_seq);
            let fp = self.stats_fp_for(&base);
            Some(self.resolve_cached(text, capacity, fp, false)?.1)
        };
        let memo = memo.as_deref();
        let durable = shared.metrics.durable;
        // Change records are collected for the WAL batch (durable
        // databases) and for standing-view delta folds — an in-memory
        // database installs the sink only while views are registered
        // (view creation quiesces the pipeline, so the flag cannot flip
        // under an admitted transaction).
        let track_changes = durable
            || !shared
                .views
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty();
        let mut graph = (*apply.working).clone();
        if track_changes {
            // Discard anything a previous transaction left behind: a
            // query that *panicked* mid-execution aborted its clone but
            // could not drain the records it had already emitted —
            // sealing them into this batch would write mutations to disk
            // that no published version ever contained.
            let _stale = apply.buffer.drain();
            graph.set_change_sink(Box::new(apply.buffer.clone()));
        }
        // Without views, in-memory databases skip the sink entirely (no
        // records to seal); the mutation counter is their
        // did-anything-mutate detector.
        let version_before = apply.working.version();
        let result = cypher_engine::execute_cached(&mut graph, q, params, &self.cfg, memo)
            .map_err(Error::from);
        // Even an errored query commits (and seals) the mutations it
        // did apply before failing — Cypher has no rollback, so the
        // already-executed clauses are real and must be durable; they
        // become visible to readers atomically like any other batch.
        let changes = if track_changes {
            apply.buffer.drain()
        } else {
            Vec::new()
        };
        graph.take_change_sink();
        let mutated = if track_changes {
            !changes.is_empty()
        } else {
            // No mutator ran (e.g. a SET whose MATCH bound nothing):
            // nothing to publish. A *failed* mutation attempt bumps the
            // counter without changing state; publishing that
            // content-identical version is harmless.
            graph.version() != version_before
        };
        if !mutated {
            return result;
        }
        // Admit the commit: the clone becomes the new apply head (the
        // next writer executes on top of it, sealed or not) and joins
        // the group-commit queue. If the queue was idle, *this* writer
        // is the leader and drains it after releasing the apply lock.
        let candidate = Arc::new(graph);
        let seq = apply.next_seq;
        apply.next_seq += 1;
        apply.working = Arc::clone(&candidate);
        let ticket = Arc::new(Ticket::default());
        apply.queue.push(PendingCommit {
            seq,
            changes,
            candidate,
            ticket: Arc::clone(&ticket),
            trace,
        });
        if shared.db_metrics.enabled {
            shared
                .db_metrics
                .commit_queue_depth
                .set(apply.queue.len() as i64);
        }
        let leader = !apply.leader_running;
        if leader {
            apply.leader_running = true;
        }
        drop(apply);
        if leader {
            self.run_seal_leader();
        }
        let version = ticket.wait()?;
        *committed = Some(version);
        // Compaction trigger: quiesce the pipeline and checkpoint. Any
        // error is this writer's to report (its own commit is already
        // sealed and published).
        if let Some(bytes) = shared.metrics.read(&shared.metrics.wal_bytes) {
            if bytes > self.cfg.wal_compact_bytes {
                let _apply = shared.quiesce();
                let latest = shared.versioned.latest();
                let mut store = shared.lock_store();
                if let Some(store) = &mut *store {
                    // Re-check under the lock: a racing writer may have
                    // compacted already.
                    if store.wal_bytes() > self.cfg.wal_compact_bytes {
                        let ck = store.checkpoint(latest.graph());
                        shared.metrics.refresh(store);
                        ck?;
                        if shared.db_metrics.enabled {
                            shared.db_metrics.wal_compactions.inc();
                        }
                    }
                }
            }
        }
        result
    }

    /// The group-commit leader loop: drain the queue, seal the drained
    /// batches as one group, repeat until the queue is empty, retire.
    /// With [`EngineConfig::group_commit`] off every seal carries
    /// exactly one batch — the serial baseline the `e24_group_commit`
    /// bench compares against.
    fn run_seal_leader(&self) {
        let shared = &self.shared;
        loop {
            let mut apply = shared.lock_apply();
            if apply.queue.is_empty() {
                apply.leader_running = false;
                shared.leader_done.notify_all();
                return;
            }
            let group = if self.cfg.group_commit {
                std::mem::take(&mut apply.queue)
            } else {
                vec![apply.queue.remove(0)]
            };
            let m = &shared.db_metrics;
            if m.enabled {
                m.commit_groups.inc();
                m.commit_group_size.record(group.len() as u64);
                m.commit_queue_depth.set(apply.queue.len() as i64);
            }
            drop(apply);
            let seal_started = Instant::now();
            self.seal_group(group);
            if m.enabled {
                m.seal_latency_us
                    .record(seal_started.elapsed().as_micros() as u64);
            }
        }
    }

    /// Seals one group: a single contiguous WAL write covering every
    /// member batch plus the group record, then — per fsync mode —
    /// publish immediately (`Os`), fsync-then-publish (`Sync`), or hand
    /// off to the fsync thread (`Pipelined`). A failure poisons the
    /// database and fails exactly this group's tickets; the WAL is
    /// rolled back so prior groups stay durable and disk never exceeds
    /// memory.
    fn seal_group(&self, group: Vec<PendingCommit>) {
        let shared = &self.shared;
        let mut store_guard = shared.lock_store();
        // Re-check poison *under the store lock*: the pipelined fsync
        // thread sets poison before it truncates, so either we see it
        // here and abort, or our append lands first and the truncation
        // cuts it (see `fsync_worker`).
        if let Some(msg) = shared.poison_msg() {
            drop(store_guard);
            shared.fail_group(&group, &Error::Unavailable(msg));
            return;
        }
        let Some(store) = &mut *store_guard else {
            // In-memory database: admission is durability; publish now.
            drop(store_guard);
            shared.publish_group(&group);
            return;
        };
        let batches: Vec<&[Change]> = group.iter().map(|p| p.changes.as_slice()).collect();
        let receipt = match store.commit_group(&batches) {
            Ok(r) => r,
            Err(e) => {
                // The members' mutations cannot be made durable; leaving
                // their versions unpublished keeps readers (and future
                // recovery) on the last consistent state. The database
                // stops accepting writes: retrying against a store that
                // already failed a seal risks interleaving half-sealed
                // groups.
                shared.set_poison(format!(
                    "database is read-only after a failed WAL commit: {e}"
                ));
                let err = Error::from(e);
                drop(store_guard);
                shared.fail_group(&group, &err);
                return;
            }
        };
        debug_assert_eq!(receipt.first_seq, group[0].seq, "queue seqs match the WAL");
        match self.cfg.fsync_mode {
            FsyncMode::Os => {
                shared.metrics.refresh(store);
                drop(store_guard);
                shared.publish_group(&group);
            }
            FsyncMode::Sync => {
                let flush_started = Instant::now();
                let flushed = store.sync();
                if flushed.is_ok() && shared.db_metrics.enabled {
                    shared
                        .db_metrics
                        .fsync_latency_us
                        .record(flush_started.elapsed().as_micros() as u64);
                }
                match flushed {
                    Ok(()) => {
                        shared.metrics.refresh(store);
                        drop(store_guard);
                        shared.publish_group(&group);
                    }
                    Err(e) => {
                        // Roll the whole group back: after a failed fsync its
                        // bytes may or may not be stable, so cutting them is
                        // the only way disk and (unpublished) memory agree.
                        // Rollback belongs to the poison winner alone (see
                        // `set_poison`); a loser's bytes are cut by the
                        // winner's own truncation.
                        if shared.set_poison(format!(
                            "database is read-only after a failed WAL commit: {e}"
                        )) {
                            let _ = store.truncate_wal(receipt.wal_len_before);
                            shared.metrics.refresh(store);
                        }
                        let err = Error::from(e);
                        drop(store_guard);
                        shared.fail_group(&group, &err);
                    }
                }
            }
            FsyncMode::Pipelined => {
                let file = match store.sync_handle() {
                    Ok(f) => f,
                    Err(e) => {
                        // As above: the poison winner owns the rollback.
                        // Losing here means the fsync thread failed an
                        // earlier group while we held the store lock —
                        // its truncation (queued behind this lock) cuts
                        // our group's bytes along with its own.
                        if shared.set_poison(format!(
                            "database is read-only after a failed WAL commit: {e}"
                        )) {
                            let _ = store.truncate_wal(receipt.wal_len_before);
                            shared.metrics.refresh(store);
                        }
                        let err = Error::from(e);
                        drop(store_guard);
                        shared.fail_group(&group, &err);
                        return;
                    }
                };
                // Count the group in flight before the leader can retire
                // — quiesce must not observe an idle queue while a flush
                // it cannot see is pending.
                *shared.inflight.lock().unwrap_or_else(|e| e.into_inner()) += 1;
                shared.metrics.refresh(store);
                drop(store_guard);
                let job = FsyncJob {
                    file,
                    wal_len_before: receipt.wal_len_before,
                    group,
                };
                let sent = {
                    let tx = self.fsync_tx.lock().unwrap_or_else(|e| e.into_inner());
                    match &*tx {
                        Some(tx) => tx.send(job).map_err(|e| e.0),
                        None => Err(job),
                    }
                };
                if let Err(job) = sent {
                    // The fsync thread is gone (close raced us, or it
                    // died): the group cannot be acknowledged.
                    shared.set_poison(
                        "database is read-only after a failed WAL commit: \
                         fsync pipeline unavailable"
                            .to_string(),
                    );
                    let msg = shared.poison_msg().expect("poison was just set");
                    shared.fail_group(&job.group, &Error::Unavailable(msg));
                    let mut inflight = shared.inflight.lock().unwrap_or_else(|e| e.into_inner());
                    *inflight -= 1;
                    shared.drained.notify_all();
                }
            }
        }
    }
}

/// A transactional property graph with an optional durable store behind
/// it and snapshot-isolated concurrent sessions on top.
///
/// ```
/// use cypher::{Database, Params};
///
/// let dir = std::env::temp_dir().join(format!("cypher-doc-{}", std::process::id()));
/// let _ = std::fs::remove_dir_all(&dir);
/// let params = Params::new();
/// {
///     let mut db = Database::open(&dir).unwrap();
///     db.query("CREATE (:Person {name: 'Ada'})", &params).unwrap();
/// } // dropped: committed batches are already with the OS
/// let mut db = Database::open(&dir).unwrap();
/// let out = db.query("MATCH (p:Person) RETURN p.name", &params).unwrap();
/// assert_eq!(out.len(), 1);
/// std::fs::remove_dir_all(&dir).unwrap();
/// ```
///
/// For concurrent use, hand each thread its own [`Session`]:
///
/// ```
/// use cypher::{Database, Params};
///
/// let db = Database::in_memory();
/// let params = Params::new();
/// let mut reader = db.session();
/// let mut writer = db.session();
/// writer.query("CREATE (:N {v: 1})", &params).unwrap();
/// let v = reader.begin_read(); // pin: a frozen snapshot
/// writer.query("CREATE (:N {v: 2})", &params).unwrap();
/// let pinned = reader.query("MATCH (n:N) RETURN count(*) AS c", &params).unwrap();
/// assert_eq!(format!("{:?}", pinned.cell(0, "c").unwrap()), "Integer(1)");
/// reader.commit(); // release the pin
/// assert!(reader.version().is_none());
/// assert_eq!(v, 1);
/// ```
pub struct Database {
    inner: Arc<DbInner>,
}

impl Database {
    /// Opens (creating if necessary) a durable database at `dir`,
    /// recovering whatever a previous process committed there.
    pub fn open(dir: impl AsRef<Path>) -> Result<Database, Error> {
        let mut cfg = EngineConfig::default();
        cfg.persistence = Some(dir.as_ref().to_path_buf());
        Database::open_with(cfg)
    }

    /// Opens a database as configured: durable when
    /// [`EngineConfig::persistence`] is set (which defaults from the
    /// `CYPHER_DATA_DIR` environment variable), in-memory otherwise.
    /// Recovery fans large-batch index rebuilds out across
    /// [`EngineConfig::num_threads`] workers; in `Pipelined` fsync mode
    /// a dedicated flush thread is started here.
    pub fn open_with(mut cfg: EngineConfig) -> Result<Database, Error> {
        // The metrics registry exists either way (a disabled one is a
        // plain bool gate); the executor's counters are shared with the
        // engine through the config only when recording is on.
        let db_metrics = Arc::new(DatabaseMetrics::new(cfg.metrics_enabled));
        if cfg.metrics_enabled && cfg.exec_metrics.is_none() {
            cfg.exec_metrics = Some(Arc::new(cypher_engine::ExecMetrics::default()));
        }
        let (graph, store, recovery, initial_version) = match &cfg.persistence {
            Some(dir) => {
                let (store, graph) = Store::open_with_threads(dir, cfg.num_threads)?;
                let recovery = store.report().clone();
                let v = store.batches_committed();
                (graph, Some(store), recovery, v)
            }
            None => (PropertyGraph::new(), None, RecoveryReport::default(), 0),
        };
        let metrics = StoreMetrics::of(&store);
        let durable = store.is_some();
        let versioned = VersionedGraph::new(graph, initial_version);
        let working = Arc::clone(versioned.latest().graph_arc());
        let shared = Arc::new(CommitShared {
            versioned,
            apply: Mutex::new(ApplyState {
                working,
                next_seq: initial_version,
                queue: Vec::new(),
                leader_running: false,
                buffer: SharedChangeBuffer::new(),
            }),
            leader_done: Condvar::new(),
            store: Mutex::new(store),
            poison: Mutex::new(None),
            inflight: Mutex::new(0),
            drained: Condvar::new(),
            pipeline_fail_injections: AtomicU32::new(0),
            metrics,
            db_metrics,
            views: Mutex::new(crate::view::ViewRegistry::new(cfg.clone())),
        });
        let (fsync_tx, fsync_join) = if durable && cfg.fsync_mode == FsyncMode::Pipelined {
            let (tx, rx) = mpsc::channel();
            let worker_shared = Arc::downgrade(&shared);
            let handle = std::thread::Builder::new()
                .name("cypher-fsync".to_string())
                .spawn(move || fsync_worker(worker_shared, rx))
                .map_err(StorageError::Io)?;
            (Some(tx), Some(handle))
        } else {
            (None, None)
        };
        Ok(Database {
            inner: Arc::new(DbInner {
                shared,
                cfg,
                recovery,
                cache: Mutex::new(PlanCache::default()),
                stats_fp: Mutex::new(Vec::new()),
                fsync_tx: Mutex::new(fsync_tx),
                fsync_join: Mutex::new(fsync_join),
                opened: Instant::now(),
                slow_sink: Mutex::new(Arc::new(StderrSlowQueryLog)),
            }),
        })
    }

    /// An in-memory database (no files, no WAL); mostly for tests and as
    /// the oracle half of differential harnesses.
    pub fn in_memory() -> Database {
        let mut cfg = EngineConfig::default();
        cfg.persistence = None;
        Database::open_with(cfg).expect("in-memory open cannot fail")
    }

    /// Opens a new session: an independent, cheap handle onto this
    /// database. Sessions on one database share the graph, the durable
    /// store and the plan cache; each may pin its own read snapshot, and
    /// any number of them may run queries concurrently (send them to
    /// other threads freely). Concurrent updating queries feed the
    /// group-commit queue and share WAL seals (and fsyncs).
    pub fn session(&self) -> Session {
        let m = &self.inner.shared.db_metrics;
        if m.enabled {
            m.sessions_active.inc();
        }
        Session {
            inner: Arc::clone(&self.inner),
            pinned: None,
            last_commit: None,
            pin: None,
        }
    }

    /// Executes one query (reads and updates) in auto-commit mode.
    ///
    /// Reads run lock-free against the latest published version. An
    /// updating query runs as one write transaction through the
    /// group-commit pipeline: its change records are sealed in the WAL
    /// inside an atomic group, then the new version is published to
    /// readers once the group is durable per
    /// [`EngineConfig::fsync_mode`] (the snapshot-compaction trigger
    /// runs afterwards).
    ///
    /// Repeated query texts skip parsing and `MATCH` planning entirely via
    /// the shared LRU plan cache (capacity [`EngineConfig::plan_cache_size`];
    /// `0` disables). Plans are memoized per statistics fingerprint —
    /// when the index statistics drift far enough to change plan choice
    /// (log₂-bucketed; see `cypher_engine::stats_fingerprint`), the entry
    /// replans while keeping the parse. Parameters are *not* part of the
    /// cache key: plans embed parameter *expressions*, evaluated freshly
    /// on every execution.
    pub fn query(&mut self, query: &str, params: &Params) -> Result<Table, Error> {
        let view = self.inner.shared.versioned.latest();
        let mut committed = None;
        self.inner
            .query_at(&view, false, query, params, &mut committed, None)
    }

    /// Evaluates a read query with the reference evaluator (the paper's
    /// denotational semantics) against the latest version.
    pub fn query_reference(&self, query: &str, params: &Params) -> Result<Table, Error> {
        let view = self.inner.shared.versioned.latest();
        run_reference_with(view.graph(), query, params, self.inner.cfg.match_config)
    }

    /// Forces a snapshot + WAL truncation now (quiescing the commit
    /// pipeline first). No-op for in-memory databases.
    pub fn checkpoint(&mut self) -> Result<(), Error> {
        let shared = &self.inner.shared;
        // Hold the apply guard across the snapshot: no commit is in
        // flight and none can start, so the latest published version is
        // exactly the state of every sealed batch.
        let _apply = shared.quiesce();
        let view = shared.versioned.latest();
        let mut store = shared.lock_store();
        if let Some(store) = &mut *store {
            let ck = store.checkpoint(view.graph());
            shared.metrics.refresh(store);
            ck?;
            if shared.db_metrics.enabled {
                shared.db_metrics.checkpoints.inc();
            }
        }
        Ok(())
    }

    /// Syncs the WAL to stable storage and consumes the database handle.
    /// Every committed batch is handed to the OS at commit time (durable
    /// against process crashes); `close` quiesces the commit pipeline
    /// and forces the fsync that makes the tail durable against OS
    /// crashes and power loss too.
    ///
    /// Sessions outlive the handle but the *write path does not*: after
    /// `close`, updating queries on any surviving session fail loudly —
    /// silently accepting a commit that will never be fsynced would
    /// break the durability promise `close` just made. Reads (which
    /// only touch published in-memory versions) keep working.
    pub fn close(self) -> Result<(), Error> {
        let shared = &self.inner.shared;
        let _apply = shared.quiesce();
        let mut store_guard = shared.lock_store();
        if let Some(store) = &mut *store_guard {
            store.sync()?;
        }
        // Drop the store now (not when the last Session drops): this
        // releases the data directory's single-writer lock, so the
        // directory can be reopened even while sessions linger.
        *store_guard = None;
        drop(store_guard);
        {
            let mut p = shared.poison.lock().unwrap_or_else(|e| e.into_inner());
            *p = Some("database has been closed: open it again to resume writing".to_string());
        }
        // Retire the pipelined fsync thread (its channel disconnects).
        *self
            .inner
            .fsync_tx
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = None;
        Ok(())
    }

    /// The latest published version of the graph, as a frozen snapshot
    /// handle (derefs to [`PropertyGraph`], so the whole read API is
    /// available on it).
    pub fn graph(&self) -> GraphView {
        self.inner.shared.versioned.latest()
    }

    /// The version id of the latest committed transaction (0 for a fresh
    /// in-memory database; the recovered batch count after `open`).
    pub fn version(&self) -> u64 {
        self.inner.shared.versioned.latest_version()
    }

    /// What recovery found when this database was opened (all zeros for
    /// in-memory databases).
    pub fn recovery(&self) -> &RecoveryReport {
        &self.inner.recovery
    }

    /// Number of WAL batches committed over the store's lifetime; `None`
    /// for in-memory databases. The recovery differential uses this to
    /// map kill points back to statement prefixes. Lock-free (reads a
    /// mirror refreshed at each seal), so monitoring never stalls behind
    /// the commit pipeline.
    pub fn batches_committed(&self) -> Option<u64> {
        let m = &self.inner.shared.metrics;
        m.read(&m.batches)
    }

    /// WAL size in bytes as of the last seal/checkpoint; `None` for
    /// in-memory databases. Lock-free mirror, like
    /// [`Database::batches_committed`].
    pub fn wal_bytes(&self) -> Option<u64> {
        let m = &self.inner.shared.metrics;
        m.read(&m.wal_bytes)
    }

    /// Snapshot generation as of the last seal/checkpoint; `None` for
    /// in-memory databases. Lock-free mirror, like
    /// [`Database::batches_committed`].
    pub fn generation(&self) -> Option<u64> {
        let m = &self.inner.shared.metrics;
        m.read(&m.generation)
    }

    /// The engine configuration this database executes with.
    pub fn config(&self) -> &EngineConfig {
        &self.inner.cfg
    }

    /// Hit/miss/invalidation/eviction counters of the parse+plan cache
    /// (shared across all sessions).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.inner
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .stats
    }

    /// Number of query texts currently cached.
    pub fn plan_cache_len(&self) -> usize {
        self.inner
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .len()
    }

    /// Test double for the fsync fault-injection harness: forces the
    /// next `n` WAL flushes to fail. In `Pipelined` mode the failure is
    /// injected at the flush thread; otherwise it arms the store's
    /// injection (consumed by `Sync`-mode seals and by `close`).
    ///
    /// **Inert outside the test harness.** A network-exposed binary must
    /// not carry a live fault-injection hook, so arming requires the
    /// `CYPHER_TEST_FAULTS` environment variable to be set (to anything)
    /// — the fault-injection suites set it themselves. Without it the
    /// call does nothing and returns `false`.
    #[doc(hidden)]
    pub fn inject_fsync_failures(&self, n: u32) -> bool {
        if std::env::var_os("CYPHER_TEST_FAULTS").is_none() {
            return false;
        }
        if self.inner.cfg.fsync_mode == FsyncMode::Pipelined {
            self.inner
                .shared
                .pipeline_fail_injections
                .store(n, Ordering::Relaxed);
        } else if let Some(store) = &mut *self.inner.shared.lock_store() {
            store.inject_sync_failures(n);
        }
        true
    }

    /// Renders the physical plans (and projection pushdowns) this
    /// database's configuration produces for `query` against the latest
    /// version's statistics — the `EXPLAIN` witness the plan-cache tests
    /// compare before and after invalidation.
    pub fn explain(&self, query: &str) -> Result<String, Error> {
        let q = crate::parse_query(query)?;
        let view = self.inner.shared.versioned.latest();
        Ok(cypher_engine::explain(&view, &q, &self.inner.cfg))
    }

    /// Executes a read query with per-operator instrumentation against
    /// the latest version, returning the result (bit-identical to an
    /// unprofiled run) alongside the profile in structured and rendered
    /// form. A leading `PROFILE ` prefix on `query` is accepted and
    /// stripped. The same profile is available through the normal query
    /// path — `query("PROFILE …")` returns the per-operator rows — so
    /// remote clients get it over the wire unchanged.
    pub fn profile(&self, query: &str, params: &Params) -> Result<ProfileReport, Error> {
        let text = keyword_prefix(query, "PROFILE").unwrap_or(query);
        let view = self.inner.shared.versioned.latest();
        self.inner.profile_at(&view, text, params)
    }

    /// The typed metrics registry of this database (always present; its
    /// instruments stay at zero when [`EngineConfig::metrics_enabled`]
    /// is off).
    pub fn metrics(&self) -> &DatabaseMetrics {
        &self.inner.shared.db_metrics
    }

    /// The executor's counters (morsels, rows, parallel runs), when
    /// metrics are enabled.
    pub fn exec_metrics(&self) -> Option<&cypher_engine::ExecMetrics> {
        self.inner.cfg.exec_metrics.as_deref()
    }

    /// Renders one consistent-enough metrics page: every layer's
    /// instruments as Prometheus-style text, plus the headline identity
    /// fields broken out for the wire protocol. Lock-free except for
    /// the plan-cache stats and the pin registry (both held briefly);
    /// safe to call at any frequency under load.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let inner = &self.inner;
        let m = &inner.shared.db_metrics;
        let uptime_ms = inner.opened.elapsed().as_millis() as u64;
        let version = inner.shared.versioned.latest_version();
        let sm = &inner.shared.metrics;
        let wal_generation = sm.read(&sm.generation).unwrap_or(0);
        let mut text = String::new();
        fmt_gauge(
            &mut text,
            "cypher_metrics_enabled",
            "1 when instrument recording is on",
            m.enabled as i64,
        );
        fmt_counter(
            &mut text,
            "cypher_uptime_ms",
            "milliseconds since this database handle was opened",
            uptime_ms,
        );
        fmt_counter(
            &mut text,
            "cypher_version",
            "latest published version id",
            version,
        );
        m.render_into(&mut text);
        if let Some(em) = &inner.cfg.exec_metrics {
            fmt_counter(
                &mut text,
                "cypher_exec_morsels_total",
                "morsels executed by MATCH pipelines",
                em.morsels.get(),
            );
            fmt_counter(
                &mut text,
                "cypher_exec_rows_total",
                "rows produced by MATCH pipelines (pre-projection)",
                em.rows.get(),
            );
            fmt_counter(
                &mut text,
                "cypher_exec_parallel_runs_total",
                "pipeline runs that engaged the parallel dispatcher",
                em.parallel_runs.get(),
            );
            fmt_counter(
                &mut text,
                "cypher_exec_intersect_probes_total",
                "galloping probes issued by multiway intersection joins",
                em.intersect_probes.get(),
            );
            fmt_counter(
                &mut text,
                "cypher_exec_intersect_nodes_total",
                "candidate nodes surviving multiway adjacency intersection",
                em.intersect_nodes.get(),
            );
            fmt_counter(
                &mut text,
                "cypher_exec_intersect_rows_total",
                "rows emitted by MultiwayIntersect operators",
                em.intersect_rows.get(),
            );
        }
        let pc = self.plan_cache_stats();
        fmt_counter(
            &mut text,
            "cypher_plan_cache_hits_total",
            "queries answered entirely from the plan cache",
            pc.hits,
        );
        fmt_counter(
            &mut text,
            "cypher_plan_cache_misses_total",
            "queries parsed and planned fresh",
            pc.misses,
        );
        fmt_counter(
            &mut text,
            "cypher_plan_cache_invalidations_total",
            "cache entries replanned after statistics drift",
            pc.invalidations,
        );
        fmt_counter(
            &mut text,
            "cypher_plan_cache_evictions_total",
            "cache entries evicted by the LRU policy",
            pc.evictions,
        );
        fmt_gauge(
            &mut text,
            "cypher_plan_cache_entries",
            "query texts currently cached",
            self.plan_cache_len() as i64,
        );
        if let Some(batches) = self.batches_committed() {
            fmt_counter(
                &mut text,
                "cypher_wal_batches_total",
                "WAL batches committed over the store's lifetime",
                batches,
            );
        }
        if let Some(bytes) = self.wal_bytes() {
            fmt_gauge(
                &mut text,
                "cypher_wal_bytes",
                "WAL size as of the last seal/checkpoint",
                bytes as i64,
            );
        }
        if let Some(generation) = self.generation() {
            fmt_counter(
                &mut text,
                "cypher_snapshot_generation",
                "snapshot generation as of the last checkpoint",
                generation,
            );
        }
        fmt_counter(
            &mut text,
            "cypher_recovery_batches_replayed",
            "WAL batches replayed when this database was opened",
            inner.recovery.batches_replayed,
        );
        MetricsSnapshot {
            uptime_ms,
            version,
            wal_generation,
            text,
        }
    }

    /// Registers a **standing view**: `query` (read-only) is planned and
    /// classified once, materialized at the current version, and kept
    /// current across commits by the maintenance modes of the view
    /// module — delta folds for the maintainable fragment, full
    /// recomputation otherwise. Returns the version the view
    /// materialized at. `EXPLAIN VIEW <name>` (through any query path)
    /// shows the chosen maintenance plan.
    pub fn create_view(&self, name: &str, query: &str) -> Result<u64, Error> {
        self.inner.create_view(name, query)
    }

    /// Unregisters a standing view. Open subscriptions disconnect.
    pub fn drop_view(&self, name: &str) -> Result<(), Error> {
        self.inner.drop_view(name)
    }

    /// The contents of view `name` at the latest published version —
    /// served from the maintained table, not by re-running the query.
    pub fn view(&self, name: &str) -> Result<Table, Error> {
        let at = self.inner.shared.versioned.latest();
        self.inner.read_view(name, &at)
    }

    /// The registered view names, in creation order.
    pub fn view_names(&self) -> Vec<String> {
        self.inner
            .shared
            .views
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .names()
    }

    /// Renders view `name`'s maintenance plan (same text as
    /// `EXPLAIN VIEW <name>`).
    pub fn explain_view(&self, name: &str) -> Result<String, Error> {
        self.inner
            .shared
            .views
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .explain(name)
    }

    /// Subscribes to view `name`'s change stream: one
    /// [`crate::ViewChange`] per published commit group that changed the
    /// view's contents, in version order.
    pub fn subscribe(&self, name: &str) -> Result<crate::view::ViewSubscription, Error> {
        self.inner.subscribe(name)
    }

    /// Replaces the slow-query sink (default: one machine-parseable
    /// line per slow query on stderr). Takes effect for statements
    /// observed after the call; the slow path is the only reader.
    pub fn set_slow_query_sink(&self, sink: Arc<dyn SlowQuerySink>) {
        *self
            .inner
            .slow_sink
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = sink;
    }
}

/// One client's handle onto a shared [`Database`]: the unit of
/// concurrency and of read-transaction scope.
///
/// * `query()` outside a read transaction auto-commits: reads execute
///   against the latest version, updates run as their own atomic write
///   transaction (through the group-commit pipeline — concurrent
///   sessions' commits share WAL seals and fsyncs).
/// * [`Session::begin_read`] … [`Session::commit`] brackets a **read
///   transaction**: every query in between executes against the one
///   version pinned at `begin_read`, unaffected by concurrent commits
///   (snapshot isolation — repeatable reads, no torn batches). Updating
///   queries are refused while pinned.
///
/// Sessions are `Send`: create one per thread and query away. All
/// sessions share the plan cache, so a hot query planned by one session
/// is a cache hit for every other session at the same statistics
/// fingerprint.
pub struct Session {
    inner: Arc<DbInner>,
    pinned: Option<GraphView>,
    last_commit: Option<u64>,
    /// Pin-registry token while a read transaction is open (feeds the
    /// pinned-sessions gauge and the oldest-pin-age metric).
    pin: Option<u64>,
}

impl Session {
    /// Starts (or restarts) a read transaction: pins the latest
    /// published version and returns its id. Until [`Session::commit`],
    /// every query of this session executes against this frozen
    /// snapshot.
    pub fn begin_read(&mut self) -> u64 {
        let m = &self.inner.shared.db_metrics;
        if let Some(id) = self.pin.take() {
            m.release_pin(id);
        }
        let view = self.inner.shared.versioned.latest();
        let v = view.version();
        self.pinned = Some(view);
        self.pin = Some(m.register_pin());
        v
    }

    /// Ends the read transaction, releasing the pinned snapshot (and
    /// with it, eventually, the memory of that version). No-op when no
    /// transaction is open. The name mirrors the transactional bracket;
    /// read transactions have nothing to make durable.
    pub fn commit(&mut self) {
        if let Some(id) = self.pin.take() {
            self.inner.shared.db_metrics.release_pin(id);
        }
        self.pinned = None;
    }

    /// The version this session is pinned at, if a read transaction is
    /// open.
    pub fn version(&self) -> Option<u64> {
        self.pinned.as_ref().map(|v| v.version())
    }

    /// The version id this session's most recent statement committed at
    /// — `None` if that statement was a read, a no-op update, or failed
    /// to commit. Under group commit a member's version id may never be
    /// published on its own (the group publishes one version covering
    /// all members); the multi-writer differential harness orders its
    /// oracle replay by these ids, which stay per-transaction and
    /// monotonic.
    pub fn last_commit_version(&self) -> Option<u64> {
        self.last_commit
    }

    /// The snapshot this session's next read query will execute against:
    /// the pinned version inside a read transaction, the latest version
    /// otherwise.
    pub fn snapshot(&self) -> GraphView {
        match &self.pinned {
            Some(v) => v.clone(),
            None => self.inner.shared.versioned.latest(),
        }
    }

    /// Executes one query in this session. Inside a read transaction,
    /// reads see the pinned snapshot and updates are refused; outside,
    /// behaves exactly like [`Database::query`].
    pub fn query(&mut self, query: &str, params: &Params) -> Result<Table, Error> {
        self.query_inner(query, params, None)
    }

    /// Like [`Session::query`], tagging the statement with a caller
    /// trace id — the wire server stamps each request with
    /// `(connection id << 32) | request seq`. The id rides into the
    /// slow-query log, and for updating queries into the WAL seal
    /// (witnessed by `DatabaseMetrics::last_sealed_trace`), so one
    /// client request can be followed from accept to fsync.
    pub fn query_traced(
        &mut self,
        query: &str,
        params: &Params,
        trace_id: u64,
    ) -> Result<Table, Error> {
        self.query_inner(query, params, Some(trace_id))
    }

    fn query_inner(
        &mut self,
        query: &str,
        params: &Params,
        trace: Option<u64>,
    ) -> Result<Table, Error> {
        let (view, pinned) = match &self.pinned {
            Some(v) => (v.clone(), true),
            None => (self.inner.shared.versioned.latest(), false),
        };
        self.last_commit = None;
        self.inner
            .query_at(&view, pinned, query, params, &mut self.last_commit, trace)
    }

    /// Reads view `name` at this session's snapshot: inside a read
    /// transaction the contents are exactly the view as of the pinned
    /// version (from the published ring, or by cold re-evaluation when
    /// the pin predates retention); outside, the latest published table.
    pub fn view(&self, name: &str) -> Result<Table, Error> {
        let at = self.snapshot();
        self.inner.read_view(name, &at)
    }

    /// Like [`Session::view`], also reporting the version the rows are
    /// exact at (the pinned version inside a read transaction, the
    /// latest published version outside) — what a wire front-end stamps
    /// on its `ViewRows` response.
    pub fn view_versioned(&self, name: &str) -> Result<(u64, Table), Error> {
        let at = self.snapshot();
        let version = at.version();
        Ok((version, self.inner.read_view(name, &at)?))
    }

    /// Registers a standing view; see [`Database::create_view`].
    pub fn create_view(&self, name: &str, query: &str) -> Result<u64, Error> {
        self.inner.create_view(name, query)
    }

    /// Unregisters a standing view; see [`Database::drop_view`].
    pub fn drop_view(&self, name: &str) -> Result<(), Error> {
        self.inner.drop_view(name)
    }

    /// Subscribes to view `name`'s change stream; see
    /// [`Database::subscribe`].
    pub fn subscribe(&self, name: &str) -> Result<crate::view::ViewSubscription, Error> {
        self.inner.subscribe(name)
    }

    /// Profiles a read query against this session's snapshot (pinned or
    /// latest); see [`Database::profile`].
    pub fn profile(&self, query: &str, params: &Params) -> Result<ProfileReport, Error> {
        let text = keyword_prefix(query, "PROFILE").unwrap_or(query);
        let view = self.snapshot();
        self.inner.profile_at(&view, text, params)
    }

    /// Evaluates a read query with the reference evaluator against this
    /// session's snapshot (pinned or latest).
    pub fn query_reference(&self, query: &str, params: &Params) -> Result<Table, Error> {
        let view = self.snapshot();
        run_reference_with(view.graph(), query, params, self.inner.cfg.match_config)
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        let m = &self.inner.shared.db_metrics;
        if let Some(id) = self.pin.take() {
            m.release_pin(id);
        }
        if m.enabled {
            m.sessions_active.dec();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_graph::Value;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("cypher-db-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn durable_roundtrip_across_open() {
        let dir = tmpdir("roundtrip");
        let params = Params::new();
        {
            let mut db = Database::open(&dir).unwrap();
            db.query(
                "CREATE (:P {name: 'Ada'})-[:KNOWS {since: 1985}]->(:P {name: 'Bo'})",
                &params,
            )
            .unwrap();
            db.query("MATCH (n:P {name: 'Bo'}) SET n.age = 3", &params)
                .unwrap();
            assert_eq!(db.batches_committed(), Some(2));
            assert_eq!(db.version(), 2, "version = sealed batches");
            db.close().unwrap();
        }
        let mut db = Database::open(&dir).unwrap();
        assert_eq!(db.recovery().batches_replayed, 2);
        assert_eq!(db.version(), 2, "versions continue across reopen");
        let out = db
            .query(
                "MATCH (a:P)-[r:KNOWS]->(b) RETURN a.name, r.since, b.age",
                &params,
            )
            .unwrap();
        assert_eq!(out.cell(0, "a.name"), Some(&Value::str("Ada")));
        assert_eq!(out.cell(0, "r.since"), Some(&Value::int(1985)));
        assert_eq!(out.cell(0, "b.age"), Some(&Value::int(3)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_trigger_snapshots_and_truncates() {
        let dir = tmpdir("compact");
        let params = Params::new();
        let mut cfg = EngineConfig::default();
        cfg.persistence = Some(dir.clone());
        cfg.wal_compact_bytes = 512; // tiny: trigger quickly
        let mut db = Database::open_with(cfg.clone()).unwrap();
        for i in 0..50 {
            db.query(&format!("CREATE (:N {{i: {i}}})"), &params)
                .unwrap();
        }
        assert!(db.generation().unwrap() > 0, "compaction never triggered");
        assert!(db.wal_bytes().unwrap() <= 512 + 200, "wal was truncated");
        let dump = db.graph().canonical_dump();
        db.close().unwrap();
        let db2 = Database::open_with(cfg).unwrap();
        assert_eq!(db2.graph().canonical_dump(), dump);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_query_keeps_memory_and_disk_aligned() {
        let dir = tmpdir("failed");
        let params = Params::new();
        {
            let mut db = Database::open(&dir).unwrap();
            db.query("CREATE (:A {v: 1}), (:A {v: 2})", &params)
                .unwrap();
            // DELETE without DETACH on a connected node errors after the
            // CREATE clause already ran.
            db.query("CREATE (a:B)-[:X]->(b:B) WITH a DELETE a", &params)
                .unwrap_err();
            let dump = db.graph().canonical_dump();
            db.close().unwrap();
            let db2 = Database::open(&dir).unwrap();
            assert_eq!(
                db2.graph().canonical_dump(),
                dump,
                "partial mutations of a failed query must be durable too"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_memory_database_has_no_files() {
        let params = Params::new();
        let mut db = Database::in_memory();
        db.query("CREATE (:N)", &params).unwrap();
        assert_eq!(db.batches_committed(), None);
        assert_eq!(db.wal_bytes(), None);
        assert!(!db.graph().has_change_sink());
        assert_eq!(db.version(), 1);
    }

    #[test]
    fn session_read_txn_pins_a_snapshot() {
        let params = Params::new();
        let db = Database::in_memory();
        let mut writer = db.session();
        let mut reader = db.session();
        writer.query("CREATE (:N {v: 1})", &params).unwrap();
        let pinned_at = reader.begin_read();
        assert_eq!(pinned_at, 1);
        writer.query("CREATE (:N {v: 2})", &params).unwrap();
        writer
            .query("MATCH (n:N {v: 1}) SET n.v = 99", &params)
            .unwrap();
        // Repeatable reads at the pinned version.
        let count = |s: &mut Session| {
            let t = s
                .query("MATCH (n:N) RETURN count(*) AS c", &params)
                .unwrap();
            t.cell(0, "c").cloned().unwrap()
        };
        assert_eq!(count(&mut reader), Value::int(1));
        assert_eq!(
            reader
                .query("MATCH (n:N) RETURN n.v AS v", &params)
                .unwrap()
                .cell(0, "v"),
            Some(&Value::int(1)),
            "pinned snapshot predates the SET"
        );
        // Updates are refused inside the read transaction.
        let e = reader.query("CREATE (:Oops)", &params).unwrap_err();
        assert!(
            e.to_string().contains("read transaction"),
            "unexpected error: {e}"
        );
        // Release: the same session now sees the latest version.
        reader.commit();
        assert_eq!(count(&mut reader), Value::int(2));
        assert_eq!(db.version(), 3);
    }

    #[test]
    fn close_poisons_writes_on_surviving_sessions_but_reads_continue() {
        let dir = tmpdir("close-poison");
        let params = Params::new();
        let db = Database::open(&dir).unwrap();
        let mut survivor = db.session();
        survivor.query("CREATE (:N {v: 1})", &params).unwrap();
        db.close().unwrap();
        // A write after close would seal a batch no one ever fsyncs —
        // it must fail loudly, not succeed silently.
        let e = survivor.query("CREATE (:N {v: 2})", &params).unwrap_err();
        assert!(e.to_string().contains("closed"), "unexpected error: {e}");
        // Reads only touch published in-memory versions: still fine.
        let t = survivor
            .query("MATCH (n:N) RETURN count(*) AS c", &params)
            .unwrap();
        assert_eq!(t.cell(0, "c"), Some(&Value::int(1)));
        // close released the directory lock even though a session
        // lingers: the directory reopens immediately.
        let db2 = Database::open(&dir).unwrap();
        assert_eq!(db2.version(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explain_stamps_the_snapshot_version() {
        let params = Params::new();
        let mut db = Database::in_memory();
        db.query("CREATE (:P {v: 1})", &params).unwrap();
        let plan = db.explain("MATCH (n:P) RETURN n").unwrap();
        assert!(
            plan.starts_with("snapshot version 1\n"),
            "explain must witness the version its statistics came from:\n{plan}"
        );
    }

    #[test]
    fn sessions_share_one_graph_and_one_plan_cache() {
        let params = Params::new();
        let mut cfg = EngineConfig::default();
        cfg.persistence = None;
        cfg.plan_cache_size = 16;
        let db = Database::open_with(cfg).unwrap();
        let mut a = db.session();
        let mut b = db.session();
        a.query("CREATE (:P {v: 1}), (:P {v: 2})", &params).unwrap();
        let q = "MATCH (n:P) RETURN n.v AS v ORDER BY v";
        let ra = a.query(q, &params).unwrap();
        let rb = b.query(q, &params).unwrap();
        assert!(ra.ordered_eq(&rb));
        let s = db.plan_cache_stats();
        assert!(
            s.hits >= 1,
            "second session must hit the shared cache: {s:?}"
        );
    }

    #[test]
    fn last_commit_version_tracks_write_statements_only() {
        let params = Params::new();
        let db = Database::in_memory();
        let mut s = db.session();
        assert_eq!(s.last_commit_version(), None);
        s.query("CREATE (:N {v: 1})", &params).unwrap();
        assert_eq!(s.last_commit_version(), Some(1));
        s.query("MATCH (n:N) RETURN n.v", &params).unwrap();
        assert_eq!(s.last_commit_version(), None, "reads commit nothing");
        s.query("MATCH (n:Absent) SET n.v = 2", &params).unwrap();
        assert_eq!(
            s.last_commit_version(),
            None,
            "no-op updates commit nothing"
        );
        s.query("CREATE (:N {v: 2})", &params).unwrap();
        assert_eq!(s.last_commit_version(), Some(2));
    }

    #[test]
    fn sync_mode_fsync_failure_poisons_exactly_its_group() {
        let dir = tmpdir("sync-fail");
        let params = Params::new();
        let mut cfg = EngineConfig::default();
        cfg.persistence = Some(dir.clone());
        cfg.fsync_mode = FsyncMode::Sync;
        {
            let mut db = Database::open_with(cfg.clone()).unwrap();
            db.query("CREATE (:N {v: 1})", &params).unwrap();
            std::env::set_var("CYPHER_TEST_FAULTS", "1");
            assert!(db.inject_fsync_failures(1), "armed under the env guard");
            let e = db.query("CREATE (:N {v: 2})", &params).unwrap_err();
            assert!(
                e.to_string().contains("fsync"),
                "the doomed writer gets the flush error: {e}"
            );
            // The failed group never published: memory stayed on the
            // durable prefix.
            assert_eq!(db.version(), 1);
            // Later writers see the poison.
            let e2 = db.query("CREATE (:N {v: 3})", &params).unwrap_err();
            assert!(
                e2.to_string()
                    .contains("read-only after a failed WAL commit"),
                "unexpected error: {e2}"
            );
        } // dropped, not closed: close would fsync a damaged writer
        cfg.fsync_mode = FsyncMode::Os;
        let mut db2 = Database::open_with(cfg).unwrap();
        assert_eq!(db2.version(), 1, "prior groups stayed durable");
        let t = db2
            .query("MATCH (n:N) RETURN count(*) AS c", &params)
            .unwrap();
        assert_eq!(t.cell(0, "c"), Some(&Value::int(1)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pipelined_mode_publishes_after_flush_and_survives_reopen() {
        let dir = tmpdir("pipelined");
        let params = Params::new();
        let mut cfg = EngineConfig::default();
        cfg.persistence = Some(dir.clone());
        cfg.fsync_mode = FsyncMode::Pipelined;
        {
            let mut db = Database::open_with(cfg.clone()).unwrap();
            for i in 0..3 {
                db.query(&format!("CREATE (:N {{v: {i}}})"), &params)
                    .unwrap();
            }
            assert_eq!(db.version(), 3, "acknowledged commits are published");
            db.close().unwrap();
        }
        let db2 = Database::open_with(cfg).unwrap();
        assert_eq!(db2.recovery().batches_replayed, 3);
        assert_eq!(db2.version(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pipelined_flush_failure_poisons_and_rolls_back_its_group() {
        let dir = tmpdir("pipelined-fail");
        let params = Params::new();
        let mut cfg = EngineConfig::default();
        cfg.persistence = Some(dir.clone());
        cfg.fsync_mode = FsyncMode::Pipelined;
        {
            let mut db = Database::open_with(cfg.clone()).unwrap();
            db.query("CREATE (:N {v: 1})", &params).unwrap();
            std::env::set_var("CYPHER_TEST_FAULTS", "1");
            assert!(db.inject_fsync_failures(1), "armed under the env guard");
            let e = db.query("CREATE (:N {v: 2})", &params).unwrap_err();
            assert!(
                e.to_string().contains("fsync"),
                "the doomed writer gets the flush error: {e}"
            );
            assert_eq!(db.version(), 1, "the failed group never published");
            let e2 = db.query("CREATE (:N {v: 3})", &params).unwrap_err();
            assert!(
                e2.to_string()
                    .contains("read-only after a failed WAL commit"),
                "unexpected error: {e2}"
            );
        }
        cfg.fsync_mode = FsyncMode::Os;
        let mut db2 = Database::open_with(cfg).unwrap();
        assert_eq!(
            db2.recovery().batches_replayed,
            1,
            "the WAL was rolled back to the durable group"
        );
        let t = db2
            .query("MATCH (n:N) RETURN count(*) AS c", &params)
            .unwrap();
        assert_eq!(t.cell(0, "c"), Some(&Value::int(1)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pipelined_failure_with_two_groups_in_flight_rolls_back_once() {
        // The pipelined steady state holds two in-flight groups: N
        // flushing while the leader seals N+1. If N's flush fails, only
        // N's rollback may touch the file — N+1's rollback target lies
        // past the restored boundary, and truncating to it would
        // zero-extend the WAL into garbage that makes the database
        // unopenable. This test stages that interleaving
        // deterministically by capturing the sealed groups and feeding
        // them to a worker only after both are in flight.
        let dir = tmpdir("pipelined-two-inflight");
        let params = Params::new();
        let mut cfg = EngineConfig::default();
        cfg.persistence = Some(dir.clone());
        cfg.fsync_mode = FsyncMode::Pipelined;
        {
            let db = Database::open_with(cfg.clone()).unwrap();
            let mut s0 = db.session();
            s0.query("CREATE (:N {v: 0})", &params).unwrap();
            // Intercept the pipeline: jobs land in the test's channel
            // instead of the real worker (which retires when its sender
            // drops), so the test controls when each flush runs.
            let (tx, sealed_rx) = mpsc::channel();
            let old = std::mem::replace(&mut *db.inner.fsync_tx.lock().unwrap(), Some(tx));
            drop(old);
            let spawn_writer = |v: i64| {
                let mut s = db.session();
                std::thread::spawn(move || {
                    s.query(&format!("CREATE (:N {{v: {v}}})"), &Params::new())
                })
            };
            // Each writer finds an idle queue, leads its own seal, and
            // blocks on its ticket — receiving its job proves the group
            // is sealed (appended to the WAL) and in flight.
            let w1 = spawn_writer(1);
            let job1 = sealed_rx.recv().unwrap();
            let w2 = spawn_writer(2);
            let job2 = sealed_rx.recv().unwrap();
            let durable_len = job1.wal_len_before;
            assert!(
                job2.wal_len_before > durable_len,
                "two distinct groups are in flight"
            );
            // Fail the first flush, then let a worker drain both jobs in
            // seal order: job1 fails and rolls back to durable_len; job2
            // sees the poison and must NOT roll back to its own (larger,
            // no longer existing) target.
            db.inner
                .shared
                .pipeline_fail_injections
                .store(1, Ordering::Relaxed);
            let (wtx, wrx) = mpsc::channel();
            let weak = Arc::downgrade(&db.inner.shared);
            let worker = std::thread::spawn(move || fsync_worker(weak, wrx));
            wtx.send(job1).unwrap();
            wtx.send(job2).unwrap();
            drop(wtx);
            worker.join().unwrap();
            assert!(
                w1.join().unwrap().is_err(),
                "the failed group's writer errors"
            );
            assert!(w2.join().unwrap().is_err(), "the poisoned follower errors");
            assert_eq!(
                db.wal_bytes(),
                Some(durable_len),
                "the WAL sits exactly at the durable boundary — neither \
                 extended nor cut below it"
            );
            assert_eq!(db.version(), 1, "neither group published");
        }
        // The decisive check: the directory reopens cleanly with exactly
        // the durable prefix (the double-rollback bug left an unopenable
        // zero-extended log here).
        cfg.fsync_mode = FsyncMode::Os;
        let mut db2 = Database::open_with(cfg).unwrap();
        assert_eq!(db2.recovery().batches_replayed, 1);
        let t = db2
            .query("MATCH (n:N) RETURN count(*) AS c", &params)
            .unwrap();
        assert_eq!(t.cell(0, "c"), Some(&Value::int(1)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_share_groups_and_all_commit() {
        let params = Params::new();
        let mut cfg = EngineConfig::default();
        cfg.persistence = None;
        cfg.plan_cache_size = 0;
        let db = Database::open_with(cfg).unwrap();
        const WRITERS: usize = 4;
        const EACH: usize = 25;
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let mut session = db.session();
                scope.spawn(move || {
                    for i in 0..EACH {
                        session
                            .query(&format!("CREATE (:W {{w: {w}, i: {i}}})"), &Params::new())
                            .unwrap();
                        assert!(
                            session.last_commit_version().is_some(),
                            "every write commits a version"
                        );
                    }
                });
            }
        });
        let mut check = db.session();
        let t = check
            .query("MATCH (n:W) RETURN count(*) AS c", &params)
            .unwrap();
        assert_eq!(t.cell(0, "c"), Some(&Value::int((WRITERS * EACH) as i64)));
        assert_eq!(
            db.version(),
            (WRITERS * EACH) as u64,
            "the last group's publish covers every member seq"
        );
    }

    #[test]
    fn maintained_views_track_every_commit() {
        let params = Params::new();
        let mut db = Database::in_memory();
        db.query(
            "CREATE (:P {city: 'a', age: 30}), (:P {city: 'b', age: 40})",
            &params,
        )
        .unwrap();
        let q = "MATCH (p:P) RETURN p.city AS city, count(*) AS n, sum(p.age) AS total";
        let v = db.create_view("by_city", q).unwrap();
        assert_eq!(v, 1);
        let explain = db.explain_view("by_city").unwrap();
        assert!(
            explain.contains("grouped-aggregate fold"),
            "aggregate view should be delta-maintained:\n{explain}"
        );
        // Each commit's refreshed view must equal a cold re-evaluation.
        let steps = [
            "CREATE (:P {city: 'a', age: 10})",
            "MATCH (p:P {age: 30}) SET p.age = 35",
            "MATCH (p:P {city: 'b'}) DELETE p",
            "MATCH (p:P {age: 10}) SET p.city = 'c'",
        ];
        for step in steps {
            db.query(step, &params).unwrap();
            let maintained = db.view("by_city").unwrap();
            let cold = db.query(q, &params).unwrap();
            maintained.assert_bag_eq(&cold);
        }
        db.drop_view("by_city").unwrap();
        assert!(db.view("by_city").is_err());
        assert!(
            !db.graph().has_change_sink(),
            "published graphs never carry the collector sink"
        );
    }

    #[test]
    fn pinned_session_reads_the_view_at_its_version() {
        let params = Params::new();
        let mut db = Database::in_memory();
        db.query("CREATE (:N {v: 1})", &params).unwrap();
        db.create_view("cnt", "MATCH (n:N) RETURN count(*) AS c")
            .unwrap();
        let mut reader = db.session();
        reader.begin_read();
        db.query("CREATE (:N {v: 2})", &params).unwrap();
        assert_eq!(
            reader.view("cnt").unwrap().cell(0, "c"),
            Some(&Value::int(1)),
            "pinned reader sees the view as of its snapshot"
        );
        reader.commit();
        assert_eq!(
            reader.view("cnt").unwrap().cell(0, "c"),
            Some(&Value::int(2))
        );
    }

    #[test]
    fn subscriptions_stream_bag_deltas_per_version() {
        let params = Params::new();
        let mut db = Database::in_memory();
        db.create_view("people", "MATCH (p:P) RETURN p.name AS name")
            .unwrap();
        let sub = db.subscribe("people").unwrap();
        db.query("CREATE (:P {name: 'Ada'})", &params).unwrap();
        db.query("MATCH (p:P {name: 'Ada'}) SET p.name = 'Bo'", &params)
            .unwrap();
        let first = sub
            .next_timeout(std::time::Duration::from_secs(5))
            .expect("first change frame");
        assert_eq!(first.version, 1);
        assert_eq!(first.added.len(), 1);
        assert_eq!(first.removed.len(), 0);
        assert_eq!(first.added.cell(0, "name"), Some(&Value::str("Ada")));
        let second = sub
            .next_timeout(std::time::Duration::from_secs(5))
            .expect("second change frame");
        assert_eq!(second.version, 2);
        assert_eq!(second.added.cell(0, "name"), Some(&Value::str("Bo")));
        assert_eq!(second.removed.cell(0, "name"), Some(&Value::str("Ada")));
    }

    #[test]
    fn unmaintainable_views_fall_back_to_full_recompute() {
        let params = Params::new();
        let mut cfg = EngineConfig::default();
        cfg.persistence = None;
        cfg.metrics_enabled = true;
        let mut db = Database::open_with(cfg).unwrap();
        db.query("CREATE (:A)-[:R]->(:B)", &params).unwrap();
        // Variable-length paths are outside the delta fragment.
        let q = "MATCH (a:A)-[:R*1..2]->(b) RETURN count(*) AS c";
        db.create_view("far", q).unwrap();
        let explain = db.explain_view("far").unwrap();
        assert!(explain.contains("full recomputation"), "{explain}");
        db.query("CREATE (:A)-[:R]->(:B)", &params).unwrap();
        let maintained = db.view("far").unwrap();
        let cold = db.query(q, &params).unwrap();
        maintained.assert_bag_eq(&cold);
        assert!(
            db.metrics().view_full_recomputes.get() >= 1,
            "full-mode refreshes are counted"
        );
    }
}
