//! The `Database` facade: a **transactional, multi-version** property
//! graph — open / session / query / checkpoint / close — over the
//! versioned core of [`cypher_graph::VersionedGraph`] and the durable
//! store of [`cypher_storage`].
//!
//! ## Concurrency model (snapshot isolation, single writer)
//!
//! * Any number of [`Session`]s (cheap handles onto one shared database)
//!   run **read queries concurrently**, each against a frozen
//!   [`GraphView`]. Reader admission is lock-free (a few atomics — see
//!   `cypher_graph::version`), so an in-flight writer never blocks
//!   readers and readers never block the writer.
//! * **Write queries are serialized** by the writer lock. A writer
//!   executes against a private copy-on-write clone of the latest
//!   version; its mutations become visible **all at once** when the
//!   batch commits: the change records are sealed in the WAL first
//!   (durability), then the new version is published (visibility) —
//!   so every version a reader can pin is recoverable from disk, and no
//!   reader ever observes a torn mid-batch state.
//! * [`Session::begin_read`] pins the latest version for a multi-query
//!   read transaction: every query until [`Session::commit`] sees that
//!   one frozen state, regardless of concurrent commits.
//!
//! ## Durability lifecycle (unchanged from the storage engine's design)
//!
//! 1. **open** — `cypher_storage::Store::open` recovers the graph from
//!    the latest valid snapshot plus the replayed WAL tail; the result
//!    is published as the initial version (= batches recovered);
//! 2. **query** — one WAL batch per mutating query; a query that errors
//!    midway still commits the mutations it *did* apply (Cypher has no
//!    rollback), atomically, so memory and disk stay aligned;
//! 3. **checkpoint** — when the WAL outgrows
//!    [`EngineConfig::wal_compact_bytes`] (or on demand), the latest
//!    version is snapshotted and the WAL truncated;
//! 4. **close** — fsyncs the WAL (committed batches are already with
//!    the OS, so dropping without closing survives *process* crashes).

use crate::{run_reference_with, Error, Table};
use cypher_ast::query::Query;
use cypher_core::error::EvalError;
use cypher_core::Params;
use cypher_engine::{stats_fingerprint, EngineConfig, PlanMemo};
use cypher_graph::{GraphView, PropertyGraph, SharedChangeBuffer, VersionedGraph};
use cypher_storage::{RecoveryReport, Store};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Counters of the `Database` parse+plan cache. All zeros when the cache
/// is disabled (`EngineConfig::plan_cache_size == 0`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Queries answered entirely from cache (no parse, no planning).
    pub hits: u64,
    /// Queries that were parsed (and planned) fresh.
    pub misses: u64,
    /// Cache entries that held no plans valid under the querying
    /// session's statistics fingerprint, so the plans were compiled
    /// fresh (the parse is kept).
    pub invalidations: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
}

/// Plan memos kept per cached query text: one per recent statistics
/// fingerprint, so concurrent sessions pinned at different versions
/// (hence different statistics) don't thrash each other's plans.
const MEMOS_PER_ENTRY: usize = 4;

/// One cached query: the parsed AST plus memoized plans per recent
/// statistics fingerprint.
struct CacheEntry {
    query: Arc<Query>,
    cfg_fp: u64,
    /// `(stats fingerprint, plans, last used)` — tiny LRU within the
    /// entry.
    memos: Vec<(u64, Arc<PlanMemo>, u64)>,
    last_used: u64,
}

/// An LRU parse+plan cache keyed by query text, shared by every session
/// of a database (interior `Mutex`, held only to resolve entries —
/// never across execution).
#[derive(Default)]
struct PlanCache {
    entries: HashMap<String, CacheEntry>,
    tick: u64,
    stats: PlanCacheStats,
}

impl PlanCache {
    /// Looks up the entry for `text`, returning the parsed query plus
    /// the plan memo valid under `stats_fp`. `None` means the text is
    /// not cached (or was cached under another config and has been
    /// dropped) — the caller parses **outside the cache lock** and
    /// completes with [`PlanCache::insert`].
    ///
    /// `count` suppresses the public counters for internal re-lookups
    /// (a write transaction re-validating its memo against its actual
    /// base statistics, or the adopt path after a racing insert).
    fn lookup(
        &mut self,
        text: &str,
        cfg_fp: u64,
        stats_fp: u64,
        count: bool,
    ) -> Option<(Arc<Query>, Arc<PlanMemo>)> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.entries.get_mut(text) {
            if e.cfg_fp == cfg_fp {
                e.last_used = tick;
                if let Some(slot) = e.memos.iter_mut().find(|(fp, _, _)| *fp == stats_fp) {
                    slot.2 = tick;
                    if count {
                        self.stats.hits += 1;
                    }
                    return Some((Arc::clone(&e.query), Arc::clone(&slot.1)));
                }
                // Statistics moved (or this session is pinned at another
                // version): keep the parse, plan fresh under this
                // fingerprint. Older fingerprints stay cached so a
                // session still pinned before the mutation keeps *its*
                // plans too.
                let memo = Arc::new(PlanMemo::new());
                if e.memos.len() >= MEMOS_PER_ENTRY {
                    if let Some(lru) = e
                        .memos
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, (_, _, used))| *used)
                        .map(|(i, _)| i)
                    {
                        e.memos.remove(lru);
                    }
                }
                e.memos.push((stats_fp, Arc::clone(&memo), tick));
                if count {
                    self.stats.invalidations += 1;
                }
                return Some((Arc::clone(&e.query), memo));
            }
            // Config changed under the same text: drop; the caller
            // reparses and reinserts.
            self.entries.remove(text);
        }
        None
    }

    /// Completes a miss: records the externally parsed query (evicting
    /// LRU at capacity) and returns its fresh memo.
    fn insert(
        &mut self,
        text: &str,
        query: Arc<Query>,
        capacity: usize,
        cfg_fp: u64,
        stats_fp: u64,
    ) -> (Arc<Query>, Arc<PlanMemo>) {
        self.tick += 1;
        let tick = self.tick;
        self.stats.misses += 1;
        let memo = Arc::new(PlanMemo::new());
        if self.entries.len() >= capacity {
            // Evict the least-recently-used entry (capacity ≥ 1 here).
            if let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&lru);
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(
            text.to_string(),
            CacheEntry {
                query: Arc::clone(&query),
                cfg_fp,
                memos: vec![(stats_fp, Arc::clone(&memo), tick)],
                last_used: tick,
            },
        );
        (query, memo)
    }
}

/// The writer-side state: the durable store and the change buffer that
/// collects each query's mutation records. Everything here is touched
/// only under the writer lock.
struct WriterState {
    store: Option<Store>,
    buffer: SharedChangeBuffer,
    poisoned_msg: Option<String>,
}

/// Lock-free mirror of the store's observability counters, refreshed
/// under the writer lock after every commit/checkpoint. Monitoring
/// getters (`batches_committed`, `wal_bytes`, `generation`) read these
/// instead of taking the writer lock — which an in-flight bulk write
/// transaction can hold for the whole duration of its query.
struct StoreMetrics {
    durable: bool,
    batches: AtomicU64,
    wal_bytes: AtomicU64,
    generation: AtomicU64,
}

impl StoreMetrics {
    fn of(store: &Option<Store>) -> StoreMetrics {
        let m = StoreMetrics {
            durable: store.is_some(),
            batches: AtomicU64::new(0),
            wal_bytes: AtomicU64::new(0),
            generation: AtomicU64::new(0),
        };
        if let Some(s) = store {
            m.refresh(s);
        }
        m
    }

    fn refresh(&self, store: &Store) {
        self.batches
            .store(store.batches_committed(), Ordering::Relaxed);
        self.wal_bytes.store(store.wal_bytes(), Ordering::Relaxed);
        self.generation.store(store.generation(), Ordering::Relaxed);
    }

    fn read(&self, counter: &AtomicU64) -> Option<u64> {
        self.durable.then(|| counter.load(Ordering::Relaxed))
    }
}

/// Everything shared between a [`Database`] and its [`Session`]s.
struct DbInner {
    versioned: VersionedGraph,
    cfg: EngineConfig,
    recovery: RecoveryReport,
    writer: Mutex<WriterState>,
    metrics: StoreMetrics,
    cache: Mutex<PlanCache>,
    /// `(version, statistics fingerprint)` memo for recent versions: the
    /// fingerprint is recomputed only when a session reads a version it
    /// hasn't been computed for — read-only traffic on a quiet graph
    /// costs one lookup.
    stats_fp: Mutex<Vec<(u64, u64)>>,
}

impl DbInner {
    /// Resolves `text` through the shared plan cache: the cache `Mutex`
    /// is held only for lookup/insert — a cache-miss **parse runs
    /// unlocked**, so one session parsing a large query never serializes
    /// other sessions' query startup. `count` as in
    /// [`PlanCache::lookup`].
    fn resolve_cached(
        &self,
        text: &str,
        capacity: usize,
        stats_fp: u64,
        count: bool,
    ) -> Result<(Arc<Query>, Arc<PlanMemo>), Error> {
        let cfg_fp = self.cfg.plan_fingerprint();
        if let Some(hit) = self
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .lookup(text, cfg_fp, stats_fp, count)
        {
            return Ok(hit);
        }
        let parsed = Arc::new(crate::parse_query(text)?);
        let mut c = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        // A racing session may have inserted while we parsed: adopt its
        // entry. Counted under the caller's flag — an absent-entry
        // lookup increments nothing, so this query's outcome has not
        // been accounted yet and the adoption *is* its cache hit.
        if let Some(hit) = c.lookup(text, cfg_fp, stats_fp, count) {
            return Ok(hit);
        }
        Ok(c.insert(text, parsed, capacity, cfg_fp, stats_fp))
    }

    /// The statistics fingerprint of `view`, memoized by version.
    fn stats_fp_for(&self, view: &GraphView) -> u64 {
        let mut memo = self.stats_fp.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(&(_, fp)) = memo.iter().find(|(v, _)| *v == view.version()) {
            return fp;
        }
        let fp = stats_fingerprint(view.graph());
        memo.push((view.version(), fp));
        if memo.len() > 16 {
            memo.remove(0);
        }
        fp
    }

    fn lock_writer(&self) -> MutexGuard<'_, WriterState> {
        self.writer.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Executes one query: reads run lock-free against `view`; updating
    /// queries take the writer lock (refused when `pinned` — a read
    /// transaction never mutates).
    fn query_at(
        self: &Arc<Self>,
        view: &GraphView,
        pinned: bool,
        text: &str,
        params: &Params,
    ) -> Result<Table, Error> {
        let capacity = self.cfg.plan_cache_size;
        let (q, memo) = if capacity == 0 {
            (Arc::new(crate::parse_query(text)?), None)
        } else {
            let stats_fp = self.stats_fp_for(view);
            let (q, memo) = self.resolve_cached(text, capacity, stats_fp, true)?;
            (q, Some(memo))
        };
        if !q.is_updating() {
            return Ok(cypher_engine::execute_read_cached(
                view,
                &q,
                params,
                &self.cfg,
                memo.as_deref(),
            )?);
        }
        if pinned {
            return Err(Error::Eval(EvalError::new(
                "updating query inside a read transaction: \
                 call Session::commit() to release the pinned snapshot first",
            )));
        }
        self.write_query(text, &q, params)
    }

    /// Executes an updating query as one transaction: private
    /// copy-on-write clone → execute → drain the change records → seal
    /// them in the WAL as one atomic batch → publish the new version.
    fn write_query(&self, text: &str, q: &Arc<Query>, params: &Params) -> Result<Table, Error> {
        let mut w = self.lock_writer();
        if let Some(msg) = &w.poisoned_msg {
            return Err(Error::Eval(EvalError::new(msg.clone())));
        }
        // Resolve the plan memo against the statistics this transaction
        // will *actually* execute under — the latest version is frozen
        // for the duration (we hold the writer lock). The caller's
        // pre-lock resolution may have been computed against an older
        // version; caching plans chosen under these statistics into
        // that older fingerprint's slot would poison it for sessions
        // genuinely pinned there. Quiet: this query's cache outcome was
        // already counted.
        let capacity = self.cfg.plan_cache_size;
        let memo = if capacity == 0 {
            None
        } else {
            let base = self.versioned.latest();
            let fp = self.stats_fp_for(&base);
            Some(self.resolve_cached(text, capacity, fp, false)?.1)
        };
        let memo = memo.as_deref();
        let mut txn = self.versioned.begin_write();
        let durable = w.store.is_some();
        if durable {
            // Collect this transaction's change records for the WAL
            // batch. Discard anything a previous transaction left
            // behind: a query that *panicked* mid-execution aborted its
            // clone but could not drain the records it had already
            // emitted — sealing them into this batch would write
            // mutations to disk that no published version ever
            // contained.
            let _stale = w.buffer.drain();
            txn.graph_mut().set_change_sink(Box::new(w.buffer.clone()));
        }
        // In-memory databases skip the sink entirely (no records to
        // seal); the mutation counter is their did-anything-mutate
        // detector.
        let version_before = txn.graph().version();
        let result = cypher_engine::execute_cached(txn.graph_mut(), q, params, &self.cfg, memo)
            .map_err(Error::from);
        // Even an errored query publishes (and seals) the mutations it
        // did apply before failing — Cypher has no rollback, so the
        // already-executed clauses are real and must be durable; they
        // become visible to readers atomically like any other batch.
        let changes = if durable {
            w.buffer.drain()
        } else {
            Vec::new()
        };
        let version = match &mut w.store {
            Some(store) => {
                if changes.is_empty() {
                    txn.abort();
                    return result;
                }
                // Seal first: a version is published only once the batch
                // that produced it is recoverable.
                match store.commit(&changes) {
                    Ok(seq) => seq + 1,
                    Err(e) => {
                        // The in-memory mutations cannot be made durable;
                        // dropping the unpublished transaction keeps
                        // readers (and future recovery) on the last
                        // consistent version. The database stops
                        // accepting writes: retrying against a store
                        // that already failed a seal risks interleaving
                        // half-sealed batches.
                        w.poisoned_msg = Some(format!(
                            "database is read-only after a failed WAL commit: {e}"
                        ));
                        txn.abort();
                        return Err(e.into());
                    }
                }
            }
            None => {
                if txn.graph().version() == version_before {
                    // No mutator ran (e.g. a SET whose MATCH bound
                    // nothing): nothing to publish. A *failed* mutation
                    // attempt bumps the counter without changing state;
                    // publishing that content-identical version is
                    // harmless.
                    txn.abort();
                    return result;
                }
                txn.base_version() + 1
            }
        };
        let published = txn.commit_as(version);
        if let Some(store) = &mut w.store {
            if store.wal_bytes() > self.cfg.wal_compact_bytes {
                let ck = store.checkpoint(published.graph());
                self.metrics.refresh(store);
                ck?;
            } else {
                self.metrics.refresh(store);
            }
        }
        result
    }
}

/// A transactional property graph with an optional durable store behind
/// it and snapshot-isolated concurrent sessions on top.
///
/// ```
/// use cypher::{Database, Params};
///
/// let dir = std::env::temp_dir().join(format!("cypher-doc-{}", std::process::id()));
/// let _ = std::fs::remove_dir_all(&dir);
/// let params = Params::new();
/// {
///     let mut db = Database::open(&dir).unwrap();
///     db.query("CREATE (:Person {name: 'Ada'})", &params).unwrap();
/// } // dropped: committed batches are already with the OS
/// let mut db = Database::open(&dir).unwrap();
/// let out = db.query("MATCH (p:Person) RETURN p.name", &params).unwrap();
/// assert_eq!(out.len(), 1);
/// std::fs::remove_dir_all(&dir).unwrap();
/// ```
///
/// For concurrent use, hand each thread its own [`Session`]:
///
/// ```
/// use cypher::{Database, Params};
///
/// let db = Database::in_memory();
/// let params = Params::new();
/// let mut reader = db.session();
/// let mut writer = db.session();
/// writer.query("CREATE (:N {v: 1})", &params).unwrap();
/// let v = reader.begin_read(); // pin: a frozen snapshot
/// writer.query("CREATE (:N {v: 2})", &params).unwrap();
/// let pinned = reader.query("MATCH (n:N) RETURN count(*) AS c", &params).unwrap();
/// assert_eq!(format!("{:?}", pinned.cell(0, "c").unwrap()), "Integer(1)");
/// reader.commit(); // release the pin
/// assert!(reader.version().is_none());
/// assert_eq!(v, 1);
/// ```
pub struct Database {
    inner: Arc<DbInner>,
}

impl Database {
    /// Opens (creating if necessary) a durable database at `dir`,
    /// recovering whatever a previous process committed there.
    pub fn open(dir: impl AsRef<Path>) -> Result<Database, Error> {
        let mut cfg = EngineConfig::default();
        cfg.persistence = Some(dir.as_ref().to_path_buf());
        Database::open_with(cfg)
    }

    /// Opens a database as configured: durable when
    /// [`EngineConfig::persistence`] is set (which defaults from the
    /// `CYPHER_DATA_DIR` environment variable), in-memory otherwise.
    pub fn open_with(cfg: EngineConfig) -> Result<Database, Error> {
        let (graph, store, recovery, initial_version) = match &cfg.persistence {
            Some(dir) => {
                let (store, graph) = Store::open(dir)?;
                let recovery = store.report().clone();
                let v = store.batches_committed();
                (graph, Some(store), recovery, v)
            }
            None => (PropertyGraph::new(), None, RecoveryReport::default(), 0),
        };
        let metrics = StoreMetrics::of(&store);
        Ok(Database {
            inner: Arc::new(DbInner {
                versioned: VersionedGraph::new(graph, initial_version),
                cfg,
                recovery,
                writer: Mutex::new(WriterState {
                    store,
                    buffer: SharedChangeBuffer::new(),
                    poisoned_msg: None,
                }),
                metrics,
                cache: Mutex::new(PlanCache::default()),
                stats_fp: Mutex::new(Vec::new()),
            }),
        })
    }

    /// An in-memory database (no files, no WAL); mostly for tests and as
    /// the oracle half of differential harnesses.
    pub fn in_memory() -> Database {
        let mut cfg = EngineConfig::default();
        cfg.persistence = None;
        Database::open_with(cfg).expect("in-memory open cannot fail")
    }

    /// Opens a new session: an independent, cheap handle onto this
    /// database. Sessions on one database share the graph, the durable
    /// store and the plan cache; each may pin its own read snapshot, and
    /// any number of them may run queries concurrently (send them to
    /// other threads freely).
    pub fn session(&self) -> Session {
        Session {
            inner: Arc::clone(&self.inner),
            pinned: None,
        }
    }

    /// Executes one query (reads and updates) in auto-commit mode.
    ///
    /// Reads run lock-free against the latest published version. An
    /// updating query runs as one write transaction: its change records
    /// are sealed in the WAL as one atomic batch, then the new version
    /// is published to readers (the snapshot-compaction trigger runs
    /// afterwards).
    ///
    /// Repeated query texts skip parsing and `MATCH` planning entirely via
    /// the shared LRU plan cache (capacity [`EngineConfig::plan_cache_size`];
    /// `0` disables). Plans are memoized per statistics fingerprint —
    /// when the index statistics drift far enough to change plan choice
    /// (log₂-bucketed; see `cypher_engine::stats_fingerprint`), the entry
    /// replans while keeping the parse. Parameters are *not* part of the
    /// cache key: plans embed parameter *expressions*, evaluated freshly
    /// on every execution.
    pub fn query(&mut self, query: &str, params: &Params) -> Result<Table, Error> {
        let view = self.inner.versioned.latest();
        self.inner.query_at(&view, false, query, params)
    }

    /// Evaluates a read query with the reference evaluator (the paper's
    /// denotational semantics) against the latest version.
    pub fn query_reference(&self, query: &str, params: &Params) -> Result<Table, Error> {
        let view = self.inner.versioned.latest();
        run_reference_with(view.graph(), query, params, self.inner.cfg.match_config)
    }

    /// Forces a snapshot + WAL truncation now. No-op for in-memory
    /// databases.
    pub fn checkpoint(&mut self) -> Result<(), Error> {
        let mut w = self.inner.lock_writer();
        // Under the writer lock no commit is in flight, so the latest
        // published version is exactly the state of every sealed batch.
        let view = self.inner.versioned.latest();
        if let Some(store) = &mut w.store {
            let ck = store.checkpoint(view.graph());
            self.inner.metrics.refresh(store);
            ck?;
        }
        Ok(())
    }

    /// Syncs the WAL to stable storage and consumes the database handle.
    /// Every committed batch is handed to the OS at commit time (durable
    /// against process crashes); `close` forces the fsync that makes the
    /// tail durable against OS crashes and power loss too.
    ///
    /// Sessions outlive the handle but the *write path does not*: after
    /// `close`, updating queries on any surviving session fail loudly —
    /// silently accepting a commit that will never be fsynced would
    /// break the durability promise `close` just made. Reads (which
    /// only touch published in-memory versions) keep working.
    pub fn close(self) -> Result<(), Error> {
        let mut w = self.inner.lock_writer();
        if let Some(store) = &mut w.store {
            store.sync()?;
        }
        // Drop the store now (not when the last Session drops): this
        // releases the data directory's single-writer lock, so the
        // directory can be reopened even while sessions linger.
        w.store = None;
        w.poisoned_msg =
            Some("database has been closed: open it again to resume writing".to_string());
        Ok(())
    }

    /// The latest published version of the graph, as a frozen snapshot
    /// handle (derefs to [`PropertyGraph`], so the whole read API is
    /// available on it).
    pub fn graph(&self) -> GraphView {
        self.inner.versioned.latest()
    }

    /// The version id of the latest committed transaction (0 for a fresh
    /// in-memory database; the recovered batch count after `open`).
    pub fn version(&self) -> u64 {
        self.inner.versioned.latest_version()
    }

    /// What recovery found when this database was opened (all zeros for
    /// in-memory databases).
    pub fn recovery(&self) -> &RecoveryReport {
        &self.inner.recovery
    }

    /// Number of WAL batches committed over the store's lifetime; `None`
    /// for in-memory databases. The recovery differential uses this to
    /// map kill points back to statement prefixes. Lock-free (reads a
    /// mirror refreshed at each commit), so monitoring never stalls
    /// behind an in-flight write transaction.
    pub fn batches_committed(&self) -> Option<u64> {
        self.inner.metrics.read(&self.inner.metrics.batches)
    }

    /// WAL size in bytes as of the last commit/checkpoint; `None` for
    /// in-memory databases. Lock-free mirror, like
    /// [`Database::batches_committed`].
    pub fn wal_bytes(&self) -> Option<u64> {
        self.inner.metrics.read(&self.inner.metrics.wal_bytes)
    }

    /// Snapshot generation as of the last commit/checkpoint; `None` for
    /// in-memory databases. Lock-free mirror, like
    /// [`Database::batches_committed`].
    pub fn generation(&self) -> Option<u64> {
        self.inner.metrics.read(&self.inner.metrics.generation)
    }

    /// The engine configuration this database executes with.
    pub fn config(&self) -> &EngineConfig {
        &self.inner.cfg
    }

    /// Hit/miss/invalidation/eviction counters of the parse+plan cache
    /// (shared across all sessions).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.inner
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .stats
    }

    /// Number of query texts currently cached.
    pub fn plan_cache_len(&self) -> usize {
        self.inner
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .len()
    }

    /// Renders the physical plans (and projection pushdowns) this
    /// database's configuration produces for `query` against the latest
    /// version's statistics — the `EXPLAIN` witness the plan-cache tests
    /// compare before and after invalidation.
    pub fn explain(&self, query: &str) -> Result<String, Error> {
        let q = crate::parse_query(query)?;
        let view = self.inner.versioned.latest();
        Ok(cypher_engine::explain(&view, &q, &self.inner.cfg))
    }
}

/// One client's handle onto a shared [`Database`]: the unit of
/// concurrency and of read-transaction scope.
///
/// * `query()` outside a read transaction auto-commits: reads execute
///   against the latest version, updates run as their own atomic write
///   transaction.
/// * [`Session::begin_read`] … [`Session::commit`] brackets a **read
///   transaction**: every query in between executes against the one
///   version pinned at `begin_read`, unaffected by concurrent commits
///   (snapshot isolation — repeatable reads, no torn batches). Updating
///   queries are refused while pinned.
///
/// Sessions are `Send`: create one per thread and query away. All
/// sessions share the plan cache, so a hot query planned by one session
/// is a cache hit for every other session at the same statistics
/// fingerprint.
pub struct Session {
    inner: Arc<DbInner>,
    pinned: Option<GraphView>,
}

impl Session {
    /// Starts (or restarts) a read transaction: pins the latest
    /// published version and returns its id. Until [`Session::commit`],
    /// every query of this session executes against this frozen
    /// snapshot.
    pub fn begin_read(&mut self) -> u64 {
        let view = self.inner.versioned.latest();
        let v = view.version();
        self.pinned = Some(view);
        v
    }

    /// Ends the read transaction, releasing the pinned snapshot (and
    /// with it, eventually, the memory of that version). No-op when no
    /// transaction is open. The name mirrors the transactional bracket;
    /// read transactions have nothing to make durable.
    pub fn commit(&mut self) {
        self.pinned = None;
    }

    /// The version this session is pinned at, if a read transaction is
    /// open.
    pub fn version(&self) -> Option<u64> {
        self.pinned.as_ref().map(|v| v.version())
    }

    /// The snapshot this session's next read query will execute against:
    /// the pinned version inside a read transaction, the latest version
    /// otherwise.
    pub fn snapshot(&self) -> GraphView {
        match &self.pinned {
            Some(v) => v.clone(),
            None => self.inner.versioned.latest(),
        }
    }

    /// Executes one query in this session. Inside a read transaction,
    /// reads see the pinned snapshot and updates are refused; outside,
    /// behaves exactly like [`Database::query`].
    pub fn query(&mut self, query: &str, params: &Params) -> Result<Table, Error> {
        let (view, pinned) = match &self.pinned {
            Some(v) => (v.clone(), true),
            None => (self.inner.versioned.latest(), false),
        };
        self.inner.query_at(&view, pinned, query, params)
    }

    /// Evaluates a read query with the reference evaluator against this
    /// session's snapshot (pinned or latest).
    pub fn query_reference(&self, query: &str, params: &Params) -> Result<Table, Error> {
        let view = self.snapshot();
        run_reference_with(view.graph(), query, params, self.inner.cfg.match_config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_graph::Value;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("cypher-db-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn durable_roundtrip_across_open() {
        let dir = tmpdir("roundtrip");
        let params = Params::new();
        {
            let mut db = Database::open(&dir).unwrap();
            db.query(
                "CREATE (:P {name: 'Ada'})-[:KNOWS {since: 1985}]->(:P {name: 'Bo'})",
                &params,
            )
            .unwrap();
            db.query("MATCH (n:P {name: 'Bo'}) SET n.age = 3", &params)
                .unwrap();
            assert_eq!(db.batches_committed(), Some(2));
            assert_eq!(db.version(), 2, "version = sealed batches");
            db.close().unwrap();
        }
        let mut db = Database::open(&dir).unwrap();
        assert_eq!(db.recovery().batches_replayed, 2);
        assert_eq!(db.version(), 2, "versions continue across reopen");
        let out = db
            .query(
                "MATCH (a:P)-[r:KNOWS]->(b) RETURN a.name, r.since, b.age",
                &params,
            )
            .unwrap();
        assert_eq!(out.cell(0, "a.name"), Some(&Value::str("Ada")));
        assert_eq!(out.cell(0, "r.since"), Some(&Value::int(1985)));
        assert_eq!(out.cell(0, "b.age"), Some(&Value::int(3)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_trigger_snapshots_and_truncates() {
        let dir = tmpdir("compact");
        let params = Params::new();
        let mut cfg = EngineConfig::default();
        cfg.persistence = Some(dir.clone());
        cfg.wal_compact_bytes = 512; // tiny: trigger quickly
        let mut db = Database::open_with(cfg.clone()).unwrap();
        for i in 0..50 {
            db.query(&format!("CREATE (:N {{i: {i}}})"), &params)
                .unwrap();
        }
        assert!(db.generation().unwrap() > 0, "compaction never triggered");
        assert!(db.wal_bytes().unwrap() <= 512 + 200, "wal was truncated");
        let dump = db.graph().canonical_dump();
        db.close().unwrap();
        let db2 = Database::open_with(cfg).unwrap();
        assert_eq!(db2.graph().canonical_dump(), dump);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_query_keeps_memory_and_disk_aligned() {
        let dir = tmpdir("failed");
        let params = Params::new();
        {
            let mut db = Database::open(&dir).unwrap();
            db.query("CREATE (:A {v: 1}), (:A {v: 2})", &params)
                .unwrap();
            // DELETE without DETACH on a connected node errors after the
            // CREATE clause already ran.
            db.query("CREATE (a:B)-[:X]->(b:B) WITH a DELETE a", &params)
                .unwrap_err();
            let dump = db.graph().canonical_dump();
            db.close().unwrap();
            let db2 = Database::open(&dir).unwrap();
            assert_eq!(
                db2.graph().canonical_dump(),
                dump,
                "partial mutations of a failed query must be durable too"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_memory_database_has_no_files() {
        let params = Params::new();
        let mut db = Database::in_memory();
        db.query("CREATE (:N)", &params).unwrap();
        assert_eq!(db.batches_committed(), None);
        assert_eq!(db.wal_bytes(), None);
        assert!(!db.graph().has_change_sink());
        assert_eq!(db.version(), 1);
    }

    #[test]
    fn session_read_txn_pins_a_snapshot() {
        let params = Params::new();
        let db = Database::in_memory();
        let mut writer = db.session();
        let mut reader = db.session();
        writer.query("CREATE (:N {v: 1})", &params).unwrap();
        let pinned_at = reader.begin_read();
        assert_eq!(pinned_at, 1);
        writer.query("CREATE (:N {v: 2})", &params).unwrap();
        writer
            .query("MATCH (n:N {v: 1}) SET n.v = 99", &params)
            .unwrap();
        // Repeatable reads at the pinned version.
        let count = |s: &mut Session| {
            let t = s
                .query("MATCH (n:N) RETURN count(*) AS c", &params)
                .unwrap();
            t.cell(0, "c").cloned().unwrap()
        };
        assert_eq!(count(&mut reader), Value::int(1));
        assert_eq!(
            reader
                .query("MATCH (n:N) RETURN n.v AS v", &params)
                .unwrap()
                .cell(0, "v"),
            Some(&Value::int(1)),
            "pinned snapshot predates the SET"
        );
        // Updates are refused inside the read transaction.
        let e = reader.query("CREATE (:Oops)", &params).unwrap_err();
        assert!(
            e.to_string().contains("read transaction"),
            "unexpected error: {e}"
        );
        // Release: the same session now sees the latest version.
        reader.commit();
        assert_eq!(count(&mut reader), Value::int(2));
        assert_eq!(db.version(), 3);
    }

    #[test]
    fn close_poisons_writes_on_surviving_sessions_but_reads_continue() {
        let dir = tmpdir("close-poison");
        let params = Params::new();
        let db = Database::open(&dir).unwrap();
        let mut survivor = db.session();
        survivor.query("CREATE (:N {v: 1})", &params).unwrap();
        db.close().unwrap();
        // A write after close would seal a batch no one ever fsyncs —
        // it must fail loudly, not succeed silently.
        let e = survivor.query("CREATE (:N {v: 2})", &params).unwrap_err();
        assert!(e.to_string().contains("closed"), "unexpected error: {e}");
        // Reads only touch published in-memory versions: still fine.
        let t = survivor
            .query("MATCH (n:N) RETURN count(*) AS c", &params)
            .unwrap();
        assert_eq!(t.cell(0, "c"), Some(&Value::int(1)));
        // close released the directory lock even though a session
        // lingers: the directory reopens immediately.
        let db2 = Database::open(&dir).unwrap();
        assert_eq!(db2.version(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explain_stamps_the_snapshot_version() {
        let params = Params::new();
        let mut db = Database::in_memory();
        db.query("CREATE (:P {v: 1})", &params).unwrap();
        let plan = db.explain("MATCH (n:P) RETURN n").unwrap();
        assert!(
            plan.starts_with("snapshot version 1\n"),
            "explain must witness the version its statistics came from:\n{plan}"
        );
    }

    #[test]
    fn sessions_share_one_graph_and_one_plan_cache() {
        let params = Params::new();
        let mut cfg = EngineConfig::default();
        cfg.persistence = None;
        cfg.plan_cache_size = 16;
        let db = Database::open_with(cfg).unwrap();
        let mut a = db.session();
        let mut b = db.session();
        a.query("CREATE (:P {v: 1}), (:P {v: 2})", &params).unwrap();
        let q = "MATCH (n:P) RETURN n.v AS v ORDER BY v";
        let ra = a.query(q, &params).unwrap();
        let rb = b.query(q, &params).unwrap();
        assert!(ra.ordered_eq(&rb));
        let s = db.plan_cache_stats();
        assert!(
            s.hits >= 1,
            "second session must hit the shared cache: {s:?}"
        );
    }
}
