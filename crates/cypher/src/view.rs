//! Incremental view maintenance: delta-maintained standing queries.
//!
//! A **view** is a read-only query registered once with
//! [`crate::Database::create_view`] and kept materialized across commits.
//! On every published commit group the registry folds the group's change
//! records into each view's persistent state as **deltas** — retractions
//! enumerated against the pre-group graph, insertions against the
//! post-group graph — and publishes the refreshed output table
//! *atomically with the data version*: a reader that sees version `v`
//! of the graph sees exactly the view contents of version `v`.
//!
//! ## Maintenance modes
//!
//! [`ViewEntry`] classifies each view once, at creation:
//!
//! * **Grouped-aggregate fold** — the match half compiles to a
//!   [`DeltaPlan`] (single rigid path, no graph-rescanning expressions)
//!   and the projection aggregates or deduplicates through retractable
//!   aggregators only ([`cypher_core::aggregate::AggKind::is_retractable`]),
//!   with bare aggregate items, no `SKIP`/`LIMIT`, and `ORDER BY`
//!   restricted to projected columns. The persistent state is a
//!   [`GroupedAggState`]; a refresh retracts the old rows, feeds the new
//!   ones, and snapshots the live groups — O(changed rows + live groups)
//!   per commit, independent of the base table size.
//! * **Counted-bag projection** — same match half, but a plain
//!   (non-aggregating, non-`DISTINCT`) projection. The state is a
//!   refcounted bag of projected rows (plus their precomputed `ORDER BY`
//!   keys); a refresh adjusts counts — O(changed rows) — and re-sorts at
//!   publication.
//! * **Full recomputation** — everything else. The view stays correct
//!   (the query is re-run against each published version) but pays full
//!   evaluation per commit; `cypher_view_full_recomputes_total` counts
//!   these so operators can see which standing queries missed the fast
//!   path.
//!
//! A delta fold that cannot find a row it must retract (which would mean
//! the maintained state diverged) falls back to a one-off full
//! recomputation instead of publishing a corrupt table — correctness
//! never depends on the incremental path being right, only speed does.
//!
//! Output tables are compared and diffed as **bags**: among rows with
//! equal `ORDER BY` keys (or in unordered views), the maintained row
//! order may differ from a cold re-evaluation's.
//!
//! ## Subscriptions
//!
//! [`ViewSubscription`] delivers one [`ViewChange`] per published commit
//! group that changed the view's contents: the bag difference (added and
//! removed rows) between the previous and the new published table,
//! stamped with the version. Replaying the changes on top of the initial
//! table reproduces every published state in order.

use crate::database::DatabaseMetrics;
use crate::{Error, Record, Schema, Table};
use cypher_ast::expr::Expr;
use cypher_ast::query::{Query, SortItem};
use cypher_core::clauses::apply_order_by_scoped;
use cypher_core::error::EvalError;
use cypher_core::project::{GroupedAggState, ProjectionPlan};
use cypher_core::{Bindings, EvalContext, Params, VarLookup};
use cypher_engine::{DeltaPlan, EngineConfig};
use cypher_graph::{affected_nodes, Change, GraphView, PropertyGraph, Value};
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Published tables retained per view: a pinned reader whose snapshot is
/// at most this many versions behind the head reads its exact table from
/// the ring; older pins fall back to cold evaluation.
const PUBLISHED_RING: usize = 64;

/// One delta of a view's contents, pushed to subscribers when a commit
/// group publishes: the bag difference between the previous published
/// table and the one at `version`.
#[derive(Debug, Clone)]
pub struct ViewChange {
    /// The view's name.
    pub name: String,
    /// The published version this delta produces.
    pub version: u64,
    /// Rows present at `version` but not before (with multiplicity).
    pub added: Table,
    /// Rows present before but not at `version` (with multiplicity).
    pub removed: Table,
}

/// A live subscription to one view's change stream (see
/// [`crate::Database::subscribe`]). Dropping it unsubscribes lazily: the
/// registry prunes the channel at its next send.
pub struct ViewSubscription {
    rx: Receiver<ViewChange>,
}

impl ViewSubscription {
    /// Blocks up to `timeout` for the next change frame. `None` on
    /// timeout or when the view was dropped.
    pub fn next_timeout(&self, timeout: Duration) -> Option<ViewChange> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Non-blocking poll; `None` when no frame is pending.
    pub fn try_next(&self) -> Option<ViewChange> {
        match self.rx.try_recv() {
            Ok(c) => Some(c),
            Err(TryRecvError::Empty | TryRecvError::Disconnected) => None,
        }
    }

    /// Blocks up to `timeout`, distinguishing "nothing yet" from "the
    /// stream is over" — what a push loop needs to know when to stop.
    pub fn poll(&self, timeout: Duration) -> SubscriptionPoll {
        match self.rx.recv_timeout(timeout) {
            Ok(c) => SubscriptionPoll::Frame(c),
            Err(RecvTimeoutError::Timeout) => SubscriptionPoll::Idle,
            Err(RecvTimeoutError::Disconnected) => SubscriptionPoll::Closed,
        }
    }
}

/// Outcome of one [`ViewSubscription::poll`] round.
#[derive(Debug)]
pub enum SubscriptionPoll {
    /// A committed version changed the view's rows.
    Frame(ViewChange),
    /// Nothing arrived within the timeout; the subscription is live.
    Idle,
    /// The view was dropped (or its database closed): no further frames
    /// will ever arrive.
    Closed,
}

/// How a view's output is kept current across commits.
enum Maint {
    /// Persistent [`GroupedAggState`]: aggregation and/or `DISTINCT`
    /// folded with exact retraction support.
    Agg {
        delta: DeltaPlan,
        proj: ProjectionPlan,
        order: Vec<SortItem>,
        state: GroupedAggState,
    },
    /// Refcounted bag of projected rows for plain projections.
    Rows {
        delta: DeltaPlan,
        proj: ProjectionPlan,
        order: Vec<SortItem>,
        bag: CountedBag,
    },
    /// Re-run the whole query against each published version.
    Full,
}

impl Maint {
    fn mode_name(&self) -> &'static str {
        match self {
            Maint::Agg { .. } => "grouped-aggregate fold",
            Maint::Rows { .. } => "counted-bag projection",
            Maint::Full => "full recomputation",
        }
    }
}

/// One refcounted row of a counted-bag view: the precomputed sort keys,
/// the projected output row, and how many copies are live. Entries
/// retracted to zero become tombstones (bucket indices stay stable);
/// re-inserted rows take a fresh slot.
struct BagEntry {
    keys: Vec<Value>,
    row: Record,
    count: u64,
}

/// A hash-bucketed bag of `(sort keys, projected row)` pairs with
/// multiplicities — the persistent state of a `Rows` view.
#[derive(Default)]
struct CountedBag {
    entries: Vec<BagEntry>,
    buckets: HashMap<u64, Vec<usize>>,
}

impl CountedBag {
    fn hash_of(keys: &[Value], row: &Record) -> u64 {
        use std::hash::Hasher;
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for k in keys {
            k.hash_equivalent(&mut h);
        }
        for v in row.values() {
            v.hash_equivalent(&mut h);
        }
        h.finish()
    }

    fn find_live(&self, h: u64, keys: &[Value], row: &Record) -> Option<usize> {
        self.buckets.get(&h)?.iter().copied().find(|&i| {
            let e = &self.entries[i];
            e.count > 0
                && e.keys.len() == keys.len()
                && e.keys.iter().zip(keys).all(|(a, b)| a.equivalent(b))
                && e.row.equivalent(row)
        })
    }

    fn insert(&mut self, keys: Vec<Value>, row: Record) {
        let h = Self::hash_of(&keys, &row);
        if let Some(i) = self.find_live(h, &keys, &row) {
            self.entries[i].count += 1;
            return;
        }
        self.entries.push(BagEntry {
            keys,
            row,
            count: 1,
        });
        self.buckets
            .entry(h)
            .or_default()
            .push(self.entries.len() - 1);
    }

    /// Removes one copy; `false` when no live entry matches (the caller
    /// falls back to full recomputation).
    fn remove(&mut self, keys: &[Value], row: &Record) -> bool {
        let h = Self::hash_of(keys, row);
        match self.find_live(h, keys, row) {
            Some(i) => {
                self.entries[i].count -= 1;
                true
            }
            None => false,
        }
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.buckets.clear();
    }

    /// Expands the live entries into an output table, sorted by the
    /// precomputed keys per `order` (entry order among equal keys).
    fn snapshot(&self, schema: Arc<Schema>, order: &[SortItem]) -> Table {
        let mut live: Vec<&BagEntry> = self.entries.iter().filter(|e| e.count > 0).collect();
        if !order.is_empty() {
            live.sort_by(|a, b| {
                for (i, key) in order.iter().enumerate() {
                    let ord = a.keys[i].cmp_order(&b.keys[i]);
                    let ord = if key.ascending { ord } else { ord.reverse() };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        let mut out = Table::empty(schema);
        for e in live {
            for _ in 0..e.count {
                out.push(e.row.clone());
            }
        }
        out
    }
}

/// Two-layer `ORDER BY` scope for fold-time key computation: projected
/// columns shadow the pre-projection match row (the same precedence
/// [`apply_order_by_scoped`] gives a cold evaluation).
struct FoldSortScope<'a> {
    projected: Bindings<'a>,
    source: Bindings<'a>,
}

impl VarLookup for FoldSortScope<'_> {
    fn lookup(&self, name: &str) -> Option<Value> {
        self.projected
            .lookup(name)
            .or_else(|| self.source.lookup(name))
    }
}

/// True when `e` is a plain variable reference to one of `schema`'s
/// columns — the conservative shape under which an aggregate view's
/// `ORDER BY` is guaranteed to be computable from the finalized output
/// alone (no group representative row needed).
fn is_output_column_ref(e: &Expr, schema: &Schema) -> bool {
    matches!(e, Expr::Var(name) if schema.contains(name))
}

/// One registered standing query.
struct ViewEntry {
    name: String,
    query_text: String,
    query: Arc<Query>,
    maint: Maint,
    /// `(version, output)` ring of recent publications, newest last.
    published: VecDeque<(u64, Arc<Table>)>,
    subs: Vec<Sender<ViewChange>>,
    /// Set when a refresh failed even after the full-recompute fallback;
    /// reads surface it instead of a stale table.
    broken: Option<String>,
}

impl ViewEntry {
    /// Classifies `query` and materializes the initial state and table
    /// against `at`.
    fn create(
        name: &str,
        text: &str,
        query: Arc<Query>,
        at: &GraphView,
        cfg: &EngineConfig,
    ) -> Result<ViewEntry, Error> {
        let mut maint = Self::classify(&query, cfg);
        let params = Params::new();
        let initial = match &mut maint {
            Maint::Full => cold_eval(at, &query, cfg)?,
            Maint::Agg {
                delta,
                proj,
                order,
                state,
            } => {
                let ctx = EvalContext::new(at.graph(), &params).with_config(cfg.match_config);
                for row in delta.all_rows(&ctx)? {
                    state.feed(&ctx, proj, delta.schema(), &row)?;
                }
                finalize_agg(state, &ctx, proj, delta.schema(), order)?
            }
            Maint::Rows {
                delta,
                proj,
                order,
                bag,
            } => {
                let ctx = EvalContext::new(at.graph(), &params).with_config(cfg.match_config);
                for row in delta.all_rows(&ctx)? {
                    let (keys, out) = project_with_keys(&ctx, proj, delta, order, &row)?;
                    bag.insert(keys, out);
                }
                bag.snapshot(proj.out_schema().clone(), order)
            }
        };
        let mut published = VecDeque::with_capacity(PUBLISHED_RING);
        published.push_back((at.version(), Arc::new(initial)));
        Ok(ViewEntry {
            name: name.to_string(),
            query_text: text.to_string(),
            query,
            maint,
            published,
            subs: Vec::new(),
            broken: None,
        })
    }

    /// Picks the maintenance mode for `query`; never errors — anything
    /// outside the delta-foldable fragment is a correct (if slower)
    /// `Full` view, and genuinely invalid queries fail at the initial
    /// materialization instead.
    fn classify(query: &Query, _cfg: &EngineConfig) -> Maint {
        let Some(delta) = DeltaPlan::compile(query) else {
            return Maint::Full;
        };
        let Query::Single(sq) = query else {
            return Maint::Full;
        };
        let Some(ret) = &sq.ret else {
            return Maint::Full;
        };
        let Ok(proj) = ProjectionPlan::compile(ret, delta.visible_schema()) else {
            return Maint::Full;
        };
        // SKIP/LIMIT slice an ordered sequence: under churn the slice
        // boundary depends on tie order among equal keys, which a
        // maintained bag does not preserve — always recompute.
        if ret.skip.is_some() || ret.limit.is_some() {
            return Maint::Full;
        }
        let aggregating = proj.is_aggregating() || ret.distinct;
        if aggregating {
            // DISTINCT *after* aggregation is a second dedup layer the
            // single grouped state cannot express.
            if proj.is_aggregating() && ret.distinct {
                return Maint::Full;
            }
            if !proj.all_aggs_retractable() || !proj.aggregated_items_are_bare() {
                return Maint::Full;
            }
            // Group representative rows are not retained (a retraction
            // may concern entities deleted from the graph), so sort keys
            // must be answerable from the output columns alone.
            if !ret
                .order_by
                .iter()
                .all(|s| is_output_column_ref(&s.expr, proj.out_schema()))
            {
                return Maint::Full;
            }
            Maint::Agg {
                delta,
                proj,
                order: ret.order_by.clone(),
                state: GroupedAggState::new(false),
            }
        } else {
            Maint::Rows {
                delta,
                proj,
                order: ret.order_by.clone(),
                bag: CountedBag::default(),
            }
        }
    }

    /// The published table for a reader pinned at `version`: the newest
    /// publication at or below it. `None` when the pin predates the
    /// retained ring (the caller re-evaluates cold).
    fn published_at(&self, version: u64) -> Option<Arc<Table>> {
        self.published
            .iter()
            .rev()
            .find(|(v, _)| *v <= version)
            .map(|(_, t)| Arc::clone(t))
    }

    fn push_published(&mut self, version: u64, table: Arc<Table>) {
        if self.published.len() >= PUBLISHED_RING {
            self.published.pop_front();
        }
        self.published.push_back((version, table));
    }

    /// Folds one commit group's delta into the state and returns the new
    /// output table. `Err` means even the full-recompute fallback failed.
    fn refresh(
        &mut self,
        old: &GraphView,
        new_graph: &Arc<PropertyGraph>,
        changes: &[&[Change]],
        cfg: &EngineConfig,
        metrics: &DatabaseMetrics,
    ) -> Result<Table, Error> {
        let params = Params::new();
        match &mut self.maint {
            Maint::Full => {
                if metrics.enabled() {
                    metrics.view_full_recomputes.inc();
                }
                cold_eval_graph(new_graph, &self.query, cfg)
            }
            Maint::Agg {
                delta,
                proj,
                order,
                state,
            } => {
                let mut affected = Vec::new();
                for batch in changes {
                    affected.extend(affected_nodes(batch, old.graph()));
                }
                affected.sort_unstable();
                affected.dedup();
                let ctx_old = EvalContext::new(old.graph(), &params).with_config(cfg.match_config);
                let ctx_new = EvalContext::new(new_graph, &params).with_config(cfg.match_config);
                let retractions = delta.affected_rows(&ctx_old, &affected)?;
                let insertions = delta.affected_rows(&ctx_new, &affected)?;
                if metrics.enabled() {
                    metrics
                        .view_delta_rows
                        .add((retractions.len() + insertions.len()) as u64);
                }
                let mut diverged = false;
                for row in &retractions {
                    if !state.retract(&ctx_old, proj, delta.schema(), row)? {
                        diverged = true;
                        break;
                    }
                }
                if diverged {
                    // The state disagrees with the old graph: rebuild it
                    // from scratch rather than publish a corrupt table.
                    if metrics.enabled() {
                        metrics.view_full_recomputes.inc();
                    }
                    *state = GroupedAggState::new(false);
                    for row in delta.all_rows(&ctx_new)? {
                        state.feed(&ctx_new, proj, delta.schema(), &row)?;
                    }
                } else {
                    for row in &insertions {
                        state.feed(&ctx_new, proj, delta.schema(), row)?;
                    }
                }
                Ok(finalize_agg(state, &ctx_new, proj, delta.schema(), order)?)
            }
            Maint::Rows {
                delta,
                proj,
                order,
                bag,
            } => {
                let mut affected = Vec::new();
                for batch in changes {
                    affected.extend(affected_nodes(batch, old.graph()));
                }
                affected.sort_unstable();
                affected.dedup();
                let ctx_old = EvalContext::new(old.graph(), &params).with_config(cfg.match_config);
                let ctx_new = EvalContext::new(new_graph, &params).with_config(cfg.match_config);
                let retractions = delta.affected_rows(&ctx_old, &affected)?;
                let insertions = delta.affected_rows(&ctx_new, &affected)?;
                if metrics.enabled() {
                    metrics
                        .view_delta_rows
                        .add((retractions.len() + insertions.len()) as u64);
                }
                let mut diverged = false;
                for row in &retractions {
                    let (keys, out) = project_with_keys(&ctx_old, proj, delta, order, row)?;
                    if !bag.remove(&keys, &out) {
                        diverged = true;
                        break;
                    }
                }
                if diverged {
                    if metrics.enabled() {
                        metrics.view_full_recomputes.inc();
                    }
                    bag.clear();
                    for row in delta.all_rows(&ctx_new)? {
                        let (keys, out) = project_with_keys(&ctx_new, proj, delta, order, &row)?;
                        bag.insert(keys, out);
                    }
                } else {
                    for row in &insertions {
                        let (keys, out) = project_with_keys(&ctx_new, proj, delta, order, row)?;
                        bag.insert(keys, out);
                    }
                }
                Ok(bag.snapshot(proj.out_schema().clone(), order))
            }
        }
    }

    /// The `EXPLAIN VIEW` rendering: mode, pattern, anchors, fold shape.
    fn explain(&self) -> String {
        let mut s = format!("view {}: {}\n", self.name, self.maint.mode_name());
        s.push_str(&format!("  query: {}\n", self.query_text.trim()));
        match &self.maint {
            Maint::Full => {
                s.push_str("  every commit re-evaluates the query against the new version\n");
            }
            Maint::Agg {
                delta, proj, order, ..
            } => {
                s.push_str(&format!("  pattern: {}\n", delta.pattern()));
                s.push_str(&format!(
                    "  delta pass: {} anchor position(s), retract(old) + feed(new)\n",
                    delta.anchor_count()
                ));
                s.push_str(&format!(
                    "  fold: {} group key(s), aggregates [{}]\n",
                    proj.key_names().len(),
                    proj.agg_display().join(", ")
                ));
                if !order.is_empty() {
                    s.push_str(&format!("  order: {} projected key(s)\n", order.len()));
                }
            }
            Maint::Rows { delta, order, .. } => {
                s.push_str(&format!("  pattern: {}\n", delta.pattern()));
                s.push_str(&format!(
                    "  delta pass: {} anchor position(s), counted-bag add/remove\n",
                    delta.anchor_count()
                ));
                if !order.is_empty() {
                    s.push_str(&format!(
                        "  order: {} key(s), precomputed at fold time\n",
                        order.len()
                    ));
                }
            }
        }
        let head = self.published.back();
        if let Some((v, t)) = head {
            s.push_str(&format!("  published: version {v}, {} row(s)\n", t.len()));
        }
        s
    }
}

/// Finalizes an aggregate view's state into its output table, applying
/// the (projected-columns-only) `ORDER BY`.
fn finalize_agg(
    state: &GroupedAggState,
    ctx: &EvalContext<'_>,
    proj: &ProjectionPlan,
    src_schema: &Schema,
    order: &[SortItem],
) -> Result<Table, EvalError> {
    let out = state.finalize_snapshot(ctx, proj, src_schema)?;
    if order.is_empty() {
        return Ok(out);
    }
    apply_order_by_scoped(ctx, order, out, None)
}

/// Projects one match row and computes its `ORDER BY` keys under the
/// two-layer scope (projected columns shadow the match row).
fn project_with_keys(
    ctx: &EvalContext<'_>,
    proj: &ProjectionPlan,
    delta: &DeltaPlan,
    order: &[SortItem],
    row: &Record,
) -> Result<(Vec<Value>, Record), EvalError> {
    let out = proj.project_row(ctx, delta.schema(), row)?;
    let mut keys = Vec::with_capacity(order.len());
    if !order.is_empty() {
        let scope = FoldSortScope {
            projected: Bindings::new(proj.out_schema(), &out),
            source: Bindings::new(delta.schema(), row),
        };
        for k in order {
            keys.push(cypher_core::eval_expr(ctx, &scope, &k.expr)?);
        }
    }
    Ok((keys, out))
}

/// Cold evaluation of a view query at a published version.
fn cold_eval(at: &GraphView, q: &Query, cfg: &EngineConfig) -> Result<Table, Error> {
    Ok(cypher_engine::execute_read_cached(
        at,
        q,
        &Params::new(),
        cfg,
        None,
    )?)
}

/// Cold evaluation against a not-yet-published candidate graph.
fn cold_eval_graph(g: &Arc<PropertyGraph>, q: &Query, cfg: &EngineConfig) -> Result<Table, Error> {
    Ok(cypher_engine::execute_read_cached(
        g.as_ref(),
        q,
        &Params::new(),
        cfg,
        None,
    )?)
}

/// The bag difference `new − old` / `old − new`, for subscriber frames.
fn bag_diff(old: &Table, new: &Table) -> (Table, Table) {
    use std::hash::Hasher;
    let hash_row = |r: &Record| {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for v in r.values() {
            v.hash_equivalent(&mut h);
        }
        h.finish()
    };
    // Collision-safe counted index over the old rows.
    let mut counts: HashMap<u64, Vec<(&Record, i64)>> = HashMap::new();
    for r in old.rows() {
        let h = hash_row(r);
        let bucket = counts.entry(h).or_default();
        match bucket.iter_mut().find(|(e, _)| e.equivalent(r)) {
            Some((_, n)) => *n += 1,
            None => bucket.push((r, 1)),
        }
    }
    let mut added = Table::empty(new.schema().clone());
    for r in new.rows() {
        let h = hash_row(r);
        let surplus = counts
            .get_mut(&h)
            .and_then(|b| b.iter_mut().find(|(e, _)| e.equivalent(r)))
            .filter(|(_, n)| *n > 0);
        match surplus {
            Some((_, n)) => *n -= 1,
            None => added.push(r.clone()),
        }
    }
    let mut removed = Table::empty(old.schema().clone());
    for bucket in counts.values() {
        for (r, n) in bucket {
            for _ in 0..*n {
                removed.push((*r).clone());
            }
        }
    }
    (added, removed)
}

/// The standing-query registry of one database: lives in the commit
/// pipeline's shared state and is refreshed by whichever thread publishes
/// a commit group, *before* the data version becomes visible — so view
/// contents and graph version move atomically.
pub(crate) struct ViewRegistry {
    cfg: EngineConfig,
    entries: Vec<ViewEntry>,
}

impl ViewRegistry {
    pub(crate) fn new(cfg: EngineConfig) -> ViewRegistry {
        ViewRegistry {
            cfg,
            entries: Vec::new(),
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn entry(&self, name: &str) -> Option<&ViewEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Registers and materializes a view at `at`. Errors when the name is
    /// taken, the query does not parse, or it is not read-only.
    pub(crate) fn create(&mut self, name: &str, text: &str, at: &GraphView) -> Result<u64, Error> {
        if name.is_empty() {
            return Err(Error::Eval(EvalError::new("view names must be non-empty")));
        }
        if self.entry(name).is_some() {
            return Err(Error::Eval(EvalError::new(format!(
                "view {name} already exists"
            ))));
        }
        let query = Arc::new(crate::parse_query(text)?);
        if query.is_updating() {
            return Err(Error::Eval(EvalError::new(
                "views must be read-only queries",
            )));
        }
        let entry = ViewEntry::create(name, text, query, at, &self.cfg)?;
        self.entries.push(entry);
        Ok(at.version())
    }

    /// Unregisters a view; subscribers see their channel disconnect.
    pub(crate) fn drop_view(&mut self, name: &str) -> Result<(), Error> {
        match self.entries.iter().position(|e| e.name == name) {
            Some(i) => {
                self.entries.remove(i);
                Ok(())
            }
            None => Err(Error::Eval(EvalError::new(format!("no such view: {name}")))),
        }
    }

    /// The registered view names, in creation order.
    pub(crate) fn names(&self) -> Vec<String> {
        self.entries.iter().map(|e| e.name.clone()).collect()
    }

    pub(crate) fn explain(&self, name: &str) -> Result<String, Error> {
        match self.entry(name) {
            Some(e) => Ok(e.explain()),
            None => Err(Error::Eval(EvalError::new(format!("no such view: {name}")))),
        }
    }

    /// The published table for a reader at `version`: `Ok(Some)` from the
    /// ring, `Ok(None)` when the pin predates retention (caller
    /// re-evaluates cold against its own snapshot).
    pub(crate) fn read_at(&self, name: &str, version: u64) -> Result<Option<Arc<Table>>, Error> {
        let Some(e) = self.entry(name) else {
            return Err(Error::Eval(EvalError::new(format!("no such view: {name}"))));
        };
        if let Some(msg) = &e.broken {
            return Err(Error::Eval(EvalError::new(format!(
                "view {name} is broken: {msg}"
            ))));
        }
        Ok(e.published_at(version))
    }

    /// The query text of `name` (for cold fallback evaluation).
    pub(crate) fn query_of(&self, name: &str) -> Result<Arc<Query>, Error> {
        match self.entry(name) {
            Some(e) => Ok(Arc::clone(&e.query)),
            None => Err(Error::Eval(EvalError::new(format!("no such view: {name}")))),
        }
    }

    /// Opens a change-stream subscription on `name`.
    pub(crate) fn subscribe(&mut self, name: &str) -> Result<ViewSubscription, Error> {
        let Some(e) = self.entries.iter_mut().find(|e| e.name == name) else {
            return Err(Error::Eval(EvalError::new(format!("no such view: {name}"))));
        };
        let (tx, rx) = mpsc::channel();
        e.subs.push(tx);
        Ok(ViewSubscription { rx })
    }

    /// Refreshes every view for one publishing commit group. Called by
    /// the publisher with the pre-group published view (`old`), the
    /// group's final candidate graph, the version it will publish as, and
    /// the members' change batches in commit order.
    pub(crate) fn refresh_all(
        &mut self,
        old: &GraphView,
        new_graph: &Arc<PropertyGraph>,
        new_version: u64,
        changes: &[&[Change]],
        metrics: &DatabaseMetrics,
    ) {
        let cfg = self.cfg.clone();
        for e in &mut self.entries {
            if e.broken.is_some() {
                continue;
            }
            let started = Instant::now();
            let refreshed = e.refresh(old, new_graph, changes, &cfg, metrics);
            match refreshed {
                Ok(table) => {
                    let table = Arc::new(table);
                    if !e.subs.is_empty() {
                        let prev = e.published.back().map(|(_, t)| Arc::clone(t));
                        if let Some(prev) = prev {
                            let (added, removed) = bag_diff(&prev, &table);
                            if !added.is_empty() || !removed.is_empty() {
                                let change = ViewChange {
                                    name: e.name.clone(),
                                    version: new_version,
                                    added,
                                    removed,
                                };
                                e.subs.retain(|s| s.send(change.clone()).is_ok());
                            }
                        }
                    }
                    e.push_published(new_version, table);
                }
                Err(err) => {
                    // Publishing a stale table would silently violate the
                    // version-atomicity contract; surface the failure on
                    // every subsequent read instead.
                    e.broken = Some(err.to_string());
                }
            }
            if metrics.enabled() {
                metrics
                    .view_refresh_us
                    .record(started.elapsed().as_micros() as u64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(rows: Vec<Vec<i64>>) -> Table {
        let schema = Schema::new(vec!["a".into(), "b".into()]);
        let mut t = Table::empty(schema);
        for r in rows {
            t.push(Record::new(r.into_iter().map(Value::int).collect()));
        }
        t
    }

    #[test]
    fn bag_diff_reports_multiplicity() {
        let old = table(vec![vec![1, 1], vec![2, 2], vec![2, 2], vec![3, 3]]);
        let new = table(vec![vec![2, 2], vec![3, 3], vec![3, 3], vec![4, 4]]);
        let (added, removed) = bag_diff(&old, &new);
        // new − old: one extra (3,3) and (4,4); old − new: (1,1), one (2,2).
        assert_eq!(added.len(), 2);
        assert_eq!(removed.len(), 2);
        let has = |t: &Table, v: i64, n: usize| {
            t.rows()
                .iter()
                .filter(|r| r.get(0).equivalent(&Value::int(v)))
                .count()
                == n
        };
        assert!(has(&added, 3, 1) && has(&added, 4, 1));
        assert!(has(&removed, 1, 1) && has(&removed, 2, 1));
    }

    #[test]
    fn counted_bag_retraction_is_order_transparent() {
        let mut bag = CountedBag::default();
        let schema = Schema::new(vec!["x".into()]);
        let row = |v: i64| Record::new(vec![Value::int(v)]);
        bag.insert(vec![], row(1));
        bag.insert(vec![], row(2));
        bag.insert(vec![], row(1));
        assert!(bag.remove(&[], &row(1)));
        assert!(bag.remove(&[], &row(1)));
        assert!(!bag.remove(&[], &row(1)), "third copy never existed");
        bag.insert(vec![], row(1));
        let out = bag.snapshot(schema, &[]);
        assert_eq!(out.len(), 2);
    }
}
