//! Prints the physical plans the cost-based planner chooses for a couple
//! of `MATCH` queries, showing the index subsystem at work: the composite
//! `(label, key, value)` index turns `MATCH (n:Label {k: v})` anchors
//! into `PropertyIndexSeek` steps, and the planner re-anchors a path on
//! whichever end the statistics say is cheapest.
//!
//! Run with `cargo run -p cypher --example explain_demo`.

use cypher::{explain, run, Params, PropertyGraph};

fn main() {
    let mut g = PropertyGraph::new();
    let params = Params::new();
    for i in 0..1000 {
        run(
            &mut g,
            &format!("CREATE (:Researcher {{name: 'r{i}', acmid: {i}}})"),
            &params,
        )
        .unwrap();
    }
    run(
        &mut g,
        "MATCH (a:Researcher {acmid: 1}), (b:Researcher {acmid: 2}) CREATE (a)-[:CITES]->(b)",
        &params,
    )
    .unwrap();

    let q = "MATCH (r:Researcher {name: 'r7'})-[:CITES*1..2]->(p) RETURN p";
    println!("== {q}\n{}", explain(&g, q).unwrap());

    // The seek is picked on the *far* end when that's the cheaper anchor.
    let q2 = "MATCH (r:Researcher)-[:CITES]->(p:Researcher {acmid: 2}) RETURN r";
    println!("== {q2}\n{}", explain(&g, q2).unwrap());
}
