//! # cypher-bench
//!
//! Criterion benchmark harness: one bench target per experiment of
//! DESIGN.md's index (E1, E14–E20) plus general scaling sweeps. The
//! binaries print the series the paper's narrative implies — who wins and
//! by roughly what factor — and EXPERIMENTS.md records the measured
//! numbers next to the paper's claims.

#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared helper: format a mean duration in microseconds.
pub fn us(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

fn on_alloc(bytes: usize) {
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(bytes as u64, Ordering::Relaxed) + bytes as u64;
    // Racy max is fine: the peak is a diagnostic watermark, and the CAS
    // loop converges under contention.
    let mut peak = PEAK_BYTES.load(Ordering::Relaxed);
    while live > peak {
        match PEAK_BYTES.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

fn on_dealloc(bytes: usize) {
    LIVE_BYTES.fetch_sub(bytes as u64, Ordering::Relaxed);
}

/// An allocation-counting wrapper around the system allocator. Bench
/// binaries install it with
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: cypher_bench::CountingAlloc = cypher_bench::CountingAlloc;
/// ```
///
/// and then assert per-query allocation budgets via
/// [`allocations_during`] — the regression tripwire for "this hot loop
/// quietly started cloning per row" (experiments E19/E20 pin the scan and
/// seek paths this way) — and **peak live bytes** via [`peak_during`],
/// the tripwire for "this breaker quietly went back to materializing its
/// whole input" (experiment E22 pins partial aggregation this way).
pub struct CountingAlloc;

// SAFETY: defers to `System` for every operation; the counters are
// side-effect-free atomic arithmetic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        on_dealloc(layout.size());
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        on_alloc(new_size);
        on_dealloc(layout.size());
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        System.alloc_zeroed(layout)
    }
}

/// Heap allocations (including reallocations) counted so far. Only
/// meaningful when [`CountingAlloc`] is installed as the global
/// allocator; otherwise stays 0.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Bytes currently allocated and not yet freed (all threads).
pub fn live_bytes() -> u64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// Runs `f` and returns its result together with the number of heap
/// allocations it performed (on this and every other thread — runs where
/// the workload spawns workers count the workers too).
pub fn allocations_during<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = allocation_count();
    let out = f();
    (out, allocation_count() - before)
}

/// Runs `f` and returns its result together with the **peak growth of
/// live heap bytes** above the starting level during the call — the
/// "how much did this query materialize at its worst moment" number.
/// Like the counters, it observes every thread.
pub fn peak_during<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let baseline = LIVE_BYTES.load(Ordering::Relaxed);
    PEAK_BYTES.store(baseline, Ordering::Relaxed);
    let out = f();
    let peak = PEAK_BYTES.load(Ordering::Relaxed);
    (out, peak.saturating_sub(baseline))
}

/// Median-of-five wall-clock time of one call to `f`, in microseconds —
/// the cheap summary measurement bench binaries mirror into their
/// [`BenchReport`] sidecar (criterion keeps its own statistics for the
/// interactive output; the sidecar only needs a stable headline number).
pub fn measure_us(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let t = std::time::Instant::now();
            f();
            us(t.elapsed())
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[2]
}

/// Machine-readable sidecar for a bench binary's headline numbers.
///
/// Every experiment prints its summary to stdout for humans; a
/// [`BenchReport`] mirrors those numbers as a flat `metric → value`
/// JSON object written to `<dir>/BENCH_<name>.json` when the
/// `CYPHER_BENCH_JSON` environment variable names a directory (created
/// if missing). Unset, everything is a no-op — local `cargo bench`
/// runs stay file-free, CI uploads the sidecars as artifacts so runs
/// can be compared without scraping stdout.
pub struct BenchReport {
    name: String,
    metrics: Vec<(String, f64)>,
}

impl BenchReport {
    /// A report for the experiment `name` (`BENCH_<name>.json`).
    pub fn new(name: &str) -> BenchReport {
        BenchReport {
            name: name.to_string(),
            metrics: Vec::new(),
        }
    }

    /// Records one metric. Call with the same numbers the bench prints.
    pub fn metric(&mut self, key: &str, value: f64) -> &mut Self {
        self.metrics.push((key.to_string(), value));
        self
    }

    /// Writes `BENCH_<name>.json` into `$CYPHER_BENCH_JSON` (no-op when
    /// the variable is unset or empty). Non-finite values serialize as
    /// `null` — JSON has no NaN — and I/O failures panic: a CI job that
    /// asked for sidecars must not silently produce none.
    pub fn emit(&self) {
        let Some(dir) = std::env::var_os("CYPHER_BENCH_JSON") else {
            return;
        };
        if dir.is_empty() {
            return;
        }
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("create CYPHER_BENCH_JSON directory");
        let mut body = String::from("{\n");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            let key = k.replace('\\', "\\\\").replace('"', "\\\"");
            if v.is_finite() {
                body.push_str(&format!("  \"{key}\": {v}"));
            } else {
                body.push_str(&format!("  \"{key}\": null"));
            }
            body.push_str(if i + 1 == self.metrics.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        body.push_str("}\n");
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, body).expect("write bench JSON sidecar");
        println!("bench json: wrote {}", path.display());
    }
}
