//! # cypher-bench
//!
//! Criterion benchmark harness: one bench target per experiment of
//! DESIGN.md's index (E1, E14–E20) plus general scaling sweeps. The
//! binaries print the series the paper's narrative implies — who wins and
//! by roughly what factor — and EXPERIMENTS.md records the measured
//! numbers next to the paper's claims.

#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared helper: format a mean duration in microseconds.
pub fn us(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// An allocation-counting wrapper around the system allocator. Bench
/// binaries install it with
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: cypher_bench::CountingAlloc = cypher_bench::CountingAlloc;
/// ```
///
/// and then assert per-query allocation budgets via
/// [`allocations_during`] — the regression tripwire for "this hot loop
/// quietly started cloning per row" (experiments E19/E20 pin the scan and
/// seek paths this way).
pub struct CountingAlloc;

// SAFETY: defers to `System` for every operation; the counter is a
// side-effect-free atomic increment.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

/// Heap allocations (including reallocations) counted so far. Only
/// meaningful when [`CountingAlloc`] is installed as the global
/// allocator; otherwise stays 0.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Runs `f` and returns its result together with the number of heap
/// allocations it performed (on this and every other thread — runs where
/// the workload spawns workers count the workers too).
pub fn allocations_during<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = allocation_count();
    let out = f();
    (out, allocation_count() - before)
}
