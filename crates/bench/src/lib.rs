//! # cypher-bench
//!
//! Criterion benchmark harness: one bench target per experiment of
//! DESIGN.md's index (E1, E14–E18) plus general scaling sweeps. The
//! binaries print the series the paper's narrative implies — who wins and
//! by roughly what factor — and EXPERIMENTS.md records the measured
//! numbers next to the paper's claims.

#![warn(missing_docs)]

/// Shared helper: format a mean duration in microseconds.
pub fn us(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e6
}
