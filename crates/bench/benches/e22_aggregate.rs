//! Experiment E22: what partial-aggregation and top-k pushdown buy on
//! analytic (grouping / deduplicating / ordered) queries, plus a hot-query
//! micro for the `Database` plan cache.
//!
//! A graph of `R` nodes (1M by default; override with `CYPHER_E22_ROWS`)
//! carries three integer properties: `v` (8 distinct values — the
//! *few-groups* regime), `m` (rows/64 distinct values — *many groups*)
//! and the unique `u`. Series:
//!
//! * `group_few` / `group_many` — `RETURN key, count(*), sum(u)` group-bys
//!   under {merged-table baseline, sequential fused fold, N-thread
//!   partial aggregation};
//! * `distinct` — `RETURN DISTINCT v`;
//! * `topk` — `ORDER BY u DESC LIMIT 10` under full-sort baseline vs
//!   bounded per-worker heaps;
//! * `plan_cache` — the same hot group-by through `cypher::Database` with
//!   the parse+plan cache on vs off.
//!
//! Tripwires (assert, not just print):
//!
//! * every configuration returns the identical row *sequence*;
//! * with pushdown on, **peak intermediate materialization no longer
//!   scales with the pre-aggregation row count** — the peak live-byte
//!   growth of the fused group-by must stay a small fraction of the
//!   merged-table baseline's (which materializes all rows);
//! * on ≥ 4-core hardware, 4-thread partial aggregation beats the
//!   merged-table baseline by ≥ 1.3× wall-clock (same gate as E20; the
//!   1-CPU CI container still runs every correctness and memory check).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cypher::{
    run_read_with, Database, EngineConfig, Params, PartialAggMode, PropertyGraph, Table, Value,
};
use std::time::Instant;

#[global_allocator]
static ALLOC: cypher_bench::CountingAlloc = cypher_bench::CountingAlloc;

fn rows() -> usize {
    std::env::var("CYPHER_E22_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1024)
        .unwrap_or(1_000_000)
}

const GROUP_FEW: &str = "MATCH (n:R) RETURN n.v AS g, count(*) AS c, sum(n.u) AS s";
const GROUP_MANY: &str = "MATCH (n:R) RETURN n.m AS g, count(*) AS c, sum(n.u) AS s";
const DISTINCT: &str = "MATCH (n:R) RETURN DISTINCT n.v AS d";
const TOPK: &str = "MATCH (n:R) RETURN n.u AS k ORDER BY k DESC LIMIT 10";

fn build_graph(n: usize) -> PropertyGraph {
    let mut g = PropertyGraph::new();
    for i in 0..n {
        g.add_node(
            &["R"],
            [
                ("v", Value::int((i % 8) as i64)),
                ("m", Value::int((i % (n / 64).max(2)) as i64)),
                ("u", Value::int(i as i64)),
            ],
        );
    }
    g
}

/// Baseline: pushdown off — the match output is materialized into one
/// merged table and projected single-threaded.
fn baseline(threads: usize) -> EngineConfig {
    EngineConfig::default()
        .with_threads(threads)
        .with_morsel_size(1024)
        .with_partial_agg(PartialAggMode::Off)
}

/// Pushdown on (auto gate).
fn fused(threads: usize) -> EngineConfig {
    EngineConfig::default()
        .with_threads(threads)
        .with_morsel_size(1024)
        .with_partial_agg(PartialAggMode::Auto)
}

fn run(g: &PropertyGraph, q: &str, params: &Params, c: &EngineConfig) -> Table {
    run_read_with(g, q, params, c).unwrap()
}

/// Median-of-5 wall time of one run.
fn time_once(g: &PropertyGraph, q: &str, params: &Params, c: &EngineConfig) -> f64 {
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let t = Instant::now();
            criterion::black_box(run(g, q, params, c));
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[2]
}

fn bench(c: &mut Criterion) {
    let n = rows();
    let g = build_graph(n);
    let params = Params::new();
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let par = cores.clamp(2, 8);

    // --- Ordered-equality sanity: every configuration, every query. ---
    for q in [GROUP_FEW, GROUP_MANY, DISTINCT, TOPK] {
        let base = run(&g, q, &params, &baseline(1));
        for cfg in [
            fused(1),
            fused(par),
            fused(par).with_morsel_size(4096),
            fused(2).with_partial_agg(PartialAggMode::Force),
            baseline(par),
        ] {
            let out = run(&g, q, &params, &cfg);
            assert!(
                out.ordered_eq(&base),
                "{q} drifted under threads={} morsel={} {:?}",
                cfg.num_threads,
                cfg.morsel_size,
                cfg.partial_agg
            );
        }
    }

    // --- Memory tripwire: peak materialization must not scale with the
    //     pre-aggregation row count once the fold is pushed down. ---
    //
    // A scan's item list is materialized per source (a PR-2 design both
    // paths share), so it scales with the *node* count either way. To
    // isolate the pre-aggregation *row* count, a 4-row driving table
    // multiplies the same scan 4× (`MATCH (k:K) MATCH (n:R) …`): the
    // merged-table baseline materializes 4× the rows, while the fused
    // fold's peak must stay where the 1× query's peak is — constant in
    // the rows entering the aggregation.
    let mem_n = n.min(250_000);
    let mut mem_g = build_graph(mem_n);
    for i in 0..4 {
        mem_g.add_node(&["K"], [("i", Value::int(i))]);
    }
    let group_x4 = "MATCH (k:K) MATCH (n:R) RETURN n.v AS g, count(*) AS c, sum(n.u) AS s";
    let peak_of = |q: &str, cfg: &EngineConfig| {
        let (t, peak) =
            cypher_bench::peak_during(|| criterion::black_box(run(&mem_g, q, &params, cfg)));
        drop(t);
        peak
    };
    let base_x1 = peak_of(GROUP_FEW, &baseline(1));
    let base_x4 = peak_of(group_x4, &baseline(1));
    let fused_x1 = peak_of(GROUP_FEW, &fused(1));
    let fused_x4 = peak_of(group_x4, &fused(1));
    let fused_x4_par = peak_of(group_x4, &fused(par));
    let mib = |b: u64| b as f64 / (1 << 20) as f64;
    println!(
        "e22: group-by peak live-byte growth ({mem_n} nodes) — merged-table 1×: {:.1} MiB, \
         4×: {:.1} MiB; fused 1×: {:.1} MiB, 4×: {:.1} MiB, 4× {par}-thread: {:.1} MiB",
        mib(base_x1),
        mib(base_x4),
        mib(fused_x1),
        mib(fused_x4),
        mib(fused_x4_par),
    );
    if mem_n >= 100_000 {
        assert!(
            base_x4 > base_x1 * 2,
            "baseline no longer scales with pre-aggregation rows — tripwire is measuring nothing \
             ({base_x1} vs {base_x4})"
        );
        assert!(
            fused_x4 < fused_x1 * 3 / 2,
            "fused group-by peak scales with pre-aggregation rows: {fused_x1} → {fused_x4}"
        );
        assert!(
            fused_x4 * 3 < base_x4,
            "fused group-by materializes too much: {fused_x4} vs merged-table {base_x4}"
        );
        assert!(
            fused_x4_par * 2 < base_x4,
            "parallel fused group-by materializes too much: {fused_x4_par} vs {base_x4}"
        );
    }
    // Top-k keeps a bounded per-worker heap instead of decorating and
    // sorting every row.
    let topk_x4 = "MATCH (k:K) MATCH (n:R) RETURN n.u AS u ORDER BY u DESC LIMIT 10";
    let topk_base = peak_of(topk_x4, &baseline(1));
    let topk_fused = peak_of(topk_x4, &fused(1));
    println!(
        "e22: top-k peak live-byte growth ({mem_n} nodes × 4) — full sort: {:.1} MiB, \
         bounded heap: {:.1} MiB",
        mib(topk_base),
        mib(topk_fused),
    );
    if mem_n >= 100_000 {
        assert!(
            topk_fused * 2 < topk_base,
            "top-k pushdown materializes too much: {topk_fused} vs full sort {topk_base}"
        );
    }

    // --- Speedup summary (assertion gated on ≥ 4 cores, like E20). ---
    let t_base = time_once(&g, GROUP_FEW, &params, &baseline(par));
    let t_seq = time_once(&g, GROUP_FEW, &params, &fused(1));
    let t_par = time_once(&g, GROUP_FEW, &params, &fused(par));
    println!(
        "e22: group-by {n} rows — merged-table({par}t): {:.1} ms, fused(1t): {:.1} ms, \
         fused({par}t): {:.1} ms, speedup vs baseline {:.2}x ({cores} hardware threads)",
        t_base * 1e3,
        t_seq * 1e3,
        t_par * 1e3,
        t_base / t_par,
    );
    if cores >= 4 {
        assert!(
            t_base / t_par >= 1.3,
            "expected ≥1.3x over the merged-table baseline at {par} threads \
             on {cores}-core hardware, got {:.2}x",
            t_base / t_par
        );
    }

    // --- Plan-cache hot-query micro: cached vs uncached QPS. ---
    let mut small = PropertyGraph::new();
    for i in 0..512 {
        small.add_node(&["R"], [("v", Value::int((i % 8) as i64))]);
    }
    let hot = "MATCH (n:R {v: 3}) RETURN count(*) AS c";
    let qps = |cache: usize| {
        let mut cfg = EngineConfig::default();
        cfg.persistence = None;
        cfg.plan_cache_size = cache;
        let mut db = Database::open_with(cfg).unwrap();
        // Seed the graph through the facade so both runs are identical.
        let p = Params::new();
        for i in 0..512 {
            let mut ip = Params::new();
            ip.insert("v".into(), Value::int((i % 8) as i64));
            db.query("CREATE (:R {v: $v})", &ip).unwrap();
        }
        let t = Instant::now();
        let iters = 2_000;
        for _ in 0..iters {
            criterion::black_box(db.query(hot, &p).unwrap());
        }
        let qps = iters as f64 / t.elapsed().as_secs_f64();
        (qps, db.plan_cache_stats())
    };
    let (qps_on, stats_on) = qps(128);
    let (qps_off, stats_off) = qps(0);
    println!(
        "e22: plan cache hot query — cached: {qps_on:.0} q/s ({} hits), \
         uncached: {qps_off:.0} q/s ({} hits), speedup {:.2}x",
        stats_on.hits,
        stats_off.hits,
        qps_on / qps_off
    );
    assert!(stats_on.hits >= 1_999, "hot query did not hit the cache");
    assert_eq!(stats_off.hits, 0);

    let mut report = cypher_bench::BenchReport::new("e22");
    report.metric("group_few_merged_par_us", t_base * 1e6);
    report.metric("group_few_fused_1t_us", t_seq * 1e6);
    report.metric("group_few_fused_par_us", t_par * 1e6);
    report.metric("group_few_speedup", t_base / t_par);
    report.metric("fused_x4_peak_bytes", fused_x4 as f64);
    report.metric("baseline_x4_peak_bytes", base_x4 as f64);
    report.metric("plan_cache_on_qps", qps_on);
    report.metric("plan_cache_off_qps", qps_off);
    report.emit();

    // --- Criterion series. ---
    let mut group = c.benchmark_group("e22_aggregate");
    for (name, q) in [
        ("group_few", GROUP_FEW),
        ("group_many", GROUP_MANY),
        ("distinct", DISTINCT),
        ("topk", TOPK),
    ] {
        group.bench_with_input(BenchmarkId::new(name, "merged_1t"), &g, |b, g| {
            b.iter(|| run(g, q, &params, &baseline(1)))
        });
        group.bench_with_input(BenchmarkId::new(name, "fused_1t"), &g, |b, g| {
            b.iter(|| run(g, q, &params, &fused(1)))
        });
        group.bench_with_input(
            BenchmarkId::new(name, format!("fused_{par}t")),
            &g,
            |b, g| b.iter(|| run(g, q, &params, &fused(par))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
