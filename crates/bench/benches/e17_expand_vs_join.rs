//! Experiment E17: the paper's `Expand` claim (Section 2): "Expand never
//! needs to read any unnecessary data, or proceed via an indirection such
//! as an index in order to find related nodes."
//!
//! Shape expected: Expand-based plans scale with output size (anchor
//! cardinality × fan-out), while the relational baseline — cartesian node
//! scans filtered through relationship scans — scales with |V|·|R| and
//! loses by a rapidly growing factor as the graph grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cypher::{run_read_with, EngineConfig, Params, PlannerMode};
use cypher_workload::social_network;

const ONE_HOP: &str = "MATCH (a:Person)-[:FRIEND]->(b:Person) RETURN count(*) AS c";
const TWO_HOP: &str =
    "MATCH (a:Person)-[:FRIEND]->(b:Person)-[:FRIEND]->(c:Person) RETURN count(*) AS c";

fn bench(c: &mut Criterion) {
    let params = Params::new();
    let expand = EngineConfig::default();
    let cartesian = EngineConfig {
        planner_mode: PlannerMode::CartesianJoin,
        ..EngineConfig::default()
    };

    let mut group = c.benchmark_group("e17_expand_vs_join");
    group.measurement_time(std::time::Duration::from_secs(6));
    for persons in [25usize, 50, 100] {
        let g = social_network(persons, 5, 4, 3);
        group.bench_with_input(BenchmarkId::new("expand/one_hop", persons), &g, |b, g| {
            b.iter(|| run_read_with(g, ONE_HOP, &params, &expand).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("cartesian/one_hop", persons),
            &g,
            |b, g| b.iter(|| run_read_with(g, ONE_HOP, &params, &cartesian).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("expand/two_hop", persons), &g, |b, g| {
            b.iter(|| run_read_with(g, TWO_HOP, &params, &expand).unwrap())
        });
        // The baseline's two-hop cost is |V|³·|R|²-flavoured; only the
        // smallest size is affordable (that *is* the experiment's point).
        if persons <= 25 {
            group.bench_with_input(
                BenchmarkId::new("cartesian/two_hop", persons),
                &g,
                |b, g| b.iter(|| run_read_with(g, TWO_HOP, &params, &cartesian).unwrap()),
            );
        }
    }
    group.finish();

    let mut report = cypher_bench::BenchReport::new("e17");
    let g = social_network(100, 5, 4, 3);
    report.metric(
        "expand_one_hop_100_us",
        cypher_bench::measure_us(|| {
            run_read_with(&g, ONE_HOP, &params, &expand).unwrap();
        }),
    );
    report.metric(
        "cartesian_one_hop_100_us",
        cypher_bench::measure_us(|| {
            run_read_with(&g, ONE_HOP, &params, &cartesian).unwrap();
        }),
    );
    report.emit();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
