//! Experiment E20: what morsel-driven parallelism buys on a scan-heavy
//! query.
//!
//! A 100k-node graph of `Account` nodes answers the scan+filter query
//! `MATCH (n:Account) WHERE n.serial = … RETURN n.shard` — the `WHERE`
//! form keeps the property predicate out of the planner's index seeks, so
//! every configuration walks all 100k `Account` rows and the work is pure
//! pipeline throughput. Series:
//!
//! * `threads/1` — the classic sequential executor (no dispatch at all);
//! * `threads/2`, `threads/4` — the same plan with its source partitioned
//!   into 1024-row morsels claimed by a scoped worker pool;
//! * `agg_threads/{1,4}` — the same sweep under an aggregating query
//!   (`count(*)`), whose pipeline breaker merges per-morsel partials.
//!
//! On a multi-core box the expectation is ≥ 2× at 4 threads (the per-row
//! work is an expression evaluation, far above the merge cost); the
//! assertion below is gated on `available_parallelism` so single-CPU CI
//! containers still run the correctness and allocation checks.
//!
//! The allocation tripwire: one sequential run of the scan query must stay
//! within a small per-row allocation budget. Before the batch refactor the
//! scan sources cloned the driving record and re-grew it for every emitted
//! row (two allocations per row before filtering); `Record::cloned_with_extra`
//! plus `Arc`-shared scan item lists cut the budget roughly in half.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cypher::{run_read_with, EngineConfig, Params, PropertyGraph, Value};
use std::time::Instant;

#[global_allocator]
static ALLOC: cypher_bench::CountingAlloc = cypher_bench::CountingAlloc;

const NODES: usize = 100_000;
const SCAN_QUERY: &str = "MATCH (n:Account) WHERE n.serial = 99999 RETURN n.shard";
const AGG_QUERY: &str = "MATCH (n:Account) WHERE n.shard >= 8 RETURN count(*) AS c";

fn build_graph() -> PropertyGraph {
    let mut g = PropertyGraph::new();
    for i in 0..NODES {
        g.add_node(
            &["Account"],
            [
                ("serial", Value::int(i as i64)),
                ("shard", Value::int((i % 16) as i64)),
            ],
        );
    }
    g
}

fn cfg(threads: usize) -> EngineConfig {
    EngineConfig::default()
        .with_threads(threads)
        .with_morsel_size(1024)
}

/// Median-of-5 wall time of one run.
fn time_once(g: &PropertyGraph, q: &str, params: &Params, c: &EngineConfig) -> f64 {
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let t = Instant::now();
            criterion::black_box(run_read_with(g, q, params, c).unwrap());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[2]
}

fn bench(c: &mut Criterion) {
    let g = build_graph();
    let params = Params::new();

    // Sanity: identical rows (not just bags) across thread counts.
    let seq = run_read_with(&g, SCAN_QUERY, &params, &cfg(1)).unwrap();
    for t in [2, 4] {
        let par = run_read_with(&g, SCAN_QUERY, &params, &cfg(t)).unwrap();
        assert!(par.ordered_eq(&seq), "threads={t} changed the result");
    }
    assert_eq!(seq.len(), 1);

    // Allocation budget of the sequential scan+filter pipeline. ~1
    // allocation per scanned row (the record clone) plus batch overhead;
    // the bound has 3× headroom over the measured ~1.1/row so only a
    // real per-row regression (e.g. property-map cloning) trips it.
    let (_, allocs) = cypher_bench::allocations_during(|| {
        criterion::black_box(run_read_with(&g, SCAN_QUERY, &params, &cfg(1)).unwrap())
    });
    println!(
        "e20: sequential scan of {NODES} rows allocates {allocs} times \
         ({:.2}/row)",
        allocs as f64 / NODES as f64
    );
    assert!(
        (allocs as usize) < 3 * NODES,
        "scan allocation budget blown: {allocs} allocations for {NODES} rows"
    );

    // The same budget with a *non-empty* driving row (a second MATCH),
    // where the old clone-then-grow emission cost two allocations per
    // scanned row. `cloned_with_extra` folds them into one; the 1.5/row
    // bound sits between the two regimes and trips on a regression.
    let join_query = "MATCH (a:Account {serial: 0}) MATCH (n:Account) \
                      WHERE n.serial = a.serial + 99999 RETURN n.shard";
    let (join_out, join_allocs) = cypher_bench::allocations_during(|| {
        criterion::black_box(run_read_with(&g, join_query, &params, &cfg(1)).unwrap())
    });
    assert_eq!(join_out.len(), 1);
    println!(
        "e20: driven scan of {NODES} rows allocates {join_allocs} times \
         ({:.2}/row)",
        join_allocs as f64 / NODES as f64
    );
    assert!(
        (join_allocs as f64) < 1.5 * NODES as f64,
        "driven-scan allocation budget blown: {join_allocs} for {NODES} rows \
         (clone-then-grow is back?)"
    );

    // Speedup summary (printed even where the timing loop below runs).
    let t1 = time_once(&g, SCAN_QUERY, &params, &cfg(1));
    let t4 = time_once(&g, SCAN_QUERY, &params, &cfg(4));
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "e20: scan+filter {NODES} nodes — threads=1: {:.3} ms, threads=4: {:.3} ms, \
         speedup {:.2}x ({} hardware threads)",
        t1 * 1e3,
        t4 * 1e3,
        t1 / t4,
        cores
    );
    if cores >= 4 {
        assert!(
            t1 / t4 >= 2.0,
            "expected ≥2x speedup at 4 threads on {cores}-core hardware, got {:.2}x",
            t1 / t4
        );
    }

    let mut report = cypher_bench::BenchReport::new("e20");
    report.metric("scan_allocations_per_row", allocs as f64 / NODES as f64);
    report.metric(
        "driven_scan_allocations_per_row",
        join_allocs as f64 / NODES as f64,
    );
    report.metric("scan_threads1_us", t1 * 1e6);
    report.metric("scan_threads4_us", t4 * 1e6);
    report.metric("scan_speedup_4t", t1 / t4);
    report.metric("hardware_threads", cores as f64);
    report.emit();

    let mut group = c.benchmark_group("e20_parallel_scan");
    for threads in [1, 2, 4] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &g, |b, g| {
            b.iter(|| run_read_with(g, SCAN_QUERY, &params, &cfg(threads)).unwrap())
        });
    }
    for threads in [1, 4] {
        group.bench_with_input(BenchmarkId::new("agg_threads", threads), &g, |b, g| {
            b.iter(|| run_read_with(g, AGG_QUERY, &params, &cfg(threads)).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
