//! General scaling sweeps: variable-length depth, pattern length,
//! aggregation width, update throughput, and a scoped-thread parallel
//! read-scaling sanity check (the shared store is read-lockable).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cypher::{run, run_read, Params, PropertyGraph};
use cypher_workload::{chain, social_network};
use std::sync::Arc;

fn var_length_depth(c: &mut Criterion) {
    let params = Params::new();
    let g = chain(64);
    let mut group = c.benchmark_group("scaling/var_length_depth");
    for depth in [2u64, 4, 8, 16] {
        let q = format!("MATCH (a)-[:NEXT*1..{depth}]->(b) RETURN count(*) AS c");
        group.bench_with_input(BenchmarkId::from_parameter(depth), &q, |b, q| {
            b.iter(|| run_read(&g, q, &params).unwrap())
        });
    }
    group.finish();
}

fn pattern_length(c: &mut Criterion) {
    let params = Params::new();
    let g = social_network(150, 5, 4, 3);
    let mut group = c.benchmark_group("scaling/pattern_length");
    for hops in [1usize, 2, 3] {
        let mut q = String::from("MATCH (n0:Person)");
        for i in 1..=hops {
            q.push_str(&format!("-[:FRIEND]->(n{i})"));
        }
        q.push_str(" RETURN count(*) AS c");
        group.bench_with_input(BenchmarkId::from_parameter(hops), &q, |b, q| {
            b.iter(|| run_read(&g, q, &params).unwrap())
        });
    }
    group.finish();
}

fn aggregation(c: &mut Criterion) {
    let params = Params::new();
    let g = social_network(500, 10, 6, 3);
    let mut group = c.benchmark_group("scaling/aggregation");
    group.bench_function("group_by_city", |b| {
        b.iter(|| {
            run_read(
                &g,
                "MATCH (p:Person)-[:IN]->(c:City)
                 RETURN c.name AS city, count(p) AS pop, collect(p.name)[..3] AS sample",
                &params,
            )
            .unwrap()
        })
    });
    group.bench_function("count_distinct", |b| {
        b.iter(|| {
            run_read(
                &g,
                "MATCH (p:Person)-[:FRIEND]-(q) RETURN count(DISTINCT q) AS c",
                &params,
            )
            .unwrap()
        })
    });
    group.bench_function("order_by_limit", |b| {
        b.iter(|| {
            run_read(
                &g,
                "MATCH (p:Person)-[:FRIEND]-(q)
                 WITH p, count(q) AS deg RETURN p.name, deg ORDER BY deg DESC LIMIT 10",
                &params,
            )
            .unwrap()
        })
    });
    group.finish();
}

fn update_throughput(c: &mut Criterion) {
    let params = Params::new();
    let mut group = c.benchmark_group("scaling/updates");
    group.bench_function("create_100_nodes", |b| {
        b.iter(|| {
            let mut g = PropertyGraph::new();
            run(
                &mut g,
                "UNWIND range(1, 100) AS i CREATE (:Item {rank: i})",
                &params,
            )
            .unwrap();
            g.node_count()
        })
    });
    group.bench_function("merge_match_or_create", |b| {
        let mut g = PropertyGraph::new();
        run(
            &mut g,
            "UNWIND range(1, 50) AS i CREATE (:K {v: i})",
            &params,
        )
        .unwrap();
        b.iter(|| {
            // Half match, half create; graph grows slowly across samples,
            // which is fine for a throughput shape check.
            run(
                &mut g,
                "UNWIND range(26, 75) AS i MERGE (:K {v: i})",
                &params,
            )
            .unwrap()
        })
    });
    group.finish();
}

fn parallel_readers(c: &mut Criterion) {
    let params = Params::new();
    let g = Arc::new(social_network(300, 5, 6, 3));
    let q = "MATCH (a:Person)-[:FRIEND]->(b) RETURN count(*) AS c";
    let mut group = c.benchmark_group("scaling/parallel_readers");
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for _ in 0..threads {
                            let g = Arc::clone(&g);
                            let params = params.clone();
                            scope.spawn(move || run_read(&g, q, &params).unwrap());
                        }
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = var_length_depth, pattern_length, aggregation, update_throughput, parallel_readers
}
criterion_main!(benches);
