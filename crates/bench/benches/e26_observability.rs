//! Experiment E26: what observing the engine costs.
//!
//! The metrics registry claims to be cheap enough to leave on in
//! production — a handful of relaxed atomic increments per query. This
//! experiment holds it to that: the same in-process point-read workload
//! runs against a metrics-on and a metrics-off database, best-of-three
//! each, and the on/off throughput ratio must stay **≥ 0.95** (metrics
//! may cost at most 5%).
//!
//! Two more cells keep the rest of the subsystem honest end to end:
//! `PROFILE` over TCP must answer a well-formed operator table whose
//! actual row counts are truthful, and a `Metrics` wire request must
//! return a page that still parses after the workload.
//!
//! Derived `e26:` lines feed the README performance table. Operation
//! count per cell is tunable via `CYPHER_E26_OPS` (default 30000).

use criterion::{criterion_group, criterion_main, Criterion};
use cypher::{Database, EngineConfig, Params, Value};
use cypher_client::Client;
use cypher_server::{Server, ServerConfig};
use std::time::Instant;

const ROWS: usize = 1000;

fn ops() -> usize {
    std::env::var("CYPHER_E26_OPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(30_000)
}

fn open_db(metrics: bool) -> Database {
    let mut cfg = EngineConfig::default();
    cfg.persistence = None;
    cfg.metrics_enabled = metrics;
    let db = Database::open_with(cfg).expect("open bench db");
    let mut session = db.session();
    let params = Params::new();
    let mut k = 0usize;
    while k < ROWS {
        let batch = (ROWS - k).min(250);
        let stmt = (k..k + batch)
            .map(|i| format!("(:Load {{k: {i}, v: {}}})", (i * i) as i64))
            .collect::<Vec<_>>()
            .join(", ");
        session
            .query(&format!("CREATE {stmt}"), &params)
            .expect("seed");
        k += batch;
    }
    db
}

/// Runs `n` verified point reads through one session and returns qps.
fn point_reads(db: &Database, n: usize) -> f64 {
    let mut session = db.session();
    let text = "MATCH (n:Load {k: $k}) RETURN n.v AS v";
    let mut state = 0x5EEDu64;
    let t = Instant::now();
    for _ in 0..n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let k = ((state >> 33) % ROWS as u64) as i64;
        let mut p = Params::new();
        p.insert("k".to_string(), Value::int(k));
        let rows = session.query(text, &p).expect("point read");
        assert_eq!(
            rows.cell(0, "v"),
            Some(&Value::int(k * k)),
            "wrong answer for k={k}"
        );
    }
    n as f64 / t.elapsed().as_secs_f64()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e26_observability");

    // Criterion series: the instrumented read path itself.
    {
        let db = open_db(true);
        group.bench_function("point_reads/metrics_on", |b| {
            b.iter(|| std::hint::black_box(point_reads(&db, 50)))
        });
    }

    // Headline: metrics-on vs metrics-off throughput, best of three.
    let n = ops();
    let mut on_qps = 0.0f64;
    let mut off_qps = 0.0f64;
    for round in 0..3 {
        let on = open_db(true);
        let off = open_db(false);
        // Alternate the order so warm-up drift cannot favour one side.
        let (on_run, off_run) = if round % 2 == 0 {
            let a = point_reads(&on, n);
            let b = point_reads(&off, n);
            (a, b)
        } else {
            let b = point_reads(&off, n);
            let a = point_reads(&on, n);
            (a, b)
        };
        on_qps = on_qps.max(on_run);
        off_qps = off_qps.max(off_run);
        eprintln!("e26: round {round} — on {on_run:.0} qps, off {off_run:.0} qps");
    }
    let ratio = on_qps / off_qps;
    eprintln!(
        "e26: metrics-on {on_qps:.0} qps vs metrics-off {off_qps:.0} qps \
         — ratio {ratio:.3}"
    );
    assert!(
        ratio >= 0.95,
        "the metrics registry may cost at most 5% throughput \
         (on/off ratio {ratio:.3})"
    );
    let mut report = cypher_bench::BenchReport::new("e26");
    report.metric("metrics_on_qps", on_qps);
    report.metric("metrics_off_qps", off_qps);
    report.metric("metrics_on_off_ratio", ratio);
    report.emit();

    // PROFILE and the metrics page, end to end over TCP.
    let server = Server::bind(open_db(true), "127.0.0.1:0", ServerConfig::default())
        .expect("bind observability server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let params = Params::new();
    let profiled = client
        .query("PROFILE MATCH (n:Load) RETURN n.v", &params)
        .expect("remote PROFILE");
    assert_eq!(
        profiled.table.schema().names(),
        &["clause", "operator", "est_rows", "rows", "batches", "time_us"]
    );
    let scanned: i64 = profiled
        .table
        .rows()
        .iter()
        .filter_map(|r| {
            let op = r.get(1).as_str()?;
            op.contains("Scan").then(|| match r.get(3) {
                Value::Integer(n) => *n,
                _ => 0,
            })
        })
        .sum();
    assert!(
        scanned >= ROWS as i64,
        "PROFILE's scan operators must report the {ROWS} seeded rows \
         (saw {scanned})"
    );
    let page = client.metrics().expect("Metrics request");
    let mut samples = 0usize;
    for line in page.text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (_, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("unsplittable sample line: {line:?}"));
        value
            .parse::<f64>()
            .unwrap_or_else(|e| panic!("bad value in {line:?}: {e}"));
        samples += 1;
    }
    eprintln!(
        "e26: metrics page — {samples} samples, uptime {}ms, version {}",
        page.uptime_ms, page.version
    );
    assert!(
        samples >= 30,
        "the page must expose every layer's instruments"
    );
    client.goodbye().expect("goodbye");
    server.shutdown();

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
