//! Experiment E16: the Section 3 fraud-ring query over growing account
//! graphs — label-predicate filtering, `collect` and grouped counting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cypher::{run_read, run_reference, Params};
use cypher_workload::fraud_rings;

const QUERY: &str = "MATCH (accHolder:AccountHolder)-[:HAS]->(pInfo)
    WHERE pInfo:SSN OR pInfo:PhoneNumber OR pInfo:Address
    WITH pInfo,
         collect(accHolder.uniqueId) AS accountHolders,
         count(*) AS fraudRingCount
    WHERE fraudRingCount > 1
    RETURN accountHolders, labels(pInfo) AS personalInformation, fraudRingCount";

fn bench(c: &mut Criterion) {
    let params = Params::new();
    let mut group = c.benchmark_group("e16_fraud");
    let mut report = cypher_bench::BenchReport::new("e16");
    for holders in [100usize, 400, 1600] {
        let g = fraud_rings(holders, holders / 20, 4, 7);
        group.bench_with_input(BenchmarkId::new("engine", holders), &g, |b, g| {
            b.iter(|| run_read(g, QUERY, &params).unwrap())
        });
        report.metric(
            &format!("engine_{holders}_us"),
            cypher_bench::measure_us(|| {
                run_read(&g, QUERY, &params).unwrap();
            }),
        );
        if holders <= 400 {
            group.bench_with_input(BenchmarkId::new("reference", holders), &g, |b, g| {
                b.iter(|| run_reference(g, QUERY, &params).unwrap())
            });
        }
    }
    report.emit();
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
