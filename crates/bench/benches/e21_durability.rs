//! Experiment E21: what durability costs and how fast recovery is.
//!
//! Four series over the `cypher-storage` engine:
//!
//! * `wal_append` — appending one 16-change batch (a typical generated
//!   `CREATE` query's worth of records) to the write-ahead log, flushed
//!   per batch exactly as `Database::query` commits;
//! * `snapshot_save` / `snapshot_load` — full-graph snapshot encode +
//!   atomic write, and load + validate + index rebuild, for a 100k-node /
//!   50k-relationship graph;
//! * `cold_recovery` — `Store::open` (replay from an empty snapshot)
//!   against WALs of 1k and 10k committed batches, showing recovery time
//!   scales with log length — the cost the snapshot-compaction trigger
//!   (`EngineConfig::wal_compact_bytes`) bounds.
//!
//! A derived `records/s`/`MB/s` line is printed for the README table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cypher::storage::{snapshot, Store};
use cypher::{Change, NodeId, PropertyGraph, Value};
use std::sync::Arc;
use std::time::Instant;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("cypher-e21-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// One batch of 16 node-creation records starting at id `base`.
fn batch(base: u64) -> Vec<Change> {
    (0..16)
        .map(|j| Change::AddNode {
            id: NodeId(base + j),
            labels: vec![Arc::from("Account")],
            props: vec![
                (Arc::from("serial"), Value::int((base + j) as i64)),
                (Arc::from("shard"), Value::int(((base + j) % 16) as i64)),
            ],
        })
        .collect()
}

fn build_graph(nodes: usize) -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let mut prev = None;
    for i in 0..nodes {
        let n = g.add_node(
            &["Account"],
            [
                ("serial", Value::int(i as i64)),
                ("shard", Value::int((i % 16) as i64)),
            ],
        );
        if i % 2 == 0 {
            if let Some(p) = prev {
                g.add_rel(p, n, "NEXT", []).unwrap();
            }
        }
        prev = Some(n);
    }
    g
}

fn bench(c: &mut Criterion) {
    // --- WAL append throughput -------------------------------------------
    let dir = tmpdir("wal");
    let (mut store, _) = Store::open(&dir).unwrap();
    let mut base = 0u64;
    // Derived throughput line for the README (larger sample than the
    // criterion loop so the number is stable).
    {
        let warm = batch(u64::MAX / 2); // ids never checked at append time
        let bytes_before = store.wal_bytes();
        let t = Instant::now();
        let reps = 2_000;
        for _ in 0..reps {
            store.commit(&warm).unwrap();
        }
        let dt = t.elapsed().as_secs_f64();
        let bytes = (store.wal_bytes() - bytes_before) as f64;
        eprintln!(
            "e21: wal append throughput: {:.0} records/s, {:.1} MB/s ({reps} batches x 16)",
            reps as f64 * 16.0 / dt,
            bytes / dt / 1e6
        );
        let mut report = cypher_bench::BenchReport::new("e21");
        report.metric("wal_append_records_per_s", reps as f64 * 16.0 / dt);
        report.metric("wal_append_mb_per_s", bytes / dt / 1e6);
        report.emit();
    }
    let mut group = c.benchmark_group("e21_durability");
    group.bench_function("wal_append/batch16", |b| {
        b.iter(|| {
            let r = store.commit(&batch(base)).unwrap();
            base += 16;
            r
        })
    });
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);

    // --- snapshot save / load --------------------------------------------
    let g = build_graph(100_000);
    let sdir = tmpdir("snap");
    std::fs::create_dir_all(&sdir).unwrap();
    let spath = sdir.join("snapshot-0000000001.snap");
    group.bench_function(BenchmarkId::new("snapshot_save", "100k"), |b| {
        b.iter(|| snapshot::save(&spath, &g, 1, 0).unwrap())
    });
    // Sanity: the loaded graph is the saved one, indexes included.
    let (_, _, loaded) = snapshot::load(&spath).unwrap();
    assert_eq!(loaded.node_count(), g.node_count());
    assert_eq!(loaded.rel_count(), g.rel_count());
    assert_eq!(loaded.canonical_dump(), g.canonical_dump());
    group.bench_function(BenchmarkId::new("snapshot_load", "100k"), |b| {
        b.iter(|| snapshot::load(&spath).unwrap().2.node_count())
    });
    let _ = std::fs::remove_dir_all(&sdir);

    // --- cold recovery vs WAL length -------------------------------------
    for batches in [1_000u64, 10_000] {
        let rdir = tmpdir(&format!("recover-{batches}"));
        {
            let (mut store, _) = Store::open(&rdir).unwrap();
            for i in 0..batches {
                store.commit(&batch(i * 16)).unwrap();
            }
        }
        group.bench_function(
            BenchmarkId::new("cold_recovery", format!("{batches}_batches")),
            |b| {
                b.iter(|| {
                    let (store, graph) = Store::open(&rdir).unwrap();
                    assert_eq!(store.report().batches_replayed, batches);
                    graph.node_count()
                })
            },
        );
        let _ = std::fs::remove_dir_all(&rdir);
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench
}
criterion_main!(benches);
