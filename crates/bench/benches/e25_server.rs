//! Experiment E25: saturating the TCP front-end.
//!
//! Point-read throughput and latency over **real sockets**: N client
//! connections, each preparing `MATCH (n:Load {k: $k}) RETURN n.v` once
//! and executing it with fresh parameter bindings, against one server
//! fronting an in-memory database. Swept across connection counts, the
//! sweep reports qps, p50 and p99 per cell, plus a prepared-vs-plain
//! comparison cell (what `PREPARE`/`EXECUTE` saves over re-sending the
//! text each time).
//!
//! The headline assertion: at the best connection count the server
//! sustains **≥ 2,000 point reads/second** end to end — frames, CRC,
//! parse-free prepared execution, snapshot read, row encoding — and the
//! shared plan cache planned the statement a bounded number of times,
//! no matter how many connections executed it.
//!
//! Derived `e25:` lines feed the README performance table. Operation
//! count per cell is tunable via `CYPHER_E25_OPS` (default 2000).

use criterion::{criterion_group, criterion_main, Criterion};
use cypher::{Database, EngineConfig, Params, Value};
use cypher_client::Client;
use cypher_server::{Server, ServerConfig};
use std::time::Instant;

const ROWS: usize = 1000;

fn ops_per_conn() -> usize {
    std::env::var("CYPHER_E25_OPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(2000)
}

fn start_server() -> Server {
    let mut cfg = EngineConfig::default();
    cfg.persistence = None;
    let db = Database::open_with(cfg).expect("open bench db");
    let mut session = db.session();
    let params = Params::new();
    let mut k = 0usize;
    while k < ROWS {
        let batch = (ROWS - k).min(250);
        let stmt = (k..k + batch)
            .map(|i| format!("(:Load {{k: {i}, v: {}}})", (i * i) as i64))
            .collect::<Vec<_>>()
            .join(", ");
        session
            .query(&format!("CREATE {stmt}"), &params)
            .expect("seed");
        k += batch;
    }
    Server::bind(db, "127.0.0.1:0", ServerConfig::default()).expect("bind")
}

struct Cell {
    qps: f64,
    p50_us: u64,
    p99_us: u64,
}

/// Drives `conns` connections × `ops` prepared point reads each and
/// returns throughput and latency percentiles (verifying every answer).
fn saturate(server: &Server, conns: usize, ops: usize, prepared: bool) -> Cell {
    let addr = server.local_addr();
    let t = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let text = "MATCH (n:Load {k: $k}) RETURN n.v AS v";
                    let stmt = prepared.then(|| client.prepare(text).expect("prepare"));
                    let mut lat = Vec::with_capacity(ops);
                    let mut state = 0x5EED ^ (c as u64).wrapping_mul(0xA5A5);
                    for _ in 0..ops {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let k = ((state >> 33) % ROWS as u64) as i64;
                        let mut p = Params::new();
                        p.insert("k".to_string(), Value::int(k));
                        let op = Instant::now();
                        let rows = match stmt {
                            Some(id) => client.execute(id, &p),
                            None => client.query(text, &p),
                        }
                        .expect("point read");
                        lat.push(op.elapsed().as_nanos() as u64);
                        assert_eq!(
                            rows.table.cell(0, "v"),
                            Some(&Value::int(k * k)),
                            "wrong answer for k={k}"
                        );
                    }
                    client.goodbye().expect("goodbye");
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let secs = t.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let pct = |p: f64| latencies[(((latencies.len() - 1) as f64) * p) as usize] / 1_000;
    Cell {
        qps: latencies.len() as f64 / secs,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e25_server");

    // Criterion series: one contended prepared-execution cell.
    {
        let server = start_server();
        group.bench_function("prepared_point_reads/4conns", |b| {
            b.iter(|| std::hint::black_box(saturate(&server, 4, 50, true).qps))
        });
        server.shutdown();
    }

    // Derived sweep for the README table: connections × {prepared,plain}.
    let ops = ops_per_conn();
    let server = start_server();
    let mut report = cypher_bench::BenchReport::new("e25");
    let mut best_qps = 0.0f64;
    for conns in [1usize, 2, 4, 8] {
        for prepared in [true, false] {
            let cell = saturate(&server, conns, ops, prepared);
            eprintln!(
                "e25: {conns} conns, {} — {:.0} qps, p50 {}µs, p99 {}µs",
                if prepared { "prepared" } else { "plain   " },
                cell.qps,
                cell.p50_us,
                cell.p99_us,
            );
            let mode = if prepared { "prepared" } else { "plain" };
            report.metric(&format!("{mode}_{conns}conns_qps"), cell.qps);
            report.metric(&format!("{mode}_{conns}conns_p99_us"), cell.p99_us as f64);
            if prepared {
                best_qps = best_qps.max(cell.qps);
            }
        }
    }
    report.metric("best_prepared_qps", best_qps);
    report.emit();
    let stats = server.stats();
    eprintln!(
        "e25: plan cache after the sweep — {} hits, {} misses ({} requests total)",
        stats.plan_hits, stats.plan_misses, stats.requests
    );
    assert!(
        best_qps >= 2_000.0,
        "the TCP front-end must sustain ≥ 2k point reads/s at its best \
         connection count (got {best_qps:.0})"
    );
    // One statement text across every connection: the sweep's point
    // reads plan O(1) times, not O(connections × ops).
    assert!(
        stats.plan_hits > stats.plan_misses,
        "prepared executions must ride the shared plan cache \
         ({} hits vs {} misses)",
        stats.plan_hits,
        stats.plan_misses
    );
    server.shutdown();

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
