//! Experiment E27: what the worst-case-optimal multiway intersection join
//! buys on cyclic patterns over a skewed graph.
//!
//! The substrate is a preferential-attachment social graph
//! (`powerlaw_social`): every node follows 8 earlier accounts with
//! probability proportional to degree, so a handful of celebrity nodes
//! collect thousands of followers and the triangle/diamond counts are
//! dominated by the dense core — exactly where a binary expand chain
//! enumerates a quadratic intermediate (every length-2 path) before the
//! closing edge filters it, while the intersection plan touches only
//! nodes in the *intersection* of the bound endpoints' adjacencies.
//!
//! Series: triangle and diamond counting queries under
//! `CYPHER_WCO_JOIN=off` (expand chain) and `force` (multiway
//! intersection), sequential and at 4 threads. On a multi-core box the
//! triangle query must run ≥ 2× faster under the intersection plan; the
//! assertion is gated on `available_parallelism` like E20/E24 so weak CI
//! containers still run the correctness and memory checks.
//!
//! The memory tripwire: the intersection operator streams batches and
//! probes a shared immutable adjacency snapshot, so (after the snapshot
//! is built once) a full triangle count must not grow the peak heap by
//! more than a fixed budget — no materialized intermediates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cypher::workload::powerlaw_social;
use cypher::{run_read_with, EngineConfig, Params, PropertyGraph, WcoJoinMode};
use std::time::Instant;

#[global_allocator]
static ALLOC: cypher_bench::CountingAlloc = cypher_bench::CountingAlloc;

const PERSONS: usize = 20_000;
const EDGES_PER: usize = 8;
const TRIANGLE: &str =
    "MATCH (a)-[:FOLLOWS]->(b)-[:FOLLOWS]->(c), (a)-[:FOLLOWS]->(c) RETURN count(*) AS n";
const DIAMOND: &str = "MATCH (a)-[:FOLLOWS]->(b)-[:FOLLOWS]->(d), \
                       (a)-[:FOLLOWS]->(c)-[:FOLLOWS]->(d) RETURN count(*) AS n";

fn cfg(threads: usize, wco: WcoJoinMode) -> EngineConfig {
    EngineConfig::default()
        .with_threads(threads)
        .with_morsel_size(1024)
        .with_wco_join(wco)
}

/// Median-of-5 wall time of one run.
fn time_once(g: &PropertyGraph, q: &str, params: &Params, c: &EngineConfig) -> f64 {
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let t = Instant::now();
            criterion::black_box(run_read_with(g, q, params, c).unwrap());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[2]
}

fn bench(c: &mut Criterion) {
    let g = powerlaw_social(PERSONS, EDGES_PER, 27);
    let params = Params::new();

    // Sanity: both plans count the same cycles, at every thread count.
    let expand = run_read_with(&g, TRIANGLE, &params, &cfg(1, WcoJoinMode::Off)).unwrap();
    let intersect = run_read_with(&g, TRIANGLE, &params, &cfg(1, WcoJoinMode::Force)).unwrap();
    assert!(
        intersect.ordered_eq(&expand),
        "plans disagree on the triangle count"
    );
    for threads in [2, 4] {
        let par = run_read_with(&g, TRIANGLE, &params, &cfg(threads, WcoJoinMode::Force)).unwrap();
        assert!(par.ordered_eq(&intersect), "threads={threads} drifted");
    }
    let triangles = intersect.cell(0, "n").and_then(|v| v.as_int()).unwrap();
    assert!(triangles > 0, "substrate closed no triangles");

    // Memory tripwire. The first intersection run above built and cached
    // the sorted-adjacency snapshot; a further full count must stream.
    let (_, peak) = cypher_bench::peak_during(|| {
        criterion::black_box(
            run_read_with(&g, TRIANGLE, &params, &cfg(1, WcoJoinMode::Force)).unwrap(),
        )
    });
    println!(
        "e27: triangle count over {PERSONS} nodes / {} rels grew the heap by \
         {:.1} MiB at peak",
        g.rel_count(),
        peak as f64 / (1024.0 * 1024.0)
    );
    assert!(
        peak < 64 * 1024 * 1024,
        "intersection join materialized an intermediate: peak {peak} bytes"
    );

    // Speedup summary: intersection vs expand chain, sequentially.
    let t_expand = time_once(&g, TRIANGLE, &params, &cfg(1, WcoJoinMode::Off));
    let t_isect = time_once(&g, TRIANGLE, &params, &cfg(1, WcoJoinMode::Force));
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "e27: {triangles} triangles — expand: {:.1} ms, intersect: {:.1} ms, \
         speedup {:.2}x ({} hardware threads)",
        t_expand * 1e3,
        t_isect * 1e3,
        t_expand / t_isect,
        cores
    );
    if cores >= 4 {
        assert!(
            t_expand / t_isect >= 2.0,
            "expected the intersection plan ≥2x faster on triangles, got {:.2}x",
            t_expand / t_isect
        );
    }

    let mut report = cypher_bench::BenchReport::new("e27");
    report.metric("triangles", triangles as f64);
    report.metric("triangle_expand_us", t_expand * 1e6);
    report.metric("triangle_intersect_us", t_isect * 1e6);
    report.metric("triangle_speedup", t_expand / t_isect);
    report.metric("triangle_peak_bytes", peak as f64);
    report.emit();

    let mut group = c.benchmark_group("e27_cyclic_join");
    for (name, query) in [("triangle", TRIANGLE), ("diamond", DIAMOND)] {
        for (plan, wco) in [
            ("expand", WcoJoinMode::Off),
            ("intersect", WcoJoinMode::Force),
        ] {
            group.bench_with_input(BenchmarkId::new(format!("{name}/{plan}"), 1), &g, |b, g| {
                b.iter(|| run_read_with(g, query, &params, &cfg(1, wco)).unwrap())
            });
        }
        group.bench_with_input(
            BenchmarkId::new(format!("{name}/intersect_threads"), 4),
            &g,
            |b, g| {
                b.iter(|| run_read_with(g, query, &params, &cfg(4, WcoJoinMode::Force)).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
