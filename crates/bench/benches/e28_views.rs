//! Experiment E28: what incremental view maintenance buys a standing
//! aggregate under point-update churn.
//!
//! The substrate is a flat `:Item {u, g, x}` table (100k rows by
//! default; override with `CYPHER_E28_ROWS`) with a hot grouped
//! aggregate registered as a maintained view:
//!
//! ```text
//! MATCH (n:Item) RETURN n.g AS g, count(*) AS c, sum(n.x) AS s
//! ```
//!
//! A churn loop seeks one row by its unique `u` and bumps `x` — a
//! one-changed-node commit. Three claims, all asserted:
//!
//! * **read-after-commit** — fetching the maintained table after a
//!   commit must be ≥ 10× cheaper than re-running the aggregate cold
//!   (the view is a published `Arc` table, not a 100k-row scan);
//! * **O(changed rows) folds** — the per-commit delta fold (measured by
//!   the `cypher_view_refresh_us` histogram the maintenance hook feeds)
//!   must stay flat as the base grows 4×: the fold is anchored on the
//!   changed entities, never the base table;
//! * **exactness** — after the whole churn run, the maintained table is
//!   bag-equal to cold re-evaluation (the differential harness checks
//!   this exhaustively; here it guards the numbers being measured).
//!
//! Headline numbers land in `BENCH_e28.json` via `CYPHER_BENCH_JSON`.

use criterion::{criterion_group, criterion_main, Criterion};
use cypher::{Database, EngineConfig, Params, Value};
use std::time::Instant;

#[global_allocator]
static ALLOC: cypher_bench::CountingAlloc = cypher_bench::CountingAlloc;

const HOT: &str = "MATCH (n:Item) RETURN n.g AS g, count(*) AS c, sum(n.x) AS s";
const POINT_UPDATE: &str = "MATCH (n:Item {u: $u}) SET n.x = n.x + 1";

fn rows() -> usize {
    std::env::var("CYPHER_E28_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 4096)
        .unwrap_or(100_000)
}

/// An in-memory database seeded with `n` items and the hot view.
fn open_db(n: usize) -> Database {
    let mut cfg = EngineConfig::default();
    cfg.persistence = None;
    cfg.metrics_enabled = true;
    let db = Database::open_with(cfg).expect("open bench db");
    let mut session = db.session();
    let params = Params::new();
    let mut k = 0usize;
    while k < n {
        let batch = (n - k).min(20_000);
        session
            .query(
                &format!(
                    "UNWIND range({k}, {}) AS i \
                     CREATE (:Item {{u: i, g: i % 64, x: i}})",
                    k + batch - 1
                ),
                &params,
            )
            .expect("seed");
        k += batch;
    }
    db.create_view("hot", HOT).expect("create view");
    let explain = db.explain_view("hot").expect("explain view");
    assert!(
        explain.contains("grouped-aggregate fold"),
        "the hot aggregate must be delta-maintained, not recomputed:\n{explain}"
    );
    db
}

/// Runs `commits` one-row point updates and returns the average
/// per-commit view-refresh cost in µs (from the maintenance histogram).
fn churn(db: &Database, commits: usize, seed: u64, n: usize) -> f64 {
    let mut session = db.session();
    let before = db.metrics().view_refresh_us.snapshot();
    let mut state = seed;
    for _ in 0..commits {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut p = Params::new();
        p.insert(
            "u".to_string(),
            Value::int(((state >> 33) % n as u64) as i64),
        );
        session.query(POINT_UPDATE, &p).expect("point update");
    }
    let after = db.metrics().view_refresh_us.snapshot();
    let folds = after.count - before.count;
    assert!(
        folds >= commits as u64,
        "every commit must fold the view ({folds} refreshes for {commits} commits)"
    );
    (after.sum - before.sum) as f64 / folds as f64
}

/// Median-of-5 wall time of `f`, in seconds.
fn time_once(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[2]
}

fn bench(c: &mut Criterion) {
    let n = rows();
    let db = open_db(n);
    let params = Params::new();
    let mut report = cypher_bench::BenchReport::new("e28");

    // Warm churn so the read-after-commit measurement sees a view that
    // has actually been folded, not the creation-time materialization.
    let fold_us = churn(&db, 200, 0x5EED, n);

    // --- read-after-commit vs cold re-evaluation ------------------------
    let mut session = db.session();
    let t_view = time_once(|| {
        std::hint::black_box(session.view("hot").expect("view read"));
    });
    let t_cold = time_once(|| {
        std::hint::black_box(session.query(HOT, &params).expect("cold query"));
    });
    let speedup = t_cold / t_view;
    println!(
        "e28: {n} rows — maintained read {:.1} µs, cold re-run {:.1} µs, \
         speedup {speedup:.0}x, avg delta fold {fold_us:.1} µs",
        t_view * 1e6,
        t_cold * 1e6,
    );
    assert!(
        speedup >= 10.0,
        "reading the maintained view must beat re-running the aggregate \
         ≥ 10x (got {speedup:.1}x)"
    );

    // --- exactness guard: the numbers above measured a correct view -----
    let maintained = session.view("hot").unwrap();
    let cold = session.query(HOT, &params).unwrap();
    assert!(
        maintained.bag_eq(&cold),
        "maintained view drifted from cold re-evaluation"
    );

    // --- fold cost is O(changed rows), not O(base) ----------------------
    // The same churn against a 4×-smaller base must cost about the same
    // per commit; generous headroom (3× + 50 µs) absorbs container noise
    // while still tripping on any O(base) term.
    let small_n = n / 4;
    let small_db = open_db(small_n);
    let small_fold_us = churn(&small_db, 200, 0x5EED, small_n);
    let big_fold_us = churn(&db, 200, 0xF00D, n);
    println!(
        "e28: avg delta fold — base {small_n}: {small_fold_us:.1} µs, \
         base {n}: {big_fold_us:.1} µs"
    );
    assert!(
        big_fold_us <= small_fold_us * 3.0 + 50.0,
        "delta fold cost scales with the base ({small_fold_us:.1} µs at \
         {small_n} rows vs {big_fold_us:.1} µs at {n} rows)"
    );

    report.metric("rows", n as f64);
    report.metric("maintained_read_us", t_view * 1e6);
    report.metric("cold_query_us", t_cold * 1e6);
    report.metric("read_speedup", speedup);
    report.metric("fold_us_small_base", small_fold_us);
    report.metric("fold_us_full_base", big_fold_us);
    report.emit();

    // --- criterion series -----------------------------------------------
    let mut group = c.benchmark_group("e28_views");
    group.bench_function("maintained_read", |b| {
        b.iter(|| session.view("hot").unwrap())
    });
    group.bench_function("cold_query", |b| {
        b.iter(|| session.query(HOT, &params).unwrap())
    });
    group.bench_function("point_update_with_view", |b| {
        let mut writer = db.session();
        let mut i = 0i64;
        b.iter(|| {
            let mut p = Params::new();
            p.insert("u".to_string(), Value::int(i % n as i64));
            i += 1;
            writer.query(POINT_UPDATE, &p).unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
