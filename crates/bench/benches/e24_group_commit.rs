//! Experiment E24: what group commit buys a burst of writers.
//!
//! Commits/second for N writer threads hammering one durable database
//! with point `CREATE`s, swept across the write-path knobs:
//!
//! * `group_commit` **on vs off** — on, concurrently arriving
//!   transactions coalesce into one WAL seal (+ one fsync); off, every
//!   transaction seals alone (the serial baseline);
//! * `fsync_mode` **os / sync / pipelined** — no fsync, fsync before
//!   publish, and the overlapped fsync thread.
//!
//! The headline claim: at 4+ writer threads under `sync` durability,
//! group commit is ≥ 2× the serial baseline, because one fsync
//! amortizes across every member of the group. The assertion only fires
//! on machines with ≥ 4 hardware threads — below that the OS can't
//! actually overlap the writers, so grouping has nothing to coalesce
//! and the ratio is noise (the numbers are still printed).
//!
//! Derived `e24:` lines feed the README performance table.

use criterion::{criterion_group, criterion_main, Criterion};
use cypher::{Database, EngineConfig, FsyncMode, Params};
use std::path::PathBuf;
use std::time::Instant;

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("cypher-e24-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn cfg_for(dir: PathBuf, group: bool, fsync: FsyncMode) -> EngineConfig {
    let mut cfg = EngineConfig::default();
    cfg.persistence = Some(dir);
    // Every statement text is unique — the plan cache would only miss.
    cfg.plan_cache_size = 0;
    cfg.group_commit = group;
    cfg.fsync_mode = fsync;
    cfg
}

/// Runs `commits` point-insert transactions across `writers` threads and
/// returns commits per second (wall clock, end to end).
fn commits_per_sec(cfg: &EngineConfig, writers: usize, commits: usize) -> f64 {
    let db = Database::open_with(cfg.clone()).expect("open bench db");
    let per = commits / writers;
    let t = Instant::now();
    std::thread::scope(|s| {
        for w in 0..writers {
            let mut session = db.session();
            s.spawn(move || {
                let params = Params::new();
                for i in 0..per {
                    session
                        .query(&format!("CREATE (:C {{w: {w}, i: {i}}})"), &params)
                        .unwrap();
                }
            });
        }
    });
    let secs = t.elapsed().as_secs_f64();
    assert_eq!(db.version() as usize, per * writers, "lost commits");
    let dir = cfg.persistence.clone().unwrap();
    db.close().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    (per * writers) as f64 / secs
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e24_group_commit");

    // Criterion series: the contended sync-durability cell, both knob
    // positions (small batches per iteration to keep wall time sane).
    for (name, grouped) in [("grouped", true), ("serial", false)] {
        group.bench_function(format!("sync_4writers/{name}"), |b| {
            b.iter(|| {
                let cfg = cfg_for(fresh_dir(name), grouped, FsyncMode::Sync);
                std::hint::black_box(commits_per_sec(&cfg, 4, 64))
            })
        });
    }

    // Derived sweep for the README table.
    let mut report = cypher_bench::BenchReport::new("e24");
    let commits = 512usize;
    let mut sync4 = [0.0f64; 2]; // [serial, grouped] at 4 writers, sync
    for fsync in [FsyncMode::Os, FsyncMode::Sync, FsyncMode::Pipelined] {
        for writers in [1usize, 2, 4, 8] {
            for grouped in [false, true] {
                let tag = format!("{fsync:?}-{writers}-{grouped}");
                let cfg = cfg_for(fresh_dir(&tag), grouped, fsync);
                let rate = commits_per_sec(&cfg, writers, commits);
                eprintln!(
                    "e24: {fsync:?} fsync, {writers} writers, group_commit {}: \
                     {rate:.0} commits/s",
                    if grouped { "on " } else { "off" },
                );
                report.metric(
                    &format!(
                        "{}_{}w_{}_commits_per_s",
                        format!("{fsync:?}").to_lowercase(),
                        writers,
                        if grouped { "grouped" } else { "serial" }
                    ),
                    rate,
                );
                if fsync == FsyncMode::Sync && writers == 4 {
                    sync4[grouped as usize] = rate;
                }
            }
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let ratio = sync4[1] / sync4[0];
    eprintln!(
        "e24: sync durability at 4 writers — group commit is {ratio:.2}x the \
         serial baseline ({cores} hardware threads)"
    );
    report.metric("sync_4w_group_commit_speedup", ratio);
    report.emit();
    if cores >= 4 {
        assert!(
            ratio >= 2.0,
            "group commit under contention must amortize fsyncs ≥ 2x \
             (got {ratio:.2}x on {cores} threads)"
        );
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
