//! Experiment E1 (performance dimension): the Section 3 running example,
//! on the literal Figure 1 graph and on scaled-up citation networks.
//! Regenerates the paper's final table on every iteration and reports the
//! cost of each clause prefix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cypher::{run_read, Params};
use cypher_workload::{citation_network, figure1};

const FULL_QUERY: &str = "MATCH (r:Researcher)
    OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
    WITH r, count(s) AS studentsSupervised
    MATCH (r)-[:AUTHORS]->(p1:Publication)
    OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication)
    RETURN r.name, studentsSupervised, count(DISTINCT p2) AS citedCount";

fn bench(c: &mut Criterion) {
    let params = Params::new();
    let mut group = c.benchmark_group("e1_section3");

    // The paper's exact 10-node graph.
    let fig1 = figure1();
    group.bench_function("figure1/full_query", |b| {
        b.iter(|| run_read(&fig1, FULL_QUERY, &params).unwrap())
    });

    // Clause-prefix costs on Figure 1 (the paper walks through these).
    for (name, q) in [
        ("line1_match", "MATCH (r:Researcher) RETURN r"),
        (
            "line2_optional",
            "MATCH (r:Researcher) OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) RETURN r, s",
        ),
        (
            "line3_with_count",
            "MATCH (r:Researcher) OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
             WITH r, count(s) AS c RETURN r, c",
        ),
    ] {
        group.bench_function(format!("figure1/{name}"), |b| {
            b.iter(|| run_read(&fig1, q, &params).unwrap())
        });
    }

    // Scaled-up citation networks: same query shape, growing data.
    let mut report = cypher_bench::BenchReport::new("e1");
    report.metric(
        "figure1_full_query_us",
        cypher_bench::measure_us(|| {
            run_read(&fig1, FULL_QUERY, &params).unwrap();
        }),
    );
    for pubs in [50usize, 200, 800] {
        let g = citation_network(pubs / 10 + 2, pubs, 2, 42);
        group.bench_with_input(
            BenchmarkId::new("citation_network/full_query", pubs),
            &g,
            |b, g| b.iter(|| run_read(g, FULL_QUERY, &params).unwrap()),
        );
        report.metric(
            &format!("citation_{pubs}_full_query_us"),
            cypher_bench::measure_us(|| {
                run_read(&g, FULL_QUERY, &params).unwrap();
            }),
        );
    }
    report.emit();
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
