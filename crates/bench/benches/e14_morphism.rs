//! Experiment E14: morphism ablation (paper §4.2 complexity discussion and
//! §8 "Configurable morphisms").
//!
//! Shape expected: on cyclic graphs, homomorphic matching cost explodes
//! with the hop cap while edge-isomorphism stays bounded by |R| — the
//! reason Cypher "chose to disallow repeating relationship edges".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cypher::{run_reference_with, MatchConfig, Morphism, Params, PropertyGraph};

/// A directed cycle of `n` nodes, every node also carrying a chord — rich
/// in walks, poor in simple paths.
fn cycle_with_chords(n: u64) -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let ids: Vec<_> = (0..n).map(|_| g.add_node(&["N"], [])).collect();
    for i in 0..n as usize {
        g.add_rel(ids[i], ids[(i + 1) % n as usize], "E", [])
            .unwrap();
        g.add_rel(ids[i], ids[(i + 2) % n as usize], "E", [])
            .unwrap();
    }
    g
}

fn bench(c: &mut Criterion) {
    let params = Params::new();
    let g = cycle_with_chords(12);
    let q = "MATCH (x)-[:E*1..]->(y) RETURN count(*) AS c";
    let mut group = c.benchmark_group("e14_morphism");

    for cap in [4u64, 6, 8] {
        group.bench_with_input(
            BenchmarkId::new("homomorphism/cap", cap),
            &cap,
            |b, &cap| {
                let cfg = MatchConfig {
                    morphism: Morphism::Homomorphism,
                    var_length_cap: cap,
                };
                b.iter(|| run_reference_with(&g, q, &params, cfg).unwrap())
            },
        );
    }
    // Edge isomorphism needs no cap: bounded by edge distinctness.
    group.bench_function("edge_isomorphism/unbounded", |b| {
        let cfg = MatchConfig {
            morphism: Morphism::EdgeIsomorphism,
            var_length_cap: 8,
        };
        // Bound the pattern to the same depth for a fair comparison.
        let q_bounded = "MATCH (x)-[:E*1..8]->(y) RETURN count(*) AS c";
        b.iter(|| run_reference_with(&g, q_bounded, &params, cfg).unwrap())
    });
    group.bench_function("node_isomorphism/bounded", |b| {
        let cfg = MatchConfig {
            morphism: Morphism::NodeIsomorphism,
            var_length_cap: 8,
        };
        let q_bounded = "MATCH (x)-[:E*1..8]->(y) RETURN count(*) AS c";
        b.iter(|| run_reference_with(&g, q_bounded, &params, cfg).unwrap())
    });
    group.finish();

    let mut report = cypher_bench::BenchReport::new("e14");
    let q_bounded = "MATCH (x)-[:E*1..8]->(y) RETURN count(*) AS c";
    for (key, morphism) in [
        ("homomorphism_cap8_us", Morphism::Homomorphism),
        ("edge_isomorphism_cap8_us", Morphism::EdgeIsomorphism),
        ("node_isomorphism_cap8_us", Morphism::NodeIsomorphism),
    ] {
        let cfg = MatchConfig {
            morphism,
            var_length_cap: 8,
        };
        report.metric(
            key,
            cypher_bench::measure_us(|| {
                run_reference_with(&g, q_bounded, &params, cfg).unwrap();
            }),
        );
    }
    report.emit();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
