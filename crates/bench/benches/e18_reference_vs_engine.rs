//! Experiment E18 (performance half): the literal denotational semantics
//! (naive enumeration over all nodes) vs the planned engine (label-scan
//! anchors + Expand), on the same queries and graphs.
//!
//! Shape expected: identical outputs (checked by tests/differential.rs);
//! the engine wins by a factor that grows with graph size because its
//! anchor selection avoids scanning the whole node set per driving row.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cypher::{run_read, run_reference, Params};
use cypher_workload::citation_network;

const QUERIES: &[(&str, &str)] = &[
    (
        "label_anchor",
        "MATCH (r:Researcher)-[:AUTHORS]->(p:Publication) RETURN count(*) AS c",
    ),
    (
        "two_hop",
        "MATCH (r:Researcher)-[:AUTHORS]->(p)-[:CITES]->(q) RETURN count(*) AS c",
    ),
    (
        "var_length",
        "MATCH (p:Publication)<-[:CITES*1..3]-(q) RETURN count(*) AS c",
    ),
    (
        "aggregation",
        "MATCH (r:Researcher)-[:AUTHORS]->(p) RETURN r.name, count(p) AS pubs",
    ),
    // Anchor-sensitive shapes: the planner's property-index lookup and
    // anchor reordering pay off here; the reference walks left to right.
    (
        "selective_anchor",
        "MATCH (p:Publication)-[:CITES]->(q:Publication {acmid: 0}) RETURN count(*) AS c",
    ),
    (
        "mid_anchor",
        "MATCH (a:Publication)-[:CITES]->(b {acmid: 1})-[:CITES]->(c) RETURN count(*) AS c",
    ),
];

fn bench(c: &mut Criterion) {
    let params = Params::new();
    let mut group = c.benchmark_group("e18_reference_vs_engine");
    let mut report = cypher_bench::BenchReport::new("e18");
    for pubs in [100usize, 400] {
        let g = citation_network(pubs / 10 + 2, pubs, 2, 42);
        for (name, q) in QUERIES {
            group.bench_with_input(
                BenchmarkId::new(format!("engine/{name}"), pubs),
                &g,
                |b, g| b.iter(|| run_read(g, q, &params).unwrap()),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("reference/{name}"), pubs),
                &g,
                |b, g| b.iter(|| run_reference(g, q, &params).unwrap()),
            );
            if pubs == 400 {
                report.metric(
                    &format!("engine_{name}_{pubs}_us"),
                    cypher_bench::measure_us(|| {
                        run_read(&g, q, &params).unwrap();
                    }),
                );
            }
        }
    }
    report.emit();
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
