//! Experiment E19: what the index subsystem buys.
//!
//! A 100k-node graph of `Account` nodes (unique `serial`, 16-way `shard`)
//! answers the point query `MATCH (n:Account {serial: 31337}) RETURN n`
//! under three planner configurations:
//!
//! * `full_scan` — both indexes disabled: `AllNodesScan` + label/property
//!   filters touch every node;
//! * `label_scan` — label index only: `NodeIndexScan(n:Account)` + a
//!   property filter still touches every `Account`;
//! * `index_seek` — composite index: `PropertyIndexSeek` jumps straight
//!   to the posting list (expected: ≥ 5× over the full scan; in practice
//!   orders of magnitude at this size).
//!
//! A fourth series, `shard_seek`, seeks on the non-unique `shard` key
//! (6250 hits) to show that the win survives fat posting lists.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cypher::{run_read_with, EngineConfig, Params, PropertyGraph, Value};

#[global_allocator]
static ALLOC: cypher_bench::CountingAlloc = cypher_bench::CountingAlloc;

const NODES: usize = 100_000;
const POINT_QUERY: &str = "MATCH (n:Account {serial: 31337}) RETURN n.shard";
const SHARD_QUERY: &str = "MATCH (n:Account {shard: 7}) RETURN count(*) AS c";

fn build_graph() -> PropertyGraph {
    let mut g = PropertyGraph::new();
    for i in 0..NODES {
        g.add_node(
            &["Account"],
            [
                ("serial", Value::int(i as i64)),
                ("shard", Value::int((i % 16) as i64)),
            ],
        );
    }
    g
}

fn bench(c: &mut Criterion) {
    let g = build_graph();
    let params = Params::new();
    let indexed = EngineConfig::default();
    let label_only = EngineConfig {
        use_property_index: false,
        ..EngineConfig::default()
    };
    let no_indexes = EngineConfig::default().without_indexes();

    // Sanity: all three configurations agree before we time them.
    let a = run_read_with(&g, POINT_QUERY, &params, &indexed).unwrap();
    let b = run_read_with(&g, POINT_QUERY, &params, &label_only).unwrap();
    let d = run_read_with(&g, POINT_QUERY, &params, &no_indexes).unwrap();
    assert!(a.bag_eq(&b) && a.bag_eq(&d), "configs disagree");
    assert_eq!(a.len(), 1);

    // Allocation tripwires. The composite seek touches one posting list
    // and one row — its budget is a few hundred allocations (parse +
    // plan + projection), nowhere near the node count. The label scan
    // walks every Account row but must stay within a small per-row
    // budget: scan sources no longer clone-then-grow the driving record
    // per emitted row (`Record::cloned_with_extra`), nor copy the scanned
    // item list per operator (`Arc`-shared).
    let (_, seek_allocs) = cypher_bench::allocations_during(|| {
        criterion::black_box(run_read_with(&g, POINT_QUERY, &params, &indexed).unwrap())
    });
    let (_, scan_allocs) = cypher_bench::allocations_during(|| {
        criterion::black_box(run_read_with(&g, POINT_QUERY, &params, &label_only).unwrap())
    });
    println!(
        "e19: allocations — index seek {seek_allocs}, label scan {scan_allocs} \
         ({:.2}/row)",
        scan_allocs as f64 / NODES as f64
    );
    assert!(
        seek_allocs < 2_000,
        "point seek allocation budget blown: {seek_allocs}"
    );
    assert!(
        (scan_allocs as usize) < 3 * NODES,
        "label scan allocation budget blown: {scan_allocs} for {NODES} rows"
    );

    let mut report = cypher_bench::BenchReport::new("e19");
    report.metric("seek_allocations", seek_allocs as f64);
    report.metric("scan_allocations", scan_allocs as f64);
    report.metric(
        "index_seek_us",
        cypher_bench::measure_us(|| {
            run_read_with(&g, POINT_QUERY, &params, &indexed).unwrap();
        }),
    );
    report.metric(
        "label_scan_us",
        cypher_bench::measure_us(|| {
            run_read_with(&g, POINT_QUERY, &params, &label_only).unwrap();
        }),
    );
    report.metric(
        "full_scan_us",
        cypher_bench::measure_us(|| {
            run_read_with(&g, POINT_QUERY, &params, &no_indexes).unwrap();
        }),
    );
    report.emit();

    let mut group = c.benchmark_group("e19_index_seek");
    group.bench_with_input(BenchmarkId::new("full_scan", NODES), &g, |b, g| {
        b.iter(|| run_read_with(g, POINT_QUERY, &params, &no_indexes).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("label_scan", NODES), &g, |b, g| {
        b.iter(|| run_read_with(g, POINT_QUERY, &params, &label_only).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("index_seek", NODES), &g, |b, g| {
        b.iter(|| run_read_with(g, POINT_QUERY, &params, &indexed).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("shard_seek", NODES), &g, |b, g| {
        b.iter(|| run_read_with(g, SHARD_QUERY, &params, &indexed).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("shard_scan", NODES), &g, |b, g| {
        b.iter(|| run_read_with(g, SHARD_QUERY, &params, &no_indexes).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
