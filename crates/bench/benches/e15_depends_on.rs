//! Experiment E15: the Section 3 network-management query (transitive
//! `DEPENDS_ON*`) over growing synthetic data centers, planner engine vs
//! reference evaluator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cypher::{run_read, run_reference, Params};
use cypher_workload::datacenter;

const QUERY: &str = "MATCH (svc:Service)<-[:DEPENDS_ON*]-(dep:Service)
    RETURN svc.name AS svc, count(DISTINCT dep) AS dependents
    ORDER BY dependents DESC
    LIMIT 1";

fn bench(c: &mut Criterion) {
    let params = Params::new();
    let mut group = c.benchmark_group("e15_depends_on");
    let mut report = cypher_bench::BenchReport::new("e15");
    for services in [50usize, 100, 200] {
        let g = datacenter(services, 4, 2, 42);
        group.bench_with_input(BenchmarkId::new("engine", services), &g, |b, g| {
            b.iter(|| run_read(g, QUERY, &params).unwrap())
        });
        report.metric(
            &format!("engine_{services}_us"),
            cypher_bench::measure_us(|| {
                run_read(&g, QUERY, &params).unwrap();
            }),
        );
        if services <= 100 {
            group.bench_with_input(BenchmarkId::new("reference", services), &g, |b, g| {
                b.iter(|| run_reference(g, QUERY, &params).unwrap())
            });
            report.metric(
                &format!("reference_{services}_us"),
                cypher_bench::measure_us(|| {
                    run_reference(&g, QUERY, &params).unwrap();
                }),
            );
        }
    }
    report.emit();
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
