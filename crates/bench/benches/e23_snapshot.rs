//! Experiment E23: what multi-version snapshots cost.
//!
//! Four series over the versioned core (`cypher_graph::version`) and the
//! `Session` API, all on a 100k-node / 50k-relationship graph:
//!
//! * `reader_admission` — `VersionedGraph::latest()`: the lock-free
//!   pin-and-clone a session pays to start a read;
//! * `cow_commit/point` — one write transaction doing a single `SET`
//!   then publishing: the whole copy-on-write bill for a point update
//!   (clone the graph shell, copy the touched chunk + posting lists,
//!   seal nothing — in-memory);
//! * `cow_commit/create100` — a 100-node batch per commit, the
//!   amortized shape real workloads have;
//! * `read_under_writes` — a session query racing a writer that commits
//!   continuously: read latency must stay flat (readers are never
//!   blocked by the writer — asserted, not just measured).
//!
//! A derived line prints the admission cost and the reads-vs-writes
//! interference ratio for the README table.

use criterion::{criterion_group, criterion_main, Criterion};
use cypher::{Database, Params, PropertyGraph, Value, VersionedGraph};
use std::time::Instant;

fn build_graph(nodes: usize) -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let mut prev = None;
    for i in 0..nodes {
        let n = g.add_node(
            &["Account"],
            [
                ("serial", Value::int(i as i64)),
                ("shard", Value::int((i % 16) as i64)),
            ],
        );
        if i % 2 == 0 {
            if let Some(p) = prev {
                g.add_rel(p, n, "NEXT", []).unwrap();
            }
        }
        prev = Some(n);
    }
    g
}

fn bench(c: &mut Criterion) {
    let mut report = cypher_bench::BenchReport::new("e23");
    let mut group = c.benchmark_group("e23_snapshot");

    // --- reader admission -------------------------------------------------
    let vg = VersionedGraph::new(build_graph(100_000), 0);
    group.bench_function("reader_admission/100k", |b| b.iter(|| vg.latest()));
    {
        let t = Instant::now();
        let reps = 200_000u32;
        for _ in 0..reps {
            std::hint::black_box(vg.latest());
        }
        let per = t.elapsed().as_nanos() as f64 / reps as f64;
        eprintln!("e23: reader admission {per:.0} ns (lock-free pin + Arc clone)");
        report.metric("reader_admission_ns", per);
    }

    // --- copy-on-write commit cost ---------------------------------------
    // "serial" was interned while building the graph.
    let serial = vg.latest().interner().get("serial").unwrap();
    group.bench_function("cow_commit/point/100k", |b| {
        let mut i = 0i64;
        b.iter(|| {
            let mut txn = vg.begin_write();
            let node = cypher::NodeId((i as u64) % 100_000);
            txn.graph_mut()
                .set_node_prop(node, serial, Value::int(1_000_000 + i))
                .unwrap();
            i += 1;
            txn.commit()
        })
    });
    group.bench_function("cow_commit/create100/100k", |b| {
        b.iter(|| {
            let mut txn = vg.begin_write();
            for _ in 0..100 {
                txn.graph_mut().add_node(&["Fresh"], []);
            }
            txn.commit()
        })
    });

    // --- reads racing a continuous writer ---------------------------------
    let params = Params::new();
    let mut cfg = cypher::EngineConfig::default();
    cfg.persistence = None;
    let db = Database::open_with(cfg).unwrap();
    let mut seeder = db.session();
    seeder
        .query(
            "UNWIND range(1, 20000) AS i CREATE (:Account {serial: i, shard: i % 16})",
            &params,
        )
        .unwrap();
    let q = "MATCH (n:Account {shard: 3}) RETURN count(*) AS c";
    let mut quiet_session = db.session();
    // Baseline: reads on a quiet database.
    let quiet = {
        let t = Instant::now();
        let reps = 40;
        for _ in 0..reps {
            std::hint::black_box(quiet_session.query(q, &params).unwrap());
        }
        t.elapsed().as_secs_f64() / reps as f64
    };
    // Same reads while a writer commits non-stop.
    let stop = std::sync::atomic::AtomicBool::new(false);
    let mut writer = db.session();
    let mut reader = db.session();
    let busy = std::thread::scope(|s| {
        let stop = &stop;
        let params = &params;
        s.spawn(move || {
            let mut i = 0;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                writer
                    .query(&format!("CREATE (:Churn {{i: {i}}})"), params)
                    .unwrap();
                i += 1;
            }
        });
        let t = Instant::now();
        let reps = 40;
        for _ in 0..reps {
            std::hint::black_box(reader.query(q, params).unwrap());
        }
        let busy = t.elapsed().as_secs_f64() / reps as f64;
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        busy
    });
    eprintln!(
        "e23: read latency quiet {:.3} ms vs under-writes {:.3} ms ({:.2}x)",
        quiet * 1e3,
        busy * 1e3,
        busy / quiet
    );
    // Snapshot isolation means reads can never *block* on the writer;
    // on a single hardware thread they still share the core, so allow
    // generous headroom before calling interference a regression.
    assert!(
        busy < quiet * 8.0,
        "reads under write churn degraded {:.1}x — readers look blocked",
        busy / quiet
    );

    report.metric("read_quiet_us", quiet * 1e6);
    report.metric("read_under_writes_us", busy * 1e6);
    report.metric("read_interference_ratio", busy / quiet);
    report.emit();

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
