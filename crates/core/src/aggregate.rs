//! Aggregating functions: `count`, `sum`, `avg`, `min`, `max`, `collect`,
//! `stdev`, `stdevp`, `percentileCont`, `percentileDisc`.
//!
//! Aggregation is described in Section 3 of the paper: in a `WITH` or
//! `RETURN` list, non-aggregating expressions act as implicit grouping
//! keys, and each aggregate folds over the rows of its group. `null`
//! inputs are skipped (so `count(s)` over the table of Figure 2a yields 0
//! for Nils), and `DISTINCT` folds each distinct value once (as in
//! `count(DISTINCT p2)` of the running example).
//!
//! Since the partial-aggregation pushdown, an [`Aggregator`] is a
//! **mergeable partial state**: any row subset can be folded into its own
//! accumulator and the accumulators combined with [`Aggregator::merge`].
//! The morsel-driven executor exploits this to aggregate inside the
//! worker pool; merging partials **in morsel order** reproduces the
//! sequential fold bit-for-bit:
//!
//! * `count`/`sum`/`avg`/`min`/`max`/`stdev` keep **constant-size** state,
//!   so aggregating never materializes its input;
//! * float sums (`sum`, `avg`, `stdev`) accumulate **exactly** via
//!   [`ExactFloatSum`] (Shewchuk's nonoverlapping-expansion algorithm, as
//!   in Python's `math.fsum`), which makes the result independent of both
//!   accumulation and merge order — the property that lets morsel size
//!   *and* thread count vary without perturbing a single bit;
//! * `collect` and the percentiles materialize by definition; `DISTINCT`
//!   variants keep the distinct set (hash-indexed, first-occurrence
//!   order) and fold it at finish time, so merging never double-counts.

use crate::error::{err, EvalError};
use cypher_graph::Value;
use std::collections::HashMap;
use std::hash::Hasher;

/// Which aggregate a call denotes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggKind {
    /// `count(expr)` — number of non-null inputs.
    Count,
    /// `count(*)` — number of rows.
    CountStar,
    /// `sum(expr)`.
    Sum,
    /// `avg(expr)`.
    Avg,
    /// `min(expr)` (by comparability; incomparable mixes use orderability).
    Min,
    /// `max(expr)`.
    Max,
    /// `collect(expr)` — list of non-null inputs.
    Collect,
    /// `stdev(expr)` — sample standard deviation.
    StDev,
    /// `stdevp(expr)` — population standard deviation.
    StDevP,
    /// `percentileCont(expr, p)` — linear-interpolation percentile.
    PercentileCont,
    /// `percentileDisc(expr, p)` — nearest-rank percentile.
    PercentileDisc,
}

impl AggKind {
    /// Maps a (lower-case) function name to its kind.
    pub fn from_name(name: &str) -> Option<AggKind> {
        Some(match name {
            "count" => AggKind::Count,
            "sum" => AggKind::Sum,
            "avg" => AggKind::Avg,
            "min" => AggKind::Min,
            "max" => AggKind::Max,
            "collect" => AggKind::Collect,
            "stdev" => AggKind::StDev,
            "stdevp" => AggKind::StDevP,
            "percentilecont" => AggKind::PercentileCont,
            "percentiledisc" => AggKind::PercentileDisc,
            _ => return None,
        })
    }

    /// True when [`Aggregator::retract`] undoes a [`Aggregator::push`] of
    /// the same value *exactly* — feed-then-retract finishes identically
    /// to never having fed.
    ///
    /// Counts and the exact sums/moments retract by inverse arithmetic
    /// ([`ExactFloatSum`] keeps separate sign expansions, so `+x` then
    /// `−x` cancels before the single final rounding). Non-distinct
    /// `min`/`max` keep only the running extremum and cannot un-see a
    /// retracted winner; `collect` is order-sensitive (removing an
    /// arbitrary occurrence cannot restore the remaining feed order); the
    /// percentiles carry a last-row auxiliary argument. `DISTINCT`
    /// variants keep their full (refcounted) input set, which makes every
    /// order-insensitive finisher retractable — only `collect(DISTINCT)`
    /// (first-occurrence order) and the percentiles stay out.
    pub fn is_retractable(self, distinct: bool) -> bool {
        match self {
            AggKind::Count
            | AggKind::CountStar
            | AggKind::Sum
            | AggKind::Avg
            | AggKind::StDev
            | AggKind::StDevP => true,
            AggKind::Min | AggKind::Max => distinct,
            AggKind::Collect | AggKind::PercentileCont | AggKind::PercentileDisc => false,
        }
    }
}

// ---------------------------------------------------------------------------
// Exact float summation
// ---------------------------------------------------------------------------

/// Grow-expansion step (Shewchuk): adds `x` into a list of nonzero,
/// nonoverlapping partials in increasing magnitude. Returns `false` when
/// the running sum's magnitude left the `f64` range (the caller decides
/// how to degrade; the partials are cleared so no `inf`/`NaN` garbage can
/// linger in them).
fn grow_expansion(partials: &mut Vec<f64>, mut x: f64) -> bool {
    let mut i = 0;
    for j in 0..partials.len() {
        let mut y = partials[j];
        if x.abs() < y.abs() {
            std::mem::swap(&mut x, &mut y);
        }
        let hi = x + y;
        if hi.is_infinite() {
            partials.clear();
            return false;
        }
        let lo = y - (hi - x);
        if lo != 0.0 {
            partials[i] = lo;
            i += 1;
        }
        x = hi;
    }
    partials.truncate(i);
    if x != 0.0 {
        partials.push(x);
    }
    true
}

/// Correctly rounds an expansion (nonzero, nonoverlapping, increasing
/// magnitude) to the nearest `f64` — CPython `msum`'s final loop: descend
/// from the largest partial, tracking the remainder for the
/// round-half-even correction.
fn round_expansion(partials: &[f64]) -> f64 {
    let n = partials.len();
    if n == 0 {
        return 0.0;
    }
    let mut i = n - 1;
    let mut hi = partials[i];
    let mut lo = 0.0;
    while i > 0 {
        i -= 1;
        let x = hi;
        let y = partials[i];
        hi = x + y;
        let yr = hi - x;
        lo = y - yr;
        if lo != 0.0 {
            break;
        }
    }
    // If the truncated remainder is exactly half an ulp, the partial
    // below it decides the rounding direction.
    if i > 0 && ((lo < 0.0 && partials[i - 1] < 0.0) || (lo > 0.0 && partials[i - 1] > 0.0)) {
        let y = lo * 2.0;
        let x = hi + y;
        if y == x - hi {
            hi = x;
        }
    }
    hi
}

/// An exact, order-independent accumulator for `f64` sums.
///
/// Positive and negative inputs accumulate into **separate** expansions
/// (Shewchuk grow-expansions, the machinery behind Python's `math.fsum`),
/// so each expansion's exact value grows monotonically in magnitude;
/// [`ExactFloatSum::value`] merges the two exactly and rounds correctly
/// once. Because every represented value is *exact*, the result does not
/// depend on the order in which values (or other accumulators, via
/// [`ExactFloatSum::merge`]) were added — which is what keeps float
/// aggregates bit-identical across every morsel size and thread count.
///
/// Degradation is order-independent too: a same-sign running total can
/// only overflow when the *exact* sum of that sign's inputs exceeds the
/// `f64` range — a property of the input multiset, not of the order — at
/// which point that side saturates to `±inf` (both sides saturated, or a
/// `NaN` input, yield `NaN`, mirroring IEEE `inf − inf`). The one
/// divergence from real arithmetic: a saturated side no longer cancels
/// against the other (`Σ⁺ = 1.5·MAX, Σ⁻ = −MAX` reports `+inf`, not
/// `0.5·MAX`) — deterministically, where plain left-fold summation would
/// report `inf`, a finite value, or `NaN` depending on encounter order.
#[derive(Clone, Debug, Default)]
pub struct ExactFloatSum {
    /// Expansion of the positive inputs (its *value* is exact; individual
    /// rounding remainders inside it may be negative).
    pos: Vec<f64>,
    /// Expansion of the negative inputs.
    neg: Vec<f64>,
    /// The positive side's exact total left the `f64` range (or a `+inf`
    /// was fed).
    pos_sat: bool,
    /// Likewise for the negative side.
    neg_sat: bool,
    /// A `NaN` was fed.
    nan: bool,
}

impl ExactFloatSum {
    /// An empty sum (value `0.0`).
    pub fn new() -> ExactFloatSum {
        ExactFloatSum::default()
    }

    /// Adds one value.
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            self.nan = true;
        } else if x > 0.0 {
            if !self.pos_sat && !grow_expansion(&mut self.pos, x) {
                self.pos_sat = true;
            }
        } else if x < 0.0 {
            if !self.neg_sat && !grow_expansion(&mut self.neg, x) {
                self.neg_sat = true;
            }
        }
        // x == ±0.0 contributes nothing.
    }

    /// Folds another accumulator in. Exactness makes this associative and
    /// commutative.
    pub fn merge(&mut self, other: &ExactFloatSum) {
        self.nan |= other.nan;
        if other.pos_sat {
            self.pos_sat = true;
            self.pos.clear();
        } else if !self.pos_sat {
            // The partials of a sign expansion are its exact value; their
            // individual signs don't matter to the overflow argument.
            for &p in &other.pos {
                if !grow_expansion(&mut self.pos, p) {
                    self.pos_sat = true;
                    break;
                }
            }
        }
        if other.neg_sat {
            self.neg_sat = true;
            self.neg.clear();
        } else if !self.neg_sat {
            for &p in &other.neg {
                if !grow_expansion(&mut self.neg, p) {
                    self.neg_sat = true;
                    break;
                }
            }
        }
    }

    /// True when no `NaN`/overflow degraded the sum — the value is the
    /// exact real sum, correctly rounded.
    pub fn is_exact(&self) -> bool {
        !(self.nan || self.pos_sat || self.neg_sat)
    }

    /// The correctly-rounded sum.
    pub fn value(&self) -> f64 {
        if self.nan || (self.pos_sat && self.neg_sat) {
            return f64::NAN;
        }
        if self.pos_sat {
            return f64::INFINITY;
        }
        if self.neg_sat {
            return f64::NEG_INFINITY;
        }
        // Combine the two expansions exactly. |Σ⁺| and |Σ⁻| are both
        // finite, and every carried partial sum of the mixed cascade is
        // bounded by max(|Σ⁺|, |Σ⁻|) (opposite signs only cancel), so
        // this cannot overflow.
        let mut combined = self.pos.clone();
        for &p in &self.neg {
            if !grow_expansion(&mut combined, p) {
                // Unreachable by the bound above; degrade deterministically
                // rather than panic in release builds.
                debug_assert!(false, "mixed-sign combine overflowed");
                return f64::NAN;
            }
        }
        round_expansion(&combined)
    }

    /// The partials whose exact sum is this accumulator's value (only
    /// meaningful while [`ExactFloatSum::is_exact`]); used by the exact
    /// moment arithmetic of `stdev`.
    fn exact_parts(&self) -> impl Iterator<Item = f64> + '_ {
        self.pos.iter().chain(self.neg.iter()).copied()
    }
}

// ---------------------------------------------------------------------------
// Distinct sets
// ---------------------------------------------------------------------------

/// One slot of a [`DistinctSet`]: the value plus how many live copies it
/// currently represents (`0` = tombstone).
#[derive(Clone, Debug)]
struct DistinctSlot {
    value: Value,
    live: u64,
}

/// A refcounted multiset of [`Value`]s under Cypher *equivalence*
/// (`null ≡ null`, `1 ≡ 1.0`), hash-indexed so membership is O(1)
/// expected, that exposes its **live** distinct values in
/// first-live-insertion order.
///
/// Removal tombstones a slot rather than shifting the slot vector (bucket
/// entries index into it), and a re-inserted value takes a **new** slot at
/// the end. That makes full retraction order-transparent: inserting a
/// value, draining every copy of it, and inserting it again yields the
/// same visible sequence as if the drained copies were never inserted —
/// the property the incremental-view retraction path relies on.
#[derive(Clone, Debug, Default)]
pub struct DistinctSet {
    slots: Vec<DistinctSlot>,
    buckets: HashMap<u64, Vec<usize>>,
    distinct: usize,
}

impl DistinctSet {
    /// An empty set.
    pub fn new() -> DistinctSet {
        DistinctSet::default()
    }

    fn hash_of(v: &Value) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        v.hash_equivalent(&mut h);
        h.finish()
    }

    fn live_slot(&self, h: u64, v: &Value) -> Option<usize> {
        self.buckets.get(&h)?.iter().copied().find(|&i| {
            let s = &self.slots[i];
            s.live > 0 && s.value.equivalent(v)
        })
    }

    /// Inserts one copy; returns `true` when the value was not yet live
    /// (it became visible by this insertion).
    pub fn insert(&mut self, v: Value) -> bool {
        let h = Self::hash_of(&v);
        if let Some(i) = self.live_slot(h, &v) {
            self.slots[i].live += 1;
            return false;
        }
        self.buckets.entry(h).or_default().push(self.slots.len());
        self.slots.push(DistinctSlot { value: v, live: 1 });
        self.distinct += 1;
        true
    }

    /// Removes one copy; returns `true` when this removed the **last**
    /// live copy (the value became invisible). Removing an absent value is
    /// a no-op returning `false`.
    pub fn remove(&mut self, v: &Value) -> bool {
        let h = Self::hash_of(v);
        let Some(i) = self.live_slot(h, v) else {
            return false;
        };
        self.slots[i].live -= 1;
        if self.slots[i].live == 0 {
            self.distinct -= 1;
            true
        } else {
            false
        }
    }

    /// The live distinct values in first-live-insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.slots.iter().filter(|s| s.live > 0).map(|s| &s.value)
    }

    /// Moves the live values out (first-live-insertion order).
    pub fn into_values(self) -> Vec<Value> {
        self.slots
            .into_iter()
            .filter(|s| s.live > 0)
            .map(|s| s.value)
            .collect()
    }

    /// Number of live distinct values.
    pub fn len(&self) -> usize {
        self.distinct
    }

    /// True when no value is live.
    pub fn is_empty(&self) -> bool {
        self.distinct == 0
    }

    /// Unions another set in — copy counts add — keeping first-occurrence
    /// order (this set's occurrences count as earlier).
    pub fn merge(&mut self, other: DistinctSet) {
        for s in other.slots {
            if s.live == 0 {
                continue;
            }
            let h = Self::hash_of(&s.value);
            if let Some(i) = self.live_slot(h, &s.value) {
                self.slots[i].live += s.live;
            } else {
                self.buckets.entry(h).or_default().push(self.slots.len());
                self.slots.push(s);
                self.distinct += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Aggregator
// ---------------------------------------------------------------------------

/// The per-kind partial state. `DISTINCT` aggregates do not use it at all:
/// they keep their [`DistinctSet`] and fold at finish time (partial folds
/// over overlapping distinct sets would double-count).
#[derive(Debug, Clone)]
enum AggState {
    /// `count(expr)`: non-null inputs seen.
    Count(u64),
    /// `sum` / `avg`.
    Numeric {
        /// Non-null inputs seen.
        count: u64,
        /// Exact integer sum. `i128` cannot overflow under fewer than
        /// 2⁶⁴ `i64` terms, so additions — and retractions — are always
        /// exact; the `i64` range check happens once, at finish.
        int_sum: i128,
        /// Non-integer numeric inputs currently folded in (a count, not a
        /// flag, so retracting the last float restores integer typing).
        non_int: u64,
        /// Exact float sum of every input (ints included).
        float_sum: ExactFloatSum,
        /// First non-numeric input, reported at finish (matching the
        /// sequential fold, which also surfaces the earliest offender).
        error: Option<EvalError>,
    },
    /// `min` / `max`: the running extremum.
    Extremum(Option<Value>),
    /// `stdev` / `stdevp`: count plus exact Σx and Σx².
    Moments {
        /// Non-null inputs seen.
        count: u64,
        /// Exact Σx.
        sum: ExactFloatSum,
        /// Exact Σx².
        sum_sq: ExactFloatSum,
        /// First non-numeric input.
        error: Option<EvalError>,
    },
    /// `collect` and the percentiles: all inputs, in feed order.
    Values(Vec<Value>),
}

/// A running aggregate over one group — a **mergeable partial state**.
#[derive(Debug, Clone)]
pub struct Aggregator {
    kind: AggKind,
    distinct: bool,
    /// Rows fed (for `count(*)`).
    rows: u64,
    state: AggState,
    /// The distinct inputs, for `DISTINCT` variants.
    seen: DistinctSet,
    /// Second argument (percentile), captured from the last row.
    aux: Option<Value>,
}

fn fresh_state(kind: AggKind) -> AggState {
    match kind {
        AggKind::Count | AggKind::CountStar => AggState::Count(0),
        AggKind::Sum | AggKind::Avg => AggState::Numeric {
            count: 0,
            int_sum: 0,
            non_int: 0,
            float_sum: ExactFloatSum::new(),
            error: None,
        },
        AggKind::Min | AggKind::Max => AggState::Extremum(None),
        AggKind::StDev | AggKind::StDevP => AggState::Moments {
            count: 0,
            sum: ExactFloatSum::new(),
            sum_sq: ExactFloatSum::new(),
            error: None,
        },
        AggKind::Collect | AggKind::PercentileCont | AggKind::PercentileDisc => {
            AggState::Values(Vec::new())
        }
    }
}

fn non_numeric(v: &Value) -> EvalError {
    EvalError::new(format!("cannot aggregate {}", v.type_name()))
}

impl Aggregator {
    /// Creates an empty accumulator.
    pub fn new(kind: AggKind, distinct: bool) -> Self {
        Aggregator {
            kind,
            distinct,
            rows: 0,
            state: fresh_state(kind),
            seen: DistinctSet::new(),
            aux: None,
        }
    }

    /// Feeds one row. For `count(*)` the value is ignored; for other
    /// aggregates `null` inputs are skipped.
    pub fn push(&mut self, v: Value) {
        self.rows += 1;
        if self.kind == AggKind::CountStar || v.is_null() {
            return;
        }
        if self.distinct {
            // Distinct aggregates fold their set at finish time.
            self.seen.insert(v);
            return;
        }
        accumulate(self.kind, &mut self.state, v);
    }

    /// Feeds the auxiliary (second) argument for percentile aggregates.
    pub fn push_aux(&mut self, v: Value) {
        self.aux = Some(v);
    }

    /// Undoes one [`Aggregator::push`] of `v`. Only meaningful when
    /// [`AggKind::is_retractable`] holds for this aggregator's kind —
    /// feeding then retracting a value finishes identically to never
    /// having fed it (counts reverse, `i128` integer sums subtract
    /// exactly, and [`ExactFloatSum`] cancels `+x` against `−x` exactly
    /// before its single final rounding). A recorded non-numeric error
    /// stays sticky, exactly as it would had the offending row been fed
    /// into a fresh accumulator and merged away.
    pub fn retract(&mut self, v: Value) {
        debug_assert!(
            self.kind.is_retractable(self.distinct),
            "retract on non-retractable {:?}",
            self.kind
        );
        self.rows = self.rows.saturating_sub(1);
        if self.kind == AggKind::CountStar || v.is_null() {
            return;
        }
        if self.distinct {
            self.seen.remove(&v);
            return;
        }
        match &mut self.state {
            AggState::Count(n) => *n = n.saturating_sub(1),
            AggState::Numeric {
                count,
                int_sum,
                non_int,
                float_sum,
                ..
            } => {
                *count = count.saturating_sub(1);
                if let Some(x) = v.as_number() {
                    float_sum.add(-x);
                    match v {
                        Value::Integer(i) => *int_sum -= i as i128,
                        _ => *non_int = non_int.saturating_sub(1),
                    }
                }
            }
            AggState::Moments {
                count, sum, sum_sq, ..
            } => {
                *count = count.saturating_sub(1);
                if let Some(x) = v.as_number() {
                    sum.add(-x);
                    // Subtract x² exactly: the negated rounded product
                    // plus the negated two-product remainder.
                    let hi = x * x;
                    sum_sq.add(-hi);
                    if hi.is_finite() {
                        sum_sq.add(-x.mul_add(x, -hi));
                    }
                }
            }
            AggState::Extremum(_) | AggState::Values(_) => {
                debug_assert!(false, "retract on non-retractable state");
            }
        }
    }

    /// Folds another partial accumulator of the same kind into this one.
    /// `other` must cover **later** rows than `self`; merging partials in
    /// row (morsel) order reproduces the sequential fold exactly —
    /// including `min`/`max` tie-breaking, `collect` order, distinct
    /// first-occurrence order, and (via [`ExactFloatSum`]) float bits.
    pub fn merge(&mut self, other: Aggregator) {
        debug_assert_eq!(self.kind, other.kind);
        debug_assert_eq!(self.distinct, other.distinct);
        self.rows += other.rows;
        if other.aux.is_some() {
            self.aux = other.aux;
        }
        if self.distinct {
            self.seen.merge(other.seen);
            return;
        }
        match (&mut self.state, other.state) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (
                AggState::Numeric {
                    count,
                    int_sum,
                    non_int,
                    float_sum,
                    error,
                },
                AggState::Numeric {
                    count: c2,
                    int_sum: i2,
                    non_int: n2,
                    float_sum: f2,
                    error: e2,
                },
            ) => {
                *count += c2;
                *int_sum += i2;
                *non_int += n2;
                float_sum.merge(&f2);
                if error.is_none() {
                    *error = e2;
                }
            }
            (AggState::Extremum(cur), AggState::Extremum(cand)) => {
                if let Some(c) = cand {
                    replace_extremum(self.kind, cur, c);
                }
            }
            (
                AggState::Moments {
                    count,
                    sum,
                    sum_sq,
                    error,
                },
                AggState::Moments {
                    count: c2,
                    sum: s2,
                    sum_sq: q2,
                    error: e2,
                },
            ) => {
                *count += c2;
                sum.merge(&s2);
                sum_sq.merge(&q2);
                if error.is_none() {
                    *error = e2;
                }
            }
            (AggState::Values(a), AggState::Values(b)) => a.extend(b),
            _ => unreachable!("merging aggregators of different kinds"),
        }
    }

    /// Produces the aggregate result.
    pub fn finish(self) -> Result<Value, EvalError> {
        if self.kind == AggKind::CountStar {
            return Ok(Value::int(self.rows as i64));
        }
        if self.distinct {
            // Fold the distinct set through the slice-based finishers; the
            // set's first-occurrence order is deterministic, so so is the
            // fold.
            let vals = self.seen.into_values();
            return finish_slice(self.kind, vals, self.aux);
        }
        match self.state {
            AggState::Count(n) => Ok(Value::int(n as i64)),
            AggState::Numeric {
                count,
                int_sum,
                non_int,
                float_sum,
                error,
            } => {
                if let Some(e) = error {
                    return Err(e);
                }
                match self.kind {
                    AggKind::Sum => {
                        if count == 0 {
                            Ok(Value::int(0))
                        } else if non_int == 0 {
                            i64::try_from(int_sum)
                                .map(Value::int)
                                .map_err(|_| EvalError::new("integer overflow in sum()"))
                        } else {
                            Ok(Value::float(float_sum.value()))
                        }
                    }
                    AggKind::Avg => {
                        if count == 0 {
                            Ok(Value::Null)
                        } else {
                            Ok(Value::float(float_sum.value() / count as f64))
                        }
                    }
                    _ => unreachable!(),
                }
            }
            AggState::Extremum(v) => Ok(v.unwrap_or(Value::Null)),
            AggState::Moments {
                count,
                sum,
                sum_sq,
                error,
            } => {
                if let Some(e) = error {
                    return Err(e);
                }
                finish_moments(self.kind, count, &sum, &sum_sq)
            }
            AggState::Values(vals) => finish_slice(self.kind, vals, self.aux),
        }
    }
}

/// Feeds one non-null value into a non-distinct state.
fn accumulate(kind: AggKind, state: &mut AggState, v: Value) {
    match state {
        AggState::Count(n) => *n += 1,
        AggState::Numeric {
            count,
            int_sum,
            non_int,
            float_sum,
            error,
        } => {
            *count += 1;
            match v.as_number() {
                Some(x) => {
                    float_sum.add(x);
                    match v {
                        Value::Integer(i) => *int_sum += i as i128,
                        _ => *non_int += 1,
                    }
                }
                None => {
                    if error.is_none() {
                        *error = Some(non_numeric(&v));
                    }
                }
            }
        }
        AggState::Extremum(cur) => replace_extremum(kind, cur, v),
        AggState::Moments {
            count,
            sum,
            sum_sq,
            error,
        } => {
            *count += 1;
            match v.as_number() {
                Some(x) => {
                    sum.add(x);
                    add_square_exact(sum_sq, x);
                }
                None => {
                    if error.is_none() {
                        *error = Some(non_numeric(&v));
                    }
                }
            }
        }
        AggState::Values(vals) => vals.push(v),
    }
}

/// Replaces the running extremum when the candidate wins. Tie behaviour
/// matches the original fold over materialized values (`Iterator::min_by`
/// keeps the *first* of equal minima, `max_by` the *last* of equal
/// maxima), so merging partials in row order is transparent.
fn replace_extremum(kind: AggKind, cur: &mut Option<Value>, cand: Value) {
    let take = match cur {
        None => true,
        Some(c) => match kind {
            AggKind::Min => cand.cmp_order(c) == std::cmp::Ordering::Less,
            AggKind::Max => cand.cmp_order(c) != std::cmp::Ordering::Less,
            _ => unreachable!(),
        },
    };
    if take {
        *cur = Some(cand);
    }
}

/// Adds `x²` to an accumulator **exactly**: the rounded product plus its
/// two-product remainder (`fma(x, x, −x·x)`), so Σx² carries no per-term
/// rounding loss.
fn add_square_exact(acc: &mut ExactFloatSum, x: f64) {
    let hi = x * x;
    acc.add(hi);
    if hi.is_finite() {
        acc.add(x.mul_add(x, -hi));
    }
}

/// Adds `a·b` to an accumulator exactly (two-product via fused
/// multiply-add).
fn add_product_exact(acc: &mut ExactFloatSum, a: f64, b: f64) {
    let hi = a * b;
    acc.add(hi);
    if hi.is_finite() {
        acc.add(a.mul_add(b, -hi));
    }
}

fn finish_moments(
    kind: AggKind,
    n: u64,
    sum: &ExactFloatSum,
    sum_sq: &ExactFloatSum,
) -> Result<Value, EvalError> {
    if n == 0 {
        return Ok(Value::Null);
    }
    let denom = match kind {
        AggKind::StDev => n.saturating_sub(1),
        AggKind::StDevP => n,
        _ => unreachable!(),
    };
    if denom == 0 {
        return Ok(Value::float(0.0));
    }
    let nf = n as f64; // exact: group sizes are far below 2^53
    let ss_n = if sum.is_exact() && sum_sq.is_exact() {
        // n·Σ(x−mean)² = n·Σx² − (Σx)², formed as one exact expansion so
        // the subtraction — where the naive E[x²]−E[x]² formulation
        // cancels catastrophically — happens before any rounding. Both
        // moments are exact (squares enter via two-products), so the only
        // roundings are the final division and the square root.
        let mut acc = ExactFloatSum::new();
        for p in sum_sq.exact_parts() {
            add_product_exact(&mut acc, p, nf);
        }
        let parts: Vec<f64> = sum.exact_parts().collect();
        for &a in &parts {
            for &b in &parts {
                let hi = a * b;
                acc.add(-hi);
                if hi.is_finite() {
                    acc.add(-a.mul_add(b, -hi));
                }
            }
        }
        acc.value()
    } else {
        // Degraded (non-finite inputs or range overflow): IEEE algebra,
        // still a pure function of the input multiset.
        let s = sum.value();
        sum_sq.value() * nf - s * s
    };
    // Clamp rounding residue at 0, but let NaN/inf propagate.
    let ss_n = if ss_n.is_nan() { ss_n } else { ss_n.max(0.0) };
    Ok(Value::float((ss_n / (nf * denom as f64)).sqrt()))
}

/// The slice-based finishers: `collect`, the percentiles, and every
/// `DISTINCT` variant (whose state *is* the value slice).
fn finish_slice(kind: AggKind, vals: Vec<Value>, aux: Option<Value>) -> Result<Value, EvalError> {
    match kind {
        AggKind::Count => Ok(Value::int(vals.len() as i64)),
        AggKind::Collect => Ok(Value::List(vals)),
        AggKind::Sum => sum(&vals),
        AggKind::Avg => {
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            let total = numeric_sum(&vals)?;
            Ok(Value::float(total / vals.len() as f64))
        }
        AggKind::Min => Ok(vals
            .into_iter()
            .min_by(|a, b| a.cmp_order(b))
            .unwrap_or(Value::Null)),
        AggKind::Max => Ok(vals
            .into_iter()
            .max_by(|a, b| a.cmp_order(b))
            .unwrap_or(Value::Null)),
        AggKind::StDev => stdev(&vals, true),
        AggKind::StDevP => stdev(&vals, false),
        AggKind::PercentileCont => percentile(&vals, aux, true),
        AggKind::PercentileDisc => percentile(&vals, aux, false),
        AggKind::CountStar => unreachable!("count(*) handled before"),
    }
}

fn numeric_sum(vals: &[Value]) -> Result<f64, EvalError> {
    // Exact accumulation here too, so the distinct-set fold agrees with
    // the incremental path on identical inputs.
    let mut total = ExactFloatSum::new();
    for v in vals {
        total.add(v.as_number().ok_or_else(|| non_numeric(v))?);
    }
    Ok(total.value())
}

fn sum(vals: &[Value]) -> Result<Value, EvalError> {
    if vals.is_empty() {
        return Ok(Value::int(0));
    }
    let all_ints = vals.iter().all(|v| matches!(v, Value::Integer(_)));
    if all_ints {
        let mut acc: i64 = 0;
        for v in vals {
            acc = acc
                .checked_add(v.as_int().unwrap())
                .ok_or_else(|| EvalError::new("integer overflow in sum()"))?;
        }
        Ok(Value::int(acc))
    } else {
        Ok(Value::float(numeric_sum(vals)?))
    }
}

fn stdev(vals: &[Value], sample: bool) -> Result<Value, EvalError> {
    let n = vals.len();
    if n == 0 {
        return Ok(Value::Null);
    }
    let mut sum = ExactFloatSum::new();
    let mut sum_sq = ExactFloatSum::new();
    for v in vals {
        let x = v.as_number().ok_or_else(|| non_numeric(v))?;
        sum.add(x);
        add_square_exact(&mut sum_sq, x);
    }
    finish_moments(
        if sample {
            AggKind::StDev
        } else {
            AggKind::StDevP
        },
        n as u64,
        &sum,
        &sum_sq,
    )
}

fn percentile(vals: &[Value], aux: Option<Value>, cont: bool) -> Result<Value, EvalError> {
    if vals.is_empty() {
        return Ok(Value::Null);
    }
    let p = aux
        .as_ref()
        .and_then(Value::as_number)
        .ok_or_else(|| EvalError::new("percentile requires a numeric percentile argument"))?;
    if !(0.0..=1.0).contains(&p) {
        return err(format!("percentile must be in [0, 1], got {p}"));
    }
    let mut nums: Vec<f64> = Vec::with_capacity(vals.len());
    for v in vals {
        nums.push(
            v.as_number()
                .ok_or_else(|| EvalError::new("percentile over non-numeric value"))?,
        );
    }
    nums.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if cont {
        let rank = p * (nums.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        Ok(Value::float(nums[lo] + (nums[hi] - nums[lo]) * frac))
    } else {
        // Nearest-rank: smallest value whose rank ≥ p·n.
        let idx = ((p * nums.len() as f64).ceil() as usize).clamp(1, nums.len()) - 1;
        let x = nums[idx];
        // Preserve integer-ness when the inputs were integers.
        if vals.iter().all(|v| matches!(v, Value::Integer(_))) {
            Ok(Value::int(x as i64))
        } else {
            Ok(Value::float(x))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(kind: AggKind, distinct: bool, vals: Vec<Value>) -> Value {
        let mut a = Aggregator::new(kind, distinct);
        for v in vals {
            a.push(v);
        }
        a.finish().unwrap()
    }

    /// Same inputs, but fed through several partials merged in order —
    /// must be indistinguishable from the single fold.
    fn run_split(kind: AggKind, distinct: bool, vals: Vec<Value>, chunk: usize) -> Value {
        let mut acc = Aggregator::new(kind, distinct);
        for part in vals.chunks(chunk.max(1)) {
            let mut a = Aggregator::new(kind, distinct);
            for v in part {
                a.push(v.clone());
            }
            acc.merge(a);
        }
        acc.finish().unwrap()
    }

    #[test]
    fn count_skips_nulls() {
        // Figure 2a → 2b: count(s) for Nils (one null row) is 0.
        assert_eq!(run(AggKind::Count, false, vec![Value::Null]), Value::int(0));
        assert_eq!(
            run(
                AggKind::Count,
                false,
                vec![Value::int(1), Value::Null, Value::int(2)]
            ),
            Value::int(2)
        );
    }

    #[test]
    fn count_star_counts_rows() {
        let mut a = Aggregator::new(AggKind::CountStar, false);
        a.push(Value::Null);
        a.push(Value::Null);
        assert_eq!(a.finish().unwrap(), Value::int(2));
    }

    #[test]
    fn count_distinct() {
        // §3: count(DISTINCT p2) over {n4, n9, n5, n9} = 3.
        let vals = vec![
            Value::str("n4"),
            Value::str("n9"),
            Value::str("n5"),
            Value::str("n9"),
        ];
        assert_eq!(run(AggKind::Count, true, vals), Value::int(3));
    }

    #[test]
    fn sum_and_avg() {
        let vals = vec![Value::int(1), Value::int(2), Value::int(3)];
        assert_eq!(run(AggKind::Sum, false, vals.clone()), Value::int(6));
        assert_eq!(run(AggKind::Avg, false, vals), Value::float(2.0));
        assert_eq!(run(AggKind::Sum, false, vec![]), Value::int(0));
        assert_eq!(run(AggKind::Avg, false, vec![]), Value::Null);
        assert_eq!(
            run(AggKind::Sum, false, vec![Value::int(1), Value::float(0.5)]),
            Value::float(1.5)
        );
    }

    #[test]
    fn min_max() {
        let vals = vec![Value::int(3), Value::int(1), Value::int(2)];
        assert_eq!(run(AggKind::Min, false, vals.clone()), Value::int(1));
        assert_eq!(run(AggKind::Max, false, vals), Value::int(3));
        assert_eq!(run(AggKind::Min, false, vec![]), Value::Null);
    }

    #[test]
    fn collect_skips_nulls_keeps_duplicates() {
        let vals = vec![Value::int(1), Value::Null, Value::int(1)];
        assert_eq!(run(AggKind::Collect, false, vals).to_string(), "[1, 1]");
        assert_eq!(
            run(
                AggKind::Collect,
                true,
                vec![Value::int(1), Value::int(1), Value::int(2)]
            )
            .to_string(),
            "[1, 2]"
        );
        assert_eq!(run(AggKind::Collect, false, vec![]).to_string(), "[]");
    }

    #[test]
    fn stdev_values() {
        let vals: Vec<Value> = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .iter()
            .map(|&x| Value::float(x))
            .collect();
        let pop = run(AggKind::StDevP, false, vals.clone());
        let Value::Float(p) = pop else { panic!() };
        assert!((p - 2.0).abs() < 1e-9);
        let samp = run(AggKind::StDev, false, vals);
        let Value::Float(s) = samp else { panic!() };
        assert!((s - 2.138089935).abs() < 1e-6);
        assert_eq!(
            run(AggKind::StDev, false, vec![Value::int(5)]),
            Value::float(0.0)
        );
    }

    #[test]
    fn percentiles() {
        let mut a = Aggregator::new(AggKind::PercentileCont, false);
        for i in 1..=5 {
            a.push(Value::int(i));
            a.push_aux(Value::float(0.5));
        }
        assert_eq!(a.finish().unwrap(), Value::float(3.0));

        let mut b = Aggregator::new(AggKind::PercentileDisc, false);
        for i in 1..=4 {
            b.push(Value::int(i));
            b.push_aux(Value::float(0.5));
        }
        assert_eq!(b.finish().unwrap(), Value::int(2));
    }

    #[test]
    fn from_name_mapping() {
        assert_eq!(AggKind::from_name("count"), Some(AggKind::Count));
        assert_eq!(AggKind::from_name("collect"), Some(AggKind::Collect));
        assert_eq!(AggKind::from_name("size"), None);
    }

    #[test]
    fn merge_matches_single_fold_for_every_kind() {
        let vals: Vec<Value> = (0..23)
            .map(|i| match i % 5 {
                0 => Value::Null,
                1 => Value::int(i),
                2 => Value::float(i as f64 * 0.25),
                3 => Value::int(-i),
                _ => Value::float(1.0 / (i as f64 + 1.0)),
            })
            .collect();
        for kind in [
            AggKind::Count,
            AggKind::CountStar,
            AggKind::Sum,
            AggKind::Avg,
            AggKind::Min,
            AggKind::Max,
            AggKind::Collect,
            AggKind::StDev,
            AggKind::StDevP,
        ] {
            for distinct in [false, true] {
                if distinct && kind == AggKind::CountStar {
                    continue;
                }
                let whole = run(kind, distinct, vals.clone());
                for chunk in [1, 2, 7, 23] {
                    let split = run_split(kind, distinct, vals.clone(), chunk);
                    // Bit-identical, not merely approximately equal.
                    assert_eq!(
                        whole.to_string(),
                        split.to_string(),
                        "{kind:?} distinct={distinct} chunk={chunk}"
                    );
                    assert!(whole.equivalent(&split));
                }
            }
        }
    }

    #[test]
    fn merge_preserves_error_reporting() {
        // Non-numeric input in the *second* chunk still errors.
        let mut a = Aggregator::new(AggKind::Sum, false);
        a.push(Value::int(1));
        let mut b = Aggregator::new(AggKind::Sum, false);
        b.push(Value::str("x"));
        a.merge(b);
        let e = a.finish().unwrap_err();
        assert!(e.to_string().contains("cannot aggregate"), "{e}");

        // Integer overflow reported as before.
        let mut c = Aggregator::new(AggKind::Sum, false);
        c.push(Value::int(i64::MAX));
        c.push(Value::int(1));
        assert!(c
            .finish()
            .unwrap_err()
            .to_string()
            .contains("integer overflow in sum()"));

        // …but a float input anywhere switches to float arithmetic, in
        // which the same magnitudes do not overflow.
        let mut d = Aggregator::new(AggKind::Sum, false);
        d.push(Value::int(i64::MAX));
        d.push(Value::int(1));
        d.push(Value::float(0.5));
        assert!(matches!(d.finish().unwrap(), Value::Float(_)));
    }

    #[test]
    fn exact_float_sum_is_order_and_partition_independent() {
        // A deterministic pseudo-random mix of magnitudes.
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let mut vals: Vec<f64> = Vec::new();
        for i in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let m = ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            let e = ((x >> 3) % 60) as i32 - 30;
            vals.push(m * 2f64.powi(e) + i as f64);
        }
        let mut base = ExactFloatSum::new();
        for &v in &vals {
            base.add(v);
        }
        let expect = base.value();
        // Partitioned into chunks of several sizes, merged.
        for chunk in [1usize, 3, 17, 64] {
            let mut acc = ExactFloatSum::new();
            for part in vals.chunks(chunk) {
                let mut s = ExactFloatSum::new();
                for &v in part {
                    s.add(v);
                }
                acc.merge(&s);
            }
            assert_eq!(acc.value().to_bits(), expect.to_bits(), "chunk={chunk}");
        }
        // Reversed order.
        let mut rev = ExactFloatSum::new();
        for &v in vals.iter().rev() {
            rev.add(v);
        }
        assert_eq!(rev.value().to_bits(), expect.to_bits());
        // Exactness on a classic cancellation case.
        let mut c = ExactFloatSum::new();
        for &v in &[1e16, 1.0, -1e16] {
            c.add(v);
        }
        assert_eq!(c.value(), 1.0);
    }

    #[test]
    fn exact_float_sum_handles_non_finite() {
        let mut s = ExactFloatSum::new();
        s.add(1.0);
        s.add(f64::INFINITY);
        assert_eq!(s.value(), f64::INFINITY);
        let mut t = ExactFloatSum::new();
        t.add(f64::INFINITY);
        t.add(f64::NEG_INFINITY);
        assert!(t.value().is_nan());
        let mut u = ExactFloatSum::new();
        u.add(f64::NAN);
        u.add(1.0);
        assert!(u.value().is_nan());
    }

    #[test]
    fn exact_float_sum_overflow_is_order_and_partition_independent() {
        // The running positive (or negative) total leaving the f64 range
        // must degrade the same way for every order and partition — this
        // exact multiset once returned NaN sequentially but 0 when folded
        // as two merged partials.
        let vals = [1e308, 1e308, -1e308, -1e308];
        let mut expect: Option<u64> = None;
        // Every permutation…
        let perms: [[usize; 4]; 6] = [
            [0, 1, 2, 3],
            [0, 2, 1, 3],
            [2, 0, 3, 1],
            [2, 3, 0, 1],
            [0, 2, 3, 1],
            [3, 1, 2, 0],
        ];
        for p in perms {
            let mut s = ExactFloatSum::new();
            for &i in &p {
                s.add(vals[i]);
            }
            let bits = s.value().to_bits();
            match expect {
                None => expect = Some(bits),
                Some(e) => assert_eq!(bits, e, "permutation {p:?} diverged"),
            }
        }
        // …and every chunked merge agree.
        for chunk in [1usize, 2, 3] {
            let mut acc = ExactFloatSum::new();
            for part in vals.chunks(chunk) {
                let mut s = ExactFloatSum::new();
                for &v in part {
                    s.add(v);
                }
                acc.merge(&s);
            }
            assert_eq!(acc.value().to_bits(), expect.unwrap(), "chunk={chunk}");
        }
        // Both sides saturated reads as inf − inf.
        assert!(f64::from_bits(expect.unwrap()).is_nan());
        // One-sided overflow is +inf in every shape.
        let mut one = ExactFloatSum::new();
        for v in [1e308, 1e308, -5.0] {
            one.add(v);
        }
        assert_eq!(one.value(), f64::INFINITY);
        // Large but in-range magnitudes still cancel exactly.
        let mut fine = ExactFloatSum::new();
        for v in [1e308, -1e308, 1.25] {
            fine.add(v);
        }
        assert_eq!(fine.value(), 1.25);
    }

    #[test]
    fn stdev_survives_large_mean_small_spread() {
        // E[x²]−E[x]² cancels catastrophically at mean 1e8; the exact
        // moment arithmetic must recover the two-pass answer.
        let vals = vec![Value::float(1e8), Value::float(1e8 + 1.0)];
        let Value::Float(s) = run(AggKind::StDev, false, vals.clone()) else {
            panic!()
        };
        assert!(
            (s - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12,
            "stdev lost precision: {s}"
        );
        let Value::Float(p) = run(AggKind::StDevP, false, vals.clone()) else {
            panic!()
        };
        assert!((p - 0.5).abs() < 1e-12, "stdevp lost precision: {p}");
        // And identically when folded through merged partials.
        let Value::Float(m) = run_split(AggKind::StDev, false, vals, 1) else {
            panic!()
        };
        assert_eq!(s.to_bits(), m.to_bits());
    }

    #[test]
    fn distinct_set_orders_by_first_occurrence() {
        let mut s = DistinctSet::new();
        assert!(s.insert(Value::int(2)));
        assert!(s.insert(Value::int(1)));
        assert!(!s.insert(Value::float(2.0))); // 2 ≡ 2.0
        assert!(s.insert(Value::Null));
        assert!(!s.insert(Value::Null));
        assert_eq!(s.len(), 3);
        let shown: Vec<String> = s.values().map(|v| v.to_string()).collect();
        assert_eq!(shown, ["2", "1", "null"]);
    }

    #[test]
    fn distinct_set_remove_is_refcounted_and_order_transparent() {
        let mut s = DistinctSet::new();
        s.insert(Value::int(1));
        s.insert(Value::int(2));
        s.insert(Value::float(2.0)); // refcount on the 2-slot
        assert!(!s.remove(&Value::int(2))); // one copy left
        assert_eq!(s.len(), 2);
        assert!(s.remove(&Value::int(2))); // last copy gone
        assert_eq!(s.len(), 1);
        assert!(!s.remove(&Value::int(2))); // absent: no-op
                                            // Re-insertion takes a fresh slot at the end: same visible
                                            // sequence as if the drained copies were never inserted.
        s.insert(Value::int(3));
        s.insert(Value::int(2));
        let shown: Vec<String> = s.values().map(|v| v.to_string()).collect();
        assert_eq!(shown, ["1", "3", "2"]);
        assert_eq!(s.into_values().len(), 3);
    }

    #[test]
    fn retract_restores_never_fed_result() {
        // For every retractable shape: feed base ∪ extra, retract extra,
        // finish — must equal (bit-for-bit, via Display) feeding base only.
        let base = vec![
            Value::int(3),
            Value::float(0.1),
            Value::Null,
            Value::int(-7),
            Value::float(1e8),
        ];
        let extra = vec![
            Value::float(1e8 + 1.0),
            Value::int(41),
            Value::Null,
            Value::float(-0.25),
            Value::int(3),
        ];
        for kind in [
            AggKind::Count,
            AggKind::CountStar,
            AggKind::Sum,
            AggKind::Avg,
            AggKind::StDev,
            AggKind::StDevP,
            AggKind::Min,
            AggKind::Max,
        ] {
            for distinct in [false, true] {
                if !kind.is_retractable(distinct) || kind == AggKind::CountStar && distinct {
                    continue;
                }
                let want = run(kind, distinct, base.clone());
                let mut a = Aggregator::new(kind, distinct);
                for v in base.iter().chain(&extra) {
                    a.push(v.clone());
                }
                for v in &extra {
                    a.retract(v.clone());
                }
                let got = a.finish().unwrap();
                assert_eq!(
                    want.to_string(),
                    got.to_string(),
                    "{kind:?} distinct={distinct}"
                );
            }
        }
    }

    #[test]
    fn retracting_last_float_restores_integer_sum() {
        let mut a = Aggregator::new(AggKind::Sum, false);
        a.push(Value::int(1));
        a.push(Value::float(0.5));
        a.push(Value::int(2));
        a.retract(Value::float(0.5));
        assert_eq!(a.finish().unwrap(), Value::int(3));
    }
}
