//! Aggregating functions: `count`, `sum`, `avg`, `min`, `max`, `collect`,
//! `stdev`, `stdevp`, `percentileCont`, `percentileDisc`.
//!
//! Aggregation is described in Section 3 of the paper: in a `WITH` or
//! `RETURN` list, non-aggregating expressions act as implicit grouping
//! keys, and each aggregate folds over the rows of its group. `null`
//! inputs are skipped (so `count(s)` over the table of Figure 2a yields 0
//! for Nils), and `DISTINCT` folds each distinct value once (as in
//! `count(DISTINCT p2)` of the running example).

use crate::error::{err, EvalError};
use cypher_graph::Value;

/// Which aggregate a call denotes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggKind {
    /// `count(expr)` — number of non-null inputs.
    Count,
    /// `count(*)` — number of rows.
    CountStar,
    /// `sum(expr)`.
    Sum,
    /// `avg(expr)`.
    Avg,
    /// `min(expr)` (by comparability; incomparable mixes use orderability).
    Min,
    /// `max(expr)`.
    Max,
    /// `collect(expr)` — list of non-null inputs.
    Collect,
    /// `stdev(expr)` — sample standard deviation.
    StDev,
    /// `stdevp(expr)` — population standard deviation.
    StDevP,
    /// `percentileCont(expr, p)` — linear-interpolation percentile.
    PercentileCont,
    /// `percentileDisc(expr, p)` — nearest-rank percentile.
    PercentileDisc,
}

impl AggKind {
    /// Maps a (lower-case) function name to its kind.
    pub fn from_name(name: &str) -> Option<AggKind> {
        Some(match name {
            "count" => AggKind::Count,
            "sum" => AggKind::Sum,
            "avg" => AggKind::Avg,
            "min" => AggKind::Min,
            "max" => AggKind::Max,
            "collect" => AggKind::Collect,
            "stdev" => AggKind::StDev,
            "stdevp" => AggKind::StDevP,
            "percentilecont" => AggKind::PercentileCont,
            "percentiledisc" => AggKind::PercentileDisc,
            _ => return None,
        })
    }
}

/// A running aggregate over one group.
#[derive(Debug, Clone)]
pub struct Aggregator {
    kind: AggKind,
    distinct: bool,
    rows: u64,
    values: Vec<Value>,
    /// Second argument (percentile), captured from the last row.
    aux: Option<Value>,
}

impl Aggregator {
    /// Creates an empty accumulator.
    pub fn new(kind: AggKind, distinct: bool) -> Self {
        Aggregator {
            kind,
            distinct,
            rows: 0,
            values: Vec::new(),
            aux: None,
        }
    }

    /// Feeds one row. For `count(*)` the value is ignored; for other
    /// aggregates `null` inputs are skipped.
    pub fn push(&mut self, v: Value) {
        self.rows += 1;
        if self.kind == AggKind::CountStar || v.is_null() {
            return;
        }
        if self.distinct && self.values.iter().any(|x| x.equivalent(&v)) {
            return;
        }
        self.values.push(v);
    }

    /// Feeds the auxiliary (second) argument for percentile aggregates.
    pub fn push_aux(&mut self, v: Value) {
        self.aux = Some(v);
    }

    /// Produces the aggregate result.
    pub fn finish(self) -> Result<Value, EvalError> {
        let vals = self.values;
        match self.kind {
            AggKind::CountStar => Ok(Value::int(self.rows as i64)),
            AggKind::Count => Ok(Value::int(vals.len() as i64)),
            AggKind::Collect => Ok(Value::List(vals)),
            AggKind::Sum => sum(&vals),
            AggKind::Avg => {
                if vals.is_empty() {
                    return Ok(Value::Null);
                }
                let total = numeric_sum(&vals)?;
                Ok(Value::float(total / vals.len() as f64))
            }
            AggKind::Min => Ok(vals
                .into_iter()
                .min_by(|a, b| a.cmp_order(b))
                .unwrap_or(Value::Null)),
            AggKind::Max => Ok(vals
                .into_iter()
                .max_by(|a, b| a.cmp_order(b))
                .unwrap_or(Value::Null)),
            AggKind::StDev => stdev(&vals, true),
            AggKind::StDevP => stdev(&vals, false),
            AggKind::PercentileCont => percentile(&vals, self.aux, true),
            AggKind::PercentileDisc => percentile(&vals, self.aux, false),
        }
    }
}

fn numeric_sum(vals: &[Value]) -> Result<f64, EvalError> {
    let mut total = 0.0;
    for v in vals {
        total += v
            .as_number()
            .ok_or_else(|| EvalError::new(format!("cannot aggregate {}", v.type_name())))?;
    }
    Ok(total)
}

fn sum(vals: &[Value]) -> Result<Value, EvalError> {
    if vals.is_empty() {
        return Ok(Value::int(0));
    }
    let all_ints = vals.iter().all(|v| matches!(v, Value::Integer(_)));
    if all_ints {
        let mut acc: i64 = 0;
        for v in vals {
            acc = acc
                .checked_add(v.as_int().unwrap())
                .ok_or_else(|| EvalError::new("integer overflow in sum()"))?;
        }
        Ok(Value::int(acc))
    } else {
        Ok(Value::float(numeric_sum(vals)?))
    }
}

fn stdev(vals: &[Value], sample: bool) -> Result<Value, EvalError> {
    let n = vals.len();
    if n == 0 {
        return Ok(Value::Null);
    }
    let denom = if sample { n.saturating_sub(1) } else { n };
    if denom == 0 {
        return Ok(Value::float(0.0));
    }
    let mean = numeric_sum(vals)? / n as f64;
    let mut ss = 0.0;
    for v in vals {
        let x = v.as_number().unwrap();
        ss += (x - mean) * (x - mean);
    }
    Ok(Value::float((ss / denom as f64).sqrt()))
}

fn percentile(vals: &[Value], aux: Option<Value>, cont: bool) -> Result<Value, EvalError> {
    if vals.is_empty() {
        return Ok(Value::Null);
    }
    let p = aux
        .as_ref()
        .and_then(Value::as_number)
        .ok_or_else(|| EvalError::new("percentile requires a numeric percentile argument"))?;
    if !(0.0..=1.0).contains(&p) {
        return err(format!("percentile must be in [0, 1], got {p}"));
    }
    let mut nums: Vec<f64> = Vec::with_capacity(vals.len());
    for v in vals {
        nums.push(
            v.as_number()
                .ok_or_else(|| EvalError::new("percentile over non-numeric value"))?,
        );
    }
    nums.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if cont {
        let rank = p * (nums.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        Ok(Value::float(nums[lo] + (nums[hi] - nums[lo]) * frac))
    } else {
        // Nearest-rank: smallest value whose rank ≥ p·n.
        let idx = ((p * nums.len() as f64).ceil() as usize).clamp(1, nums.len()) - 1;
        let x = nums[idx];
        // Preserve integer-ness when the inputs were integers.
        if vals.iter().all(|v| matches!(v, Value::Integer(_))) {
            Ok(Value::int(x as i64))
        } else {
            Ok(Value::float(x))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(kind: AggKind, distinct: bool, vals: Vec<Value>) -> Value {
        let mut a = Aggregator::new(kind, distinct);
        for v in vals {
            a.push(v);
        }
        a.finish().unwrap()
    }

    #[test]
    fn count_skips_nulls() {
        // Figure 2a → 2b: count(s) for Nils (one null row) is 0.
        assert_eq!(run(AggKind::Count, false, vec![Value::Null]), Value::int(0));
        assert_eq!(
            run(
                AggKind::Count,
                false,
                vec![Value::int(1), Value::Null, Value::int(2)]
            ),
            Value::int(2)
        );
    }

    #[test]
    fn count_star_counts_rows() {
        let mut a = Aggregator::new(AggKind::CountStar, false);
        a.push(Value::Null);
        a.push(Value::Null);
        assert_eq!(a.finish().unwrap(), Value::int(2));
    }

    #[test]
    fn count_distinct() {
        // §3: count(DISTINCT p2) over {n4, n9, n5, n9} = 3.
        let vals = vec![
            Value::str("n4"),
            Value::str("n9"),
            Value::str("n5"),
            Value::str("n9"),
        ];
        assert_eq!(run(AggKind::Count, true, vals), Value::int(3));
    }

    #[test]
    fn sum_and_avg() {
        let vals = vec![Value::int(1), Value::int(2), Value::int(3)];
        assert_eq!(run(AggKind::Sum, false, vals.clone()), Value::int(6));
        assert_eq!(run(AggKind::Avg, false, vals), Value::float(2.0));
        assert_eq!(run(AggKind::Sum, false, vec![]), Value::int(0));
        assert_eq!(run(AggKind::Avg, false, vec![]), Value::Null);
        assert_eq!(
            run(AggKind::Sum, false, vec![Value::int(1), Value::float(0.5)]),
            Value::float(1.5)
        );
    }

    #[test]
    fn min_max() {
        let vals = vec![Value::int(3), Value::int(1), Value::int(2)];
        assert_eq!(run(AggKind::Min, false, vals.clone()), Value::int(1));
        assert_eq!(run(AggKind::Max, false, vals), Value::int(3));
        assert_eq!(run(AggKind::Min, false, vec![]), Value::Null);
    }

    #[test]
    fn collect_skips_nulls_keeps_duplicates() {
        let vals = vec![Value::int(1), Value::Null, Value::int(1)];
        assert_eq!(run(AggKind::Collect, false, vals).to_string(), "[1, 1]");
        assert_eq!(
            run(
                AggKind::Collect,
                true,
                vec![Value::int(1), Value::int(1), Value::int(2)]
            )
            .to_string(),
            "[1, 2]"
        );
        assert_eq!(run(AggKind::Collect, false, vec![]).to_string(), "[]");
    }

    #[test]
    fn stdev_values() {
        let vals: Vec<Value> = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .iter()
            .map(|&x| Value::float(x))
            .collect();
        let pop = run(AggKind::StDevP, false, vals.clone());
        let Value::Float(p) = pop else { panic!() };
        assert!((p - 2.0).abs() < 1e-9);
        let samp = run(AggKind::StDev, false, vals);
        let Value::Float(s) = samp else { panic!() };
        assert!((s - 2.138089935).abs() < 1e-6);
        assert_eq!(
            run(AggKind::StDev, false, vec![Value::int(5)]),
            Value::float(0.0)
        );
    }

    #[test]
    fn percentiles() {
        let mut a = Aggregator::new(AggKind::PercentileCont, false);
        for i in 1..=5 {
            a.push(Value::int(i));
            a.push_aux(Value::float(0.5));
        }
        assert_eq!(a.finish().unwrap(), Value::float(3.0));

        let mut b = Aggregator::new(AggKind::PercentileDisc, false);
        for i in 1..=4 {
            b.push(Value::int(i));
            b.push_aux(Value::float(0.5));
        }
        assert_eq!(b.finish().unwrap(), Value::int(2));
    }

    #[test]
    fn from_name_mapping() {
        assert_eq!(AggKind::from_name("count"), Some(AggKind::Count));
        assert_eq!(AggKind::from_name("collect"), Some(AggKind::Collect));
        assert_eq!(AggKind::from_name("size"), None);
    }
}
