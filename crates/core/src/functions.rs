//! The base function set `F` of the data model (paper Section 4.1: "we
//! assume a finite set F of predefined functions … the semantics is
//! parameterized by this set").
//!
//! Included are the functions used by the paper's examples (`collect` and
//! `labels` appear in Section 3 — `collect` is an aggregate and lives in
//! [`crate::aggregate`]) plus the standard openCypher scalar library and
//! the Cypher 10 temporal constructors.
//!
//! Naming note: openCypher spells the duration difference function
//! `duration.between(a, b)`; our grammar has no namespaced function names,
//! so it is exposed as `durationBetween(a, b)` (documented in DESIGN.md).

use crate::error::{err, EvalError};
use crate::EvalContext;
use cypher_graph::{Date, Duration, LocalDateTime, LocalTime, Temporal, Value, ZonedDateTime};
use std::collections::BTreeMap;
use std::sync::Arc;

fn arity(name: &str, args: &[Value], n: usize) -> Result<(), EvalError> {
    if args.len() == n {
        Ok(())
    } else {
        err(format!(
            "{name}() expects {n} argument(s), got {}",
            args.len()
        ))
    }
}

/// Applies a scalar function from `F` to evaluated arguments.
pub fn apply_function(
    ctx: &EvalContext<'_>,
    name: &str,
    args: Vec<Value>,
) -> Result<Value, EvalError> {
    match name {
        // -- entity inspection ------------------------------------------------
        "id" => {
            arity(name, &args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Node(n) => Ok(Value::int(n.0 as i64)),
                Value::Rel(r) => Ok(Value::int(r.0 as i64)),
                v => err(format!(
                    "id() requires a node or relationship, got {}",
                    v.type_name()
                )),
            }
        }
        "labels" => {
            arity(name, &args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Node(n) => Ok(Value::List(
                    ctx.graph
                        .labels(*n)
                        .iter()
                        .map(|&l| Value::str(ctx.graph.resolve(l)))
                        .collect(),
                )),
                v => err(format!("labels() requires a node, got {}", v.type_name())),
            }
        }
        "type" => {
            arity(name, &args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Rel(r) => {
                    let t = ctx
                        .graph
                        .rel_type(*r)
                        .ok_or_else(|| EvalError::new("dangling relationship"))?;
                    Ok(Value::str(ctx.graph.resolve(t)))
                }
                v => err(format!(
                    "type() requires a relationship, got {}",
                    v.type_name()
                )),
            }
        }
        "properties" => {
            arity(name, &args, 1)?;
            let to_map = |it: Vec<(String, Value)>| {
                Value::Map(
                    it.into_iter()
                        .map(|(k, v)| (Arc::from(k.as_str()), v))
                        .collect::<BTreeMap<_, _>>(),
                )
            };
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Node(n) => Ok(to_map(
                    ctx.graph
                        .node_props(*n)
                        .map(|(k, v)| (ctx.graph.resolve(k).to_string(), v.clone()))
                        .collect(),
                )),
                Value::Rel(r) => Ok(to_map(
                    ctx.graph
                        .rel_props(*r)
                        .map(|(k, v)| (ctx.graph.resolve(k).to_string(), v.clone()))
                        .collect(),
                )),
                Value::Map(m) => Ok(Value::Map(m.clone())),
                v => err(format!("properties() does not apply to {}", v.type_name())),
            }
        }
        "keys" => {
            arity(name, &args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Node(n) => Ok(Value::List(
                    ctx.graph
                        .node_props(*n)
                        .map(|(k, _)| Value::str(ctx.graph.resolve(k)))
                        .collect(),
                )),
                Value::Rel(r) => Ok(Value::List(
                    ctx.graph
                        .rel_props(*r)
                        .map(|(k, _)| Value::str(ctx.graph.resolve(k)))
                        .collect(),
                )),
                Value::Map(m) => Ok(Value::List(
                    m.keys().map(|k| Value::str(k.as_ref())).collect(),
                )),
                v => err(format!("keys() does not apply to {}", v.type_name())),
            }
        }
        "exists" => {
            arity(name, &args, 1)?;
            Ok(Value::Bool(!args[0].is_null()))
        }
        "startnode" => {
            arity(name, &args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Rel(r) => ctx
                    .graph
                    .src(*r)
                    .map(Value::Node)
                    .ok_or_else(|| EvalError::new("dangling relationship")),
                v => err(format!(
                    "startNode() requires a relationship, got {}",
                    v.type_name()
                )),
            }
        }
        "endnode" => {
            arity(name, &args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Rel(r) => ctx
                    .graph
                    .tgt(*r)
                    .map(Value::Node)
                    .ok_or_else(|| EvalError::new("dangling relationship")),
                v => err(format!(
                    "endNode() requires a relationship, got {}",
                    v.type_name()
                )),
            }
        }
        // -- paths ------------------------------------------------------------
        "nodes" => {
            arity(name, &args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Path(p) => Ok(Value::List(
                    p.nodes().into_iter().map(Value::Node).collect(),
                )),
                v => err(format!("nodes() requires a path, got {}", v.type_name())),
            }
        }
        "relationships" => {
            arity(name, &args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Path(p) => Ok(Value::List(p.rels().into_iter().map(Value::Rel).collect())),
                v => err(format!(
                    "relationships() requires a path, got {}",
                    v.type_name()
                )),
            }
        }
        "length" => {
            arity(name, &args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Path(p) => Ok(Value::int(p.len() as i64)),
                Value::List(items) => Ok(Value::int(items.len() as i64)),
                Value::String(s) => Ok(Value::int(s.chars().count() as i64)),
                v => err(format!("length() does not apply to {}", v.type_name())),
            }
        }
        // -- collections --------------------------------------------------------
        "size" => {
            arity(name, &args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::List(items) => Ok(Value::int(items.len() as i64)),
                Value::String(s) => Ok(Value::int(s.chars().count() as i64)),
                Value::Map(m) => Ok(Value::int(m.len() as i64)),
                v => err(format!("size() does not apply to {}", v.type_name())),
            }
        }
        "head" => {
            arity(name, &args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::List(items) => Ok(items.first().cloned().unwrap_or(Value::Null)),
                v => err(format!("head() requires a list, got {}", v.type_name())),
            }
        }
        "last" => {
            arity(name, &args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::List(items) => Ok(items.last().cloned().unwrap_or(Value::Null)),
                v => err(format!("last() requires a list, got {}", v.type_name())),
            }
        }
        "tail" => {
            arity(name, &args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::List(items) => Ok(Value::List(items.iter().skip(1).cloned().collect())),
                v => err(format!("tail() requires a list, got {}", v.type_name())),
            }
        }
        "reverse" => {
            arity(name, &args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::List(items) => Ok(Value::List(items.iter().rev().cloned().collect())),
                Value::String(s) => Ok(Value::str(s.chars().rev().collect::<String>())),
                v => err(format!("reverse() does not apply to {}", v.type_name())),
            }
        }
        "range" => {
            if args.len() != 2 && args.len() != 3 {
                return err("range() expects 2 or 3 arguments");
            }
            let lo = int_arg("range", &args[0])?;
            let hi = int_arg("range", &args[1])?;
            let step = if args.len() == 3 {
                int_arg("range", &args[2])?
            } else {
                1
            };
            if step == 0 {
                return err("range() step must not be zero");
            }
            let mut out = Vec::new();
            let mut i = lo;
            if step > 0 {
                while i <= hi {
                    out.push(Value::int(i));
                    i += step;
                }
            } else {
                while i >= hi {
                    out.push(Value::int(i));
                    i += step;
                }
            }
            Ok(Value::List(out))
        }
        "coalesce" => Ok(args
            .into_iter()
            .find(|v| !v.is_null())
            .unwrap_or(Value::Null)),
        // -- conversions ---------------------------------------------------------
        "tostring" => {
            arity(name, &args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::String(s) => Ok(Value::str(s.as_ref())),
                v => Ok(Value::str(v.to_string())),
            }
        }
        "tointeger" => {
            arity(name, &args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Integer(i) => Ok(Value::int(*i)),
                Value::Float(f) => Ok(Value::int(*f as i64)),
                Value::String(s) => Ok(s
                    .trim()
                    .parse::<i64>()
                    .map(Value::int)
                    .unwrap_or(Value::Null)),
                v => err(format!("toInteger() does not apply to {}", v.type_name())),
            }
        }
        "tofloat" => {
            arity(name, &args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Integer(i) => Ok(Value::float(*i as f64)),
                Value::Float(f) => Ok(Value::float(*f)),
                Value::String(s) => Ok(s
                    .trim()
                    .parse::<f64>()
                    .map(Value::float)
                    .unwrap_or(Value::Null)),
                v => err(format!("toFloat() does not apply to {}", v.type_name())),
            }
        }
        "toboolean" => {
            arity(name, &args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Bool(b) => Ok(Value::Bool(*b)),
                Value::String(s) => match s.trim().to_ascii_lowercase().as_str() {
                    "true" => Ok(Value::Bool(true)),
                    "false" => Ok(Value::Bool(false)),
                    _ => Ok(Value::Null),
                },
                v => err(format!("toBoolean() does not apply to {}", v.type_name())),
            }
        }
        // -- numeric ---------------------------------------------------------------
        "abs" => {
            arity(name, &args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Integer(i) => Ok(Value::int(i.abs())),
                Value::Float(f) => Ok(Value::float(f.abs())),
                v => err(format!("abs() requires a number, got {}", v.type_name())),
            }
        }
        "sign" => {
            arity(name, &args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Integer(i) => Ok(Value::int(i.signum())),
                Value::Float(f) => Ok(Value::int(if *f > 0.0 {
                    1
                } else if *f < 0.0 {
                    -1
                } else {
                    0
                })),
                v => err(format!("sign() requires a number, got {}", v.type_name())),
            }
        }
        "ceil" => float_fn(name, &args, f64::ceil),
        "floor" => float_fn(name, &args, f64::floor),
        "round" => float_fn(name, &args, f64::round),
        "sqrt" => float_fn(name, &args, f64::sqrt),
        "exp" => float_fn(name, &args, f64::exp),
        "log" => float_fn(name, &args, f64::ln),
        "log10" => float_fn(name, &args, f64::log10),
        "sin" => float_fn(name, &args, f64::sin),
        "cos" => float_fn(name, &args, f64::cos),
        "tan" => float_fn(name, &args, f64::tan),
        "pi" => {
            arity(name, &args, 0)?;
            Ok(Value::float(std::f64::consts::PI))
        }
        // -- strings -----------------------------------------------------------------
        "toupper" => string_fn(name, &args, |s| s.to_uppercase()),
        "tolower" => string_fn(name, &args, |s| s.to_lowercase()),
        "trim" => string_fn(name, &args, |s| s.trim().to_string()),
        "ltrim" => string_fn(name, &args, |s| s.trim_start().to_string()),
        "rtrim" => string_fn(name, &args, |s| s.trim_end().to_string()),
        "replace" => {
            arity(name, &args, 3)?;
            match (&args[0], &args[1], &args[2]) {
                (Value::Null, _, _) | (_, Value::Null, _) | (_, _, Value::Null) => Ok(Value::Null),
                (Value::String(s), Value::String(find), Value::String(rep)) => {
                    Ok(Value::str(s.replace(find.as_ref(), rep)))
                }
                _ => err("replace() requires three strings"),
            }
        }
        "split" => {
            arity(name, &args, 2)?;
            match (&args[0], &args[1]) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::String(s), Value::String(delim)) => Ok(Value::List(
                    s.split(delim.as_ref()).map(Value::str).collect(),
                )),
                _ => err("split() requires two strings"),
            }
        }
        "substring" => {
            if args.len() != 2 && args.len() != 3 {
                return err("substring() expects 2 or 3 arguments");
            }
            if args.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let s = str_arg("substring", &args[0])?;
            let start = int_arg("substring", &args[1])?.max(0) as usize;
            let chars: Vec<char> = s.chars().collect();
            let end = if args.len() == 3 {
                (start + int_arg("substring", &args[2])?.max(0) as usize).min(chars.len())
            } else {
                chars.len()
            };
            let start = start.min(chars.len());
            Ok(Value::str(chars[start..end].iter().collect::<String>()))
        }
        "left" => {
            arity(name, &args, 2)?;
            if args.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let s = str_arg("left", &args[0])?;
            let n = int_arg("left", &args[1])?.max(0) as usize;
            Ok(Value::str(s.chars().take(n).collect::<String>()))
        }
        "right" => {
            arity(name, &args, 2)?;
            if args.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let s = str_arg("right", &args[0])?;
            let n = int_arg("right", &args[1])?.max(0) as usize;
            let chars: Vec<char> = s.chars().collect();
            let start = chars.len().saturating_sub(n);
            Ok(Value::str(chars[start..].iter().collect::<String>()))
        }
        // -- temporal (Cypher 10, paper §6) ------------------------------------------
        "date" => {
            arity(name, &args, 1)?;
            temporal_ctor(&args[0], |s| Date::parse(s).map(Temporal::Date))
        }
        "localtime" => {
            arity(name, &args, 1)?;
            temporal_ctor(&args[0], |s| LocalTime::parse(s).map(Temporal::LocalTime))
        }
        "localdatetime" => {
            arity(name, &args, 1)?;
            temporal_ctor(&args[0], |s| {
                LocalDateTime::parse(s).map(Temporal::LocalDateTime)
            })
        }
        "datetime" => {
            arity(name, &args, 1)?;
            temporal_ctor(&args[0], |s| {
                ZonedDateTime::parse(s).map(Temporal::DateTime)
            })
        }
        "duration" => {
            arity(name, &args, 1)?;
            temporal_ctor(&args[0], |s| Duration::parse(s).map(Temporal::Duration))
        }
        "durationbetween" => {
            arity(name, &args, 2)?;
            match (&args[0], &args[1]) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Temporal(Temporal::Date(a)), Value::Temporal(Temporal::Date(b))) => Ok(
                    Value::Temporal(Temporal::Duration(Duration::between_dates(*a, *b))),
                ),
                (
                    Value::Temporal(Temporal::LocalDateTime(a)),
                    Value::Temporal(Temporal::LocalDateTime(b)),
                ) => Ok(Value::Temporal(Temporal::Duration(Duration::between(
                    *a, *b,
                )))),
                _ => err("durationBetween() requires two dates or two localdatetimes"),
            }
        }
        other => err(format!("unknown function: {other}()")),
    }
}

fn int_arg(name: &str, v: &Value) -> Result<i64, EvalError> {
    v.as_int().ok_or_else(|| {
        EvalError::new(format!(
            "{name}() requires an integer, got {}",
            v.type_name()
        ))
    })
}

fn str_arg<'a>(name: &str, v: &'a Value) -> Result<&'a str, EvalError> {
    v.as_str()
        .ok_or_else(|| EvalError::new(format!("{name}() requires a string, got {}", v.type_name())))
}

fn float_fn(name: &str, args: &[Value], f: impl Fn(f64) -> f64) -> Result<Value, EvalError> {
    arity(name, args, 1)?;
    match &args[0] {
        Value::Null => Ok(Value::Null),
        v => match v.as_number() {
            Some(x) => Ok(Value::float(f(x))),
            None => err(format!("{name}() requires a number, got {}", v.type_name())),
        },
    }
}

fn string_fn(name: &str, args: &[Value], f: impl Fn(&str) -> String) -> Result<Value, EvalError> {
    arity(name, args, 1)?;
    match &args[0] {
        Value::Null => Ok(Value::Null),
        Value::String(s) => Ok(Value::str(f(s))),
        v => err(format!("{name}() requires a string, got {}", v.type_name())),
    }
}

fn temporal_ctor(
    arg: &Value,
    parse: impl Fn(&str) -> Result<Temporal, cypher_graph::temporal::TemporalError>,
) -> Result<Value, EvalError> {
    match arg {
        Value::Null => Ok(Value::Null),
        Value::String(s) => parse(s)
            .map(Value::Temporal)
            .map_err(|e| EvalError::new(e.to_string())),
        Value::Temporal(t) => Ok(Value::Temporal(*t)),
        v => err(format!(
            "temporal constructor requires a string, got {}",
            v.type_name()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Params;
    use cypher_graph::PropertyGraph;

    fn ctx_graph() -> (PropertyGraph, Params) {
        let mut g = PropertyGraph::new();
        let a = g.add_node(&["Person", "Admin"], [("name", Value::str("Ada"))]);
        let b = g.add_node(&["Person"], []);
        g.add_rel(a, b, "KNOWS", [("since", Value::int(1985))])
            .unwrap();
        (g, Params::new())
    }

    fn call(g: &PropertyGraph, p: &Params, name: &str, args: Vec<Value>) -> Value {
        let ctx = EvalContext::new(g, p);
        apply_function(&ctx, name, args).unwrap()
    }

    #[test]
    fn entity_functions() {
        let (g, p) = ctx_graph();
        let n = g.nodes().next().unwrap();
        let r = g.rels().next().unwrap();
        assert_eq!(call(&g, &p, "id", vec![Value::Node(n)]), Value::int(0));
        assert_eq!(
            call(&g, &p, "labels", vec![Value::Node(n)]).to_string(),
            "['Person', 'Admin']" // interning order
        );
        assert_eq!(
            call(&g, &p, "type", vec![Value::Rel(r)]),
            Value::str("KNOWS")
        );
        assert_eq!(
            call(&g, &p, "keys", vec![Value::Node(n)]).to_string(),
            "['name']"
        );
        assert_eq!(
            call(&g, &p, "properties", vec![Value::Rel(r)]).to_string(),
            "{since: 1985}"
        );
        assert_eq!(
            call(&g, &p, "startnode", vec![Value::Rel(r)]),
            Value::Node(n)
        );
    }

    #[test]
    fn collection_functions() {
        let (g, p) = ctx_graph();
        let l = Value::list([Value::int(1), Value::int(2), Value::int(3)]);
        assert_eq!(call(&g, &p, "size", vec![l.clone()]), Value::int(3));
        assert_eq!(call(&g, &p, "head", vec![l.clone()]), Value::int(1));
        assert_eq!(call(&g, &p, "last", vec![l.clone()]), Value::int(3));
        assert_eq!(call(&g, &p, "tail", vec![l.clone()]).to_string(), "[2, 3]");
        assert_eq!(
            call(&g, &p, "reverse", vec![l.clone()]).to_string(),
            "[3, 2, 1]"
        );
        assert_eq!(
            call(
                &g,
                &p,
                "range",
                vec![Value::int(1), Value::int(5), Value::int(2)]
            )
            .to_string(),
            "[1, 3, 5]"
        );
        assert_eq!(
            call(
                &g,
                &p,
                "range",
                vec![Value::int(3), Value::int(1), Value::int(-1)]
            )
            .to_string(),
            "[3, 2, 1]"
        );
        assert_eq!(
            call(
                &g,
                &p,
                "coalesce",
                vec![Value::Null, Value::int(7), Value::int(9)]
            ),
            Value::int(7)
        );
        assert_eq!(call(&g, &p, "head", vec![Value::List(vec![])]), Value::Null);
    }

    #[test]
    fn conversion_functions() {
        let (g, p) = ctx_graph();
        assert_eq!(
            call(&g, &p, "tostring", vec![Value::int(7)]),
            Value::str("7")
        );
        assert_eq!(
            call(&g, &p, "tointeger", vec![Value::str(" 42 ")]),
            Value::int(42)
        );
        assert_eq!(
            call(&g, &p, "tointeger", vec![Value::str("x")]),
            Value::Null
        );
        assert_eq!(
            call(&g, &p, "tofloat", vec![Value::str("2.5")]),
            Value::float(2.5)
        );
        assert_eq!(
            call(&g, &p, "toboolean", vec![Value::str("TRUE")]),
            Value::Bool(true)
        );
    }

    #[test]
    fn numeric_functions() {
        let (g, p) = ctx_graph();
        assert_eq!(call(&g, &p, "abs", vec![Value::int(-3)]), Value::int(3));
        assert_eq!(
            call(&g, &p, "sign", vec![Value::float(-0.5)]),
            Value::int(-1)
        );
        assert_eq!(
            call(&g, &p, "ceil", vec![Value::float(1.2)]),
            Value::float(2.0)
        );
        assert_eq!(call(&g, &p, "sqrt", vec![Value::int(9)]), Value::float(3.0));
        assert_eq!(call(&g, &p, "abs", vec![Value::Null]), Value::Null);
    }

    #[test]
    fn string_functions() {
        let (g, p) = ctx_graph();
        assert_eq!(
            call(&g, &p, "toupper", vec![Value::str("abc")]),
            Value::str("ABC")
        );
        assert_eq!(
            call(&g, &p, "trim", vec![Value::str("  x  ")]),
            Value::str("x")
        );
        assert_eq!(
            call(
                &g,
                &p,
                "replace",
                vec![Value::str("ababa"), Value::str("b"), Value::str("c")]
            ),
            Value::str("acaca")
        );
        assert_eq!(
            call(&g, &p, "split", vec![Value::str("a,b"), Value::str(",")]).to_string(),
            "['a', 'b']"
        );
        assert_eq!(
            call(
                &g,
                &p,
                "substring",
                vec![Value::str("hello"), Value::int(1), Value::int(3)]
            ),
            Value::str("ell")
        );
        assert_eq!(
            call(&g, &p, "left", vec![Value::str("hello"), Value::int(2)]),
            Value::str("he")
        );
        assert_eq!(
            call(&g, &p, "right", vec![Value::str("hello"), Value::int(2)]),
            Value::str("lo")
        );
    }

    #[test]
    fn temporal_constructors() {
        let (g, p) = ctx_graph();
        let d = call(&g, &p, "date", vec![Value::str("2018-06-10")]);
        assert_eq!(d.to_string(), "2018-06-10");
        let a = call(&g, &p, "date", vec![Value::str("2018-06-10")]);
        let b = call(&g, &p, "date", vec![Value::str("2018-06-15")]);
        let diff = call(&g, &p, "durationbetween", vec![a, b]);
        assert_eq!(diff.to_string(), "P5D");
    }

    #[test]
    fn unknown_function_is_error() {
        let (g, p) = ctx_graph();
        let ctx = EvalContext::new(&g, &p);
        assert!(apply_function(&ctx, "frobnicate", vec![]).is_err());
    }
}
