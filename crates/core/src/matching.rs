//! Pattern matching (paper Section 4.2).
//!
//! Implements the satisfaction relation `(p, G, u) ⊨ π` and the bag
//!
//! ```text
//! match(π̄, G, u) = ⊎_{p̄ in G, π̄′ ∈ rigid(π̄)} { u′ | dom(u′) = free(π̄) − dom(u)
//!                                                    and (p̄, G, u·u′) ⊨ π̄′ }
//! ```
//!
//! of Equation (1), under the morphism configuration of Section 8.
//!
//! Rather than literally materializing the (possibly infinite) set
//! `rigid(π)`, variable-length relationship patterns are evaluated by a
//! depth-first enumeration of hop counts within the declared range. For a
//! fixed tuple of paths, the hop-count split determines the rigid pattern
//! uniquely, so the DFS enumerates exactly the `(p̄, π̄′)` combinations of
//! Equation (1) — each contributing one occurrence to the output bag. This
//! equivalence is checked against an explicit rigid-expansion oracle in the
//! property-test suite (experiment E13).
//!
//! Relationship isomorphism — "as a precondition for a path p to satisfy
//! any pattern … all relationships in p are distinct", extended to tuples
//! by "no relationship id occurs in more than one path in p̄" — is enforced
//! positionally with a used-relationship set threaded through the search.

use crate::error::EvalError;
use crate::expr::{eval_expr, VarLookup};
use crate::morphism::Morphism;
use crate::EvalContext;
use cypher_ast::pattern::{Dir, NodePattern, PathPattern, RelPattern};
use cypher_graph::fxhash::FxHashSet;
use cypher_graph::{Direction, NodeId, Path, RelId, Value};

/// Matching configuration: the morphism mode plus the hop cap applied to
/// unbounded variable-length patterns under homomorphism (where result sets
/// would otherwise be infinite — the `(x)-[*0..]->(x)` discussion of §4.2).
#[derive(Clone, Copy, Debug)]
pub struct MatchConfig {
    /// Which elements may repeat in a match.
    pub morphism: Morphism,
    /// Upper bound substituted for `∞` under [`Morphism::Homomorphism`].
    pub var_length_cap: u64,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            morphism: Morphism::EdgeIsomorphism,
            var_length_cap: 12,
        }
    }
}

/// One match: the new bindings `u′` with `dom(u′) = free(π̄) − dom(u)`, in
/// a deterministic (pattern-traversal) order.
pub type MatchRow = Vec<(String, Value)>;

/// Computes the bag `match(π̄, G, u)`.
pub fn match_patterns(
    ctx: &EvalContext<'_>,
    u: &dyn VarLookup,
    patterns: &[PathPattern],
) -> Result<Vec<MatchRow>, EvalError> {
    let mut st = MatchState::new(*ctx, u, false);
    st.match_tuple(patterns, 0)?;
    Ok(st.out)
}

/// True iff `match(π̄, G, u)` is non-empty (used by existential pattern
/// predicates in `WHERE`); stops at the first witness.
pub fn has_match(
    ctx: &EvalContext<'_>,
    u: &dyn VarLookup,
    patterns: &[PathPattern],
) -> Result<bool, EvalError> {
    let mut st = MatchState::new(*ctx, u, true);
    st.match_tuple(patterns, 0)?;
    Ok(!st.out.is_empty())
}

/// The free variables of a pattern tuple not bound by the driving record:
/// `free(π̄) − dom(u)`, in binding order. These are the fields `MATCH`
/// appends to the table (and the fields `OPTIONAL MATCH` nulls out when
/// nothing matches).
pub fn unbound_free_vars(patterns: &[PathPattern], bound: &dyn Fn(&str) -> bool) -> Vec<String> {
    let mut out = Vec::new();
    for p in patterns {
        for v in p.free_vars() {
            if !bound(&v) && !out.contains(&v) {
                out.push(v);
            }
        }
    }
    out
}

struct AccView<'a> {
    acc: &'a [(String, Value)],
    base: &'a dyn VarLookup,
}

impl VarLookup for AccView<'_> {
    fn lookup(&self, name: &str) -> Option<Value> {
        self.acc
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
            .or_else(|| self.base.lookup(name))
    }
}

struct MatchState<'a> {
    ctx: EvalContext<'a>,
    base: &'a dyn VarLookup,
    acc: Vec<(String, Value)>,
    used_rels: FxHashSet<RelId>,
    used_nodes: FxHashSet<NodeId>,
    out: Vec<MatchRow>,
    stop_at_first: bool,
}

/// What `try_bind` did, so it can be undone on backtrack.
enum Bound {
    /// The name was absent and has been pushed onto `acc`.
    Fresh,
    /// The name was already bound to an equal value (or was `nil`).
    Existing,
}

impl<'a> MatchState<'a> {
    fn new(ctx: EvalContext<'a>, base: &'a dyn VarLookup, stop_at_first: bool) -> Self {
        MatchState {
            ctx,
            base,
            acc: Vec::new(),
            used_rels: FxHashSet::default(),
            used_nodes: FxHashSet::default(),
            out: Vec::new(),
            stop_at_first,
        }
    }

    fn done(&self) -> bool {
        self.stop_at_first && !self.out.is_empty()
    }

    fn eval(&self, e: &cypher_ast::expr::Expr) -> Result<Value, EvalError> {
        let view = AccView {
            acc: &self.acc,
            base: self.base,
        };
        eval_expr(&self.ctx, &view, e)
    }

    fn lookup(&self, name: &str) -> Option<Value> {
        AccView {
            acc: &self.acc,
            base: self.base,
        }
        .lookup(name)
    }

    /// Binds `name` to `value`, or checks consistency with an existing
    /// binding. Returns `None` when the pattern cannot match.
    fn try_bind(&mut self, name: &Option<String>, value: Value) -> Option<Bound> {
        let Some(name) = name else {
            return Some(Bound::Existing);
        };
        match self.lookup(name) {
            Some(existing) => {
                if existing.equivalent(&value) {
                    Some(Bound::Existing)
                } else {
                    None
                }
            }
            None => {
                self.acc.push((name.clone(), value));
                Some(Bound::Fresh)
            }
        }
    }

    fn unbind(&mut self, b: Bound) {
        if matches!(b, Bound::Fresh) {
            let popped = self.acc.pop();
            debug_assert!(popped.is_some());
        }
    }

    /// Checks the label and property conditions of a node pattern
    /// `χ = (a, L, P)` at node `n` (the name is handled by `try_bind`):
    /// `L ⊆ λ(n)` and `[[ι(n, k) = P(k)]] = true` for every defined `k`.
    fn sat_node_conditions(&self, n: NodeId, chi: &NodePattern) -> Result<bool, EvalError> {
        let g = self.ctx.graph;
        for l in &chi.labels {
            match g.interner().get(l) {
                Some(sym) if g.has_label(n, sym) => {}
                _ => return Ok(false),
            }
        }
        for (k, e) in &chi.props {
            let expected = self.eval(e)?;
            let actual = g.interner().get(k).and_then(|sym| g.node_prop(n, sym));
            match actual {
                Some(v) if v.equals(&expected).is_true() => {}
                _ => return Ok(false),
            }
        }
        Ok(true)
    }

    /// Checks the type and property conditions of a relationship pattern at
    /// relationship `r` — items (c′) and (d′) of the satisfaction
    /// definition.
    fn sat_rel_conditions(&self, r: RelId, rho: &RelPattern) -> Result<bool, EvalError> {
        let g = self.ctx.graph;
        if !rho.types.is_empty() {
            let t = g.rel_type(r).expect("live relationship");
            let ok = rho
                .types
                .iter()
                .any(|name| g.interner().get(name) == Some(t));
            if !ok {
                return Ok(false);
            }
        }
        for (k, e) in &rho.props {
            let expected = self.eval(e)?;
            let actual = g.interner().get(k).and_then(|sym| g.rel_prop(r, sym));
            match actual {
                Some(v) if v.equals(&expected).is_true() => {}
                _ => return Ok(false),
            }
        }
        Ok(true)
    }

    // -- the search ----------------------------------------------------------

    fn match_tuple(&mut self, patterns: &[PathPattern], idx: usize) -> Result<(), EvalError> {
        if self.done() {
            return Ok(());
        }
        if idx == patterns.len() {
            self.out.push(self.acc.clone());
            return Ok(());
        }
        let pat = &patterns[idx];
        // Start candidates: a bound name pins the node; otherwise a label
        // narrows the scan via the label index; otherwise scan all nodes.
        let candidates: Vec<NodeId> = match &pat.start.name {
            Some(name) => match self.lookup(name) {
                Some(Value::Node(n)) => vec![n],
                Some(Value::Null) => return Ok(()),
                Some(other) => {
                    return Err(EvalError::new(format!(
                        "variable {name} is bound to {} but used as a node pattern",
                        other.type_name()
                    )))
                }
                None => self.start_scan(&pat.start),
            },
            None => self.start_scan(&pat.start),
        };
        for n in candidates {
            if self.done() {
                return Ok(());
            }
            if !self.ctx.graph.contains_node(n) {
                continue;
            }
            let Some(guard) = self.try_bind(&pat.start.name, Value::Node(n)) else {
                continue;
            };
            let sat = self.sat_node_conditions(n, &pat.start)?;
            let node_fresh = if sat && self.ctx.config.morphism.nodes_distinct() {
                if self.used_nodes.contains(&n) {
                    false
                } else {
                    self.used_nodes.insert(n);
                    true
                }
            } else {
                false
            };
            let node_ok = !self.ctx.config.morphism.nodes_distinct() || node_fresh;
            if sat && node_ok {
                let path = Path::single(n);
                self.match_steps(patterns, idx, 0, n, path)?;
            }
            if node_fresh {
                self.used_nodes.remove(&n);
            }
            self.unbind(guard);
        }
        Ok(())
    }

    fn start_scan(&self, chi: &NodePattern) -> Vec<NodeId> {
        let g = self.ctx.graph;
        // Pick the most selective resolvable label.
        let mut best: Option<&[NodeId]> = None;
        for l in &chi.labels {
            match g.interner().get(l) {
                Some(sym) => {
                    let list = g.nodes_with_label(sym);
                    if best.map(|b| list.len() < b.len()).unwrap_or(true) {
                        best = Some(list);
                    }
                }
                // A label that was never interned labels no node.
                None => return Vec::new(),
            }
        }
        match best {
            Some(list) => list.to_vec(),
            None => g.nodes().collect(),
        }
    }

    fn match_steps(
        &mut self,
        patterns: &[PathPattern],
        pat_idx: usize,
        step_idx: usize,
        current: NodeId,
        path: Path,
    ) -> Result<(), EvalError> {
        if self.done() {
            return Ok(());
        }
        let pat = &patterns[pat_idx];
        if step_idx == pat.steps.len() {
            // Whole path matched: bind the path name (π/a) if present.
            let Some(guard) = self.try_bind(&pat.name, Value::Path(path)) else {
                return Ok(());
            };
            self.match_tuple(patterns, pat_idx + 1)?;
            self.unbind(guard);
            return Ok(());
        }
        let (rho, chi) = &pat.steps[step_idx];
        if rho.range.is_single() {
            self.match_single_hop(patterns, pat_idx, step_idx, current, path, rho, chi)
        } else {
            let (lo, hi) = rho.range.bounds();
            let hi = self.effective_upper(hi);
            self.var_length_dfs(
                patterns,
                pat_idx,
                step_idx,
                current,
                path,
                rho,
                chi,
                lo,
                hi,
                0,
                Vec::new(),
            )
        }
    }

    /// The `I = nil` case: exactly one relationship, bound directly (item
    /// (a″): `u(a) = r₁`, not a singleton list).
    #[allow(clippy::too_many_arguments)]
    fn match_single_hop(
        &mut self,
        patterns: &[PathPattern],
        pat_idx: usize,
        step_idx: usize,
        current: NodeId,
        path: Path,
        rho: &RelPattern,
        chi: &NodePattern,
    ) -> Result<(), EvalError> {
        let dir = dir_of(rho.dir);
        let hops = self.ctx.graph.expand(current, dir);
        for (r, next) in hops {
            if self.done() {
                return Ok(());
            }
            if self.ctx.config.morphism.rels_distinct() && self.used_rels.contains(&r) {
                continue;
            }
            if !self.sat_rel_conditions(r, rho)? {
                continue;
            }
            let Some(rel_guard) = self.try_bind(&rho.name, Value::Rel(r)) else {
                continue;
            };
            self.step_to(patterns, pat_idx, step_idx, &path, r, next, chi)?;
            self.unbind(rel_guard);
        }
        Ok(())
    }

    /// Common tail of a hop: bind the target node pattern, mark usage,
    /// extend the path, recurse into the next step.
    #[allow(clippy::too_many_arguments)]
    fn step_to(
        &mut self,
        patterns: &[PathPattern],
        pat_idx: usize,
        step_idx: usize,
        path: &Path,
        r: RelId,
        next: NodeId,
        chi: &NodePattern,
    ) -> Result<(), EvalError> {
        let Some(node_guard) = self.try_bind(&chi.name, Value::Node(next)) else {
            return Ok(());
        };
        let mut keep = self.sat_node_conditions(next, chi)?;
        let mut node_marked = false;
        if keep && self.ctx.config.morphism.nodes_distinct() {
            if self.used_nodes.contains(&next) {
                keep = false;
            } else {
                self.used_nodes.insert(next);
                node_marked = true;
            }
        }
        if keep {
            let rel_marked = self.ctx.config.morphism.rels_distinct();
            if rel_marked {
                self.used_rels.insert(r);
            }
            let mut new_path = path.clone();
            new_path.push(r, next);
            self.match_steps(patterns, pat_idx, step_idx + 1, next, new_path)?;
            if rel_marked {
                self.used_rels.remove(&r);
            }
        }
        if node_marked {
            self.used_nodes.remove(&next);
        }
        self.unbind(node_guard);
        Ok(())
    }

    fn effective_upper(&self, hi: u64) -> u64 {
        if hi != u64::MAX {
            return hi;
        }
        match self.ctx.config.morphism {
            // Relationship isomorphism bounds path length by |R|.
            Morphism::EdgeIsomorphism | Morphism::NodeIsomorphism => {
                self.ctx.graph.rel_count() as u64
            }
            // Homomorphism would be infinite; clamp (documented).
            Morphism::Homomorphism => self.ctx.config.var_length_cap,
        }
    }

    /// Variable-length relationship pattern: DFS over hop counts in
    /// `[lo, hi]`. Each completed traversal corresponds to exactly one
    /// rigid expansion `ρ′ = (d, a, T, P, (k, k))` with `k` hops, so each
    /// is emitted once — reproducing the bag multiplicities of Equation (1)
    /// (the duplicate † rows of the Section 3 walkthrough arise here).
    #[allow(clippy::too_many_arguments)]
    fn var_length_dfs(
        &mut self,
        patterns: &[PathPattern],
        pat_idx: usize,
        step_idx: usize,
        current: NodeId,
        path: Path,
        rho: &RelPattern,
        chi: &NodePattern,
        lo: u64,
        hi: u64,
        k: u64,
        rels_so_far: Vec<RelId>,
    ) -> Result<(), EvalError> {
        if self.done() {
            return Ok(());
        }
        if k >= lo {
            // Accept here: bind the list of traversed relationships (item
            // (a′): `u(a) = list(r₁, …, rₘ)`, the empty list for m = 0).
            // A failed endpoint bind (the variable is pinned to another
            // node) only skips *this* acceptance — longer traversals may
            // still reach the pinned node, so the hop enumeration below
            // must continue regardless.
            let list = Value::List(rels_so_far.iter().map(|&r| Value::Rel(r)).collect());
            if let Some(rel_guard) = self.try_bind(&rho.name, list) {
                if let Some(node_guard) = self.try_bind(&chi.name, Value::Node(current)) {
                    // Under node isomorphism the endpoint was already
                    // marked used when we stepped onto it (or it is the
                    // start node); nothing further to check here.
                    if self.sat_node_conditions(current, chi)? {
                        self.match_steps(patterns, pat_idx, step_idx + 1, current, path.clone())?;
                    }
                    self.unbind(node_guard);
                }
                self.unbind(rel_guard);
            }
        }
        if k >= hi || self.done() {
            return Ok(());
        }
        let dir = dir_of(rho.dir);
        let hops = self.ctx.graph.expand(current, dir);
        for (r, next) in hops {
            if self.done() {
                return Ok(());
            }
            if self.ctx.config.morphism.rels_distinct() && self.used_rels.contains(&r) {
                continue;
            }
            if !self.sat_rel_conditions(r, rho)? {
                continue;
            }
            // Intermediate nodes of a variable-length pattern are
            // anonymous positions: under node isomorphism they must be
            // fresh.
            let mut node_marked = false;
            if self.ctx.config.morphism.nodes_distinct() {
                if self.used_nodes.contains(&next) {
                    continue;
                }
                self.used_nodes.insert(next);
                node_marked = true;
            }
            let rel_marked = self.ctx.config.morphism.rels_distinct();
            if rel_marked {
                self.used_rels.insert(r);
            }
            let mut new_path = path.clone();
            new_path.push(r, next);
            let mut new_rels = rels_so_far.clone();
            new_rels.push(r);
            self.var_length_dfs(
                patterns,
                pat_idx,
                step_idx,
                next,
                new_path,
                rho,
                chi,
                lo,
                hi,
                k + 1,
                new_rels,
            )?;
            if rel_marked {
                self.used_rels.remove(&r);
            }
            if node_marked {
                self.used_nodes.remove(&next);
            }
        }
        Ok(())
    }
}

fn dir_of(d: Dir) -> Direction {
    match d {
        Dir::Out => Direction::Outgoing,
        Dir::In => Direction::Incoming,
        Dir::Both => Direction::Both,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::NoVars;
    use crate::{EvalContext, Params};
    use cypher_graph::PropertyGraph;
    use cypher_parser::parse_pattern;

    /// The property graph of Figure 4: teachers n1, n3, n4, student n2,
    /// with KNOWS edges n1→n2, n2→n3, n3→n4.
    fn figure4() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let n1 = g.add_node(&["Teacher"], []);
        let n2 = g.add_node(&["Student"], []);
        let n3 = g.add_node(&["Teacher"], []);
        let n4 = g.add_node(&["Teacher"], []);
        g.add_rel(n1, n2, "KNOWS", []).unwrap();
        g.add_rel(n2, n3, "KNOWS", []).unwrap();
        g.add_rel(n3, n4, "KNOWS", []).unwrap();
        g
    }

    fn run(g: &PropertyGraph, pat: &str) -> Vec<MatchRow> {
        let params = Params::new();
        let ctx = EvalContext::new(g, &params);
        let p = parse_pattern(pat).unwrap();
        match_patterns(&ctx, &NoVars, std::slice::from_ref(&p)).unwrap()
    }

    fn rows_for<'r>(rows: &'r [MatchRow], var: &str) -> Vec<&'r Value> {
        rows.iter()
            .map(|r| &r.iter().find(|(n, _)| n == var).unwrap().1)
            .collect()
    }

    #[test]
    fn example_4_2_node_patterns() {
        // (x:Teacher) matches n1, n3, n4; (y) matches all four nodes.
        let g = figure4();
        let rows = run(&g, "(x:Teacher)");
        assert_eq!(rows.len(), 3);
        let rows_any = run(&g, "(y)");
        assert_eq!(rows_any.len(), 4);
    }

    #[test]
    fn example_4_3_rigid_knows2() {
        // (x:Teacher)-[:KNOWS*2]->(y): only x=n1, y=n3 via n1 r1 n2 r2 n3.
        let g = figure4();
        let rows = run(&g, "(x:Teacher)-[:KNOWS*2]->(y)");
        assert_eq!(rows.len(), 1);
        let xs = rows_for(&rows, "x");
        let ys = rows_for(&rows, "y");
        assert_eq!(xs[0], &Value::Node(NodeId(0)));
        assert_eq!(ys[0], &Value::Node(NodeId(2)));
    }

    #[test]
    fn example_4_4_variable_length_named_middle() {
        // (x:Teacher)-[:KNOWS*1..2]->(z)-[:KNOWS*1..2]->(y:Teacher):
        // satisfied by p1 (z=n2, y=n3) and p2 under two assignments
        // (z=n2, y=n4) and (z=n3, y=n4).
        let g = figure4();
        let rows = run(
            &g,
            "(x:Teacher)-[:KNOWS*1..2]->(z)-[:KNOWS*1..2]->(y:Teacher)",
        );
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn example_4_5_bag_multiplicity() {
        // With the middle node anonymous, the path n1…n4 satisfies the
        // pattern two ways (splits 1+2 and 2+1): two copies of the same
        // assignment are added to the bag.
        let g = figure4();
        let rows = run(
            &g,
            "(x:Teacher)-[:KNOWS*1..2]->()-[:KNOWS*1..2]->(y:Teacher)",
        );
        assert_eq!(rows.len(), 3); // (n1,n3) once + (n1,n4) twice
        let n4 = Value::Node(NodeId(3));
        let to_n4 = rows
            .iter()
            .filter(|r| r.iter().any(|(n, v)| n == "y" && v.equivalent(&n4)))
            .count();
        assert_eq!(to_n4, 2, "two copies of u for the n1→n4 path");
    }

    #[test]
    fn example_4_6_match_with_driving_table() {
        // [[MATCH (x)-[:KNOWS*]->(y)]] on T = {(x: n1), (x: n3)}.
        let g = figure4();
        let params = Params::new();
        let ctx = EvalContext::new(&g, &params);
        let p = parse_pattern("(x)-[:KNOWS*]->(y)").unwrap();

        let schema = crate::Schema::new(vec!["x".into()]);
        let mut all = Vec::new();
        for start in [NodeId(0), NodeId(2)] {
            let row = crate::Record::new(vec![Value::Node(start)]);
            let b = crate::Bindings::new(&schema, &row);
            let rows = match_patterns(&ctx, &b, std::slice::from_ref(&p)).unwrap();
            for r in rows {
                all.push((start, r));
            }
        }
        // Expected: (n1,n2), (n1,n3), (n1,n4), (n3,n4).
        assert_eq!(all.len(), 4);
        let ys: Vec<NodeId> = all
            .iter()
            .map(
                |(_, r)| match &r.iter().find(|(n, _)| n == "y").unwrap().1 {
                    Value::Node(n) => *n,
                    _ => panic!(),
                },
            )
            .collect();
        assert!(ys.contains(&NodeId(1)));
        assert!(ys.contains(&NodeId(2)));
        assert_eq!(ys.iter().filter(|&&n| n == NodeId(3)).count(), 2);
    }

    #[test]
    fn relationship_isomorphism_bounds_self_loop() {
        // §4.2 complexity discussion: single node with a self-loop,
        // pattern (x)-[*0..]->(x): exactly two matches (0 hops and 1 hop).
        let mut g = PropertyGraph::new();
        let n = g.add_node(&[], []);
        g.add_rel(n, n, "LOOP", []).unwrap();
        let rows = run(&g, "(x)-[*0..]->(x)");
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn homomorphism_unbounded_is_clamped() {
        let mut g = PropertyGraph::new();
        let n = g.add_node(&[], []);
        g.add_rel(n, n, "LOOP", []).unwrap();
        let params = Params::new();
        let ctx = EvalContext::new(&g, &params).with_config(MatchConfig {
            morphism: Morphism::Homomorphism,
            var_length_cap: 5,
        });
        let p = parse_pattern("(x)-[*0..]->(x)").unwrap();
        let rows = match_patterns(&ctx, &NoVars, std::slice::from_ref(&p)).unwrap();
        // 0..=5 hops → 6 matches under homomorphism with cap 5.
        assert_eq!(rows.len(), 6);
    }

    #[test]
    fn node_isomorphism_rejects_revisits() {
        // Triangle a→b→c→a; a 3-step pattern must wrap around to the start
        // node, which node isomorphism forbids but edge isomorphism allows
        // (three distinct edges).
        let mut g = PropertyGraph::new();
        let a = g.add_node(&[], []);
        let b = g.add_node(&[], []);
        let c = g.add_node(&[], []);
        g.add_rel(a, b, "E", []).unwrap();
        g.add_rel(b, c, "E", []).unwrap();
        g.add_rel(c, a, "E", []).unwrap();
        let params = Params::new();
        let p = parse_pattern("(p)-->(q)-->(r)-->(s)").unwrap();

        let edge_ctx = EvalContext::new(&g, &params);
        let edge_rows = match_patterns(&edge_ctx, &NoVars, std::slice::from_ref(&p)).unwrap();
        assert_eq!(edge_rows.len(), 3, "one full cycle from each start node");

        let node_ctx = EvalContext::new(&g, &params).with_config(MatchConfig {
            morphism: Morphism::NodeIsomorphism,
            var_length_cap: 12,
        });
        let node_rows = match_patterns(&node_ctx, &NoVars, std::slice::from_ref(&p)).unwrap();
        assert_eq!(node_rows.len(), 0, "every 3-step walk revisits a node");

        // A 2-step pattern visits three distinct nodes and matches under
        // both morphisms.
        let p2 = parse_pattern("(p)-->(q)-->(r)").unwrap();
        let e2 = match_patterns(&edge_ctx, &NoVars, std::slice::from_ref(&p2)).unwrap();
        let n2 = match_patterns(&node_ctx, &NoVars, std::slice::from_ref(&p2)).unwrap();
        assert_eq!(e2.len(), 3);
        assert_eq!(n2.len(), 3);
    }

    #[test]
    fn tuple_patterns_share_edge_exclusion() {
        // Two patterns in one MATCH may not bind the same relationship.
        let mut g = PropertyGraph::new();
        let a = g.add_node(&[], []);
        let b = g.add_node(&[], []);
        g.add_rel(a, b, "E", []).unwrap();
        let params = Params::new();
        let ctx = EvalContext::new(&g, &params);
        let p1 = parse_pattern("(a)-[r1]->(b)").unwrap();
        let p2 = parse_pattern("(c)-[r2]->(d)").unwrap();
        let rows = match_patterns(&ctx, &NoVars, &[p1, p2]).unwrap();
        assert_eq!(
            rows.len(),
            0,
            "only one edge exists; tuples need two distinct"
        );
    }

    #[test]
    fn property_conditions_filter() {
        let mut g = PropertyGraph::new();
        let a = g.add_node(&["P"], [("age", Value::int(30))]);
        let _b = g.add_node(&["P"], [("age", Value::int(40))]);
        let rows = run(&g, "(x:P {age: 30})");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows_for(&rows, "x")[0], &Value::Node(a));
        // Missing property never matches.
        let rows2 = run(&g, "(x:P {nope: 1})");
        assert_eq!(rows2.len(), 0);
    }

    #[test]
    fn bound_rel_variable_joins() {
        let mut g = PropertyGraph::new();
        let a = g.add_node(&[], []);
        let b = g.add_node(&[], []);
        g.add_rel(a, b, "E", []).unwrap();
        g.add_rel(a, b, "E", []).unwrap();
        let params = Params::new();
        let ctx = EvalContext::new(&g, &params);
        // Same relationship variable in both patterns of the tuple: it
        // would have to bind one edge twice, which relationship
        // isomorphism forbids.
        let p1 = parse_pattern("(a)-[r]->(b)").unwrap();
        let p2 = parse_pattern("(c)-[r]->(d)").unwrap();
        let rows = match_patterns(&ctx, &NoVars, &[p1, p2]).unwrap();
        assert_eq!(rows.len(), 0);
    }

    #[test]
    fn named_path_binds_path_value() {
        let g = figure4();
        let rows = run(&g, "p = (x:Student)-[:KNOWS]->(y)");
        assert_eq!(rows.len(), 1);
        let p = rows_for(&rows, "p")[0];
        match p {
            Value::Path(path) => {
                assert_eq!(path.len(), 1);
                assert_eq!(path.start(), NodeId(1));
                assert_eq!(path.end(), NodeId(2));
            }
            other => panic!("expected path, got {other:?}"),
        }
    }

    #[test]
    fn undirected_matches_both_orientations() {
        let mut g = PropertyGraph::new();
        let a = g.add_node(&[], []);
        let b = g.add_node(&[], []);
        g.add_rel(a, b, "E", []).unwrap();
        let rows = run(&g, "(x)-[r]-(y)");
        // Each orientation is a distinct match: (a,b) and (b,a).
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn unbound_free_vars_subtracts_domain() {
        let p = parse_pattern("(x)-[r]->(y)").unwrap();
        let vars = unbound_free_vars(std::slice::from_ref(&p), &|n| n == "x");
        assert_eq!(vars, vec!["r", "y"]);
    }

    #[test]
    fn anonymous_patterns_add_no_bindings() {
        let g = figure4();
        let rows = run(&g, "()-[:KNOWS]->()");
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn zero_length_var_pattern() {
        // (x)-[*0..0]->(y) binds y = x for every node.
        let g = figure4();
        let rows = run(&g, "(x)-[*0..0]->(y)");
        assert_eq!(rows.len(), 4);
        for r in &rows {
            let x = &r.iter().find(|(n, _)| n == "x").unwrap().1;
            let y = &r.iter().find(|(n, _)| n == "y").unwrap().1;
            assert!(x.equivalent(y));
        }
    }
}
