//! Tables: bags (multisets) of records (paper Section 4.1, "Tables").
//!
//! A *record* is a partial function from names to values, written
//! `u = (a₁: v₁, …, aₙ: vₙ)`; two records are *uniform* when they have the
//! same domain. A *table with fields A* is a bag of records whose domain is
//! exactly `A`. We represent the common domain once as a [`Schema`] and
//! store records positionally.
//!
//! The bag operations of the paper are provided: `⊎` (bag union,
//! [`Table::bag_union`]) and `ε` (duplicate elimination,
//! [`Table::dedup`]), the latter using Cypher *equivalence* (null ≡ null).

use cypher_graph::Value;
use std::fmt;
use std::sync::Arc;

/// The ordered field names of a table. Field order is a presentation
/// artifact ("the order in which the fields appear is only for notation
/// purposes"); operations that combine tables match fields by name.
///
/// Name→position resolution is the innermost loop of expression
/// evaluation (every variable reference of every row resolves through
/// [`Schema::index_of`]), so wide schemas build a hash index lazily, once
/// per schema — schemas are immutable and `Arc`-shared, so the index is
/// built at plan/build time in practice, never per row.
#[derive(Debug, Default)]
pub struct Schema {
    names: Vec<String>,
    /// Lazily-built name→position map; only consulted above
    /// [`INDEX_THRESHOLD`] fields, below which the linear probe wins.
    index: std::sync::OnceLock<std::collections::HashMap<String, usize>>,
}

/// Schemas narrower than this resolve names by linear probe (cheaper than
/// hashing for a handful of fields).
const INDEX_THRESHOLD: usize = 9;

impl Clone for Schema {
    fn clone(&self) -> Self {
        Schema {
            names: self.names.clone(),
            index: std::sync::OnceLock::new(),
        }
    }
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.names == other.names
    }
}

impl Eq for Schema {}

impl Schema {
    /// An empty schema (the domain of the empty record `()`).
    pub fn empty() -> Arc<Schema> {
        Arc::new(Schema::default())
    }

    /// Builds a schema from names.
    ///
    /// # Panics
    /// Panics if names are not distinct (records are functions, so a name
    /// cannot appear twice).
    pub fn new(names: Vec<String>) -> Arc<Schema> {
        for (i, n) in names.iter().enumerate() {
            assert!(
                !names[..i].contains(n),
                "duplicate field name in schema: {n}"
            );
        }
        Arc::new(Schema {
            names,
            index: std::sync::OnceLock::new(),
        })
    }

    /// The field names in presentation order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True for the empty schema.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The positional index of a field. O(1) expected for wide schemas
    /// (hash index, built once per schema), linear probe for narrow ones.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        if self.names.len() >= INDEX_THRESHOLD {
            return self
                .index
                .get_or_init(|| {
                    self.names
                        .iter()
                        .enumerate()
                        .map(|(i, n)| (n.clone(), i))
                        .collect()
                })
                .get(name)
                .copied();
        }
        self.names.iter().position(|n| n == name)
    }

    /// True iff the field exists.
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_some()
    }

    /// A new schema with one more field appended.
    ///
    /// # Panics
    /// Panics if the name is already present.
    pub fn with_field(&self, name: impl Into<String>) -> Arc<Schema> {
        let name = name.into();
        let mut names = self.names.clone();
        assert!(!names.contains(&name), "duplicate field name: {name}");
        names.push(name);
        Arc::new(Schema {
            names,
            index: std::sync::OnceLock::new(),
        })
    }

    /// True iff both schemas have the same name *set* (uniformity up to
    /// column order, used by `UNION`).
    pub fn same_fields(&self, other: &Schema) -> bool {
        self.len() == other.len() && self.names.iter().all(|n| other.contains(n))
    }
}

/// A record: the values of one row, positionally aligned with a
/// [`Schema`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Record {
    values: Vec<Value>,
}

impl Record {
    /// The empty record `()`.
    pub fn empty() -> Record {
        Record::default()
    }

    /// Builds a record from values.
    pub fn new(values: Vec<Value>) -> Record {
        Record { values }
    }

    /// The values in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value at a position.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Appends a value (paired with [`Schema::with_field`]).
    pub fn push(&mut self, v: Value) {
        self.values.push(v);
    }

    /// Clones this record with spare capacity for `extra` appended values.
    ///
    /// The scan and expand operators of the engine clone a driving record
    /// and immediately push one or two new bindings onto it; a plain
    /// `clone()` allocates exactly `len` slots, so the push pays a second,
    /// growth allocation per emitted row. This constructor folds both into
    /// a single allocation — on a 100k-row scan that halves the allocator
    /// traffic of the hot loop.
    pub fn cloned_with_extra(&self, extra: usize) -> Record {
        let mut values = Vec::with_capacity(self.values.len() + extra);
        values.extend_from_slice(&self.values);
        Record { values }
    }

    /// Record concatenation `(u, u′)` of the paper.
    pub fn concat(&self, other: &Record) -> Record {
        let mut values = self.values.clone();
        values.extend_from_slice(&other.values);
        Record { values }
    }

    /// True iff the records are equivalent value-wise (Cypher equivalence,
    /// so `null ≡ null`).
    pub fn equivalent(&self, other: &Record) -> bool {
        self.values.len() == other.values.len()
            && self
                .values
                .iter()
                .zip(&other.values)
                .all(|(a, b)| a.equivalent(b))
    }
}

/// A table: a bag of uniform records plus their shared schema.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Arc<Schema>,
    rows: Vec<Record>,
}

impl Table {
    /// `T()`: the table containing the single empty tuple — the starting
    /// point of query evaluation (`output(Q, G) = [[Q]]_G(T())`).
    pub fn unit() -> Table {
        Table {
            schema: Schema::empty(),
            rows: vec![Record::empty()],
        }
    }

    /// An empty table with the given schema.
    pub fn empty(schema: Arc<Schema>) -> Table {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// Builds a table from a schema and rows.
    ///
    /// # Panics
    /// Panics if any row's width differs from the schema's.
    pub fn new(schema: Arc<Schema>, rows: Vec<Record>) -> Table {
        for r in &rows {
            assert_eq!(
                r.values().len(),
                schema.len(),
                "record width does not match schema"
            );
        }
        Table { schema, rows }
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The rows (bag; order is incidental).
    pub fn rows(&self) -> &[Record] {
        &self.rows
    }

    /// Moves the rows out.
    pub fn into_rows(self) -> Vec<Record> {
        self.rows
    }

    /// Number of rows (with multiplicity).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the bag is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Adds a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the schema.
    pub fn push(&mut self, r: Record) {
        assert_eq!(r.values().len(), self.schema.len());
        self.rows.push(r);
    }

    /// Looks up a cell by row index and field name.
    pub fn cell(&self, row: usize, field: &str) -> Option<&Value> {
        let idx = self.schema.index_of(field)?;
        self.rows.get(row).map(|r| r.get(idx))
    }

    /// Bag union `T ⊎ T′`. The schemas must have the same field set;
    /// `other`'s columns are permuted to this table's order if needed.
    ///
    /// # Panics
    /// Panics if the field sets differ.
    pub fn bag_union(mut self, other: Table) -> Table {
        assert!(
            self.schema.same_fields(&other.schema),
            "bag union of tables with different fields: {:?} vs {:?}",
            self.schema.names(),
            other.schema.names()
        );
        if self.schema.names() == other.schema.names() {
            self.rows.extend(other.rows);
            return self;
        }
        let perm: Vec<usize> = self
            .schema
            .names()
            .iter()
            .map(|n| other.schema.index_of(n).unwrap())
            .collect();
        for r in other.rows {
            let values = perm.iter().map(|&i| r.get(i).clone()).collect();
            self.rows.push(Record::new(values));
        }
        self
    }

    /// Duplicate elimination `ε(T)`: each equivalent row kept once. Uses a
    /// sort by the total orderability order, so runs in `O(n log n)`.
    pub fn dedup(mut self) -> Table {
        let idx: Vec<usize> = (0..self.rows.len()).collect();
        let mut sorted = idx;
        sorted.sort_by(|&a, &b| cmp_records(&self.rows[a], &self.rows[b]));
        let mut keep = vec![false; self.rows.len()];
        let mut prev: Option<usize> = None;
        for &i in &sorted {
            match prev {
                Some(p) if self.rows[p].equivalent(&self.rows[i]) => {}
                _ => {
                    keep[i] = true;
                    prev = Some(i);
                }
            }
        }
        let mut out = Vec::with_capacity(self.rows.len());
        for (i, r) in self.rows.drain(..).enumerate() {
            if keep[i] {
                out.push(r);
            }
        }
        Table {
            schema: self.schema,
            rows: out,
        }
    }

    /// True iff both tables contain the same bag of records over the same
    /// field set (row and column order insensitive) — multiset equality,
    /// used pervasively by the experiment suite.
    pub fn bag_eq(&self, other: &Table) -> bool {
        if !self.schema.same_fields(&other.schema) || self.len() != other.len() {
            return false;
        }
        let perm: Vec<usize> = self
            .schema
            .names()
            .iter()
            .map(|n| other.schema.index_of(n).unwrap())
            .collect();
        let mut mine: Vec<&Record> = self.rows.iter().collect();
        let mut theirs: Vec<Record> = other
            .rows
            .iter()
            .map(|r| Record::new(perm.iter().map(|&i| r.get(i).clone()).collect()))
            .collect();
        mine.sort_by(|a, b| cmp_records(a, b));
        theirs.sort_by(cmp_records);
        mine.iter().zip(&theirs).all(|(a, b)| a.equivalent(b))
    }

    /// True iff both tables contain the same *sequence* of records over
    /// the same field set (row order sensitive, column order insensitive) —
    /// the comparison `ORDER BY` determinism demands: once a query sorts,
    /// two runs must agree on the exact row order, not merely the bag.
    pub fn ordered_eq(&self, other: &Table) -> bool {
        if !self.schema.same_fields(&other.schema) || self.len() != other.len() {
            return false;
        }
        let perm: Vec<usize> = self
            .schema
            .names()
            .iter()
            .map(|n| other.schema.index_of(n).unwrap())
            .collect();
        self.rows.iter().zip(&other.rows).all(|(a, b)| {
            perm.iter()
                .enumerate()
                .all(|(i, &j)| a.get(i).equivalent(b.get(j)))
        })
    }

    /// Panicking assertion form of [`Table::bag_eq`] with a readable diff.
    pub fn assert_bag_eq(&self, other: &Table) {
        assert!(
            self.bag_eq(other),
            "tables differ:\nleft:\n{self}\nright:\n{other}"
        );
    }

    /// Sorts rows in place by a comparator (used by `ORDER BY`).
    pub fn sort_by<F>(&mut self, cmp: F)
    where
        F: FnMut(&Record, &Record) -> std::cmp::Ordering,
    {
        self.rows.sort_by(cmp);
    }

    /// Keeps `skip..skip+limit` rows (used by `SKIP` / `LIMIT`).
    pub fn slice(mut self, skip: usize, limit: Option<usize>) -> Table {
        let end = match limit {
            Some(l) => (skip + l).min(self.rows.len()),
            None => self.rows.len(),
        };
        let start = skip.min(self.rows.len());
        self.rows = self.rows.drain(start..end).collect();
        self
    }
}

fn cmp_records(a: &Record, b: &Record) -> std::cmp::Ordering {
    for (x, y) in a.values().iter().zip(b.values()) {
        match x.cmp_order(y) {
            std::cmp::Ordering::Equal => continue,
            ord => return ord,
        }
    }
    std::cmp::Ordering::Equal
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "| {} |", self.schema.names().join(" | "))?;
        for r in &self.rows {
            let cells: Vec<String> = r.values().iter().map(|v| v.to_string()).collect();
            writeln!(f, "| {} |", cells.join(" | "))?;
        }
        Ok(())
    }
}

/// Convenience constructor for tests and examples: builds a table from
/// field names and rows of values.
pub fn table_of(fields: &[&str], rows: Vec<Vec<Value>>) -> Table {
    let schema = Schema::new(fields.iter().map(|s| s.to_string()).collect());
    Table::new(schema, rows.into_iter().map(Record::new).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_graph::Value;

    #[test]
    fn unit_table() {
        let t = Table::unit();
        assert_eq!(t.len(), 1);
        assert!(t.schema().is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate field name")]
    fn schema_rejects_duplicates() {
        Schema::new(vec!["a".into(), "a".into()]);
    }

    #[test]
    fn bag_union_sums_multiplicities() {
        let a = table_of(&["x"], vec![vec![Value::int(1)], vec![Value::int(1)]]);
        let b = table_of(&["x"], vec![vec![Value::int(1)]]);
        let u = a.bag_union(b);
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn bag_union_permutes_columns() {
        let a = table_of(&["x", "y"], vec![vec![Value::int(1), Value::int(2)]]);
        let b = table_of(&["y", "x"], vec![vec![Value::int(4), Value::int(3)]]);
        let u = a.bag_union(b);
        assert_eq!(u.cell(1, "x"), Some(&Value::int(3)));
        assert_eq!(u.cell(1, "y"), Some(&Value::int(4)));
    }

    #[test]
    fn dedup_uses_equivalence() {
        let t = table_of(
            &["x"],
            vec![
                vec![Value::int(1)],
                vec![Value::float(1.0)],
                vec![Value::Null],
                vec![Value::Null],
            ],
        );
        let d = t.dedup();
        assert_eq!(d.len(), 2); // {1, null}
    }

    #[test]
    fn bag_eq_is_order_insensitive() {
        let a = table_of(
            &["x", "y"],
            vec![
                vec![Value::int(1), Value::str("a")],
                vec![Value::int(2), Value::str("b")],
            ],
        );
        let b = table_of(
            &["y", "x"],
            vec![
                vec![Value::str("b"), Value::int(2)],
                vec![Value::str("a"), Value::int(1)],
            ],
        );
        assert!(a.bag_eq(&b));
        let c = table_of(&["x", "y"], vec![vec![Value::int(1), Value::str("a")]]);
        assert!(!a.bag_eq(&c));
    }

    #[test]
    fn bag_eq_respects_multiplicity() {
        let a = table_of(&["x"], vec![vec![Value::int(1)], vec![Value::int(1)]]);
        let b = table_of(&["x"], vec![vec![Value::int(1)], vec![Value::int(2)]]);
        assert!(!a.bag_eq(&b));
    }

    #[test]
    fn slice_skip_limit() {
        let t = table_of(&["x"], (0..10).map(|i| vec![Value::int(i)]).collect());
        assert_eq!(t.clone().slice(2, Some(3)).len(), 3);
        assert_eq!(t.clone().slice(8, Some(5)).len(), 2);
        assert_eq!(t.clone().slice(20, None).len(), 0);
        assert_eq!(t.slice(0, None).len(), 10);
    }

    #[test]
    fn cell_lookup() {
        let t = table_of(&["a", "b"], vec![vec![Value::int(1), Value::int(2)]]);
        assert_eq!(t.cell(0, "b"), Some(&Value::int(2)));
        assert_eq!(t.cell(0, "z"), None);
        assert_eq!(t.cell(5, "a"), None);
    }

    #[test]
    fn ordered_eq_is_row_order_sensitive() {
        let a = table_of(&["x"], vec![vec![Value::int(1)], vec![Value::int(2)]]);
        let b = table_of(&["x"], vec![vec![Value::int(2)], vec![Value::int(1)]]);
        assert!(a.bag_eq(&b));
        assert!(!a.ordered_eq(&b));
        assert!(a.ordered_eq(&a));
        // Column order is still a presentation artifact.
        let c = table_of(&["x", "y"], vec![vec![Value::int(1), Value::str("a")]]);
        let d = table_of(&["y", "x"], vec![vec![Value::str("a"), Value::int(1)]]);
        assert!(c.ordered_eq(&d));
    }

    #[test]
    fn cloned_with_extra_matches_clone() {
        let r = Record::new(vec![Value::int(1), Value::str("a")]);
        let mut c = r.cloned_with_extra(2);
        assert!(c.equivalent(&r));
        // The reserved headroom is usable: pushing `extra` values must
        // leave the original untouched and extend the clone.
        c.push(Value::int(2));
        c.push(Value::int(3));
        assert_eq!(c.values().len(), 4);
        assert_eq!(r.values().len(), 2);
    }

    #[test]
    fn record_concat() {
        let u = Record::new(vec![Value::int(1)]);
        let v = Record::new(vec![Value::int(2), Value::int(3)]);
        assert_eq!(u.concat(&v).values().len(), 3);
    }
}
