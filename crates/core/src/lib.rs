//! # cypher-core
//!
//! The paper's primary contribution, implemented literally: the **formal
//! semantics of core Cypher** (Section 4 of *Cypher: An Evolving Query
//! Language for Property Graphs*, SIGMOD 2018).
//!
//! This crate is the *reference evaluator*: a direct transcription of the
//! denotational semantics —
//!
//! * tables are bags of records ([`table`]),
//! * the pattern-matching relation `(p, G, u) ⊨ π` and the bag
//!   `match(π̄, G, u)` of Equation (1) ([`matching`]),
//! * expression semantics `[[expr]]_{G,u}` with SQL-style three-valued
//!   logic ([`expr`], [`functions`], [`aggregate`]),
//! * clause semantics `[[C]]_G : Table → Table` and query semantics
//!   `[[Q]]_G` per Figures 6 and 7 ([`clauses`], [`query`]).
//!
//! Evaluation starts from the unit table: `output(Q, G) = [[Q]]_G(T())`.
//!
//! The companion crate `cypher-engine` implements the same language with a
//! Volcano-style planner; the two are differentially tested against each
//! other. This crate favours clarity and fidelity to the paper over speed —
//! it *is* the naive-enumeration baseline measured in the benchmark suite.
//!
//! ```
//! use cypher_core::{eval_query, EvalContext, Params};
//! use cypher_graph::{PropertyGraph, Value};
//! use cypher_parser::parse_query;
//!
//! let mut g = PropertyGraph::new();
//! let a = g.add_node(&["Researcher"], [("name", Value::str("Nils"))]);
//! let b = g.add_node(&["Publication"], [("acmid", Value::int(220))]);
//! g.add_rel(a, b, "AUTHORS", []).unwrap();
//!
//! let q = parse_query("MATCH (r:Researcher)-[:AUTHORS]->(p) RETURN r.name").unwrap();
//! let params = Params::new();
//! let ctx = EvalContext::new(&g, &params);
//! let out = eval_query(&ctx, &q).unwrap();
//! assert_eq!(out.cell(0, "r.name"), Some(&Value::str("Nils")));
//! ```

#![warn(missing_docs)]

pub mod aggregate;
pub mod clauses;
pub mod error;
pub mod expr;
pub mod functions;
pub mod matching;
pub mod morphism;
pub mod project;
pub mod query;
pub mod table;

pub use error::EvalError;
pub use expr::{eval_expr, Bindings, VarLookup};
pub use matching::{match_patterns, MatchConfig};
pub use morphism::Morphism;
pub use query::{eval_query, output};
pub use table::{table_of, Record, Schema, Table};

use cypher_graph::PropertyGraph;

/// Query parameters (`$name` bindings), as in the paper's Section 2
/// ("built-in support for query parameters").
pub type Params = std::collections::BTreeMap<String, cypher_graph::Value>;

/// Everything an evaluation needs besides the table being transformed:
/// the graph `G`, the parameters, and the pattern-matching configuration.
#[derive(Clone, Copy)]
pub struct EvalContext<'a> {
    /// The queried property graph `G`.
    pub graph: &'a PropertyGraph,
    /// Query parameters.
    pub params: &'a Params,
    /// Morphism mode and variable-length safeguards.
    pub config: MatchConfig,
}

impl<'a> EvalContext<'a> {
    /// A context with the default (paper-faithful) configuration:
    /// relationship isomorphism.
    pub fn new(graph: &'a PropertyGraph, params: &'a Params) -> Self {
        EvalContext {
            graph,
            params,
            config: MatchConfig::default(),
        }
    }

    /// Overrides the matching configuration (Section 8, "Configurable
    /// morphisms").
    pub fn with_config(mut self, config: MatchConfig) -> Self {
        self.config = config;
        self
    }
}
