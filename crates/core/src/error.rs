//! Evaluation errors.

use std::fmt;

/// A runtime evaluation failure: undefined variables, type errors in
/// contexts the language defines as errors (rather than `null`), arithmetic
/// overflow, missing parameters, and the like.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Human-readable description.
    pub msg: String,
}

impl EvalError {
    /// Builds an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        EvalError { msg: msg.into() }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {}", self.msg)
    }
}

impl std::error::Error for EvalError {}

/// Shorthand for `Err(EvalError::new(…))`.
pub fn err<T>(msg: impl Into<String>) -> Result<T, EvalError> {
    Err(EvalError::new(msg))
}
