//! Reusable projection machinery: compiled `WITH`/`RETURN` bodies,
//! grouped-aggregation partial states, and bounded top-k accumulators.
//!
//! [`crate::clauses::apply_projection`] (the sequential reference path)
//! and the morsel-driven engine's partial-aggregation pushdown are **one
//! implementation**: both compile the projection once into a
//! [`ProjectionPlan`], fold rows into a [`GroupedAggState`] (or a
//! [`TopKState`] for `ORDER BY … LIMIT`), and finalize. The states are
//! self-contained and `Send`, so the engine can fold one per morsel inside
//! its worker pool and merge them **in morsel order** — which, because
//! every constituent ([`crate::aggregate::Aggregator`], distinct sets,
//! group creation order, top-k tie-breaking) is defined to reproduce the
//! row-order fold under in-order merging, keeps parallel output
//! bit-identical to sequential output.

use crate::aggregate::{AggKind, Aggregator};
use crate::error::{err, EvalError};
use crate::expr::{eval_expr, Bindings, NoVars, VarLookup};
use crate::table::{Record, Schema, Table};
use crate::EvalContext;
use cypher_ast::expr::Expr;
use cypher_ast::query::{Return, ReturnItem, SortItem};
use std::collections::HashMap;
use std::hash::Hasher;
use std::sync::Arc;

/// The implementation-dependent injective naming function `α` of Section
/// 4.3: we use the unparsed expression text, which matches the column
/// headers of the paper's examples (e.g. `r.name`).
pub fn alpha(e: &Expr) -> String {
    e.to_string()
}

/// One compiled projection item.
struct ProjItem {
    /// Output column name.
    name: String,
    /// The (possibly rewritten) expression; aggregate subtrees are replaced
    /// by placeholder parameters.
    expr: Expr,
    /// True when the original item contained an aggregate.
    aggregated: bool,
}

/// One extracted aggregate call.
struct AggSpec {
    kind: AggKind,
    distinct: bool,
    arg: Option<Expr>,
    aux: Option<Expr>,
    placeholder: String,
}

/// Replaces each aggregate call in `e` by a fresh placeholder parameter
/// (the placeholder names contain a space, which the surface syntax cannot
/// produce, so they can never collide with user parameters).
fn extract_aggregates(e: &Expr, specs: &mut Vec<AggSpec>) -> Expr {
    match e {
        Expr::CountStar => {
            let placeholder = format!(" agg {}", specs.len());
            specs.push(AggSpec {
                kind: AggKind::CountStar,
                distinct: false,
                arg: None,
                aux: None,
                placeholder: placeholder.clone(),
            });
            Expr::Param(placeholder)
        }
        Expr::FnCall {
            name,
            args,
            distinct,
        } => {
            if let Some(kind) = AggKind::from_name(name) {
                let placeholder = format!(" agg {}", specs.len());
                specs.push(AggSpec {
                    kind,
                    distinct: *distinct,
                    arg: args.first().cloned(),
                    aux: args.get(1).cloned(),
                    placeholder: placeholder.clone(),
                });
                Expr::Param(placeholder)
            } else {
                Expr::FnCall {
                    name: name.clone(),
                    args: args.iter().map(|a| extract_aggregates(a, specs)).collect(),
                    distinct: *distinct,
                }
            }
        }
        Expr::Arith(op, a, b) => Expr::Arith(
            *op,
            Box::new(extract_aggregates(a, specs)),
            Box::new(extract_aggregates(b, specs)),
        ),
        Expr::Cmp(op, a, b) => Expr::Cmp(
            *op,
            Box::new(extract_aggregates(a, specs)),
            Box::new(extract_aggregates(b, specs)),
        ),
        Expr::Neg(a) => Expr::Neg(Box::new(extract_aggregates(a, specs))),
        Expr::Or(a, b) => Expr::Or(
            Box::new(extract_aggregates(a, specs)),
            Box::new(extract_aggregates(b, specs)),
        ),
        Expr::And(a, b) => Expr::And(
            Box::new(extract_aggregates(a, specs)),
            Box::new(extract_aggregates(b, specs)),
        ),
        Expr::List(items) => {
            Expr::List(items.iter().map(|a| extract_aggregates(a, specs)).collect())
        }
        Expr::Map(kvs) => Expr::Map(
            kvs.iter()
                .map(|(k, v)| (k.clone(), extract_aggregates(v, specs)))
                .collect(),
        ),
        Expr::Prop(e, k) => Expr::Prop(Box::new(extract_aggregates(e, specs)), k.clone()),
        Expr::Index(a, b) => Expr::Index(
            Box::new(extract_aggregates(a, specs)),
            Box::new(extract_aggregates(b, specs)),
        ),
        Expr::Slice(e, lo, hi) => Expr::Slice(
            Box::new(extract_aggregates(e, specs)),
            lo.as_ref().map(|x| Box::new(extract_aggregates(x, specs))),
            hi.as_ref().map(|x| Box::new(extract_aggregates(x, specs))),
        ),
        Expr::In(a, b) => Expr::In(
            Box::new(extract_aggregates(a, specs)),
            Box::new(extract_aggregates(b, specs)),
        ),
        Expr::StartsWith(a, b) => Expr::StartsWith(
            Box::new(extract_aggregates(a, specs)),
            Box::new(extract_aggregates(b, specs)),
        ),
        Expr::EndsWith(a, b) => Expr::EndsWith(
            Box::new(extract_aggregates(a, specs)),
            Box::new(extract_aggregates(b, specs)),
        ),
        Expr::Contains(a, b) => Expr::Contains(
            Box::new(extract_aggregates(a, specs)),
            Box::new(extract_aggregates(b, specs)),
        ),
        Expr::Xor(a, b) => Expr::Xor(
            Box::new(extract_aggregates(a, specs)),
            Box::new(extract_aggregates(b, specs)),
        ),
        Expr::Not(a) => Expr::Not(Box::new(extract_aggregates(a, specs))),
        Expr::IsNull(a) => Expr::IsNull(Box::new(extract_aggregates(a, specs))),
        Expr::IsNotNull(a) => Expr::IsNotNull(Box::new(extract_aggregates(a, specs))),
        Expr::Case {
            input,
            whens,
            else_,
        } => Expr::Case {
            input: input
                .as_ref()
                .map(|x| Box::new(extract_aggregates(x, specs))),
            whens: whens
                .iter()
                .map(|(w, t)| (extract_aggregates(w, specs), extract_aggregates(t, specs)))
                .collect(),
            else_: else_
                .as_ref()
                .map(|x| Box::new(extract_aggregates(x, specs))),
        },
        // Scoped forms (list/pattern comprehensions, quantifiers, pattern
        // predicates) cannot legally contain outer-level aggregates; they
        // are left atomic — any aggregate inside them is reported by the
        // evaluator.
        other => other.clone(),
    }
}

/// A `WITH`/`RETURN` body compiled against a concrete input schema: star
/// expansion done, output names resolved and checked, aggregate subtrees
/// extracted. Compiling is cheap and pure — both the sequential evaluator
/// and every parallel worker share one instance.
pub struct ProjectionPlan {
    items: Vec<ProjItem>,
    specs: Vec<AggSpec>,
    out_schema: Arc<Schema>,
    any_agg: bool,
}

impl ProjectionPlan {
    /// Compiles a projection body against the input schema. Fails on the
    /// same conditions the sequential path reported: `RETURN *` over no
    /// fields, duplicate output column names.
    pub fn compile(ret: &Return, input: &Schema) -> Result<ProjectionPlan, EvalError> {
        // 1. Expand `∗` into explicit items (Figure 6's rewrite).
        let mut items: Vec<ReturnItem> = Vec::new();
        if ret.star {
            if input.is_empty() && ret.items.is_empty() {
                return err("RETURN * / WITH * require at least one field");
            }
            for n in input.names() {
                items.push(ReturnItem::aliased(Expr::var(n.clone()), n.clone()));
            }
        }
        items.extend(ret.items.iter().cloned());

        // 2. Output names: the alias if present, else α(expr); must be
        //    distinct.
        let mut proj: Vec<ProjItem> = Vec::new();
        let mut any_agg = false;
        let mut specs: Vec<AggSpec> = Vec::new();
        for item in &items {
            let name = item.alias.clone().unwrap_or_else(|| alpha(&item.expr));
            let aggregated = item.expr.contains_aggregate();
            any_agg |= aggregated;
            let expr = if aggregated {
                extract_aggregates(&item.expr, &mut specs)
            } else {
                item.expr.clone()
            };
            if proj.iter().any(|p| p.name == name) {
                return err(format!("duplicate column name in projection: {name}"));
            }
            proj.push(ProjItem {
                name,
                expr,
                aggregated,
            });
        }
        let out_schema = Schema::new(proj.iter().map(|p| p.name.clone()).collect());
        Ok(ProjectionPlan {
            items: proj,
            specs,
            out_schema,
            any_agg,
        })
    }

    /// True when any item contains an aggregate (the projection groups).
    pub fn is_aggregating(&self) -> bool {
        self.any_agg
    }

    /// The output schema (one column per item, in order).
    pub fn out_schema(&self) -> &Arc<Schema> {
        &self.out_schema
    }

    /// Output names of the non-aggregated items — the implicit grouping
    /// keys (for `EXPLAIN`).
    pub fn key_names(&self) -> Vec<&str> {
        self.items
            .iter()
            .filter(|p| !p.aggregated)
            .map(|p| p.name.as_str())
            .collect()
    }

    /// Rendered aggregate calls, e.g. `count(*)`, `sum(DISTINCT x)` (for
    /// `EXPLAIN`).
    pub fn agg_display(&self) -> Vec<String> {
        self.specs
            .iter()
            .map(|s| {
                let name = match s.kind {
                    AggKind::CountStar => return "count(*)".to_string(),
                    AggKind::Count => "count",
                    AggKind::Sum => "sum",
                    AggKind::Avg => "avg",
                    AggKind::Min => "min",
                    AggKind::Max => "max",
                    AggKind::Collect => "collect",
                    AggKind::StDev => "stdev",
                    AggKind::StDevP => "stdevp",
                    AggKind::PercentileCont => "percentileCont",
                    AggKind::PercentileDisc => "percentileDisc",
                };
                let d = if s.distinct { "DISTINCT " } else { "" };
                let a = s.arg.as_ref().map(alpha).unwrap_or_default();
                format!("{name}({d}{a})")
            })
            .collect()
    }

    /// True when every aggregate call in the plan supports exact
    /// retraction ([`AggKind::is_retractable`]) — a necessary condition
    /// for delta-maintaining a view of this projection.
    pub fn all_aggs_retractable(&self) -> bool {
        self.specs.iter().all(|s| s.kind.is_retractable(s.distinct))
    }

    /// True when every aggregated item is a *bare* aggregate call (after
    /// extraction the rewritten item is exactly its placeholder
    /// parameter), e.g. `count(*)` or `sum(n.v)` but not `1 + count(*)`
    /// with `count(*)` buried in arithmetic over the group's
    /// representative row. Incremental maintenance requires this so
    /// finalization never consults a representative source row (which a
    /// retraction may have deleted from the graph).
    pub fn aggregated_items_are_bare(&self) -> bool {
        self.items
            .iter()
            .filter(|p| p.aggregated)
            .all(|p| matches!(&p.expr, Expr::Param(name) if name.starts_with(" agg ")))
    }

    /// Evaluates the non-aggregated projection of one row (the map-only
    /// path and the per-row half of top-k).
    pub fn project_row(
        &self,
        ctx: &EvalContext<'_>,
        schema: &Schema,
        row: &Record,
    ) -> Result<Record, EvalError> {
        let b = Bindings::new(schema, row);
        let mut out = Record::empty();
        for p in &self.items {
            out.push(eval_expr(ctx, &b, &p.expr)?);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Grouped aggregation
// ---------------------------------------------------------------------------

struct Group {
    key: Vec<Value>,
    aggs: Vec<Aggregator>,
    /// The group's first source row (`None` for key-only/distinct states
    /// that will never need a pre-projection scope).
    repr: Option<Record>,
    /// Rows currently folded in. A group retracted down to zero becomes a
    /// tombstone: it keeps its slot (bucket entries index into `groups`)
    /// but is invisible to lookup and finalization, and a re-fed key takes
    /// a fresh slot at the end — so full retraction is order-transparent,
    /// exactly like [`crate::aggregate::DistinctSet`] slots.
    live: u64,
}

use cypher_graph::Value;

/// A partial grouped-aggregation state: feed rows, merge sibling states
/// (in row order), finalize into the projected table.
///
/// With an aggregating [`ProjectionPlan`] this is hash-grouped
/// aggregation; with a non-aggregating plan every item acts as a key and
/// the state degenerates to ordered duplicate elimination — exactly the
/// semantics of a `DISTINCT` projection (first occurrence kept, original
/// row order preserved).
pub struct GroupedAggState {
    groups: Vec<Group>,
    buckets: HashMap<u64, Vec<usize>>,
    /// Keep per-group representative source rows (needed only when an
    /// `ORDER BY` may reference the pre-projection scope).
    keep_repr: bool,
}

impl GroupedAggState {
    /// An empty state. `keep_repr` retains each group's first source row
    /// so `ORDER BY` can reference non-projected variables; pass `false`
    /// for `DISTINCT` projections (whose ORDER BY only sees projected
    /// columns).
    pub fn new(keep_repr: bool) -> GroupedAggState {
        GroupedAggState {
            groups: Vec::new(),
            buckets: HashMap::new(),
            keep_repr,
        }
    }

    /// Number of groups so far.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    fn key_hash(key: &[Value]) -> u64 {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        for k in key {
            k.hash_equivalent(&mut hasher);
        }
        hasher.finish()
    }

    /// Index of the **live** group for `key`, if any.
    fn find_live(&self, key: &[Value]) -> Option<usize> {
        let h = Self::key_hash(key);
        self.buckets.get(&h)?.iter().copied().find(|&gi| {
            let g = &self.groups[gi];
            g.live > 0
                && g.key.len() == key.len()
                && g.key.iter().zip(key).all(|(a, b)| a.equivalent(b))
        })
    }

    fn group_index(
        &mut self,
        key: Vec<Value>,
        plan: &ProjectionPlan,
        repr: Option<Record>,
    ) -> usize {
        if let Some(gi) = self.find_live(&key) {
            return gi;
        }
        let h = Self::key_hash(&key);
        let aggs = plan
            .specs
            .iter()
            .map(|s| Aggregator::new(s.kind, s.distinct))
            .collect();
        self.groups.push(Group {
            key,
            aggs,
            repr,
            live: 0,
        });
        self.buckets
            .entry(h)
            .or_default()
            .push(self.groups.len() - 1);
        self.groups.len() - 1
    }

    /// Folds one source row in: evaluates the grouping keys, finds or
    /// creates the group, and feeds every aggregator.
    pub fn feed(
        &mut self,
        ctx: &EvalContext<'_>,
        plan: &ProjectionPlan,
        schema: &Schema,
        row: &Record,
    ) -> Result<(), EvalError> {
        let b = Bindings::new(schema, row);
        let mut key = Vec::with_capacity(plan.items.len());
        for p in plan.items.iter().filter(|p| !p.aggregated) {
            key.push(eval_expr(ctx, &b, &p.expr)?);
        }
        let repr = if self.keep_repr {
            Some(row.clone())
        } else {
            None
        };
        let gi = self.group_index(key, plan, repr);
        let group = &mut self.groups[gi];
        group.live += 1;
        for (agg, spec) in group.aggs.iter_mut().zip(&plan.specs) {
            let v = match &spec.arg {
                Some(argexpr) => eval_expr(ctx, &Bindings::new(schema, row), argexpr)?,
                None => Value::Null,
            };
            agg.push(v);
            if let Some(aux) = &spec.aux {
                let av = eval_expr(ctx, &Bindings::new(schema, row), aux)?;
                agg.push_aux(av);
            }
        }
        Ok(())
    }

    /// Undoes one [`GroupedAggState::feed`] of `row`: re-evaluates the
    /// grouping keys and aggregate arguments (against `ctx` — for view
    /// maintenance this is the **pre-update** graph, so the evaluations
    /// reproduce what the original feed saw), retracts from every
    /// aggregator, and tombstones the group when its last row leaves.
    ///
    /// Returns `false` (without touching anything) when no live group
    /// matches — the row was never fed, which callers treat as a signal to
    /// fall back to full recomputation rather than publish a corrupt
    /// state. Requires every aggregate kind in the plan to satisfy
    /// [`AggKind::is_retractable`].
    pub fn retract(
        &mut self,
        ctx: &EvalContext<'_>,
        plan: &ProjectionPlan,
        schema: &Schema,
        row: &Record,
    ) -> Result<bool, EvalError> {
        let b = Bindings::new(schema, row);
        let mut key = Vec::with_capacity(plan.items.len());
        for p in plan.items.iter().filter(|p| !p.aggregated) {
            key.push(eval_expr(ctx, &b, &p.expr)?);
        }
        let Some(gi) = self.find_live(&key) else {
            return Ok(false);
        };
        let group = &mut self.groups[gi];
        for (agg, spec) in group.aggs.iter_mut().zip(&plan.specs) {
            let v = match &spec.arg {
                Some(argexpr) => eval_expr(ctx, &Bindings::new(schema, row), argexpr)?,
                None => Value::Null,
            };
            agg.retract(v);
        }
        group.live -= 1;
        Ok(true)
    }

    /// Folds a sibling state covering **later** rows into this one. Group
    /// creation order, representative rows and every aggregator reproduce
    /// the row-order fold, so merging states in morsel order yields the
    /// bit-identical sequential result.
    pub fn merge(&mut self, other: GroupedAggState, plan: &ProjectionPlan) {
        for g in other.groups {
            if g.live == 0 {
                // Tombstoned in the sibling: nothing left to contribute.
                continue;
            }
            let gi = self.group_index(g.key, plan, g.repr);
            let group = &mut self.groups[gi];
            group.live += g.live;
            if group.aggs.is_empty() {
                group.aggs = g.aggs;
            } else {
                for (mine, theirs) in group.aggs.iter_mut().zip(g.aggs) {
                    mine.merge(theirs);
                }
            }
        }
    }

    /// Finishes every group into an output row. Returns the projected
    /// table plus, per output row, the group's source row (for the
    /// `ORDER BY` pre-projection scope; empty when `keep_repr` was off).
    ///
    /// An aggregation with no grouping keys over no rows still produces
    /// one (empty) group — `RETURN count(*)` on nothing is 0.
    pub fn finalize(
        mut self,
        ctx: &EvalContext<'_>,
        plan: &ProjectionPlan,
        src_schema: &Schema,
    ) -> Result<(Table, Vec<Record>), EvalError> {
        let has_keys = plan.items.iter().any(|p| !p.aggregated);
        let any_live = self.groups.iter().any(|g| g.live > 0);
        if !any_live && !has_keys && plan.any_agg {
            let aggs = plan
                .specs
                .iter()
                .map(|s| Aggregator::new(s.kind, s.distinct))
                .collect();
            self.groups.push(Group {
                key: Vec::new(),
                aggs,
                repr: None,
                live: 1,
            });
        }

        let mut out = Table::empty(plan.out_schema.clone());
        let mut sources: Vec<Record> = Vec::new();
        for group in self.groups {
            if group.live == 0 {
                // Tombstone: every row retracted since it was created.
                continue;
            }
            if !plan.any_agg {
                // Key-only (DISTINCT) state: the key *is* the output row.
                out.push(Record::new(group.key));
                continue;
            }
            // Placeholder params carry this group's aggregate results.
            let mut params = ctx.params.clone();
            for (agg, spec) in group.aggs.into_iter().zip(&plan.specs) {
                params.insert(spec.placeholder.clone(), agg.finish()?);
            }
            let group_ctx = EvalContext {
                graph: ctx.graph,
                params: &params,
                config: ctx.config,
            };
            let mut row = Record::empty();
            let mut key_iter = group.key.into_iter();
            let repr_ok = group
                .repr
                .as_ref()
                .is_some_and(|r| r.values().len() == src_schema.len());
            for p in &plan.items {
                if p.aggregated {
                    // Non-key parts of an aggregated item are evaluated on
                    // the group's representative row (the fabricated empty
                    // group of an all-aggregate projection has none).
                    let v = if repr_ok {
                        eval_expr(
                            &group_ctx,
                            &Bindings::new(src_schema, group.repr.as_ref().unwrap()),
                            &p.expr,
                        )?
                    } else {
                        eval_expr(&group_ctx, &NoVars, &p.expr)?
                    };
                    row.push(v);
                } else {
                    row.push(key_iter.next().expect("key arity"));
                }
            }
            out.push(row);
            if self.keep_repr {
                sources.push(if repr_ok {
                    group.repr.unwrap()
                } else {
                    Record::empty()
                });
            }
        }
        Ok((out, sources))
    }

    /// Non-consuming [`GroupedAggState::finalize`]: clones the live groups
    /// and finishes the clones, leaving this state intact for further
    /// feeds/retractions. This is the incremental-view refresh path — the
    /// state persists across commits, the output table is rebuilt per
    /// publication (O(live groups), independent of the base table size).
    pub fn finalize_snapshot(
        &self,
        ctx: &EvalContext<'_>,
        plan: &ProjectionPlan,
        src_schema: &Schema,
    ) -> Result<Table, EvalError> {
        let snapshot = GroupedAggState {
            groups: self
                .groups
                .iter()
                .filter(|g| g.live > 0)
                .map(|g| Group {
                    key: g.key.clone(),
                    aggs: g.aggs.clone(),
                    repr: g.repr.clone(),
                    live: g.live,
                })
                .collect(),
            buckets: HashMap::new(),
            keep_repr: false,
        };
        let (out, _) = snapshot.finalize(ctx, plan, src_schema)?;
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Bounded top-k
// ---------------------------------------------------------------------------

/// One retained row: its sort keys, a per-state sequence number (for
/// stability), and the projected output row.
struct TopKEntry {
    keys: Vec<Value>,
    seq: u64,
    row: Record,
}

/// A bounded accumulator for `ORDER BY … LIMIT` (optionally with `SKIP`):
/// keeps the first `k = skip + limit` rows of the stable sort order, in a
/// max-heap, so memory is O(k) instead of O(rows).
///
/// Stability matches [`Table::sort_by`] (a stable sort): among rows whose
/// keys compare equal, earlier rows win. Within one state the sequence
/// number arbitrates; across states, [`TopKState::merge_sorted`] orders
/// states before sequence numbers — so feeding morsels into separate
/// states and merging them in morsel order reproduces the sequential
/// stable sort's prefix exactly.
pub struct TopKState {
    k: usize,
    /// Ascending flag per sort key.
    ascending: Vec<bool>,
    /// Max-heap by (keys, seq): `heap[0]` is the worst retained entry.
    heap: Vec<TopKEntry>,
    next_seq: u64,
}

/// Two-layer assignment for sort keys: projected columns shadow the
/// pre-projection row (the `RETURN a.i ORDER BY a.x` scoping rule).
struct TopKScope<'a> {
    projected: Bindings<'a>,
    source: Option<Bindings<'a>>,
}

impl VarLookup for TopKScope<'_> {
    fn lookup(&self, name: &str) -> Option<Value> {
        self.projected
            .lookup(name)
            .or_else(|| self.source.as_ref().and_then(|s| s.lookup(name)))
    }
}

impl TopKState {
    /// An empty accumulator retaining the first `k` rows of the order
    /// defined by `keys`.
    pub fn new(k: usize, keys: &[SortItem]) -> TopKState {
        TopKState {
            k,
            ascending: keys.iter().map(|s| s.ascending).collect(),
            heap: Vec::new(),
            next_seq: 0,
        }
    }

    /// An **unbounded** accumulator: retains every offered row (no
    /// eviction), which is what makes [`TopKState::retract`] sound — a
    /// bounded state cannot un-evict. The final order/slice still comes
    /// from [`TopKState::merge_sorted`].
    pub fn new_unbounded(keys: &[SortItem]) -> TopKState {
        TopKState::new(usize::MAX, keys)
    }

    /// Removes the most recently offered entry whose sort keys and row
    /// both match (under Cypher equivalence). Only valid on unbounded
    /// states. Returns `false` when nothing matches.
    ///
    /// Sequence numbers of the surviving entries are untouched; they
    /// remain strictly increasing in offer order, so tie-breaking — and
    /// therefore the sorted output — is bit-identical to a state that was
    /// never fed the retracted row.
    pub fn retract(&mut self, keys: &[Value], row: &Record) -> bool {
        debug_assert_eq!(self.k, usize::MAX, "retract on a bounded top-k state");
        let mut best: Option<usize> = None;
        for (i, e) in self.heap.iter().enumerate() {
            let matches = e.keys.len() == keys.len()
                && e.keys.iter().zip(keys).all(|(a, b)| a.equivalent(b))
                && e.row.equivalent(row);
            if matches && best.map_or(true, |b| self.heap[b].seq < e.seq) {
                best = Some(i);
            }
        }
        match best {
            Some(i) => {
                // The heap invariant is irrelevant while unbounded (no
                // eviction comparisons ever run; `into_sorted` re-sorts),
                // so a positional removal is fine.
                self.heap.remove(i);
                true
            }
            None => false,
        }
    }

    fn cmp_keys(&self, a: &[Value], b: &[Value]) -> std::cmp::Ordering {
        for (i, asc) in self.ascending.iter().enumerate() {
            let ord = a[i].cmp_order(&b[i]);
            let ord = if *asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    }

    fn cmp_entries(&self, a: &TopKEntry, b: &TopKEntry) -> std::cmp::Ordering {
        self.cmp_keys(&a.keys, &b.keys).then(a.seq.cmp(&b.seq))
    }

    /// Evaluates the sort keys of one projected row (with its optional
    /// source row for the pre-projection scope) and offers it.
    #[allow(clippy::too_many_arguments)]
    pub fn feed(
        &mut self,
        ctx: &EvalContext<'_>,
        keys: &[SortItem],
        out_schema: &Schema,
        out_row: Record,
        src_schema: &Schema,
        src_row: Option<&Record>,
    ) -> Result<(), EvalError> {
        let scope = TopKScope {
            projected: Bindings::new(out_schema, &out_row),
            source: src_row.map(|r| Bindings::new(src_schema, r)),
        };
        let mut ks = Vec::with_capacity(keys.len());
        for k in keys {
            ks.push(eval_expr(ctx, &scope, &k.expr)?);
        }
        self.offer(ks, out_row);
        Ok(())
    }

    /// Offers a row with pre-computed sort keys.
    pub fn offer(&mut self, keys: Vec<Value>, row: Record) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.k == 0 {
            return;
        }
        let entry = TopKEntry { keys, seq, row };
        if self.heap.len() < self.k {
            self.heap.push(entry);
            self.sift_up(self.heap.len() - 1);
        } else if self.cmp_entries(&entry, &self.heap[0]) == std::cmp::Ordering::Less {
            self.heap[0] = entry;
            self.sift_down(0);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.cmp_entries(&self.heap[i], &self.heap[parent]) == std::cmp::Ordering::Greater {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < self.heap.len()
                && self.cmp_entries(&self.heap[l], &self.heap[largest])
                    == std::cmp::Ordering::Greater
            {
                largest = l;
            }
            if r < self.heap.len()
                && self.cmp_entries(&self.heap[r], &self.heap[largest])
                    == std::cmp::Ordering::Greater
            {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.heap.swap(i, largest);
            i = largest;
        }
    }

    /// Drains this state into `(keys, row)` pairs sorted by (keys, seq).
    fn into_sorted(self) -> Vec<(Vec<Value>, u64, Record)> {
        let ascending = self.ascending.clone();
        let mut entries: Vec<TopKEntry> = self.heap;
        entries.sort_by(|a, b| {
            for (i, asc) in ascending.iter().enumerate() {
                let ord = a.keys[i].cmp_order(&b.keys[i]);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            a.seq.cmp(&b.seq)
        });
        entries
            .into_iter()
            .map(|e| (e.keys, e.seq, e.row))
            .collect()
    }

    /// Merges partial states **in row (morsel) order** and produces the
    /// final `skip..skip+limit` slice as rows. Equivalent to stably
    /// sorting the concatenated inputs and slicing.
    pub fn merge_sorted(
        states: Vec<TopKState>,
        keys: &[SortItem],
        skip: usize,
        limit: usize,
        out_schema: Arc<Schema>,
    ) -> Table {
        // Concatenate per-state sorted survivors in state order, then
        // stable-sort by keys alone: ties keep state order then seq order,
        // which is exactly the global stable order.
        let ascending: Vec<bool> = keys.iter().map(|s| s.ascending).collect();
        let mut all: Vec<(Vec<Value>, Record)> = Vec::new();
        for st in states {
            for (ks, _, row) in st.into_sorted() {
                all.push((ks, row));
            }
        }
        all.sort_by(|(ka, _), (kb, _)| {
            for (i, asc) in ascending.iter().enumerate() {
                let ord = ka[i].cmp_order(&kb[i]);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        let mut out = Table::empty(out_schema);
        for (_, row) in all.into_iter().skip(skip).take(limit) {
            out.push(row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{table_of, Params};
    use cypher_ast::query::Return;
    use cypher_graph::PropertyGraph;
    use cypher_parser::{parse_expression, parse_query};

    fn ret_of(src: &str) -> Return {
        let q = parse_query(&format!("MATCH (n) {src}")).unwrap();
        match q {
            cypher_ast::query::Query::Single(sq) => sq.ret.unwrap(),
            _ => panic!(),
        }
    }

    #[test]
    fn compile_reports_duplicates_and_star() {
        let schema = Schema::new(vec!["n".into()]);
        assert!(ProjectionPlan::compile(&ret_of("RETURN n.v AS a, n.i AS a"), &schema).is_err());
        let empty = Schema::empty();
        let star = Return {
            star: true,
            ..Return::default()
        };
        assert!(ProjectionPlan::compile(&star, &empty).is_err());
    }

    #[test]
    fn grouped_state_split_feed_matches_single_feed() {
        let g = PropertyGraph::new();
        let params = Params::new();
        let ctx = EvalContext::new(&g, &params);
        let ret = ret_of("RETURN n AS g, count(*) AS c, sum(v) AS s");
        let table = table_of(
            &["n", "v"],
            vec![
                vec![Value::str("a"), Value::int(1)],
                vec![Value::str("b"), Value::float(0.25)],
                vec![Value::str("a"), Value::int(2)],
                vec![Value::str("b"), Value::float(0.5)],
                vec![Value::str("c"), Value::Null],
            ],
        );
        let schema = table.schema().clone();
        let plan = ProjectionPlan::compile(&ret, &schema).unwrap();

        let mut whole = GroupedAggState::new(true);
        for r in table.rows() {
            whole.feed(&ctx, &plan, &schema, r).unwrap();
        }
        let (base, _) = whole.finalize(&ctx, &plan, &schema).unwrap();

        for chunk in [1usize, 2, 3] {
            let mut acc = GroupedAggState::new(true);
            for part in table.rows().chunks(chunk) {
                let mut s = GroupedAggState::new(true);
                for r in part {
                    s.feed(&ctx, &plan, &schema, r).unwrap();
                }
                acc.merge(s, &plan);
            }
            let (merged, _) = acc.finalize(&ctx, &plan, &schema).unwrap();
            assert!(
                merged.ordered_eq(&base),
                "chunk={chunk}\nbase:\n{base}\nmerged:\n{merged}"
            );
        }
    }

    #[test]
    fn empty_keyless_aggregation_yields_one_group() {
        let g = PropertyGraph::new();
        let params = Params::new();
        let ctx = EvalContext::new(&g, &params);
        let ret = ret_of("RETURN count(*) AS c");
        let schema = Schema::new(vec!["n".into()]);
        let plan = ProjectionPlan::compile(&ret, &schema).unwrap();
        let st = GroupedAggState::new(true);
        let (out, _) = st.finalize(&ctx, &plan, &schema).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.cell(0, "c"), Some(&Value::int(0)));
    }

    #[test]
    fn topk_matches_stable_sort_prefix() {
        let g = PropertyGraph::new();
        let params = Params::new();
        let ctx = EvalContext::new(&g, &params);
        let keys = vec![SortItem {
            expr: parse_expression("k").unwrap(),
            ascending: true,
        }];
        let schema = Schema::new(vec!["k".into(), "tag".into()]);
        // Ties on k; stability must keep the earlier tag.
        let rows: Vec<Record> = (0..40)
            .map(|i| Record::new(vec![Value::int((i % 7) as i64), Value::int(i)]))
            .collect();
        for (skip, limit) in [(0usize, 5usize), (3, 4), (0, 40), (10, 100)] {
            let k = skip + limit;
            // Single state.
            let mut st = TopKState::new(k, &keys);
            for r in &rows {
                st.feed(&ctx, &keys, &schema, r.clone(), &schema, None)
                    .unwrap();
            }
            let got = TopKState::merge_sorted(vec![st], &keys, skip, limit, schema.clone());
            // Oracle: stable sort + slice.
            let mut t = Table::new(schema.clone(), rows.clone());
            t.sort_by(|a, b| a.get(0).cmp_order(b.get(0)));
            let want = t.slice(skip, Some(limit));
            assert!(
                got.ordered_eq(&want),
                "skip={skip} limit={limit}\nwant:\n{want}\ngot:\n{got}"
            );
            // Partitioned into several states, merged in order.
            for chunk in [1usize, 7, 16] {
                let mut states = Vec::new();
                for part in rows.chunks(chunk) {
                    let mut s = TopKState::new(k, &keys);
                    for r in part {
                        s.feed(&ctx, &keys, &schema, r.clone(), &schema, None)
                            .unwrap();
                    }
                    states.push(s);
                }
                let merged = TopKState::merge_sorted(states, &keys, skip, limit, schema.clone());
                assert!(
                    merged.ordered_eq(&want),
                    "chunk={chunk} skip={skip} limit={limit}\nwant:\n{want}\ngot:\n{merged}"
                );
            }
        }
    }
}
