//! Pattern-matching morphism modes.
//!
//! Cypher 9 matches patterns under **relationship (edge) isomorphism**: "a
//! path cannot traverse the same relationship more than once" (paper §4.2),
//! which keeps variable-length results finite. Section 8 ("Configurable
//! morphisms") envisions letting queries opt into homomorphism or node
//! isomorphism instead; all three are implemented here and compared in
//! experiment E14.

/// Which repeated-element constraint pattern matching enforces.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Morphism {
    /// No relationship id may occur more than once across the matched tuple
    /// of paths (Cypher 9 default).
    #[default]
    EdgeIsomorphism,
    /// No node id may occur more than once across the matched tuple of
    /// paths (strictly stronger than edge isomorphism on simple graphs).
    NodeIsomorphism,
    /// No constraint: classical graph homomorphism. Unbounded
    /// variable-length patterns may then denote infinitely many paths, so
    /// the matcher clamps `∞` upper bounds to
    /// [`crate::MatchConfig::var_length_cap`].
    Homomorphism,
}

impl Morphism {
    /// True iff matched relationships must be pairwise distinct.
    pub fn rels_distinct(self) -> bool {
        matches!(self, Morphism::EdgeIsomorphism | Morphism::NodeIsomorphism)
    }

    /// True iff matched nodes must be pairwise distinct.
    pub fn nodes_distinct(self) -> bool {
        matches!(self, Morphism::NodeIsomorphism)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_edge_isomorphism() {
        assert_eq!(Morphism::default(), Morphism::EdgeIsomorphism);
        assert!(Morphism::EdgeIsomorphism.rels_distinct());
        assert!(!Morphism::EdgeIsomorphism.nodes_distinct());
        assert!(Morphism::NodeIsomorphism.nodes_distinct());
        assert!(!Morphism::Homomorphism.rels_distinct());
    }
}
