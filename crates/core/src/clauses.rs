//! Clause semantics `[[C]]_G : Table → Table` (paper Figure 7), extended
//! with the aggregation behaviour described in Section 3 and the
//! `DISTINCT` / `ORDER BY` / `SKIP` / `LIMIT` sub-clauses of the surface
//! language.
//!
//! Implemented here:
//!
//! * `[[MATCH π̄ (WHERE e)]]` and `[[OPTIONAL MATCH π̄ (WHERE e)]]`,
//! * `[[WITH ret (WHERE e)]]` (projection, grouping + aggregation),
//! * `[[UNWIND e AS a]]` — including the paper's corner cases: an empty
//!   list produces no rows and a non-list value (including `null`)
//!   produces a single row,
//! * `[[WHERE e]]` — keeps exactly the rows where the predicate is `true`.
//!
//! Updating clauses and `FROM GRAPH` are implemented by `cypher-engine`;
//! the reference evaluator covers the read core formalized by the paper.

use crate::error::{err, EvalError};
use crate::expr::{eval_expr, truth_of, Bindings, NoVars};
use crate::matching::{match_patterns, unbound_free_vars};
use crate::project::{GroupedAggState, ProjectionPlan};
use crate::table::{Record, Schema, Table};
use crate::EvalContext;
use cypher_ast::expr::Expr;
use cypher_ast::pattern::PathPattern;
use cypher_ast::query::{Clause, Return, SortItem};
use cypher_graph::{Tri, Value};

pub use crate::project::alpha;

/// Applies one clause to a driving table.
pub fn apply_clause(
    ctx: &EvalContext<'_>,
    clause: &Clause,
    table: Table,
) -> Result<Table, EvalError> {
    match clause {
        Clause::Match {
            optional,
            patterns,
            where_,
        } => {
            if *optional {
                apply_optional_match(ctx, patterns, where_.as_ref(), table)
            } else {
                let matched = apply_match(ctx, patterns, table)?;
                match where_ {
                    Some(pred) => apply_where(ctx, pred, matched),
                    None => Ok(matched),
                }
            }
        }
        Clause::With { ret, where_ } => {
            let projected = apply_projection(ctx, ret, table)?;
            match where_ {
                Some(pred) => apply_where(ctx, pred, projected),
                None => Ok(projected),
            }
        }
        Clause::Unwind { expr, alias } => apply_unwind(ctx, expr, alias, table),
        Clause::Create { .. }
        | Clause::Merge { .. }
        | Clause::Delete { .. }
        | Clause::Set { .. }
        | Clause::Remove { .. } => {
            err("updating clauses are not part of the read core; use cypher-engine to execute them")
        }
        Clause::FromGraph { .. } => {
            err("FROM GRAPH requires the multigraph executor in cypher-engine")
        }
    }
}

/// `[[MATCH π̄]]_G(T) = ⊎_{u∈T} { u · u′ | u′ ∈ match(π̄, G, u) }`.
pub fn apply_match(
    ctx: &EvalContext<'_>,
    patterns: &[PathPattern],
    table: Table,
) -> Result<Table, EvalError> {
    let schema = table.schema().clone();
    let new_vars = unbound_free_vars(patterns, &|n| schema.contains(n));
    let mut out_schema = schema.clone();
    for v in &new_vars {
        out_schema = out_schema.with_field(v.clone());
    }
    let mut out = Table::empty(out_schema);
    for u in table.rows() {
        let bindings = Bindings::new(&schema, u);
        let matches = match_patterns(ctx, &bindings, patterns)?;
        for m in matches {
            let mut row = u.clone();
            for v in &new_vars {
                let val = m
                    .iter()
                    .find(|(n, _)| n == v)
                    .map(|(_, val)| val.clone())
                    .expect("every free variable is bound by a successful match");
                row.push(val);
            }
            out.push(row);
        }
    }
    Ok(out)
}

/// `[[OPTIONAL MATCH π̄ WHERE e]]_G(T)`: per driving row, the matches of
/// the single-row table — or one row padded with `null`s when there are
/// none (Figure 7).
pub fn apply_optional_match(
    ctx: &EvalContext<'_>,
    patterns: &[PathPattern],
    where_: Option<&Expr>,
    table: Table,
) -> Result<Table, EvalError> {
    let schema = table.schema().clone();
    let new_vars = unbound_free_vars(patterns, &|n| schema.contains(n));
    let mut out_schema = schema.clone();
    for v in &new_vars {
        out_schema = out_schema.with_field(v.clone());
    }
    let mut out = Table::empty(out_schema.clone());
    for u in table.rows() {
        let single = Table::new(schema.clone(), vec![u.clone()]);
        let matched = apply_match(ctx, patterns, single)?;
        let filtered = match where_ {
            Some(pred) => apply_where(ctx, pred, matched)?,
            None => matched,
        };
        if filtered.is_empty() {
            let mut row = u.clone();
            for _ in &new_vars {
                row.push(Value::Null);
            }
            out.push(row);
        } else {
            for r in filtered.rows() {
                out.push(r.clone());
            }
        }
    }
    Ok(out)
}

/// `[[WHERE e]]_G(T) = { u ∈ T | [[e]]_{G,u} = true }`.
pub fn apply_where(ctx: &EvalContext<'_>, pred: &Expr, table: Table) -> Result<Table, EvalError> {
    let schema = table.schema().clone();
    let mut out = Table::empty(schema.clone());
    for u in table.rows() {
        let b = Bindings::new(&schema, u);
        if truth_of(ctx, &b, pred)? == Tri::True {
            out.push(u.clone());
        }
    }
    Ok(out)
}

/// `[[UNWIND e AS a]]_G(T)` (Figure 7): a list yields one row per element,
/// the empty list yields no rows, and any other value — including `null` —
/// yields a single row carrying that value. (Note: this follows the paper
/// exactly; some implementations instead drop `null` rows.)
pub fn apply_unwind(
    ctx: &EvalContext<'_>,
    expr: &Expr,
    alias: &str,
    table: Table,
) -> Result<Table, EvalError> {
    let schema = table.schema().clone();
    if schema.contains(alias) {
        return err(format!("UNWIND alias {alias} shadows an existing field"));
    }
    let out_schema = schema.with_field(alias.to_string());
    let mut out = Table::empty(out_schema);
    for u in table.rows() {
        let b = Bindings::new(&schema, u);
        let v = eval_expr(ctx, &b, expr)?;
        match v {
            Value::List(items) => {
                for item in items {
                    let mut row = u.clone();
                    row.push(item);
                    out.push(row);
                }
            }
            other => {
                let mut row = u.clone();
                row.push(other);
                out.push(row);
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Projection (WITH / RETURN) with grouping and aggregation
// ---------------------------------------------------------------------------

/// Applies a `WITH`/`RETURN` projection body: star expansion, grouping and
/// aggregation, `DISTINCT`, `ORDER BY`, `SKIP`, `LIMIT`.
///
/// The heavy lifting lives in [`crate::project`]: the body is compiled
/// once into a [`ProjectionPlan`] and the rows folded through a
/// [`GroupedAggState`] — the *same* state type the parallel engine folds
/// per morsel, so the sequential reference semantics and the pushdown
/// share one implementation.
pub fn apply_projection(
    ctx: &EvalContext<'_>,
    ret: &Return,
    table: Table,
) -> Result<Table, EvalError> {
    let plan = ProjectionPlan::compile(ret, table.schema())?;
    let schema = table.schema().clone();
    let mut out;
    // Pre-projection rows kept alongside the output so that ORDER BY can
    // reference variables that were not projected (`RETURN a.i ORDER BY
    // a.x` is legal Cypher). Grouped projections keep the group's
    // representative row; DISTINCT drops the scope entirely.
    let mut sources: Vec<Record> = Vec::new();

    if plan.is_aggregating() {
        let mut state = GroupedAggState::new(true);
        for u in table.rows() {
            state.feed(ctx, &plan, &schema, u)?;
        }
        let (t, srcs) = state.finalize(ctx, &plan, &schema)?;
        out = t;
        sources = srcs;
        // DISTINCT over the grouped rows (after which only projected
        // columns remain addressable, as in Cypher).
        if ret.distinct {
            out = out.dedup();
            sources.clear();
        }
    } else if ret.distinct {
        // A DISTINCT projection is grouping by every item with no
        // aggregates: first occurrence kept, original row order preserved.
        let mut state = GroupedAggState::new(false);
        for u in table.rows() {
            state.feed(ctx, &plan, &schema, u)?;
        }
        let (t, _) = state.finalize(ctx, &plan, &schema)?;
        out = t;
    } else {
        out = Table::empty(plan.out_schema().clone());
        for u in table.rows() {
            out.push(plan.project_row(ctx, &schema, u)?);
            sources.push(u.clone());
        }
    }

    // 5. ORDER BY: sort keys see the projected columns first, then (when
    //    no DISTINCT intervened) the pre-projection scope.
    if !ret.order_by.is_empty() {
        let src = if sources.is_empty() {
            None
        } else {
            Some((schema.clone(), sources))
        };
        out = apply_order_by_scoped(ctx, &ret.order_by, out, src)?;
    }

    // 6. SKIP / LIMIT.
    let skip = eval_count(ctx, ret.skip.as_ref(), "SKIP")?;
    let limit = match &ret.limit {
        Some(_) => Some(eval_count(ctx, ret.limit.as_ref(), "LIMIT")?),
        None => None,
    };
    if skip > 0 || limit.is_some() {
        out = out.slice(skip, limit);
    }
    Ok(out)
}

/// Evaluates a `SKIP`/`LIMIT` count expression (row-independent; `None`
/// means 0). Shared with the engine's top-k pushdown, which needs the
/// bound before the rows flow.
pub fn eval_count(ctx: &EvalContext<'_>, e: Option<&Expr>, what: &str) -> Result<usize, EvalError> {
    let Some(e) = e else { return Ok(0) };
    let v = eval_expr(ctx, &NoVars, e)?;
    match v.as_int() {
        Some(i) if i >= 0 => Ok(i as usize),
        _ => err(format!("{what} requires a non-negative integer, got {v}")),
    }
}

/// Sorts by the `ORDER BY` keys, using the total orderability order
/// (`null` last in ascending position).
pub fn apply_order_by(
    ctx: &EvalContext<'_>,
    keys: &[SortItem],
    table: Table,
) -> Result<Table, EvalError> {
    apply_order_by_scoped(ctx, keys, table, None)
}

/// Two-layer assignment: projected columns shadow the pre-projection row.
struct SortScope<'a> {
    projected: Bindings<'a>,
    source: Option<Bindings<'a>>,
}

impl crate::expr::VarLookup for SortScope<'_> {
    fn lookup(&self, name: &str) -> Option<Value> {
        self.projected
            .lookup(name)
            .or_else(|| self.source.as_ref().and_then(|s| s.lookup(name)))
    }
}

/// [`apply_order_by`] with an optional pre-projection scope: `sources[i]`
/// is the source record of output row `i` over `src.0`. Public because
/// the engine's aggregation pushdown sorts its merged group rows through
/// exactly this path (sort keys may reference each group's representative
/// source row).
pub fn apply_order_by_scoped(
    ctx: &EvalContext<'_>,
    keys: &[SortItem],
    table: Table,
    src: Option<(std::sync::Arc<Schema>, Vec<Record>)>,
) -> Result<Table, EvalError> {
    let schema = table.schema().clone();
    // Precompute sort keys (decorate–sort–undecorate) so errors surface
    // before the sort comparator runs.
    let mut decorated: Vec<(Vec<Value>, Record)> = Vec::with_capacity(table.len());
    for (i, u) in table.rows().iter().enumerate() {
        let scope = SortScope {
            projected: Bindings::new(&schema, u),
            source: src.as_ref().map(|(ss, rows)| Bindings::new(ss, &rows[i])),
        };
        let mut ks = Vec::with_capacity(keys.len());
        for k in keys {
            ks.push(eval_expr(ctx, &scope, &k.expr)?);
        }
        decorated.push((ks, u.clone()));
    }
    decorated.sort_by(|(ka, _), (kb, _)| {
        for (i, key) in keys.iter().enumerate() {
            let ord = ka[i].cmp_order(&kb[i]);
            let ord = if key.ascending { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    let mut out = Table::empty(schema);
    for (_, r) in decorated {
        out.push(r);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{table_of, EvalContext, Params};
    use cypher_ast::query::{Return, ReturnItem};
    use cypher_graph::PropertyGraph;
    use cypher_parser::parse_expression;

    fn ret_items(items: &[(&str, Option<&str>)]) -> Return {
        Return {
            items: items
                .iter()
                .map(|(e, a)| ReturnItem {
                    expr: parse_expression(e).unwrap(),
                    alias: a.map(String::from),
                })
                .collect(),
            ..Return::default()
        }
    }

    fn sample_table() -> Table {
        table_of(
            &["g", "v"],
            vec![
                vec![Value::str("a"), Value::int(1)],
                vec![Value::str("a"), Value::int(2)],
                vec![Value::str("b"), Value::int(30)],
                vec![Value::str("b"), Value::Null],
            ],
        )
    }

    #[test]
    fn projection_without_aggregates_maps_rows() {
        let g = PropertyGraph::new();
        let params = Params::new();
        let ctx = EvalContext::new(&g, &params);
        let out =
            apply_projection(&ctx, &ret_items(&[("v + 1", Some("w"))]), sample_table()).unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(out.cell(0, "w"), Some(&Value::int(2)));
        assert!(out.cell(3, "w").unwrap().is_null());
    }

    #[test]
    fn grouping_keys_partition_rows() {
        let g = PropertyGraph::new();
        let params = Params::new();
        let ctx = EvalContext::new(&g, &params);
        let out = apply_projection(
            &ctx,
            &ret_items(&[("g", None), ("count(v)", Some("c")), ("sum(v)", Some("s"))]),
            sample_table(),
        )
        .unwrap();
        let expected = table_of(
            &["g", "c", "s"],
            vec![
                vec![Value::str("a"), Value::int(2), Value::int(3)],
                vec![Value::str("b"), Value::int(1), Value::int(30)],
            ],
        );
        out.assert_bag_eq(&expected);
    }

    #[test]
    fn null_group_key_forms_its_own_group() {
        let g = PropertyGraph::new();
        let params = Params::new();
        let ctx = EvalContext::new(&g, &params);
        let t = table_of(
            &["k"],
            vec![vec![Value::Null], vec![Value::Null], vec![Value::int(1)]],
        );
        let out =
            apply_projection(&ctx, &ret_items(&[("k", None), ("count(*)", Some("c"))]), t).unwrap();
        let expected = table_of(
            &["k", "c"],
            vec![
                vec![Value::Null, Value::int(2)],
                vec![Value::int(1), Value::int(1)],
            ],
        );
        out.assert_bag_eq(&expected);
    }

    #[test]
    fn alpha_names_are_expression_text() {
        let g = PropertyGraph::new();
        let params = Params::new();
        let ctx = EvalContext::new(&g, &params);
        let out = apply_projection(&ctx, &ret_items(&[("v", None)]), sample_table()).unwrap();
        assert_eq!(out.schema().names(), &["v".to_string()]);
    }

    #[test]
    fn duplicate_output_names_rejected() {
        let g = PropertyGraph::new();
        let params = Params::new();
        let ctx = EvalContext::new(&g, &params);
        // Both items project the name `v`.
        let r = apply_projection(
            &ctx,
            &ret_items(&[("v", None), ("g", Some("v"))]),
            sample_table(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn distinct_then_order_then_slice() {
        let g = PropertyGraph::new();
        let params = Params::new();
        let ctx = EvalContext::new(&g, &params);
        let mut ret = ret_items(&[("v", None)]);
        ret.distinct = true;
        ret.order_by = vec![SortItem {
            expr: parse_expression("v").unwrap(),
            ascending: false,
        }];
        ret.limit = Some(parse_expression("2").unwrap());
        let out = apply_projection(&ctx, &ret, sample_table()).unwrap();
        // Distinct values {1, 2, 30, null}; desc puts null first (null is
        // greatest), then 30.
        assert_eq!(out.len(), 2);
        assert!(out.rows()[0].get(0).is_null());
        assert_eq!(out.rows()[1].get(0), &Value::int(30));
    }

    #[test]
    fn unwind_alias_shadowing_is_error() {
        let g = PropertyGraph::new();
        let params = Params::new();
        let ctx = EvalContext::new(&g, &params);
        let r = apply_unwind(&ctx, &parse_expression("[1]").unwrap(), "v", sample_table());
        assert!(r.is_err());
    }

    #[test]
    fn where_on_empty_table_is_empty() {
        let g = PropertyGraph::new();
        let params = Params::new();
        let ctx = EvalContext::new(&g, &params);
        let t = Table::empty(Schema::new(vec!["x".into()]));
        let out = apply_where(&ctx, &parse_expression("x > 0").unwrap(), t).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn skip_limit_expressions_must_be_non_negative() {
        let g = PropertyGraph::new();
        let params = Params::new();
        let ctx = EvalContext::new(&g, &params);
        let mut ret = ret_items(&[("v", None)]);
        ret.limit = Some(parse_expression("-1").unwrap());
        assert!(apply_projection(&ctx, &ret, sample_table()).is_err());
        let mut ret2 = ret_items(&[("v", None)]);
        ret2.skip = Some(parse_expression("'x'").unwrap());
        assert!(apply_projection(&ctx, &ret2, sample_table()).is_err());
    }
}
