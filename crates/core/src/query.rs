//! Query semantics `[[Q]]_G` (paper Figure 6).
//!
//! A query is a sequence of clauses ending in `RETURN`, or a `UNION
//! [ALL]` of two queries. Its semantics is a function from tables to
//! tables; the query's *output* applies that function to the table
//! containing the single empty tuple:
//!
//! ```text
//! output(Q, G) = [[Q]]_G(T())
//! ```

use crate::clauses::{apply_clause, apply_projection};
use crate::error::{err, EvalError};
use crate::table::Table;
use crate::EvalContext;
use cypher_ast::query::Query;

/// Applies `[[Q]]_G` to an arbitrary driving table (the composition form;
/// most callers want [`eval_query`] / [`output`]).
pub fn eval_query_on(ctx: &EvalContext<'_>, q: &Query, table: Table) -> Result<Table, EvalError> {
    match q {
        Query::Single(sq) => {
            if sq.ret_graph.is_some() {
                return err("RETURN GRAPH requires the multigraph executor in cypher-engine");
            }
            let mut t = table;
            for c in &sq.clauses {
                t = apply_clause(ctx, c, t)?;
            }
            match &sq.ret {
                Some(ret) => {
                    if ret.star && ret.items.is_empty() && t.schema().is_empty() {
                        return err("RETURN * requires at least one field");
                    }
                    apply_projection(ctx, ret, t)
                }
                None => err("the reference evaluator requires a final RETURN"),
            }
        }
        Query::Union { all, left, right } => {
            let l = eval_query_on(ctx, left, table.clone())?;
            let r = eval_query_on(ctx, right, table)?;
            if !l.schema().same_fields(r.schema()) {
                return err(format!(
                    "UNION requires identical field sets: {:?} vs {:?}",
                    l.schema().names(),
                    r.schema().names()
                ));
            }
            let u = l.bag_union(r);
            Ok(if *all { u } else { u.dedup() })
        }
    }
}

/// `[[Q]]_G(T())`: evaluates a complete read query against the graph.
pub fn eval_query(ctx: &EvalContext<'_>, q: &Query) -> Result<Table, EvalError> {
    eval_query_on(ctx, q, Table::unit())
}

/// The paper's `output(Q, G)` notation; an alias for [`eval_query`].
pub fn output(ctx: &EvalContext<'_>, q: &Query) -> Result<Table, EvalError> {
    eval_query(ctx, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{table_of, EvalContext, Params};
    use cypher_graph::{PropertyGraph, Value};
    use cypher_parser::parse_query;

    /// The data graph of Figure 1: researchers, students, publications.
    pub fn figure1() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let n1 = g.add_node(&["Researcher"], [("name", Value::str("Nils"))]);
        let n2 = g.add_node(&["Publication"], [("acmid", Value::int(220))]);
        let n3 = g.add_node(&["Publication"], [("acmid", Value::int(190))]);
        let n4 = g.add_node(&["Publication"], [("acmid", Value::int(235))]);
        let n5 = g.add_node(&["Publication"], [("acmid", Value::int(240))]);
        let n6 = g.add_node(&["Researcher"], [("name", Value::str("Elin"))]);
        let n7 = g.add_node(&["Student"], [("name", Value::str("Sten"))]);
        let n8 = g.add_node(&["Student"], [("name", Value::str("Linda"))]);
        let n9 = g.add_node(&["Publication"], [("acmid", Value::int(269))]);
        let n10 = g.add_node(&["Researcher"], [("name", Value::str("Thor"))]);
        g.add_rel(n1, n2, "AUTHORS", []).unwrap(); // r1
        g.add_rel(n2, n3, "CITES", []).unwrap(); // r2
        g.add_rel(n4, n2, "CITES", []).unwrap(); // r3
        g.add_rel(n5, n2, "CITES", []).unwrap(); // r4
        g.add_rel(n6, n5, "AUTHORS", []).unwrap(); // r5
        g.add_rel(n6, n7, "SUPERVISES", []).unwrap(); // r6
        g.add_rel(n6, n8, "SUPERVISES", []).unwrap(); // r7
        g.add_rel(n10, n7, "SUPERVISES", []).unwrap(); // r8
        g.add_rel(n9, n4, "CITES", []).unwrap(); // r9
        g.add_rel(n6, n9, "AUTHORS", []).unwrap(); // r10
        g.add_rel(n9, n5, "CITES", []).unwrap(); // r11
        g
    }

    fn run(g: &PropertyGraph, src: &str) -> Table {
        let params = Params::new();
        let ctx = EvalContext::new(g, &params);
        let q = parse_query(src).unwrap();
        eval_query(&ctx, &q).unwrap()
    }

    #[test]
    fn section3_full_query() {
        // The running example: expected output table from §3.
        let g = figure1();
        let out = run(
            &g,
            "MATCH (r:Researcher)
             OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student)
             WITH r, count(s) AS studentsSupervised
             MATCH (r)-[:AUTHORS]->(p1:Publication)
             OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication)
             RETURN r.name, studentsSupervised,
                    count(DISTINCT p2) AS citedCount",
        );
        let expected = table_of(
            &["r.name", "studentsSupervised", "citedCount"],
            vec![
                vec![Value::str("Nils"), Value::int(0), Value::int(3)],
                vec![Value::str("Elin"), Value::int(2), Value::int(1)],
            ],
        );
        out.assert_bag_eq(&expected);
    }

    #[test]
    fn return_literal() {
        let g = PropertyGraph::new();
        let out = run(&g, "RETURN 1 + 1 AS two");
        assert_eq!(out.cell(0, "two"), Some(&Value::int(2)));
    }

    #[test]
    fn union_set_vs_bag() {
        let g = PropertyGraph::new();
        let set = run(&g, "RETURN 1 AS x UNION RETURN 1 AS x");
        assert_eq!(set.len(), 1);
        let bag = run(&g, "RETURN 1 AS x UNION ALL RETURN 1 AS x");
        assert_eq!(bag.len(), 2);
    }

    #[test]
    fn union_schema_mismatch_is_error() {
        let g = PropertyGraph::new();
        let params = Params::new();
        let ctx = EvalContext::new(&g, &params);
        let q = parse_query("RETURN 1 AS x UNION RETURN 1 AS y").unwrap();
        assert!(eval_query(&ctx, &q).is_err());
    }

    #[test]
    fn return_star_requires_fields() {
        let g = PropertyGraph::new();
        let params = Params::new();
        let ctx = EvalContext::new(&g, &params);
        let q = parse_query("RETURN *").unwrap();
        assert!(eval_query(&ctx, &q).is_err());
    }

    #[test]
    fn unwind_paper_semantics() {
        let g = PropertyGraph::new();
        let out = run(&g, "UNWIND [1, 2, 3] AS x RETURN x");
        assert_eq!(out.len(), 3);
        let empty = run(&g, "UNWIND [] AS x RETURN x");
        assert_eq!(empty.len(), 0);
        // Figure 7's "otherwise" branch: a non-list value (incl. null)
        // produces one row.
        let null_row = run(&g, "UNWIND null AS x RETURN x");
        assert_eq!(null_row.len(), 1);
        assert!(null_row.cell(0, "x").unwrap().is_null());
        let scalar = run(&g, "UNWIND 7 AS x RETURN x");
        assert_eq!(scalar.cell(0, "x"), Some(&Value::int(7)));
    }

    #[test]
    fn with_where_filters_aggregates() {
        let g = figure1();
        // Researchers supervising more than one student: only Elin.
        let out = run(
            &g,
            "MATCH (r:Researcher)-[:SUPERVISES]->(s)
             WITH r, count(s) AS n WHERE n > 1
             RETURN r.name AS name, n",
        );
        let expected = table_of(
            &["name", "n"],
            vec![vec![Value::str("Elin"), Value::int(2)]],
        );
        out.assert_bag_eq(&expected);
    }

    #[test]
    fn order_by_skip_limit() {
        let g = figure1();
        let out = run(
            &g,
            "MATCH (p:Publication)
             RETURN p.acmid AS id ORDER BY id DESC SKIP 1 LIMIT 2",
        );
        let expected = table_of(&["id"], vec![vec![Value::int(240)], vec![Value::int(235)]]);
        // ORDER BY is about sequence; check exact order.
        assert_eq!(out.rows()[0].get(0), &Value::int(240));
        assert_eq!(out.rows()[1].get(0), &Value::int(235));
        out.assert_bag_eq(&expected);
    }

    #[test]
    fn distinct_projection() {
        let g = figure1();
        let out = run(
            &g,
            "MATCH (:Publication)-[:CITES]->(p:Publication) RETURN DISTINCT p.acmid AS id",
        );
        // CITES targets: n3 (from n2), n2 (from n4 and n5), n4 and n5
        // (from n9) → distinct {n2, n3, n4, n5} = 4.
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn count_star_on_empty_is_zero() {
        let g = PropertyGraph::new();
        let out = run(&g, "MATCH (n) RETURN count(*) AS c");
        assert_eq!(out.cell(0, "c"), Some(&Value::int(0)));
    }

    #[test]
    fn grouped_aggregate_on_empty_has_no_rows() {
        let g = PropertyGraph::new();
        let out = run(&g, "MATCH (n) RETURN n, count(*) AS c");
        assert_eq!(out.len(), 0);
    }

    #[test]
    fn alpha_names_match_paper_headers() {
        let g = figure1();
        let out = run(&g, "MATCH (r:Researcher) RETURN r.name");
        assert_eq!(out.schema().names(), &["r.name".to_string()]);
    }

    #[test]
    fn aggregate_in_arithmetic() {
        let g = figure1();
        let out = run(
            &g,
            "MATCH (:Researcher)-[:SUPERVISES]->(s) RETURN count(s) * 10 AS c",
        );
        assert_eq!(out.cell(0, "c"), Some(&Value::int(30)));
    }

    #[test]
    fn where_pattern_predicate() {
        let g = figure1();
        // Researchers who authored a publication that something cites.
        let out = run(
            &g,
            "MATCH (r:Researcher)-[:AUTHORS]->(p)
             WHERE (p)<-[:CITES]-()
             RETURN DISTINCT r.name AS name",
        );
        assert_eq!(out.len(), 2); // Nils (n2 cited), Elin (n5 cited)
    }

    #[test]
    fn updating_clause_rejected_by_reference() {
        let g = PropertyGraph::new();
        let params = Params::new();
        let ctx = EvalContext::new(&g, &params);
        let q = parse_query("CREATE (n) RETURN n").unwrap();
        assert!(eval_query(&ctx, &q).is_err());
    }
}
