//! Expression semantics `[[expr]]_{G,u}` (paper Section 4.3, "Semantics of
//! expressions").
//!
//! An expression denotes a value in `V`, determined by the graph `G` and an
//! assignment `u` of values to names. Logic is SQL-style three-valued;
//! property access, list indexing and comparisons are null-propagating;
//! genuinely ill-typed operations (e.g. adding a node to an integer) are
//! evaluation errors.

use crate::error::{err, EvalError};
use crate::functions::apply_function;
use crate::matching;
use crate::table::{Record, Schema};
use crate::EvalContext;
use cypher_ast::expr::{is_aggregate_fn, ArithOp, CmpOp, Expr, Literal, Quantifier};
use cypher_graph::{Temporal, Tri, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// An assignment `u`: anything that can resolve a name to a value.
pub trait VarLookup {
    /// Resolves a name, cloning the value.
    fn lookup(&self, name: &str) -> Option<Value>;
}

/// The standard assignment: a record viewed through its schema.
pub struct Bindings<'a> {
    /// Field names.
    pub schema: &'a Schema,
    /// Field values.
    pub row: &'a Record,
}

impl<'a> Bindings<'a> {
    /// Pairs a schema with a record.
    pub fn new(schema: &'a Schema, row: &'a Record) -> Self {
        Bindings { schema, row }
    }
}

impl VarLookup for Bindings<'_> {
    fn lookup(&self, name: &str) -> Option<Value> {
        self.schema.index_of(name).map(|i| self.row.get(i).clone())
    }
}

/// An assignment extended with one local binding (used by comprehensions
/// and quantifiers, whose iteration variable shadows outer names).
pub struct WithLocal<'a> {
    parent: &'a dyn VarLookup,
    name: &'a str,
    value: &'a Value,
}

impl VarLookup for WithLocal<'_> {
    fn lookup(&self, name: &str) -> Option<Value> {
        if name == self.name {
            Some(self.value.clone())
        } else {
            self.parent.lookup(name)
        }
    }
}

/// An empty assignment.
pub struct NoVars;

impl VarLookup for NoVars {
    fn lookup(&self, _name: &str) -> Option<Value> {
        None
    }
}

/// Evaluates `[[expr]]_{G,u}`.
pub fn eval_expr(
    ctx: &EvalContext<'_>,
    u: &dyn VarLookup,
    expr: &Expr,
) -> Result<Value, EvalError> {
    match expr {
        Expr::Lit(l) => Ok(eval_literal(l)),
        Expr::Var(a) => u
            .lookup(a)
            .ok_or_else(|| EvalError::new(format!("undefined variable: {a}"))),
        Expr::Param(p) => ctx
            .params
            .get(p)
            .cloned()
            .ok_or_else(|| EvalError::new(format!("missing parameter: ${p}"))),
        Expr::Prop(base, key) => {
            let v = eval_expr(ctx, u, base)?;
            eval_prop_access(ctx, &v, key)
        }
        Expr::Map(kvs) => {
            let mut m = BTreeMap::new();
            for (k, e) in kvs {
                m.insert(Arc::from(k.as_str()), eval_expr(ctx, u, e)?);
            }
            Ok(Value::Map(m))
        }
        Expr::List(es) => {
            let mut items = Vec::with_capacity(es.len());
            for e in es {
                items.push(eval_expr(ctx, u, e)?);
            }
            Ok(Value::List(items))
        }
        Expr::In(x, list) => {
            let xv = eval_expr(ctx, u, x)?;
            let lv = eval_expr(ctx, u, list)?;
            match lv {
                Value::Null => Ok(Value::Null),
                Value::List(items) => {
                    let mut acc = Tri::False;
                    for item in &items {
                        match xv.equals(item) {
                            Tri::True => return Ok(Value::Bool(true)),
                            Tri::Null => acc = Tri::Null,
                            Tri::False => {}
                        }
                    }
                    Ok(acc.into_value())
                }
                other => err(format!("IN requires a list, got {}", other.type_name())),
            }
        }
        Expr::Index(base, idx) => {
            let b = eval_expr(ctx, u, base)?;
            let i = eval_expr(ctx, u, idx)?;
            eval_index(&b, &i)
        }
        Expr::Slice(base, lo, hi) => {
            let b = eval_expr(ctx, u, base)?;
            let lo = match lo {
                Some(e) => Some(eval_expr(ctx, u, e)?),
                None => None,
            };
            let hi = match hi {
                Some(e) => Some(eval_expr(ctx, u, e)?),
                None => None,
            };
            eval_slice(&b, lo, hi)
        }
        Expr::StartsWith(a, b) => eval_string_pred(ctx, u, a, b, |x, y| x.starts_with(y)),
        Expr::EndsWith(a, b) => eval_string_pred(ctx, u, a, b, |x, y| x.ends_with(y)),
        Expr::Contains(a, b) => eval_string_pred(ctx, u, a, b, |x, y| x.contains(y)),
        Expr::Or(a, b) => {
            let x = truth_of(ctx, u, a)?;
            // Short-circuit on True; still three-valued.
            if x == Tri::True {
                return Ok(Value::Bool(true));
            }
            let y = truth_of(ctx, u, b)?;
            Ok(x.or(y).into_value())
        }
        Expr::And(a, b) => {
            let x = truth_of(ctx, u, a)?;
            if x == Tri::False {
                return Ok(Value::Bool(false));
            }
            let y = truth_of(ctx, u, b)?;
            Ok(x.and(y).into_value())
        }
        Expr::Xor(a, b) => {
            let x = truth_of(ctx, u, a)?;
            let y = truth_of(ctx, u, b)?;
            Ok(x.xor(y).into_value())
        }
        Expr::Not(e) => Ok(truth_of(ctx, u, e)?.not().into_value()),
        Expr::IsNull(e) => Ok(Value::Bool(eval_expr(ctx, u, e)?.is_null())),
        Expr::IsNotNull(e) => Ok(Value::Bool(!eval_expr(ctx, u, e)?.is_null())),
        Expr::Cmp(op, a, b) => {
            let x = eval_expr(ctx, u, a)?;
            let y = eval_expr(ctx, u, b)?;
            Ok(eval_cmp(*op, &x, &y).into_value())
        }
        Expr::Arith(op, a, b) => {
            let x = eval_expr(ctx, u, a)?;
            let y = eval_expr(ctx, u, b)?;
            eval_arith(*op, &x, &y)
        }
        Expr::Neg(e) => match eval_expr(ctx, u, e)? {
            Value::Null => Ok(Value::Null),
            Value::Integer(i) => i
                .checked_neg()
                .map(Value::Integer)
                .ok_or_else(|| EvalError::new("integer overflow in negation")),
            Value::Float(f) => Ok(Value::Float(-f)),
            Value::Temporal(Temporal::Duration(d)) => {
                Ok(Value::Temporal(Temporal::Duration(d.negate())))
            }
            other => err(format!("cannot negate {}", other.type_name())),
        },
        Expr::FnCall {
            name,
            args,
            distinct,
        } => {
            if is_aggregate_fn(name) {
                return err(format!(
                    "aggregating function {name}() not allowed in this context"
                ));
            }
            if *distinct {
                return err("DISTINCT only applies to aggregating functions");
            }
            // `exists(<pattern>)` asks whether the pattern matches — the
            // pattern predicate already evaluates to exactly that boolean,
            // so pass it through instead of testing the *value* for null
            // (which would make `exists` of a non-matching pattern true).
            if name == "exists" && args.len() == 1 {
                if let Expr::PatternPredicate(_) = &args[0] {
                    return eval_expr(ctx, u, &args[0]);
                }
            }
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_expr(ctx, u, a)?);
            }
            apply_function(ctx, name, vals)
        }
        Expr::CountStar => err("count(*) not allowed in this context"),
        Expr::HasLabels(e, labels) => {
            let v = eval_expr(ctx, u, e)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Node(n) => {
                    let all = labels.iter().all(|l| {
                        ctx.graph
                            .interner()
                            .get(l)
                            .is_some_and(|sym| ctx.graph.has_label(n, sym))
                    });
                    Ok(Value::Bool(all))
                }
                other => err(format!(
                    "label predicate requires a node, got {}",
                    other.type_name()
                )),
            }
        }
        Expr::Case {
            input,
            whens,
            else_,
        } => {
            let scrutinee = match input {
                Some(e) => Some(eval_expr(ctx, u, e)?),
                None => None,
            };
            for (w, t) in whens {
                let fire = match &scrutinee {
                    Some(s) => {
                        let wv = eval_expr(ctx, u, w)?;
                        s.equals(&wv) == Tri::True
                    }
                    None => truth_of(ctx, u, w)? == Tri::True,
                };
                if fire {
                    return eval_expr(ctx, u, t);
                }
            }
            match else_ {
                Some(e) => eval_expr(ctx, u, e),
                None => Ok(Value::Null),
            }
        }
        Expr::ListComprehension {
            var,
            list,
            filter,
            body,
        } => {
            let lv = eval_expr(ctx, u, list)?;
            let items = match lv {
                Value::Null => return Ok(Value::Null),
                Value::List(items) => items,
                other => {
                    return err(format!(
                        "list comprehension requires a list, got {}",
                        other.type_name()
                    ))
                }
            };
            let mut out = Vec::new();
            for item in items {
                let scope = WithLocal {
                    parent: u,
                    name: var,
                    value: &item,
                };
                if let Some(p) = filter {
                    if truth_of(ctx, &scope, p)? != Tri::True {
                        continue;
                    }
                }
                match body {
                    Some(b) => out.push(eval_expr(ctx, &scope, b)?),
                    None => out.push(item.clone()),
                }
            }
            Ok(Value::List(out))
        }
        Expr::Quantified { q, var, list, pred } => {
            let lv = eval_expr(ctx, u, list)?;
            let items = match lv {
                Value::Null => return Ok(Value::Null),
                Value::List(items) => items,
                other => {
                    return err(format!(
                        "quantifier requires a list, got {}",
                        other.type_name()
                    ))
                }
            };
            let mut trues = 0usize;
            let mut nulls = 0usize;
            for item in &items {
                let scope = WithLocal {
                    parent: u,
                    name: var,
                    value: item,
                };
                match truth_of(ctx, &scope, pred)? {
                    Tri::True => trues += 1,
                    Tri::Null => nulls += 1,
                    Tri::False => {}
                }
            }
            let falses = items.len() - trues - nulls;
            let tri = match q {
                Quantifier::All => {
                    if falses > 0 {
                        Tri::False
                    } else if nulls > 0 {
                        Tri::Null
                    } else {
                        Tri::True
                    }
                }
                Quantifier::Any => {
                    if trues > 0 {
                        Tri::True
                    } else if nulls > 0 {
                        Tri::Null
                    } else {
                        Tri::False
                    }
                }
                Quantifier::None => {
                    if trues > 0 {
                        Tri::False
                    } else if nulls > 0 {
                        Tri::Null
                    } else {
                        Tri::True
                    }
                }
                Quantifier::Single => {
                    if trues > 1 {
                        Tri::False
                    } else if nulls > 0 {
                        Tri::Null
                    } else {
                        Tri::from_bool(trues == 1)
                    }
                }
            };
            Ok(tri.into_value())
        }
        Expr::PatternPredicate(p) => {
            let found = matching::has_match(ctx, u, std::slice::from_ref(p))?;
            Ok(Value::Bool(found))
        }
        Expr::PatternComprehension {
            pattern,
            filter,
            body,
        } => {
            let rows = matching::match_patterns(ctx, u, std::slice::from_ref(pattern))?;
            let mut out = Vec::with_capacity(rows.len());
            for bindings in rows {
                let scope = WithBindings {
                    parent: u,
                    bindings: &bindings,
                };
                if let Some(p) = filter {
                    if truth_of(ctx, &scope, p)? != Tri::True {
                        continue;
                    }
                }
                out.push(eval_expr(ctx, &scope, body)?);
            }
            Ok(Value::List(out))
        }
    }
}

/// An assignment extended with a set of match bindings (used by pattern
/// comprehensions).
struct WithBindings<'a> {
    parent: &'a dyn VarLookup,
    bindings: &'a [(String, Value)],
}

impl VarLookup for WithBindings<'_> {
    fn lookup(&self, name: &str) -> Option<Value> {
        self.bindings
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
            .or_else(|| self.parent.lookup(name))
    }
}

/// Evaluates an expression to a three-valued truth value (the coercion used
/// by `WHERE` and the logical connectives).
pub fn truth_of(ctx: &EvalContext<'_>, u: &dyn VarLookup, e: &Expr) -> Result<Tri, EvalError> {
    let v = eval_expr(ctx, u, e)?;
    match v {
        Value::Bool(b) => Ok(Tri::from_bool(b)),
        Value::Null => Ok(Tri::Null),
        other => err(format!(
            "expected a boolean predicate, got {}",
            other.type_name()
        )),
    }
}

fn eval_literal(l: &Literal) -> Value {
    match l {
        Literal::Null => Value::Null,
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Integer(i) => Value::Integer(*i),
        Literal::Float(f) => Value::Float(*f),
        Literal::String(s) => Value::str(s),
    }
}

fn eval_prop_access(ctx: &EvalContext<'_>, base: &Value, key: &str) -> Result<Value, EvalError> {
    match base {
        Value::Null => Ok(Value::Null),
        Value::Node(n) => Ok(ctx
            .graph
            .interner()
            .get(key)
            .and_then(|k| ctx.graph.node_prop(*n, k))
            .cloned()
            .unwrap_or(Value::Null)),
        Value::Rel(r) => Ok(ctx
            .graph
            .interner()
            .get(key)
            .and_then(|k| ctx.graph.rel_prop(*r, k))
            .cloned()
            .unwrap_or(Value::Null)),
        Value::Map(m) => Ok(m.get(key).cloned().unwrap_or(Value::Null)),
        Value::Temporal(t) => temporal_component(t, key),
        other => err(format!(
            "cannot access property .{key} on {}",
            other.type_name()
        )),
    }
}

fn temporal_component(t: &Temporal, key: &str) -> Result<Value, EvalError> {
    use Temporal::*;
    let v = match (t, key) {
        (Date(d), "year") => Value::int(d.year()),
        (Date(d), "month") => Value::int(d.month() as i64),
        (Date(d), "day") => Value::int(d.day() as i64),
        (Date(d), "weekday") => Value::int(d.weekday() as i64),
        (LocalTime(t), "hour") => Value::int(t.hour() as i64),
        (LocalTime(t), "minute") => Value::int(t.minute() as i64),
        (LocalTime(t), "second") => Value::int(t.second() as i64),
        (LocalTime(t), "nanosecond") => Value::int(t.nanosecond() as i64),
        (LocalDateTime(dt), "year") => Value::int(dt.date.year()),
        (LocalDateTime(dt), "month") => Value::int(dt.date.month() as i64),
        (LocalDateTime(dt), "day") => Value::int(dt.date.day() as i64),
        (LocalDateTime(dt), "hour") => Value::int(dt.time.hour() as i64),
        (LocalDateTime(dt), "minute") => Value::int(dt.time.minute() as i64),
        (LocalDateTime(dt), "second") => Value::int(dt.time.second() as i64),
        (DateTime(z), "year") => Value::int(z.local.date.year()),
        (DateTime(z), "month") => Value::int(z.local.date.month() as i64),
        (DateTime(z), "day") => Value::int(z.local.date.day() as i64),
        (DateTime(z), "hour") => Value::int(z.local.time.hour() as i64),
        (DateTime(z), "offsetSeconds") => Value::int(z.offset_seconds as i64),
        (Duration(d), "months") => Value::int(d.months),
        (Duration(d), "days") => Value::int(d.days),
        (Duration(d), "seconds") => Value::int(d.seconds),
        (Duration(d), "nanoseconds") => Value::int(d.nanos),
        _ => return err(format!("unknown temporal component .{key}")),
    };
    Ok(v)
}

fn eval_index(base: &Value, idx: &Value) -> Result<Value, EvalError> {
    match (base, idx) {
        (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
        (Value::List(items), Value::Integer(i)) => {
            let len = items.len() as i64;
            let j = if *i < 0 { i + len } else { *i };
            if j < 0 || j >= len {
                Ok(Value::Null)
            } else {
                Ok(items[j as usize].clone())
            }
        }
        (Value::Map(m), Value::String(k)) => Ok(m.get(k.as_ref()).cloned().unwrap_or(Value::Null)),
        (b, i) => err(format!(
            "cannot index {} with {}",
            b.type_name(),
            i.type_name()
        )),
    }
}

fn eval_slice(base: &Value, lo: Option<Value>, hi: Option<Value>) -> Result<Value, EvalError> {
    let items = match base {
        Value::Null => return Ok(Value::Null),
        Value::List(items) => items,
        other => return err(format!("cannot slice {}", other.type_name())),
    };
    let len = items.len() as i64;
    let norm = |v: &Value| -> Result<Option<i64>, EvalError> {
        match v {
            Value::Null => Ok(None),
            Value::Integer(i) => {
                let j = if *i < 0 { i + len } else { *i };
                Ok(Some(j.clamp(0, len)))
            }
            other => err(format!(
                "slice bound must be an integer, got {}",
                other.type_name()
            )),
        }
    };
    let start = match &lo {
        Some(v) => match norm(v)? {
            Some(s) => s,
            None => return Ok(Value::Null),
        },
        None => 0,
    };
    let end = match &hi {
        Some(v) => match norm(v)? {
            Some(e) => e,
            None => return Ok(Value::Null),
        },
        None => len,
    };
    if start >= end {
        return Ok(Value::List(Vec::new()));
    }
    Ok(Value::List(items[start as usize..end as usize].to_vec()))
}

fn eval_string_pred(
    ctx: &EvalContext<'_>,
    u: &dyn VarLookup,
    a: &Expr,
    b: &Expr,
    f: impl Fn(&str, &str) -> bool,
) -> Result<Value, EvalError> {
    let x = eval_expr(ctx, u, a)?;
    let y = eval_expr(ctx, u, b)?;
    match (&x, &y) {
        (Value::String(s), Value::String(t)) => Ok(Value::Bool(f(s, t))),
        // Any null or non-string operand yields null (openCypher behaviour).
        _ => Ok(Value::Null),
    }
}

fn eval_cmp(op: CmpOp, a: &Value, b: &Value) -> Tri {
    match op {
        CmpOp::Eq => a.equals(b),
        CmpOp::Neq => a.equals(b).not(),
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => match a.compare(b) {
            None => Tri::Null,
            Some(ord) => {
                let holds = match op {
                    CmpOp::Lt => ord.is_lt(),
                    CmpOp::Le => ord.is_le(),
                    CmpOp::Gt => ord.is_gt(),
                    CmpOp::Ge => ord.is_ge(),
                    _ => unreachable!(),
                };
                Tri::from_bool(holds)
            }
        },
    }
}

fn eval_arith(op: ArithOp, a: &Value, b: &Value) -> Result<Value, EvalError> {
    use Value::*;
    if a.is_null() || b.is_null() {
        return Ok(Null);
    }
    match op {
        ArithOp::Add => match (a, b) {
            (Integer(x), Integer(y)) => x
                .checked_add(*y)
                .map(Integer)
                .ok_or_else(|| EvalError::new("integer overflow in +")),
            (Float(x), Float(y)) => Ok(Float(x + y)),
            (Integer(x), Float(y)) => Ok(Float(*x as f64 + y)),
            (Float(x), Integer(y)) => Ok(Float(x + *y as f64)),
            (String(x), String(y)) => Ok(Value::str(format!("{x}{y}"))),
            (String(x), Integer(y)) => Ok(Value::str(format!("{x}{y}"))),
            (String(x), Float(y)) => Ok(Value::str(format!("{x}{y}"))),
            (Integer(x), String(y)) => Ok(Value::str(format!("{x}{y}"))),
            (Float(x), String(y)) => Ok(Value::str(format!("{x}{y}"))),
            (List(x), List(y)) => {
                let mut out = x.clone();
                out.extend(y.iter().cloned());
                Ok(List(out))
            }
            (List(x), y) => {
                let mut out = x.clone();
                out.push(y.clone());
                Ok(List(out))
            }
            (x, List(y)) => {
                let mut out = vec![x.clone()];
                out.extend(y.iter().cloned());
                Ok(List(out))
            }
            (
                Temporal(cypher_graph::Temporal::Duration(x)),
                Temporal(cypher_graph::Temporal::Duration(y)),
            ) => Ok(Temporal(cypher_graph::Temporal::Duration(x.plus(*y)))),
            (
                Temporal(cypher_graph::Temporal::Date(d)),
                Temporal(cypher_graph::Temporal::Duration(x)),
            ) => Ok(Temporal(cypher_graph::Temporal::Date(d.plus(*x)))),
            (
                Temporal(cypher_graph::Temporal::LocalDateTime(dt)),
                Temporal(cypher_graph::Temporal::Duration(x)),
            ) => Ok(Temporal(cypher_graph::Temporal::LocalDateTime(dt.plus(*x)))),
            (x, y) => err(format!(
                "cannot add {} and {}",
                x.type_name(),
                y.type_name()
            )),
        },
        ArithOp::Sub => match (a, b) {
            (Integer(x), Integer(y)) => x
                .checked_sub(*y)
                .map(Integer)
                .ok_or_else(|| EvalError::new("integer overflow in -")),
            (Float(x), Float(y)) => Ok(Float(x - y)),
            (Integer(x), Float(y)) => Ok(Float(*x as f64 - y)),
            (Float(x), Integer(y)) => Ok(Float(x - *y as f64)),
            (
                Temporal(cypher_graph::Temporal::Duration(x)),
                Temporal(cypher_graph::Temporal::Duration(y)),
            ) => Ok(Temporal(cypher_graph::Temporal::Duration(
                x.plus(y.negate()),
            ))),
            (
                Temporal(cypher_graph::Temporal::Date(d)),
                Temporal(cypher_graph::Temporal::Duration(x)),
            ) => Ok(Temporal(cypher_graph::Temporal::Date(d.plus(x.negate())))),
            (
                Temporal(cypher_graph::Temporal::LocalDateTime(dt)),
                Temporal(cypher_graph::Temporal::Duration(x)),
            ) => Ok(Temporal(cypher_graph::Temporal::LocalDateTime(
                dt.plus(x.negate()),
            ))),
            (x, y) => err(format!(
                "cannot subtract {} from {}",
                y.type_name(),
                x.type_name()
            )),
        },
        ArithOp::Mul => match (a, b) {
            (Integer(x), Integer(y)) => x
                .checked_mul(*y)
                .map(Integer)
                .ok_or_else(|| EvalError::new("integer overflow in *")),
            (Float(x), Float(y)) => Ok(Float(x * y)),
            (Integer(x), Float(y)) => Ok(Float(*x as f64 * y)),
            (Float(x), Integer(y)) => Ok(Float(x * *y as f64)),
            (x, y) => err(format!(
                "cannot multiply {} and {}",
                x.type_name(),
                y.type_name()
            )),
        },
        ArithOp::Div => match (a, b) {
            (Integer(_), Integer(0)) => err("division by zero"),
            (Integer(x), Integer(y)) => Ok(Integer(x / y)),
            (Float(x), Float(y)) => Ok(Float(x / y)),
            (Integer(x), Float(y)) => Ok(Float(*x as f64 / y)),
            (Float(x), Integer(y)) => Ok(Float(x / *y as f64)),
            (x, y) => err(format!(
                "cannot divide {} by {}",
                x.type_name(),
                y.type_name()
            )),
        },
        ArithOp::Mod => match (a, b) {
            (Integer(_), Integer(0)) => err("modulo by zero"),
            (Integer(x), Integer(y)) => Ok(Integer(x % y)),
            (Float(x), Float(y)) => Ok(Float(x % y)),
            (Integer(x), Float(y)) => Ok(Float(*x as f64 % y)),
            (Float(x), Integer(y)) => Ok(Float(x % *y as f64)),
            (x, y) => err(format!(
                "cannot take {} mod {}",
                x.type_name(),
                y.type_name()
            )),
        },
        ArithOp::Pow => match (a.as_number(), b.as_number()) {
            (Some(x), Some(y)) => Ok(Float(x.powf(y))),
            _ => err(format!(
                "cannot raise {} to {}",
                a.type_name(),
                b.type_name()
            )),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EvalContext, Params};
    use cypher_graph::PropertyGraph;
    use cypher_parser::parse_expression;

    fn eval(src: &str) -> Result<Value, EvalError> {
        let g = PropertyGraph::new();
        let params = Params::new();
        let ctx = EvalContext::new(&g, &params);
        let e = parse_expression(src).unwrap();
        eval_expr(&ctx, &NoVars, &e)
    }

    fn val(src: &str) -> Value {
        eval(src).unwrap()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(val("1 + 2 * 3"), Value::int(7));
        assert_eq!(val("7 / 2"), Value::int(3)); // integer division
        assert_eq!(val("7.0 / 2"), Value::float(3.5));
        assert_eq!(val("7 % 3"), Value::int(1));
        assert_eq!(val("2 ^ 10"), Value::float(1024.0));
        assert_eq!(val("-(3)"), Value::int(-3));
        assert!(eval("1 / 0").is_err());
        assert!(eval("9223372036854775807 + 1").is_err());
    }

    #[test]
    fn null_propagation_in_arithmetic() {
        assert!(val("1 + null").is_null());
        assert!(val("null * 3").is_null());
        assert!(val("-null").is_null());
    }

    #[test]
    fn string_concat_and_predicates() {
        assert_eq!(val("'a' + 'b'"), Value::str("ab"));
        assert_eq!(val("'a' + 1"), Value::str("a1"));
        assert_eq!(val("'hello' STARTS WITH 'he'"), Value::Bool(true));
        assert_eq!(val("'hello' ENDS WITH 'lo'"), Value::Bool(true));
        assert_eq!(val("'hello' CONTAINS 'ell'"), Value::Bool(true));
        assert!(val("'hello' CONTAINS null").is_null());
        assert!(val("1 STARTS WITH 'x'").is_null());
    }

    #[test]
    fn three_valued_logic() {
        assert_eq!(val("true OR null"), Value::Bool(true));
        assert!(val("false OR null").is_null());
        assert_eq!(val("false AND null"), Value::Bool(false));
        assert!(val("true AND null").is_null());
        assert!(val("NOT null").is_null());
        assert!(val("true XOR null").is_null());
        assert_eq!(val("null IS NULL"), Value::Bool(true));
        assert_eq!(val("1 IS NOT NULL"), Value::Bool(true));
    }

    #[test]
    fn comparisons() {
        assert_eq!(val("1 < 2"), Value::Bool(true));
        assert_eq!(val("1 = 1.0"), Value::Bool(true));
        assert_eq!(val("1 <> 2"), Value::Bool(true));
        assert!(val("1 = null").is_null());
        assert!(val("1 < 'a'").is_null()); // incomparable
        assert_eq!(val("'a' < 'b'"), Value::Bool(true));
    }

    #[test]
    fn list_operations() {
        assert_eq!(val("[1, 2, 3][0]"), Value::int(1));
        assert_eq!(val("[1, 2, 3][-1]"), Value::int(3));
        assert!(val("[1, 2][5]").is_null());
        assert_eq!(
            val("[1, 2, 3, 4][1..3]"),
            Value::list([Value::int(2), Value::int(3)])
        );
        assert_eq!(
            val("[1, 2, 3][..2]"),
            Value::list([Value::int(1), Value::int(2)])
        );
        assert_eq!(val("[1, 2, 3][-2..]").to_string(), "[2, 3]");
        assert_eq!(val("2 IN [1, 2]"), Value::Bool(true));
        assert_eq!(val("5 IN [1, 2]"), Value::Bool(false));
        assert!(val("5 IN [1, null]").is_null());
        assert!(val("null IN [1]").is_null());
        assert_eq!(val("[1] + [2]").to_string(), "[1, 2]");
        assert_eq!(val("[1] + 2").to_string(), "[1, 2]");
    }

    #[test]
    fn map_literal_and_access() {
        assert_eq!(val("{a: 1, b: 'x'}.a"), Value::int(1));
        assert!(val("{a: 1}.missing").is_null());
        assert_eq!(val("{a: 1}['a']"), Value::int(1));
    }

    #[test]
    fn case_expressions() {
        assert_eq!(
            val("CASE WHEN 1 < 2 THEN 'yes' ELSE 'no' END"),
            Value::str("yes")
        );
        assert_eq!(
            val("CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END"),
            Value::str("two")
        );
        assert!(val("CASE 9 WHEN 1 THEN 'one' END").is_null());
        // null scrutinee never matches a WHEN (null = x is null, not true).
        assert_eq!(
            val("CASE null WHEN null THEN 'n' ELSE 'e' END"),
            Value::str("e")
        );
    }

    #[test]
    fn comprehensions_and_quantifiers() {
        assert_eq!(
            val("[x IN [1,2,3,4] WHERE x % 2 = 0 | x * 10]").to_string(),
            "[20, 40]"
        );
        assert_eq!(val("all(x IN [1,2] WHERE x > 0)"), Value::Bool(true));
        assert_eq!(val("any(x IN [1,2] WHERE x > 1)"), Value::Bool(true));
        assert_eq!(val("none(x IN [1,2] WHERE x > 5)"), Value::Bool(true));
        assert_eq!(val("single(x IN [1,2] WHERE x = 1)"), Value::Bool(true));
        assert_eq!(val("single(x IN [1,1] WHERE x = 1)"), Value::Bool(false));
        assert!(val("all(x IN [1, null] WHERE x > 0)").is_null());
        assert_eq!(val("any(x IN [null, 2] WHERE x > 1)"), Value::Bool(true));
        assert!(val("[x IN null | x]").is_null());
    }

    #[test]
    fn params_resolve() {
        let g = PropertyGraph::new();
        let mut params = Params::new();
        params.insert("d".into(), Value::int(5));
        let ctx = EvalContext::new(&g, &params);
        let e = parse_expression("$d * 2").unwrap();
        assert_eq!(eval_expr(&ctx, &NoVars, &e).unwrap(), Value::int(10));
        let missing = parse_expression("$nope").unwrap();
        assert!(eval_expr(&ctx, &NoVars, &missing).is_err());
    }

    #[test]
    fn undefined_variable_is_error() {
        assert!(eval("nosuchvar + 1").is_err());
    }

    #[test]
    fn property_on_node_and_null() {
        let mut g = PropertyGraph::new();
        let n = g.add_node(&["P"], [("name", Value::str("Ada"))]);
        let params = Params::new();
        let ctx = EvalContext::new(&g, &params);
        let schema = crate::Schema::new(vec!["n".into()]);
        let row = crate::Record::new(vec![Value::Node(n)]);
        let b = Bindings::new(&schema, &row);
        let e = parse_expression("n.name").unwrap();
        assert_eq!(eval_expr(&ctx, &b, &e).unwrap(), Value::str("Ada"));
        let e2 = parse_expression("n.missing").unwrap();
        assert!(eval_expr(&ctx, &b, &e2).unwrap().is_null());
        assert!(val("null.foo").is_null());
    }

    #[test]
    fn temporal_components_via_functions() {
        assert_eq!(val("date('2018-06-10').year"), Value::int(2018));
        assert_eq!(val("date('2018-06-10').month"), Value::int(6));
        assert_eq!(
            val("(localdatetime('2018-06-10T12:30:00') + duration('P1D')).day"),
            Value::int(11)
        );
        assert_eq!(
            val("duration('P1D') + duration('PT12H')").to_string(),
            "P1DT12H"
        );
    }
}
