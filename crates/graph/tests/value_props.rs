//! Property-based tests for the value model: the orderability relation
//! must be a total order (reflexive, antisymmetric, transitive) for
//! `ORDER BY`/`DISTINCT` to be well-defined, equivalence must be its
//! kernel, and the equivalence hash must agree with it.

use cypher_graph::{NodeId, Path, RelId, Value};
use proptest::prelude::*;
use std::cmp::Ordering;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-100i64..100).prop_map(Value::Integer),
        (-100i64..100).prop_map(|i| Value::Float(i as f64 / 4.0)),
        Just(Value::Float(f64::NAN)),
        Just(Value::Float(0.0)),
        Just(Value::Float(-0.0)),
        "[a-c]{0,3}".prop_map(Value::str),
        (0u64..5).prop_map(|i| Value::Node(NodeId(i))),
        (0u64..5).prop_map(|i| Value::Rel(RelId(i))),
        (0u64..3, 0u64..3).prop_map(|(n, r)| {
            let mut p = Path::single(NodeId(n));
            p.push(RelId(r), NodeId(n + 1));
            Value::Path(p)
        }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::List),
            proptest::collection::btree_map("[a-b]{1,2}", inner, 0..3).prop_map(|m| {
                Value::Map(
                    m.into_iter()
                        .map(|(k, v)| (std::sync::Arc::from(k.as_str()), v))
                        .collect(),
                )
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn order_is_reflexive(a in arb_value()) {
        prop_assert_eq!(a.cmp_order(&a), Ordering::Equal);
        prop_assert!(a.equivalent(&a));
    }

    #[test]
    fn order_is_antisymmetric(a in arb_value(), b in arb_value()) {
        prop_assert_eq!(a.cmp_order(&b), b.cmp_order(&a).reverse());
    }

    #[test]
    fn order_is_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        let mut v = [a, b, c];
        v.sort_by(|x, y| x.cmp_order(y));
        // After sorting, every adjacent pair must be ≤ — and so must the
        // outer pair (transitivity witnessed through the sort).
        prop_assert!(v[0].cmp_order(&v[1]) != Ordering::Greater);
        prop_assert!(v[1].cmp_order(&v[2]) != Ordering::Greater);
        prop_assert!(v[0].cmp_order(&v[2]) != Ordering::Greater);
    }

    #[test]
    fn equivalence_is_order_kernel(a in arb_value(), b in arb_value()) {
        prop_assert_eq!(a.equivalent(&b), a.cmp_order(&b) == Ordering::Equal);
    }

    #[test]
    fn hash_agrees_with_equivalence(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::Hasher;
        if a.equivalent(&b) {
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash_equivalent(&mut ha);
            b.hash_equivalent(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    #[test]
    fn equality_implies_equivalence(a in arb_value(), b in arb_value()) {
        // `a = b` true ⇒ a ≡ b (the converse fails for null and NaN).
        if a.equals(&b).is_true() {
            prop_assert!(a.equivalent(&b));
        }
    }

    #[test]
    fn equals_is_symmetric(a in arb_value(), b in arb_value()) {
        prop_assert_eq!(a.equals(&b), b.equals(&a));
    }

    #[test]
    fn null_sorts_last(a in arb_value()) {
        if !a.is_null() {
            prop_assert_eq!(a.cmp_order(&Value::Null), Ordering::Less);
        }
    }
}
