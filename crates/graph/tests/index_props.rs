//! Property-based testing of **incremental index maintenance**: random
//! interleavings of every mutating operation the store offers must (a)
//! never panic, (b) leave every index family answering exactly what a
//! brute-force scan of the live graph answers, and (c) agree with the
//! indexes of a graph rebuilt from scratch out of the mutated graph's
//! live contents — the recomputation obligation of incremental view
//! maintenance (cf. Berkholz et al., "Answering FO+MOD queries under
//! updates").

use cypher_graph::index::value_bucket;
use cypher_graph::{NodeId, PropertyGraph, Value};
use proptest::prelude::*;

const LABELS: [&str; 2] = ["P", "Q"];
const KEYS: [&str; 2] = ["k", "m"];
const VALUES: i64 = 5;

/// One encoded mutation: `(kind, a, value, c)` with the indices taken
/// modulo the live entity lists at application time.
type Op = (u8, usize, i64, usize);

fn apply(
    g: &mut PropertyGraph,
    nodes: &mut Vec<NodeId>,
    rels: &mut Vec<cypher_graph::RelId>,
    op: Op,
) {
    let (kind, a, v, c) = op;
    let pick = |list: &[NodeId], i: usize| list[i % list.len()];
    match kind {
        // Node creation, with label subsets and one or two indexed props.
        0 | 1 => {
            let mut labels: Vec<&str> = Vec::new();
            if a % 2 == 0 {
                labels.push(LABELS[0]);
            }
            if c % 2 == 0 {
                labels.push(LABELS[1]);
            }
            let n = if c % 3 == 0 {
                g.add_node(&labels, [("k", Value::int(v)), ("m", Value::int(v % 2))])
            } else {
                g.add_node(&labels, [("k", Value::int(v))])
            };
            nodes.push(n);
        }
        2 if !nodes.is_empty() => {
            let r = g
                .add_rel(pick(nodes, a), pick(nodes, c), "T", [])
                .expect("live endpoints");
            rels.push(r);
        }
        3 if !rels.is_empty() => {
            let r = rels.swap_remove(a % rels.len());
            g.delete_rel(r).expect("live rel");
        }
        4 if !nodes.is_empty() => {
            let n = nodes.swap_remove(a % nodes.len());
            g.detach_delete_node(n).expect("live node");
            rels.retain(|&r| g.contains_rel(r));
        }
        5 if !nodes.is_empty() => {
            let k = g.intern(KEYS[c % KEYS.len()]);
            g.set_node_prop(pick(nodes, a), k, Value::int(v)).unwrap();
        }
        // `SET n.k = null` removes the key (and its index entries).
        6 if !nodes.is_empty() => {
            let k = g.intern(KEYS[c % KEYS.len()]);
            g.set_node_prop(pick(nodes, a), k, Value::Null).unwrap();
        }
        7 if !nodes.is_empty() => {
            let k = g.intern(KEYS[c % KEYS.len()]);
            g.remove_node_prop(pick(nodes, a), k).unwrap();
        }
        8 if !nodes.is_empty() => {
            let l = g.intern(LABELS[c % LABELS.len()]);
            g.add_label(pick(nodes, a), l).unwrap();
        }
        9 if !nodes.is_empty() => {
            let l = g.intern(LABELS[c % LABELS.len()]);
            g.remove_label(pick(nodes, a), l).unwrap();
        }
        10 if !nodes.is_empty() => {
            let k = g.intern("k");
            g.replace_node_props(pick(nodes, a), vec![(k, Value::int(v))])
                .unwrap();
        }
        _ => {} // mutation on an empty graph: no-op
    }
}

/// Brute-force oracle: scan every live node instead of consulting any
/// index (the "rebuilt from scratch" answer for membership queries).
fn brute_label(g: &PropertyGraph, label: &str) -> Vec<NodeId> {
    match g.interner().get(label) {
        Some(l) => g.nodes().filter(|&n| g.has_label(n, l)).collect(),
        None => Vec::new(),
    }
}

fn brute_prop(g: &PropertyGraph, key: &str, v: &Value) -> Vec<NodeId> {
    match g.interner().get(key) {
        Some(k) => g
            .nodes()
            .filter(|&n| g.node_prop(n, k).map(|w| w.equivalent(v)).unwrap_or(false))
            .collect(),
        None => Vec::new(),
    }
}

fn brute_label_prop(g: &PropertyGraph, label: &str, key: &str, v: &Value) -> Vec<NodeId> {
    let with_label = brute_label(g, label);
    match g.interner().get(key) {
        Some(k) => with_label
            .into_iter()
            .filter(|&n| g.node_prop(n, k).map(|w| w.equivalent(v)).unwrap_or(false))
            .collect(),
        None => Vec::new(),
    }
}

/// Every index family must answer exactly like the brute-force scan.
fn assert_indexes_match_scan(g: &PropertyGraph, when: &str) {
    for label in LABELS {
        if let Some(l) = g.interner().get(label) {
            let mut indexed: Vec<NodeId> = g.nodes_with_label(l).to_vec();
            indexed.sort_unstable();
            assert_eq!(indexed, brute_label(g, label), "label {label} ({when})");
        }
        for key in KEYS {
            for v in 0..VALUES {
                let v = Value::int(v);
                if let (Some(l), Some(k)) = (g.interner().get(label), g.interner().get(key)) {
                    assert_eq!(
                        g.nodes_with_label_prop(l, k, &v),
                        brute_label_prop(g, label, key, &v),
                        "composite ({label}, {key}, {v}) ({when})"
                    );
                }
            }
        }
    }
    for key in KEYS {
        let Some(k) = g.interner().get(key) else {
            continue;
        };
        for v in 0..VALUES {
            let v = Value::int(v);
            assert_eq!(
                g.nodes_with_prop(k, &v),
                brute_prop(g, key, &v),
                "property ({key}, {v}) ({when})"
            );
        }
        // Cardinality statistics: entries = live nodes carrying the key,
        // distinct = distinct value buckets among them.
        let card = g.prop_index_cardinality(k);
        let holders: Vec<NodeId> = g.nodes().filter(|&n| g.node_prop(n, k).is_some()).collect();
        let mut buckets: Vec<u64> = holders
            .iter()
            .map(|&n| value_bucket(g.node_prop(n, k).unwrap()))
            .collect();
        buckets.sort_unstable();
        buckets.dedup();
        assert_eq!(card.entries, holders.len(), "entries of {key} ({when})");
        assert_eq!(card.distinct, buckets.len(), "distinct of {key} ({when})");
    }
}

/// Rebuilds a fresh graph from the live contents of `g` and checks that
/// its (from-scratch) indexes answer the same membership queries, modulo
/// the id renaming of the rebuild.
fn assert_matches_rebuild(g: &PropertyGraph) {
    let mut fresh = PropertyGraph::new();
    let mut map: std::collections::BTreeMap<NodeId, NodeId> = std::collections::BTreeMap::new();
    for n in g.nodes() {
        let labels: Vec<_> = g
            .labels(n)
            .iter()
            .map(|&l| fresh.intern(g.resolve(l)))
            .collect();
        let props: Vec<_> = g
            .node_props(n)
            .map(|(k, v)| (g.resolve(k).to_string(), v.clone()))
            .collect();
        let props = props
            .into_iter()
            .map(|(k, v)| (fresh.intern(&k), v))
            .collect();
        map.insert(n, fresh.add_node_syms(labels, props));
    }
    for label in LABELS {
        let old: Vec<NodeId> = brute_label(g, label).into_iter().map(|n| map[&n]).collect();
        let mut rebuilt = match fresh.interner().get(label) {
            Some(l) => fresh.nodes_with_label(l).to_vec(),
            None => Vec::new(),
        };
        rebuilt.sort_unstable();
        let mut old = old;
        old.sort_unstable();
        assert_eq!(rebuilt, old, "rebuilt label index for {label}");
        for key in KEYS {
            for v in 0..VALUES {
                let v = Value::int(v);
                let mut old: Vec<NodeId> = brute_label_prop(g, label, key, &v)
                    .into_iter()
                    .map(|n| map[&n])
                    .collect();
                old.sort_unstable();
                let rebuilt = match (fresh.interner().get(label), fresh.interner().get(key)) {
                    (Some(l), Some(k)) => fresh.nodes_with_label_prop(l, k, &v),
                    _ => Vec::new(),
                };
                assert_eq!(rebuilt, old, "rebuilt composite ({label}, {key}, {v})");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // Interleaved mutations + index-backed seeks: no panics, and after
    // *every* operation each index family equals a from-scratch scan; at
    // the end the incrementally-maintained indexes also agree with a
    // graph rebuilt from the live contents.
    #[test]
    fn interleaved_mutations_keep_indexes_exact(
        ops in proptest::collection::vec((0u8..11, 0usize..128, 0i64..VALUES, 0usize..128), 1..40)
    ) {
        let mut g = PropertyGraph::new();
        let mut nodes: Vec<NodeId> = Vec::new();
        let mut rels: Vec<cypher_graph::RelId> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            apply(&mut g, &mut nodes, &mut rels, *op);
            assert_indexes_match_scan(&g, &format!("after op {i} = {op:?}"));
        }
        assert_matches_rebuild(&g);
    }
}
