//! Sorted-adjacency kernel for worst-case-optimal multiway joins.
//!
//! The native adjacency lists of [`crate::PropertyGraph`] are kept in
//! *insertion* order — ideal for `Expand`, useless for intersection. This
//! module maintains a per-version cache of the same lists **sorted by
//! neighbour node id**, which turns "which nodes are adjacent to all of
//! `a`, `b`, …?" into a k-way merge over sorted sequences: the core step
//! of a leapfrog-style worst-case-optimal join whose work is bounded by
//! the AGM output bound rather than by intermediate-result sizes.
//!
//! Layout and invalidation:
//!
//! * Node slots are grouped into fixed-width **shards** of
//!   [`SHARD_SLOTS`] slots. Each shard stores its `out` and `inc`
//!   neighbour lists in one CSR block (`offsets` + flat `Neighbor` data),
//!   sorted by `(node, rel)` per slot, behind an `Arc`.
//! * The graph records a per-shard **epoch** bumped by every mutation
//!   that touches a node's adjacency (relationship add/delete at either
//!   endpoint). A rebuild reuses the `Arc` of every shard whose epoch is
//!   unchanged, so a point commit re-sorts only the shards it dirtied —
//!   the copy-on-write discipline of the versioned slot store carried
//!   over to the derived structure.
//! * Builds are lazy (first intersection query after a version publishes
//!   pays for them) and shard-parallel: dirty shards are claimed from an
//!   atomic counter by a scoped worker pool.
//!
//! The intersection primitives ([`gallop`], [`intersect_nodes`]) use
//! galloping (exponential-probe) search, so intersecting a small list
//! against a large one costs `O(small · log(large))` probes.

use crate::graph::NodeId;
use crate::graph::RelId;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Node slots per adjacency shard. A power of two, sized so a point
/// commit touching a handful of nodes dirties a handful of shards while
/// a 100k-node graph still builds with ~25 parallelizable units.
pub const SHARD_SLOTS: usize = 4096;

/// One sorted adjacency entry: the neighbour reached and the relationship
/// traversed. Ordered by `(node, rel)` so equal-node runs are contiguous
/// and deterministically ordered.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Neighbor {
    /// The neighbouring node (the relationship's other endpoint; for a
    /// self-loop, the node itself).
    pub node: NodeId,
    /// The relationship traversed to reach it.
    pub rel: RelId,
}

/// CSR block: `data[offsets[i]..offsets[i + 1]]` is slot `i`'s sorted
/// neighbour list.
#[derive(Debug, Default)]
struct Csr {
    offsets: Vec<usize>,
    data: Vec<Neighbor>,
}

impl Csr {
    fn slice(&self, local: usize) -> &[Neighbor] {
        match (self.offsets.get(local), self.offsets.get(local + 1)) {
            (Some(&lo), Some(&hi)) => &self.data[lo..hi],
            _ => &[],
        }
    }
}

/// One shard's sorted adjacency, frozen at a build: the epoch it was
/// built under (for reuse checks) and the out/in CSR blocks.
#[derive(Debug)]
pub struct AdjacencyShard {
    epoch: u64,
    out: Csr,
    inc: Csr,
}

/// The sorted-adjacency cache of one graph version: an `Arc`'d shard per
/// [`SHARD_SLOTS`] node slots. Obtained from
/// [`crate::PropertyGraph::sorted_adjacency`]; immutable once built.
#[derive(Debug)]
pub struct SortedAdjacency {
    version: u64,
    shards: Vec<Arc<AdjacencyShard>>,
}

impl SortedAdjacency {
    /// The graph version this cache was built against.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of shards (diagnostics).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Outgoing `(node, rel)` entries of `n`, sorted by `(node, rel)`.
    /// Nodes added after the build (necessarily without relationships,
    /// since adding one dirties the shard) resolve to the empty slice.
    pub fn out(&self, n: NodeId) -> &[Neighbor] {
        self.side(n, false)
    }

    /// Incoming `(node, rel)` entries of `n` (the neighbour is the
    /// relationship's source), sorted by `(node, rel)`.
    pub fn inc(&self, n: NodeId) -> &[Neighbor] {
        self.side(n, true)
    }

    fn side(&self, n: NodeId, incoming: bool) -> &[Neighbor] {
        let slot = n.0 as usize;
        match self.shards.get(slot / SHARD_SLOTS) {
            Some(shard) => {
                let csr = if incoming { &shard.inc } else { &shard.out };
                csr.slice(slot % SHARD_SLOTS)
            }
            None => &[],
        }
    }
}

/// Rebuilds the cache for `version`, reusing every shard of `prev` whose
/// epoch is unchanged. `per_slot` appends slot `i`'s raw out/in entries
/// (any order; the builder sorts). Shards are built by `threads` scoped
/// workers claiming dirty shards from an atomic counter.
pub(crate) fn rebuild<F>(
    version: u64,
    slot_count: usize,
    epochs: &[u64],
    prev: Option<&SortedAdjacency>,
    threads: usize,
    per_slot: &F,
) -> SortedAdjacency
where
    F: Fn(usize, &mut Vec<Neighbor>, &mut Vec<Neighbor>) + Sync,
{
    let n_shards = slot_count.div_ceil(SHARD_SLOTS);
    let epoch_of = |s: usize| epochs.get(s).copied().unwrap_or(0);
    // Partition into reusable and dirty shards. A trailing shard that
    // only grew by relationship-free nodes keeps its epoch and is safely
    // reused: lookups past its built extent fall back to empty slices.
    let mut shards: Vec<Option<Arc<AdjacencyShard>>> = (0..n_shards)
        .map(|s| {
            prev.and_then(|p| p.shards.get(s))
                .filter(|shard| shard.epoch == epoch_of(s))
                .cloned()
        })
        .collect();
    let dirty: Vec<usize> = (0..n_shards).filter(|&s| shards[s].is_none()).collect();

    let build_one = |s: usize| -> Arc<AdjacencyShard> {
        let base = s * SHARD_SLOTS;
        let slots = SHARD_SLOTS.min(slot_count - base);
        let mut out = Vec::new();
        let mut inc = Vec::new();
        let mut out_offsets = Vec::with_capacity(slots + 1);
        let mut inc_offsets = Vec::with_capacity(slots + 1);
        out_offsets.push(0);
        inc_offsets.push(0);
        for local in 0..slots {
            let o0 = out.len();
            let i0 = inc.len();
            per_slot(base + local, &mut out, &mut inc);
            out[o0..].sort_unstable();
            inc[i0..].sort_unstable();
            out_offsets.push(out.len());
            inc_offsets.push(inc.len());
        }
        Arc::new(AdjacencyShard {
            epoch: epoch_of(s),
            out: Csr {
                offsets: out_offsets,
                data: out,
            },
            inc: Csr {
                offsets: inc_offsets,
                data: inc,
            },
        })
    };

    let workers = threads.max(1).min(dirty.len());
    if workers <= 1 {
        for &s in &dirty {
            shards[s] = Some(build_one(s));
        }
    } else {
        let next = AtomicUsize::new(0);
        let built: Vec<_> = (0..dirty.len())
            .map(|_| std::sync::Mutex::new(None))
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&s) = dirty.get(i) else { break };
                    *built[i].lock().unwrap() = Some(build_one(s));
                });
            }
        });
        for (i, slot) in built.into_iter().enumerate() {
            shards[dirty[i]] = slot.into_inner().unwrap();
        }
    }

    SortedAdjacency {
        version,
        shards: shards
            .into_iter()
            .map(|s| s.expect("all shards built"))
            .collect(),
    }
}

/// Galloping (exponential-probe) lower bound: the first index `>= start`
/// whose entry's node id is `>= target`, or `list.len()`. Each comparison
/// increments `probes`, the kernel's work counter.
pub fn gallop(list: &[Neighbor], start: usize, target: NodeId, probes: &mut u64) -> usize {
    let n = list.len();
    if start >= n {
        return n;
    }
    *probes += 1;
    if list[start].node >= target {
        return start;
    }
    // Exponential probe to bracket the answer…
    let mut step = 1usize;
    let mut lo = start;
    loop {
        let hi = lo + step;
        if hi >= n {
            break;
        }
        *probes += 1;
        if list[hi].node >= target {
            // …then binary search inside (lo, hi].
            return lo + 1 + partition_point(&list[lo + 1..=hi], target, probes);
        }
        lo = hi;
        step <<= 1;
    }
    lo + 1 + partition_point(&list[lo + 1..], target, probes)
}

/// Binary-search partition point (`first entry with node >= target`),
/// counting comparisons.
fn partition_point(list: &[Neighbor], target: NodeId, probes: &mut u64) -> usize {
    let mut lo = 0usize;
    let mut hi = list.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        *probes += 1;
        if list[mid].node < target {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// K-way leapfrog intersection of the *node sets* of sorted neighbour
/// lists: appends each node id present in every list once to `out` (the
/// lists themselves may hold several relationships per node). Returns the
/// number of galloping probes performed.
pub fn intersect_nodes(lists: &[&[Neighbor]], out: &mut Vec<NodeId>) -> u64 {
    let mut probes = 0u64;
    if lists.is_empty() {
        return probes;
    }
    let mut pos = vec![0usize; lists.len()];
    'outer: loop {
        // The current frontier: the maximum of the lists' current nodes.
        let mut target = match lists[0].get(pos[0]) {
            Some(e) => e.node,
            None => break,
        };
        loop {
            let mut all_equal = true;
            for (i, list) in lists.iter().enumerate() {
                pos[i] = gallop(list, pos[i], target, &mut probes);
                match list.get(pos[i]) {
                    None => break 'outer,
                    Some(e) if e.node > target => {
                        target = e.node;
                        all_equal = false;
                    }
                    Some(_) => {}
                }
            }
            if all_equal {
                out.push(target);
                // Advance every list past the matched node.
                for (i, list) in lists.iter().enumerate() {
                    while list.get(pos[i]).is_some_and(|e| e.node == target) {
                        pos[i] += 1;
                    }
                }
                break;
            }
        }
    }
    probes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Direction, PropertyGraph};

    fn nb(node: u64, rel: u64) -> Neighbor {
        Neighbor {
            node: NodeId(node),
            rel: RelId(rel),
        }
    }

    #[test]
    fn gallop_finds_lower_bounds() {
        let list: Vec<Neighbor> = [1u64, 3, 3, 7, 9, 12, 40, 41, 42, 90]
            .iter()
            .enumerate()
            .map(|(i, &n)| nb(n, i as u64))
            .collect();
        let mut probes = 0;
        assert_eq!(gallop(&list, 0, NodeId(0), &mut probes), 0);
        assert_eq!(gallop(&list, 0, NodeId(3), &mut probes), 1);
        assert_eq!(gallop(&list, 2, NodeId(3), &mut probes), 2);
        assert_eq!(gallop(&list, 0, NodeId(8), &mut probes), 4);
        assert_eq!(gallop(&list, 0, NodeId(90), &mut probes), 9);
        assert_eq!(gallop(&list, 0, NodeId(91), &mut probes), 10);
        assert_eq!(gallop(&list, 10, NodeId(1), &mut probes), 10);
        assert!(probes > 0);
    }

    #[test]
    fn intersect_nodes_matches_naive() {
        let a: Vec<Neighbor> = (0..200).map(|i| nb(i * 2, i)).collect();
        let b: Vec<Neighbor> = (0..200).map(|i| nb(i * 3, 1000 + i)).collect();
        let c: Vec<Neighbor> = (0..500).map(|i| nb(i, 2000 + i)).collect();
        let mut out = Vec::new();
        intersect_nodes(&[&a, &b, &c], &mut out);
        // Common nodes: multiples of 6 within all three ranges (`a` tops
        // out at 398, `c` at 499).
        let expect: Vec<NodeId> = (0..=396).filter(|i| i % 6 == 0).map(NodeId).collect();
        assert_eq!(out, expect);
        // Duplicate node runs collapse to one entry.
        let d = vec![nb(6, 1), nb(6, 2), nb(12, 3)];
        let mut out = Vec::new();
        intersect_nodes(&[&d, &c], &mut out);
        assert_eq!(out, vec![NodeId(6), NodeId(12)]);
        // Empty list short-circuits.
        let mut out = Vec::new();
        intersect_nodes(&[&a, &[]], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn cache_is_sorted_and_matches_expand() {
        let mut g = PropertyGraph::new();
        let n: Vec<_> = (0..50).map(|_| g.add_node(&["N"], [])).collect();
        // A deliberately shuffled insertion order.
        for i in 0..50usize {
            let s = n[(i * 7) % 50];
            let t = n[(i * 13 + 3) % 50];
            g.add_rel(s, t, "E", []).unwrap();
        }
        let adj = g.sorted_adjacency();
        for &node in &n {
            let out = adj.out(node);
            assert!(out.windows(2).all(|w| w[0] <= w[1]), "sorted out list");
            let mut expect: Vec<(NodeId, RelId)> = g
                .expand(node, Direction::Outgoing)
                .into_iter()
                .map(|(r, m)| (m, r))
                .collect();
            expect.sort_unstable();
            let got: Vec<(NodeId, RelId)> = out.iter().map(|e| (e.node, e.rel)).collect();
            assert_eq!(got, expect);
            let inc = adj.inc(node);
            assert!(inc.windows(2).all(|w| w[0] <= w[1]), "sorted inc list");
            let mut expect: Vec<(NodeId, RelId)> = g
                .expand(node, Direction::Incoming)
                .into_iter()
                .map(|(r, m)| (m, r))
                .collect();
            expect.sort_unstable();
            let got: Vec<(NodeId, RelId)> = inc.iter().map(|e| (e.node, e.rel)).collect();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn cache_reuses_arc_and_invalidates_per_version() {
        let mut g = PropertyGraph::new();
        let a = g.add_node(&["N"], []);
        let b = g.add_node(&["N"], []);
        g.add_rel(a, b, "E", []).unwrap();
        let v1 = g.sorted_adjacency();
        let v1b = g.sorted_adjacency();
        assert!(Arc::ptr_eq(&v1, &v1b), "same version: cached Arc returned");
        // A non-adjacency mutation bumps the version but every shard
        // epoch is unchanged: the shards are physically reused.
        let k = g.intern("x");
        g.set_node_prop(a, k, crate::Value::int(1)).unwrap();
        let v2 = g.sorted_adjacency();
        assert!(!Arc::ptr_eq(&v1, &v2));
        assert!(
            Arc::ptr_eq(&v1.shards[0], &v2.shards[0]),
            "clean shard reused"
        );
        // An adjacency mutation dirties the shard and forces a rebuild.
        g.add_rel(b, a, "E", []).unwrap();
        let v3 = g.sorted_adjacency();
        assert!(
            !Arc::ptr_eq(&v2.shards[0], &v3.shards[0]),
            "dirty shard rebuilt"
        );
        assert_eq!(v3.inc(a).len(), 1);
    }

    #[test]
    fn clone_carries_cache_and_diverges_after() {
        let mut g = PropertyGraph::new();
        let a = g.add_node(&[], []);
        let b = g.add_node(&[], []);
        g.add_rel(a, b, "E", []).unwrap();
        let before = g.sorted_adjacency();
        let clone = g.clone();
        assert!(Arc::ptr_eq(&before, &clone.sorted_adjacency()));
        g.add_rel(b, a, "E", []).unwrap();
        assert_eq!(g.sorted_adjacency().out(b).len(), 1);
        assert!(clone.sorted_adjacency().out(b).is_empty(), "clone frozen");
    }

    #[test]
    fn self_loops_appear_in_both_sides() {
        let mut g = PropertyGraph::new();
        let a = g.add_node(&[], []);
        let r = g.add_rel(a, a, "E", []).unwrap();
        let adj = g.sorted_adjacency();
        assert_eq!(adj.out(a), &[nb(a.0, r.0)]);
        assert_eq!(adj.inc(a), &[nb(a.0, r.0)]);
    }

    #[test]
    fn deleted_rels_leave_the_cache() {
        let mut g = PropertyGraph::new();
        let a = g.add_node(&[], []);
        let b = g.add_node(&[], []);
        let r1 = g.add_rel(a, b, "E", []).unwrap();
        g.add_rel(a, b, "E", []).unwrap();
        let _ = g.sorted_adjacency();
        g.delete_rel(r1).unwrap();
        let adj = g.sorted_adjacency();
        assert_eq!(adj.out(a).len(), 1);
        assert_eq!(adj.inc(b).len(), 1);
    }
}
