//! # cypher-graph
//!
//! The property graph data model of *Cypher: An Evolving Query Language for
//! Property Graphs* (Francis et al., SIGMOD 2018), Section 4.1.
//!
//! A property graph is a tuple `G = ⟨N, R, src, tgt, ι, λ, τ⟩` where
//!
//! * `N` is a finite set of node identifiers,
//! * `R` is a finite set of relationship identifiers,
//! * `src, tgt : R → N` map each relationship to its endpoints,
//! * `ι : (N ∪ R) × K ⇀ V` is a finite partial property map,
//! * `λ : N → 2^L` assigns each node a finite set of labels,
//! * `τ : R → T` assigns each relationship a type.
//!
//! This crate provides:
//!
//! * [`Value`] — the inductively defined value set `V` (ids, base types,
//!   booleans, `null`, lists, maps, paths) plus the Cypher 10 temporal types,
//! * [`PropertyGraph`] — the graph itself, stored *natively*: every node
//!   record holds direct references to its incident relationships, so the
//!   `Expand` operator of the paper's Section 2 never goes through an index,
//! * [`Interner`] — token interning for property keys `K`, labels `L`,
//!   relationship types `T` and names `A`,
//! * [`Catalog`] — a registry of multiple named graphs (Cypher 10,
//!   Section 6 of the paper),
//! * [`Path`] — the path values `path(n₁, r₁, …, nₘ)` of Section 4.1,
//! * [`GraphView`] / [`VersionedGraph`] — multi-version concurrency: one
//!   writer prepares the next copy-on-write version while any number of
//!   readers execute against frozen, immutable published snapshots.

#![warn(missing_docs)]

pub mod adjacency;
pub mod catalog;
pub mod change;
pub mod fxhash;
pub mod graph;
pub mod index;
pub mod interner;
pub mod path;
mod slots;
pub mod temporal;
pub mod value;
pub mod version;

pub use adjacency::{gallop, intersect_nodes, Neighbor, SortedAdjacency};
pub use catalog::Catalog;
pub use change::{affected_nodes, Change, ChangeSink, SharedChangeBuffer};
pub use graph::{
    Direction, GraphError, GraphStats, NodeId, NodeState, PropertyGraph, RelId, RelState,
};
pub use index::{IndexCardinality, IndexSet};
pub use interner::{Interner, Symbol};
pub use path::Path;
pub use temporal::{Date, Duration, LocalDateTime, LocalTime, Temporal, ZonedDateTime};
pub use value::{Tri, Value};
pub use version::{GraphView, VersionedGraph, ViewRef, WriteTxn};
