//! Copy-on-write slot vectors — the versioned backing store of
//! [`crate::PropertyGraph`]'s node and relationship tables.
//!
//! A [`CowSlots`] is a dense, tombstoning `Vec<Option<T>>` chunked into
//! `Arc`-shared blocks. Cloning one is O(slots / CHUNK) atomic increments
//! — no entity data is copied — which is what makes cloning a whole
//! `PropertyGraph` cheap enough to run once per committed write batch
//! (the multi-version snapshot protocol of [`crate::version`]). Mutation
//! goes through [`Arc::make_mut`] at two levels:
//!
//! * first touch of a chunk after a clone copies that chunk's slot
//!   *pointers* (CHUNK `Arc` bumps, one allocation);
//! * first touch of an entity after a clone deep-copies that one entity.
//!
//! A graph that has never been cloned (the common single-owner case:
//! tests, benches, the recovery replayer) sees every `make_mut` find a
//! unique `Arc` and mutate in place — the copy in copy-on-write is paid
//! only while an older version is actually alive.

use std::sync::Arc;

/// Slots per chunk. A power of two so the index split is a shift/mask;
/// large enough that cloning a 100k-entity table is ~100 `Arc` bumps,
/// small enough that the first write into a shared chunk copies only
/// 1024 pointers.
const CHUNK: usize = 1024;

/// A chunked, `Arc`-shared, tombstoning slot vector. See the module docs.
#[derive(Debug)]
pub(crate) struct CowSlots<T> {
    chunks: Vec<Arc<Vec<Option<Arc<T>>>>>,
    /// Total slots, live and tombstoned (the next id to assign).
    len: usize,
}

impl<T> Default for CowSlots<T> {
    fn default() -> Self {
        CowSlots {
            chunks: Vec::new(),
            len: 0,
        }
    }
}

impl<T> Clone for CowSlots<T> {
    fn clone(&self) -> Self {
        CowSlots {
            chunks: self.chunks.clone(),
            len: self.len,
        }
    }
}

impl<T: Clone> CowSlots<T> {
    /// An empty store.
    #[allow(dead_code)]
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// A store of `n` empty (tombstoned) slots, for snapshot restore.
    pub(crate) fn with_slots(n: usize) -> Self {
        let full = n / CHUNK;
        let rest = n % CHUNK;
        let mut chunks = Vec::with_capacity(full + 1);
        for _ in 0..full {
            chunks.push(Arc::new(vec![None; CHUNK]));
        }
        if rest > 0 {
            chunks.push(Arc::new(vec![None; rest]));
        }
        CowSlots { chunks, len: n }
    }

    /// Total slots, live and tombstoned.
    pub(crate) fn slot_count(&self) -> usize {
        self.len
    }

    /// Shared access to a live slot.
    #[inline]
    pub(crate) fn get(&self, i: usize) -> Option<&T> {
        if i >= self.len {
            return None;
        }
        self.chunks[i / CHUNK][i % CHUNK].as_deref()
    }

    /// Exclusive access to a live slot, copying shared chunk/entity
    /// structure as needed.
    pub(crate) fn get_mut(&mut self, i: usize) -> Option<&mut T> {
        if i >= self.len {
            return None;
        }
        let chunk = Arc::make_mut(&mut self.chunks[i / CHUNK]);
        chunk[i % CHUNK].as_mut().map(Arc::make_mut)
    }

    /// Tombstones a slot, returning the entity that lived there.
    pub(crate) fn take(&mut self, i: usize) -> Option<T> {
        if i >= self.len {
            return None;
        }
        let chunk = Arc::make_mut(&mut self.chunks[i / CHUNK]);
        chunk[i % CHUNK]
            .take()
            .map(|a| Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()))
    }

    /// Appends a live slot, returning its index.
    pub(crate) fn push(&mut self, v: T) -> usize {
        let i = self.len;
        if i % CHUNK == 0 {
            let mut fresh = Vec::with_capacity(CHUNK);
            fresh.push(Some(Arc::new(v)));
            self.chunks.push(Arc::new(fresh));
        } else {
            let chunk = Arc::make_mut(self.chunks.last_mut().expect("non-empty"));
            chunk.push(Some(Arc::new(v)));
        }
        self.len = i + 1;
        i
    }

    /// Fills a pre-sized (tombstoned) slot, for snapshot restore.
    pub(crate) fn set(&mut self, i: usize, v: T) {
        assert!(i < self.len, "set past pre-sized slots");
        let chunk = Arc::make_mut(&mut self.chunks[i / CHUNK]);
        chunk[i % CHUNK] = Some(Arc::new(v));
    }

    /// Iterates over `(index, entity)` for every live slot, in id order.
    pub(crate) fn iter_live(&self) -> impl Iterator<Item = (usize, &T)> {
        self.chunks.iter().enumerate().flat_map(|(ci, chunk)| {
            chunk
                .iter()
                .enumerate()
                .filter_map(move |(si, slot)| slot.as_deref().map(|v| (ci * CHUNK + si, v)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_take_roundtrip() {
        let mut s: CowSlots<u32> = CowSlots::new();
        for i in 0..2500u32 {
            assert_eq!(s.push(i), i as usize);
        }
        assert_eq!(s.slot_count(), 2500);
        assert_eq!(s.get(1234), Some(&1234));
        assert_eq!(s.get(2500), None);
        assert_eq!(s.take(1234), Some(1234));
        assert_eq!(s.get(1234), None, "tombstoned");
        assert_eq!(s.take(1234), None, "double take");
        assert_eq!(s.push(9999), 2500, "ids never reused");
        let live: Vec<u32> = s.iter_live().map(|(_, &v)| v).collect();
        assert_eq!(live.len(), 2500);
    }

    #[test]
    fn clone_shares_until_written() {
        let mut a: CowSlots<u32> = CowSlots::new();
        for i in 0..3000u32 {
            a.push(i);
        }
        let b = a.clone();
        *a.get_mut(7).unwrap() = 700;
        a.take(2999);
        assert_eq!(b.get(7), Some(&7), "clone is a frozen snapshot");
        assert_eq!(b.get(2999), Some(&2999));
        assert_eq!(a.get(7), Some(&700));
        assert_eq!(a.get(2999), None);
        // Untouched chunks are still physically shared.
        assert!(Arc::ptr_eq(&a.chunks[1], &b.chunks[1]));
        assert!(!Arc::ptr_eq(&a.chunks[0], &b.chunks[0]));
    }

    #[test]
    fn with_slots_then_set_matches_push_shape() {
        let mut s: CowSlots<u32> = CowSlots::with_slots(1500);
        assert_eq!(s.slot_count(), 1500);
        assert!(s.iter_live().next().is_none());
        s.set(0, 10);
        s.set(1030, 20);
        let live: Vec<(usize, u32)> = s.iter_live().map(|(i, &v)| (i, v)).collect();
        assert_eq!(live, vec![(0, 10), (1030, 20)]);
    }
}
