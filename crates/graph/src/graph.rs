//! The property graph `G = ⟨N, R, src, tgt, ι, λ, τ⟩` of paper Section 4.1,
//! stored *natively*: each node record holds direct references to its
//! incident relationships, in both directions, so that the `Expand`
//! operator (paper Section 2, "Neo4j implementation") "never needs to read
//! any unnecessary data, or proceed via an indirection such as an index in
//! order to find related nodes".
//!
//! Mutation support (add/delete/set/remove) backs the update clauses of
//! Section 2 (`CREATE`, `DELETE`, `SET`, `MERGE`).

use crate::adjacency::{self, Neighbor, SortedAdjacency};
use crate::change::{Change, ChangeSink};
use crate::fxhash::FxHashMap;
use crate::index::{value_bucket, IndexCardinality, IndexSet};
use crate::interner::{Interner, Symbol};
use crate::slots::CowSlots;
use crate::value::Value;
use std::fmt;
use std::sync::{Arc, Mutex};

/// A node identifier — an element of the countably infinite set `N`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u64);

/// A relationship identifier — an element of the countably infinite set `R`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RelId(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Direction of traversal relative to a node, mirroring the three arrow
/// forms of relationship patterns (Figure 3): `->`, `<-` and undirected.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Direction {
    /// Follow relationships whose source is the current node.
    Outgoing,
    /// Follow relationships whose target is the current node.
    Incoming,
    /// Follow relationships in either orientation.
    Both,
}

impl Direction {
    /// The direction as seen from the other endpoint.
    pub fn reversed(self) -> Direction {
        match self {
            Direction::Outgoing => Direction::Incoming,
            Direction::Incoming => Direction::Outgoing,
            Direction::Both => Direction::Both,
        }
    }
}

/// Errors raised by graph mutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The node id does not denote a live node.
    NoSuchNode(NodeId),
    /// The relationship id does not denote a live relationship.
    NoSuchRel(RelId),
    /// Attempted to delete a node that still has relationships without
    /// `DETACH DELETE`.
    NodeHasRelationships(NodeId, usize),
    /// A [`PropertyGraph::restore`] input was internally inconsistent
    /// (out-of-order ids, dangling endpoints, slot counts too small).
    InvalidSnapshot(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NoSuchNode(n) => write!(f, "no such node: {n}"),
            GraphError::NoSuchRel(r) => write!(f, "no such relationship: {r}"),
            GraphError::NodeHasRelationships(n, k) => {
                write!(f, "cannot delete {n}: still has {k} relationship(s)")
            }
            GraphError::InvalidSnapshot(msg) => write!(f, "invalid snapshot: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A small sorted-by-insertion property map `ι(e, ·)`; property counts are
/// tiny in practice, so linear probing over a vector beats a hash table.
#[derive(Default, Debug, Clone, PartialEq)]
pub struct PropMap {
    entries: Vec<(Symbol, Value)>,
}

impl PropMap {
    /// Looks up a property.
    pub fn get(&self, k: Symbol) -> Option<&Value> {
        self.entries.iter().find(|(s, _)| *s == k).map(|(_, v)| v)
    }

    /// Sets a property, replacing any previous value. Setting `null`
    /// removes the key, per Cypher `SET n.k = null` semantics.
    pub fn set(&mut self, k: Symbol, v: Value) {
        if v.is_null() {
            self.remove(k);
            return;
        }
        match self.entries.iter_mut().find(|(s, _)| *s == k) {
            Some((_, slot)) => *slot = v,
            None => self.entries.push((k, v)),
        }
    }

    /// Removes a property, returning its value if present.
    pub fn remove(&mut self, k: Symbol) -> Option<Value> {
        let idx = self.entries.iter().position(|(s, _)| *s == k)?;
        Some(self.entries.swap_remove(idx).1)
    }

    /// Iterates over `(key, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Value)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no properties are set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes all properties.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[derive(Debug, Clone)]
struct NodeData {
    labels: Vec<Symbol>,
    props: PropMap,
    /// Relationships whose `src` is this node, in insertion order.
    out: Vec<RelId>,
    /// Relationships whose `tgt` is this node, in insertion order.
    inc: Vec<RelId>,
}

#[derive(Debug, Clone)]
struct RelData {
    src: NodeId,
    tgt: NodeId,
    rel_type: Symbol,
    props: PropMap,
}

/// Aggregate statistics used by the cost-based planner (paper Section 2
/// cites a selectivity cost model \[21\]).
#[derive(Debug, Clone, Default)]
pub struct GraphStats {
    /// Live node count.
    pub nodes: usize,
    /// Live relationship count.
    pub rels: usize,
    /// Node count per label.
    pub label_cardinality: FxHashMap<Symbol, usize>,
    /// Relationship count per type.
    pub type_cardinality: FxHashMap<Symbol, usize>,
    /// Entry/distinct-value counts per indexed property key, from which
    /// the planner derives equality-seek selectivities.
    pub prop_cardinality: FxHashMap<Symbol, IndexCardinality>,
}

/// The full state of one live node, as exported into snapshots: public
/// id, labels and properties named by **strings** (interner-independent).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeState {
    /// The node's id.
    pub id: NodeId,
    /// Its labels, sorted and deduplicated.
    pub labels: Vec<Arc<str>>,
    /// Its properties in property-map order.
    pub props: Vec<(Arc<str>, Value)>,
}

/// The full state of one live relationship, as exported into snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct RelState {
    /// The relationship's id.
    pub id: RelId,
    /// Source node.
    pub src: NodeId,
    /// Target node.
    pub tgt: NodeId,
    /// The relationship type.
    pub rel_type: Arc<str>,
    /// Its properties in property-map order.
    pub props: Vec<(Arc<str>, Value)>,
}

/// An in-memory property graph with native adjacency.
///
/// Node and relationship ids are dense indices; deletions leave tombstones
/// so that ids of live entities are stable (the formal model's identifiers
/// never change meaning).
///
/// All bulk structures — the node/relationship tables (`CowSlots`) and
/// the index posting lists — are `Arc`-shared copy-on-write, so cloning a
/// graph is cheap (O(chunks + index keys), no entity data copied) and the
/// clone is a frozen snapshot: this is the versioned-core primitive that
/// [`crate::version::VersionedGraph`] publishes one immutable
/// [`crate::version::GraphView`] per committed write batch from.
#[derive(Default)]
pub struct PropertyGraph {
    nodes: CowSlots<NodeData>,
    rels: CowSlots<RelData>,
    interner: Interner,
    /// Label, property and composite label/property indexes, maintained
    /// incrementally by every mutation below (see [`crate::index`]). They
    /// back the planner's `NodeIndexScan` and `PropertyIndexSeek`
    /// operators (the "indexing of node data" the paper's Section 5
    /// describes).
    indexes: IndexSet,
    type_counts: FxHashMap<Symbol, usize>,
    live_nodes: usize,
    live_rels: usize,
    /// The pluggable change-stream consumer (see [`crate::change`]).
    /// `None` (the default) makes every emission a no-op branch.
    sink: Option<Box<dyn ChangeSink>>,
    /// Monotonic mutation counter: bumped by every mutating entry point,
    /// so callers (the plan cache) can skip recomputing statistics
    /// fingerprints while the graph is provably unchanged.
    version: u64,
    /// Per-shard adjacency epochs (see [`crate::adjacency`]): bumped by
    /// every mutation that changes some node's incident-relationship
    /// lists, indexed by node slot / [`adjacency::SHARD_SLOTS`].
    adj_epochs: Vec<u64>,
    /// The lazily built sorted-adjacency cache for the current version
    /// (interior mutability: building it is not a graph mutation).
    adj_cache: Mutex<Option<Arc<adjacency::SortedAdjacency>>>,
}

/// Clones the graph **without** its change sink: a clone is a detached
/// in-memory copy (the differential-test oracle pattern), not a second
/// writer of the same durable store.
impl Clone for PropertyGraph {
    fn clone(&self) -> Self {
        PropertyGraph {
            nodes: self.nodes.clone(),
            rels: self.rels.clone(),
            interner: self.interner.clone(),
            indexes: self.indexes.clone(),
            type_counts: self.type_counts.clone(),
            live_nodes: self.live_nodes,
            live_rels: self.live_rels,
            sink: None,
            version: self.version,
            adj_epochs: self.adj_epochs.clone(),
            // The cache describes the same version/epochs, so the clone
            // may keep sharing it (an `Arc` bump, no data copied).
            adj_cache: Mutex::new(
                self.adj_cache
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .clone(),
            ),
        }
    }
}

/// `Debug` for the graph, omitting the (non-`Debug`) change sink.
impl fmt::Debug for PropertyGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PropertyGraph")
            .field("nodes", &self.nodes)
            .field("rels", &self.rels)
            .field("interner", &self.interner)
            .field("indexes", &self.indexes)
            .field("type_counts", &self.type_counts)
            .field("live_nodes", &self.live_nodes)
            .field("live_rels", &self.live_rels)
            .field("sink", &self.sink.as_ref().map(|_| "<ChangeSink>"))
            .field("adj_epochs", &self.adj_epochs)
            .finish()
    }
}

impl PropertyGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared access to the token interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Mutable access to the token interner (used when binding queries).
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// Interns a token string.
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.interner.intern(s)
    }

    /// Resolves a symbol to its text.
    pub fn resolve(&self, s: Symbol) -> &str {
        self.interner.resolve(s)
    }

    // -- change stream -------------------------------------------------------

    /// Installs a change sink; every subsequent successful mutation emits
    /// one [`Change`] record per primitive store operation. Replaces any
    /// previous sink.
    pub fn set_change_sink(&mut self, sink: Box<dyn ChangeSink>) {
        self.sink = Some(sink);
    }

    /// Removes and returns the installed change sink, if any.
    pub fn take_change_sink(&mut self) -> Option<Box<dyn ChangeSink>> {
        self.sink.take()
    }

    /// True when a change sink is installed (mutations are being recorded).
    pub fn has_change_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// Hands a record to the sink, if one is installed. Callers guard with
    /// [`PropertyGraph::has_change_sink`] before building the (allocating)
    /// record, so the unplugged path costs one branch.
    fn emit(&mut self, change: Change) {
        if let Some(sink) = self.sink.as_mut() {
            sink.record(change);
        }
    }

    /// A monotonic counter that moves whenever the graph (and therefore
    /// any statistic derived from it) may have changed. Cheap enough to
    /// poll per query; equal versions guarantee equal statistics.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Bumps [`PropertyGraph::version`]; called on entry to every
    /// mutating operation (a bump on a failed mutation is harmless — it
    /// only costs one fingerprint recomputation).
    fn touch(&mut self) {
        self.version += 1;
    }

    /// Marks `n`'s adjacency shard dirty for the sorted-adjacency cache.
    /// Called by every mutation that changes an incident-relationship
    /// list; pure node add/delete needs no bump (a node without
    /// relationships has empty adjacency either way).
    fn touch_adjacency(&mut self, n: NodeId) {
        let shard = n.0 as usize / adjacency::SHARD_SLOTS;
        if self.adj_epochs.len() <= shard {
            self.adj_epochs.resize(shard + 1, 0);
        }
        self.adj_epochs[shard] += 1;
    }

    /// The sorted-adjacency cache for the current version (see
    /// [`crate::adjacency`]): per-node neighbour lists sorted by
    /// `(node, rel)`, the substrate of multiway intersection joins.
    ///
    /// Built lazily on first request after a version change and cached;
    /// only shards whose epoch moved since the previous build are
    /// re-sorted (shard-parallel), so a point commit against a large
    /// graph rebuilds a handful of shards, not the world.
    pub fn sorted_adjacency(&self) -> Arc<SortedAdjacency> {
        let mut guard = self.adj_cache.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(cached) = guard.as_ref() {
            if cached.version() == self.version {
                return Arc::clone(cached);
            }
        }
        let slot_count = self.nodes.slot_count();
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8);
        let built = Arc::new(adjacency::rebuild(
            self.version,
            slot_count,
            &self.adj_epochs,
            guard.as_deref(),
            threads,
            &|slot, out, inc| {
                if let Some(d) = self.nodes.get(slot) {
                    for &r in &d.out {
                        out.push(Neighbor {
                            node: self.tgt(r).expect("live rel"),
                            rel: r,
                        });
                    }
                    for &r in &d.inc {
                        inc.push(Neighbor {
                            node: self.src(r).expect("live rel"),
                            rel: r,
                        });
                    }
                }
            },
        ));
        *guard = Some(Arc::clone(&built));
        built
    }

    /// Resolves a property map into `(string key, value)` pairs for a
    /// change record.
    fn resolved_props(&self, pm: &PropMap) -> Vec<(Arc<str>, Value)> {
        pm.iter()
            .map(|(k, v)| (self.interner.resolve_arc(k), v.clone()))
            .collect()
    }

    // -- construction --------------------------------------------------------

    /// Adds a node with string labels and properties. Convenience wrapper
    /// over [`PropertyGraph::add_node_syms`].
    pub fn add_node(
        &mut self,
        labels: &[&str],
        props: impl IntoIterator<Item = (&'static str, Value)>,
    ) -> NodeId {
        let label_syms: Vec<Symbol> = labels.iter().map(|l| self.interner.intern(l)).collect();
        let prop_syms: Vec<(Symbol, Value)> = props
            .into_iter()
            .map(|(k, v)| (self.interner.intern(k), v))
            .collect();
        self.add_node_syms(label_syms, prop_syms)
    }

    /// Adds a node with pre-interned labels and properties.
    pub fn add_node_syms(&mut self, labels: Vec<Symbol>, props: Vec<(Symbol, Value)>) -> NodeId {
        self.touch();
        let id = NodeId(self.nodes.slot_count() as u64);
        let mut pm = PropMap::default();
        for (k, v) in props {
            pm.set(k, v);
        }
        let mut labels = labels;
        labels.sort_unstable();
        labels.dedup();
        let indexed: Vec<(Symbol, u64)> = pm.iter().map(|(k, v)| (k, value_bucket(v))).collect();
        self.indexes.on_node_added(id, &labels, &indexed);
        if self.has_change_sink() {
            let change = Change::AddNode {
                id,
                labels: labels
                    .iter()
                    .map(|&l| self.interner.resolve_arc(l))
                    .collect(),
                props: self.resolved_props(&pm),
            };
            self.emit(change);
        }
        self.nodes.push(NodeData {
            labels,
            props: pm,
            out: Vec::new(),
            inc: Vec::new(),
        });
        self.live_nodes += 1;
        id
    }

    /// The node's current `(key, value bucket)` pairs, as the index hooks
    /// expect them.
    fn indexed_props(&self, n: NodeId) -> Vec<(Symbol, u64)> {
        self.node(n)
            .map(|d| d.props.iter().map(|(k, v)| (k, value_bucket(v))).collect())
            .unwrap_or_default()
    }

    /// Live nodes whose property `k` is equivalent to `v`, via the node
    /// property index (deterministic order).
    pub fn nodes_with_prop(&self, k: Symbol, v: &Value) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .indexes
            .prop_candidates(k, value_bucket(v))
            .iter()
            .copied()
            .filter(|&n| {
                self.node_prop(n, k)
                    .map(|w| w.equivalent(v))
                    .unwrap_or(false)
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Live nodes with label `l` whose property `k` is equivalent to `v`,
    /// via the composite label/property index (deterministic order). This
    /// is the storage-side half of the planner's `PropertyIndexSeek`.
    pub fn nodes_with_label_prop(&self, l: Symbol, k: Symbol, v: &Value) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .indexes
            .label_prop_candidates(l, k, value_bucket(v))
            .iter()
            .copied()
            .filter(|&n| {
                debug_assert!(self.has_label(n, l), "composite index label drift");
                self.node_prop(n, k)
                    .map(|w| w.equivalent(v))
                    .unwrap_or(false)
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Adds a relationship of the given type between two live nodes.
    pub fn add_rel(
        &mut self,
        src: NodeId,
        tgt: NodeId,
        rel_type: &str,
        props: impl IntoIterator<Item = (&'static str, Value)>,
    ) -> Result<RelId, GraphError> {
        let t = self.interner.intern(rel_type);
        let prop_syms: Vec<(Symbol, Value)> = props
            .into_iter()
            .map(|(k, v)| (self.interner.intern(k), v))
            .collect();
        self.add_rel_syms(src, tgt, t, prop_syms)
    }

    /// Adds a relationship with a pre-interned type.
    pub fn add_rel_syms(
        &mut self,
        src: NodeId,
        tgt: NodeId,
        rel_type: Symbol,
        props: Vec<(Symbol, Value)>,
    ) -> Result<RelId, GraphError> {
        self.touch();
        if !self.contains_node(src) {
            return Err(GraphError::NoSuchNode(src));
        }
        if !self.contains_node(tgt) {
            return Err(GraphError::NoSuchNode(tgt));
        }
        let id = RelId(self.rels.slot_count() as u64);
        let mut pm = PropMap::default();
        for (k, v) in props {
            pm.set(k, v);
        }
        if self.has_change_sink() {
            let change = Change::AddRel {
                id,
                src,
                tgt,
                rel_type: self.interner.resolve_arc(rel_type),
                props: self.resolved_props(&pm),
            };
            self.emit(change);
        }
        self.rels.push(RelData {
            src,
            tgt,
            rel_type,
            props: pm,
        });
        self.node_mut(src).unwrap().out.push(id);
        self.node_mut(tgt).unwrap().inc.push(id);
        self.touch_adjacency(src);
        self.touch_adjacency(tgt);
        *self.type_counts.entry(rel_type).or_insert(0) += 1;
        self.live_rels += 1;
        Ok(id)
    }

    // -- deletion ------------------------------------------------------------

    /// Deletes a relationship.
    pub fn delete_rel(&mut self, r: RelId) -> Result<(), GraphError> {
        self.touch();
        let data = self
            .rels
            .take(r.0 as usize)
            .ok_or(GraphError::NoSuchRel(r))?;
        if let Some(n) = self.node_mut(data.src) {
            n.out.retain(|&x| x != r);
        }
        if let Some(n) = self.node_mut(data.tgt) {
            n.inc.retain(|&x| x != r);
        }
        self.touch_adjacency(data.src);
        self.touch_adjacency(data.tgt);
        if let Some(c) = self.type_counts.get_mut(&data.rel_type) {
            *c = c.saturating_sub(1);
        }
        self.live_rels -= 1;
        self.emit(Change::DeleteRel { id: r });
        Ok(())
    }

    /// Deletes a node; fails if it still has incident relationships
    /// (plain `DELETE` semantics).
    pub fn delete_node(&mut self, n: NodeId) -> Result<(), GraphError> {
        self.touch();
        let deg = self.degree(n, Direction::Both);
        if deg > 0 {
            return Err(GraphError::NodeHasRelationships(n, deg));
        }
        self.remove_node_record(n)
    }

    /// Deletes a node together with all its relationships
    /// (`DETACH DELETE` semantics).
    pub fn detach_delete_node(&mut self, n: NodeId) -> Result<(), GraphError> {
        self.touch();
        if !self.contains_node(n) {
            return Err(GraphError::NoSuchNode(n));
        }
        let mut incident: Vec<RelId> = self.out_rels(n).to_vec();
        incident.extend_from_slice(self.in_rels(n));
        incident.sort_unstable();
        incident.dedup();
        for r in incident {
            self.delete_rel(r)?;
        }
        self.remove_node_record(n)
    }

    fn remove_node_record(&mut self, n: NodeId) -> Result<(), GraphError> {
        let data = self
            .nodes
            .take(n.0 as usize)
            .ok_or(GraphError::NoSuchNode(n))?;
        let indexed: Vec<(Symbol, u64)> = data
            .props
            .iter()
            .map(|(k, v)| (k, value_bucket(v)))
            .collect();
        self.indexes.on_node_removed(n, &data.labels, &indexed);
        self.live_nodes -= 1;
        self.emit(Change::DeleteNode { id: n });
        Ok(())
    }

    // -- accessors -----------------------------------------------------------

    fn node(&self, n: NodeId) -> Option<&NodeData> {
        self.nodes.get(n.0 as usize)
    }

    fn node_mut(&mut self, n: NodeId) -> Option<&mut NodeData> {
        self.nodes.get_mut(n.0 as usize)
    }

    fn rel(&self, r: RelId) -> Option<&RelData> {
        self.rels.get(r.0 as usize)
    }

    fn rel_mut(&mut self, r: RelId) -> Option<&mut RelData> {
        self.rels.get_mut(r.0 as usize)
    }

    /// True iff `n` is a live node of the graph.
    pub fn contains_node(&self, n: NodeId) -> bool {
        self.node(n).is_some()
    }

    /// True iff `r` is a live relationship.
    pub fn contains_rel(&self, r: RelId) -> bool {
        self.rel(r).is_some()
    }

    /// `λ(n)`: the labels of a node.
    pub fn labels(&self, n: NodeId) -> &[Symbol] {
        self.node(n).map(|d| d.labels.as_slice()).unwrap_or(&[])
    }

    /// True iff `ℓ ∈ λ(n)`.
    pub fn has_label(&self, n: NodeId, l: Symbol) -> bool {
        self.labels(n).contains(&l)
    }

    /// `τ(r)`: the type of a relationship.
    pub fn rel_type(&self, r: RelId) -> Option<Symbol> {
        self.rel(r).map(|d| d.rel_type)
    }

    /// `src(r)`.
    pub fn src(&self, r: RelId) -> Option<NodeId> {
        self.rel(r).map(|d| d.src)
    }

    /// `tgt(r)`.
    pub fn tgt(&self, r: RelId) -> Option<NodeId> {
        self.rel(r).map(|d| d.tgt)
    }

    /// Given a relationship and one endpoint, the other endpoint. For a
    /// self-loop returns the same node.
    pub fn other_end(&self, r: RelId, n: NodeId) -> Option<NodeId> {
        let d = self.rel(r)?;
        if d.src == n {
            Some(d.tgt)
        } else if d.tgt == n {
            Some(d.src)
        } else {
            None
        }
    }

    /// `ι(n, k)` for nodes.
    pub fn node_prop(&self, n: NodeId, k: Symbol) -> Option<&Value> {
        self.node(n).and_then(|d| d.props.get(k))
    }

    /// `ι(r, k)` for relationships.
    pub fn rel_prop(&self, r: RelId, k: Symbol) -> Option<&Value> {
        self.rel(r).and_then(|d| d.props.get(k))
    }

    /// Node property looked up by string key (convenience for tests).
    pub fn node_prop_by_name(&self, n: NodeId, k: &str) -> Option<&Value> {
        let sym = self.interner.get(k)?;
        self.node_prop(n, sym)
    }

    /// Relationship property looked up by string key.
    pub fn rel_prop_by_name(&self, r: RelId, k: &str) -> Option<&Value> {
        let sym = self.interner.get(k)?;
        self.rel_prop(r, sym)
    }

    /// Iterates over a node's properties.
    pub fn node_props(&self, n: NodeId) -> impl Iterator<Item = (Symbol, &Value)> {
        self.node(n).into_iter().flat_map(|d| d.props.iter())
    }

    /// Iterates over a relationship's properties.
    pub fn rel_props(&self, r: RelId) -> impl Iterator<Item = (Symbol, &Value)> {
        self.rel(r).into_iter().flat_map(|d| d.props.iter())
    }

    /// Outgoing relationships of a node (direct references, no index).
    pub fn out_rels(&self, n: NodeId) -> &[RelId] {
        self.node(n).map(|d| d.out.as_slice()).unwrap_or(&[])
    }

    /// Incoming relationships of a node.
    pub fn in_rels(&self, n: NodeId) -> &[RelId] {
        self.node(n).map(|d| d.inc.as_slice()).unwrap_or(&[])
    }

    /// All `(rel, neighbour)` pairs reachable from `n` in the given
    /// direction. A self-loop appears once for `Outgoing`/`Incoming` and
    /// twice for `Both` (once per orientation), matching the undirected
    /// pattern semantics in §4.2 item (e′).
    pub fn expand(&self, n: NodeId, dir: Direction) -> Vec<(RelId, NodeId)> {
        let mut v = Vec::new();
        match dir {
            Direction::Outgoing => {
                for &r in self.out_rels(n) {
                    v.push((r, self.tgt(r).unwrap()));
                }
            }
            Direction::Incoming => {
                for &r in self.in_rels(n) {
                    v.push((r, self.src(r).unwrap()));
                }
            }
            Direction::Both => {
                for &r in self.out_rels(n) {
                    v.push((r, self.tgt(r).unwrap()));
                }
                for &r in self.in_rels(n) {
                    // Skip self-loops here: already emitted from `out`.
                    let s = self.src(r).unwrap();
                    if s != n || self.tgt(r) != Some(n) {
                        v.push((r, s));
                    }
                }
            }
        }
        v
    }

    /// Degree in the given direction.
    pub fn degree(&self, n: NodeId, dir: Direction) -> usize {
        match dir {
            Direction::Outgoing => self.out_rels(n).len(),
            Direction::Incoming => self.in_rels(n).len(),
            Direction::Both => {
                let loops = self
                    .out_rels(n)
                    .iter()
                    .filter(|&&r| self.tgt(r) == Some(n))
                    .count();
                self.out_rels(n).len() + self.in_rels(n).len() - loops
            }
        }
    }

    /// Iterates over live node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter_live().map(|(i, _)| NodeId(i as u64))
    }

    /// Iterates over live relationship ids.
    pub fn rels(&self) -> impl Iterator<Item = RelId> + '_ {
        self.rels.iter_live().map(|(i, _)| RelId(i as u64))
    }

    /// Live nodes with the given label, via the label index.
    pub fn nodes_with_label(&self, l: Symbol) -> &[NodeId] {
        self.indexes.nodes_with_label(l)
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Number of live relationships.
    pub fn rel_count(&self) -> usize {
        self.live_rels
    }

    /// Number of live nodes with a given label.
    pub fn label_cardinality(&self, l: Symbol) -> usize {
        self.nodes_with_label(l).len()
    }

    /// Number of live relationships of a given type.
    pub fn type_cardinality(&self, t: Symbol) -> usize {
        self.type_counts.get(&t).copied().unwrap_or(0)
    }

    /// Cardinality statistics of the property index for key `k`
    /// (`entries` nodes spread over `distinct` values).
    pub fn prop_index_cardinality(&self, k: Symbol) -> IndexCardinality {
        self.indexes.prop_cardinality(k)
    }

    /// Cardinality statistics of the composite `(label, key)` index.
    pub fn label_prop_index_cardinality(&self, l: Symbol, k: Symbol) -> IndexCardinality {
        self.indexes.label_prop_cardinality(l, k)
    }

    /// Snapshot of planner statistics.
    pub fn stats(&self) -> GraphStats {
        GraphStats {
            nodes: self.live_nodes,
            rels: self.live_rels,
            label_cardinality: self.indexes.label_cardinalities().collect(),
            type_cardinality: self.type_counts.clone(),
            prop_cardinality: self.indexes.prop_cardinalities().collect(),
        }
    }

    // -- mutation of live entities -------------------------------------------

    /// `SET n.k = v` (removes the key when `v` is `null`).
    pub fn set_node_prop(&mut self, n: NodeId, k: Symbol, v: Value) -> Result<(), GraphError> {
        self.touch();
        let d = self.node(n).ok_or(GraphError::NoSuchNode(n))?;
        let labels = d.labels.clone();
        let old_bucket = d.props.get(k).map(value_bucket);
        if let Some(bucket) = old_bucket {
            self.indexes.on_prop_removed(n, &labels, k, bucket);
        }
        if !v.is_null() {
            self.indexes.on_prop_set(n, &labels, k, value_bucket(&v));
        }
        if self.has_change_sink() {
            let change = Change::SetNodeProp {
                id: n,
                key: self.interner.resolve_arc(k),
                value: v.clone(),
            };
            self.emit(change);
        }
        self.node_mut(n)
            .map(|d| d.props.set(k, v))
            .ok_or(GraphError::NoSuchNode(n))
    }

    /// `SET r.k = v` for relationships.
    pub fn set_rel_prop(&mut self, r: RelId, k: Symbol, v: Value) -> Result<(), GraphError> {
        self.touch();
        if !self.contains_rel(r) {
            return Err(GraphError::NoSuchRel(r));
        }
        if self.has_change_sink() {
            let change = Change::SetRelProp {
                id: r,
                key: self.interner.resolve_arc(k),
                value: v.clone(),
            };
            self.emit(change);
        }
        self.rel_mut(r)
            .map(|d| d.props.set(k, v))
            .ok_or(GraphError::NoSuchRel(r))
    }

    /// `REMOVE n.k`.
    pub fn remove_node_prop(&mut self, n: NodeId, k: Symbol) -> Result<(), GraphError> {
        self.touch();
        let d = self.node(n).ok_or(GraphError::NoSuchNode(n))?;
        let labels = d.labels.clone();
        let old_bucket = d.props.get(k).map(value_bucket);
        if let Some(bucket) = old_bucket {
            self.indexes.on_prop_removed(n, &labels, k, bucket);
        }
        if self.has_change_sink() {
            let change = Change::RemoveNodeProp {
                id: n,
                key: self.interner.resolve_arc(k),
            };
            self.emit(change);
        }
        self.node_mut(n)
            .map(|d| {
                d.props.remove(k);
            })
            .ok_or(GraphError::NoSuchNode(n))
    }

    /// Replaces all properties of a node (`SET n = {..}`).
    pub fn replace_node_props(
        &mut self,
        n: NodeId,
        props: Vec<(Symbol, Value)>,
    ) -> Result<(), GraphError> {
        self.touch();
        let labels = self
            .node(n)
            .ok_or(GraphError::NoSuchNode(n))?
            .labels
            .clone();
        for (k, bucket) in self.indexed_props(n) {
            self.indexes.on_prop_removed(n, &labels, k, bucket);
        }
        let d = self.node_mut(n).expect("checked above");
        d.props.clear();
        for (k, v) in props {
            d.props.set(k, v);
        }
        for (k, bucket) in self.indexed_props(n) {
            self.indexes.on_prop_set(n, &labels, k, bucket);
        }
        if self.has_change_sink() {
            // Emit the post-deduplication state, so replay is idempotent
            // with respect to duplicate keys in the input.
            let props = self
                .node(n)
                .map(|d| self.resolved_props(&d.props))
                .unwrap_or_default();
            self.emit(Change::ReplaceNodeProps { id: n, props });
        }
        Ok(())
    }

    /// `SET n:Label`.
    pub fn add_label(&mut self, n: NodeId, l: Symbol) -> Result<(), GraphError> {
        self.touch();
        let d = self.node_mut(n).ok_or(GraphError::NoSuchNode(n))?;
        if !d.labels.contains(&l) {
            d.labels.push(l);
            d.labels.sort_unstable();
            let indexed = self.indexed_props(n);
            self.indexes.on_label_added(n, l, &indexed);
            if self.has_change_sink() {
                let change = Change::AddLabel {
                    id: n,
                    label: self.interner.resolve_arc(l),
                };
                self.emit(change);
            }
        }
        Ok(())
    }

    /// `REMOVE n:Label`.
    pub fn remove_label(&mut self, n: NodeId, l: Symbol) -> Result<(), GraphError> {
        self.touch();
        let d = self.node_mut(n).ok_or(GraphError::NoSuchNode(n))?;
        if let Some(pos) = d.labels.iter().position(|&x| x == l) {
            d.labels.remove(pos);
            let indexed = self.indexed_props(n);
            self.indexes.on_label_removed(n, l, &indexed);
            if self.has_change_sink() {
                let change = Change::RemoveLabel {
                    id: n,
                    label: self.interner.resolve_arc(l),
                };
                self.emit(change);
            }
        }
        Ok(())
    }

    // -- durable-state export / restore --------------------------------------

    /// Total node slots, live and tombstoned: the next node id to be
    /// assigned. Snapshots record it so restored graphs keep assigning
    /// fresh ids (ids are never reused).
    pub fn node_slot_count(&self) -> usize {
        self.nodes.slot_count()
    }

    /// Total relationship slots, live and tombstoned.
    pub fn rel_slot_count(&self) -> usize {
        self.rels.slot_count()
    }

    /// Enters bulk index-maintenance mode: mutations buffer their index
    /// upkeep instead of applying it, leaving index lookups and planner
    /// statistics stale until [`PropertyGraph::finish_bulk_index_maintenance`].
    /// For mutation-only phases (WAL replay, snapshot restore) — never
    /// while queries can read this graph.
    pub fn begin_bulk_index_maintenance(&mut self) {
        self.indexes.begin_deferred();
    }

    /// Leaves bulk mode, applying the buffered index maintenance — fanned
    /// out across posting shards on up to `threads` scoped threads when
    /// the buffer is large. State-identical to incremental maintenance.
    pub fn finish_bulk_index_maintenance(&mut self, threads: usize) {
        self.indexes.finish_deferred(threads);
    }

    /// Exports every live node in id order, tokens resolved to strings.
    pub fn export_nodes(&self) -> Vec<NodeState> {
        self.nodes
            .iter_live()
            .map(|(i, d)| NodeState {
                id: NodeId(i as u64),
                labels: d
                    .labels
                    .iter()
                    .map(|&l| self.interner.resolve_arc(l))
                    .collect(),
                props: self.resolved_props(&d.props),
            })
            .collect()
    }

    /// Exports every live relationship in id order.
    pub fn export_rels(&self) -> Vec<RelState> {
        self.rels
            .iter_live()
            .map(|(i, d)| RelState {
                id: RelId(i as u64),
                src: d.src,
                tgt: d.tgt,
                rel_type: self.interner.resolve_arc(d.rel_type),
                props: self.resolved_props(&d.props),
            })
            .collect()
    }

    /// Reconstructs a graph from exported state, validating internal
    /// consistency (replay must be total — corrupt snapshots become a
    /// structured error, never a panic). Indexes are rebuilt from scratch;
    /// because posting lists are canonically sorted, the rebuilt index set
    /// is bit-identical to the incrementally-maintained one of the graph
    /// that produced the export.
    pub fn restore(
        node_slots: usize,
        rel_slots: usize,
        nodes: Vec<NodeState>,
        rels: Vec<RelState>,
    ) -> Result<PropertyGraph, GraphError> {
        Self::restore_with_threads(node_slots, rel_slots, nodes, rels, 1)
    }

    /// [`PropertyGraph::restore`] with an index-rebuild thread budget:
    /// with more than one thread the per-node index insertions are
    /// buffered and fanned out across posting shards at the end, which
    /// rebuilds the same bit-identical index set (deferred ops preserve
    /// per-unit order).
    pub fn restore_with_threads(
        node_slots: usize,
        rel_slots: usize,
        nodes: Vec<NodeState>,
        rels: Vec<RelState>,
        threads: usize,
    ) -> Result<PropertyGraph, GraphError> {
        let bad = |msg: String| GraphError::InvalidSnapshot(msg);
        let mut g = PropertyGraph::new();
        if threads > 1 {
            g.indexes.begin_deferred();
        }
        g.nodes = CowSlots::with_slots(node_slots);
        let mut last_node: Option<u64> = None;
        for ns in nodes {
            let idx = ns.id.0 as usize;
            if idx >= node_slots {
                return Err(bad(format!(
                    "node {} beyond slot count {node_slots}",
                    ns.id
                )));
            }
            if last_node.is_some_and(|p| ns.id.0 <= p) {
                return Err(bad(format!(
                    "node ids not strictly increasing at {}",
                    ns.id
                )));
            }
            last_node = Some(ns.id.0);
            let mut labels: Vec<Symbol> = ns.labels.iter().map(|l| g.interner.intern(l)).collect();
            labels.sort_unstable();
            labels.dedup();
            let mut pm = PropMap::default();
            for (k, v) in ns.props {
                pm.set(g.interner.intern(&k), v);
            }
            let indexed: Vec<(Symbol, u64)> =
                pm.iter().map(|(k, v)| (k, value_bucket(v))).collect();
            g.indexes.on_node_added(ns.id, &labels, &indexed);
            g.nodes.set(
                idx,
                NodeData {
                    labels,
                    props: pm,
                    out: Vec::new(),
                    inc: Vec::new(),
                },
            );
            g.live_nodes += 1;
        }
        // Relationship restore below never touches node indexes, so the
        // deferred buffer is complete here.
        g.finish_bulk_index_maintenance(threads);
        g.rels = CowSlots::with_slots(rel_slots);
        let mut last_rel: Option<u64> = None;
        for rs in rels {
            let idx = rs.id.0 as usize;
            if idx >= rel_slots {
                return Err(bad(format!("rel {} beyond slot count {rel_slots}", rs.id)));
            }
            if last_rel.is_some_and(|p| rs.id.0 <= p) {
                return Err(bad(format!("rel ids not strictly increasing at {}", rs.id)));
            }
            last_rel = Some(rs.id.0);
            if !g.contains_node(rs.src) {
                return Err(bad(format!("rel {} has dangling source {}", rs.id, rs.src)));
            }
            if !g.contains_node(rs.tgt) {
                return Err(bad(format!("rel {} has dangling target {}", rs.id, rs.tgt)));
            }
            let rel_type = g.interner.intern(&rs.rel_type);
            let mut pm = PropMap::default();
            for (k, v) in rs.props {
                pm.set(g.interner.intern(&k), v);
            }
            g.rels.set(
                idx,
                RelData {
                    src: rs.src,
                    tgt: rs.tgt,
                    rel_type,
                    props: pm,
                },
            );
            // Relationships are exported in id order, which is exactly the
            // order `add_rel` appended them to the adjacency lists (ids
            // are never reused and deletions preserve relative order), so
            // rebuilt out/in lists match the original lists verbatim.
            g.node_mut(rs.src).expect("validated above").out.push(rs.id);
            g.node_mut(rs.tgt).expect("validated above").inc.push(rs.id);
            *g.type_counts.entry(rel_type).or_insert(0) += 1;
            g.live_rels += 1;
        }
        Ok(g)
    }

    /// Renders the complete observable state — entities, adjacency, type
    /// counts and all three index families — in a canonical, interner- and
    /// hash-map-order-independent text form. Two graphs with equal dumps
    /// are indistinguishable to every query and every planner statistic;
    /// the crash-recovery differential suite compares dumps of recovered
    /// graphs against the in-memory oracle.
    pub fn canonical_dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(
            out,
            "slots nodes={} rels={} live nodes={} rels={}",
            self.nodes.slot_count(),
            self.rels.slot_count(),
            self.live_nodes,
            self.live_rels
        )
        .unwrap();
        for ns in self.export_nodes() {
            // Labels are stored sorted by interner *symbol* (assignment
            // order); sort the strings so the dump is genuinely
            // interner-independent — a graph rebuilt by replay interns
            // tokens in a different order than one that also interned
            // tokens for read-only queries.
            let mut labels = ns.labels;
            labels.sort();
            let mut props = ns.props;
            props.sort_by(|a, b| a.0.cmp(&b.0));
            writeln!(out, "node {} labels={labels:?} props={props:?}", ns.id).unwrap();
        }
        for rs in self.export_rels() {
            let mut props = rs.props;
            props.sort_by(|a, b| a.0.cmp(&b.0));
            writeln!(
                out,
                "rel {} {}->{} type={} props={props:?}",
                rs.id, rs.src, rs.tgt, rs.rel_type
            )
            .unwrap();
        }
        let mut types: Vec<(String, usize)> = self
            .type_counts
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(&t, &c)| (self.interner.resolve(t).to_string(), c))
            .collect();
        types.sort();
        writeln!(out, "type-counts {types:?}").unwrap();
        let resolve = |s: Symbol| self.interner.resolve(s).to_string();
        self.indexes.canonical_dump(&resolve, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (PropertyGraph, NodeId, NodeId, RelId) {
        let mut g = PropertyGraph::new();
        let a = g.add_node(&["Person"], [("name", Value::str("Ada"))]);
        let b = g.add_node(&["Person", "Admin"], [("name", Value::str("Bo"))]);
        let r = g
            .add_rel(a, b, "KNOWS", [("since", Value::int(1985))])
            .unwrap();
        (g, a, b, r)
    }

    #[test]
    fn build_and_read_back() {
        let (g, a, b, r) = sample();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.rel_count(), 1);
        assert_eq!(g.src(r), Some(a));
        assert_eq!(g.tgt(r), Some(b));
        assert_eq!(g.resolve(g.rel_type(r).unwrap()), "KNOWS");
        assert_eq!(g.node_prop_by_name(a, "name"), Some(&Value::str("Ada")));
        assert_eq!(g.rel_prop_by_name(r, "since"), Some(&Value::int(1985)));
        let person = g.interner().get("Person").unwrap();
        assert!(g.has_label(a, person));
        assert_eq!(g.nodes_with_label(person), &[a, b]);
    }

    #[test]
    fn adjacency_is_direct() {
        let (g, a, b, r) = sample();
        assert_eq!(g.out_rels(a), &[r]);
        assert_eq!(g.in_rels(b), &[r]);
        assert_eq!(g.expand(a, Direction::Outgoing), vec![(r, b)]);
        assert_eq!(g.expand(b, Direction::Incoming), vec![(r, a)]);
        assert_eq!(g.expand(a, Direction::Both), vec![(r, b)]);
        assert_eq!(g.degree(a, Direction::Both), 1);
        assert_eq!(g.degree(a, Direction::Incoming), 0);
    }

    #[test]
    fn self_loop_counted_once_in_both() {
        let mut g = PropertyGraph::new();
        let n = g.add_node(&[], []);
        let r = g.add_rel(n, n, "SELF", []).unwrap();
        assert_eq!(g.degree(n, Direction::Both), 1);
        // Both-direction expand yields the loop once.
        assert_eq!(g.expand(n, Direction::Both), vec![(r, n)]);
        assert_eq!(g.other_end(r, n), Some(n));
    }

    #[test]
    fn delete_rel_updates_adjacency_and_counts() {
        let (mut g, a, b, r) = sample();
        g.delete_rel(r).unwrap();
        assert_eq!(g.rel_count(), 0);
        assert!(g.out_rels(a).is_empty());
        assert!(g.in_rels(b).is_empty());
        let t = g.interner().get("KNOWS").unwrap();
        assert_eq!(g.type_cardinality(t), 0);
        assert!(g.delete_rel(r).is_err());
    }

    #[test]
    fn delete_node_refuses_when_connected() {
        let (mut g, a, _, _) = sample();
        assert!(matches!(
            g.delete_node(a),
            Err(GraphError::NodeHasRelationships(_, 1))
        ));
        g.detach_delete_node(a).unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.rel_count(), 0);
        let person = g.interner().get("Person").unwrap();
        assert_eq!(g.nodes_with_label(person).len(), 1);
    }

    #[test]
    fn tombstones_keep_ids_stable() {
        let (mut g, a, b, _) = sample();
        g.detach_delete_node(a).unwrap();
        let c = g.add_node(&["Person"], []);
        assert_ne!(c, a, "ids are never reused");
        assert!(g.contains_node(b));
        assert!(!g.contains_node(a));
        let live: Vec<NodeId> = g.nodes().collect();
        assert_eq!(live, vec![b, c]);
    }

    #[test]
    fn set_and_remove_props() {
        let (mut g, a, _, r) = sample();
        let k = g.intern("age");
        g.set_node_prop(a, k, Value::int(36)).unwrap();
        assert_eq!(g.node_prop(a, k), Some(&Value::int(36)));
        g.set_node_prop(a, k, Value::Null).unwrap(); // null removes
        assert_eq!(g.node_prop(a, k), None);
        let w = g.intern("weight");
        g.set_rel_prop(r, w, Value::float(0.5)).unwrap();
        assert_eq!(g.rel_prop(r, w), Some(&Value::float(0.5)));
    }

    #[test]
    fn labels_add_remove_update_index() {
        let (mut g, a, _, _) = sample();
        let l = g.intern("Admin");
        assert!(!g.has_label(a, l));
        g.add_label(a, l).unwrap();
        assert!(g.has_label(a, l));
        assert_eq!(g.label_cardinality(l), 2);
        g.remove_label(a, l).unwrap();
        assert!(!g.has_label(a, l));
        assert_eq!(g.label_cardinality(l), 1);
    }

    #[test]
    fn stats_reflect_graph() {
        let (g, _, _, _) = sample();
        let stats = g.stats();
        assert_eq!(stats.nodes, 2);
        assert_eq!(stats.rels, 1);
        let person = g.interner().get("Person").unwrap();
        assert_eq!(stats.label_cardinality[&person], 2);
    }

    #[test]
    fn add_rel_to_missing_node_fails() {
        let mut g = PropertyGraph::new();
        let a = g.add_node(&[], []);
        assert!(g.add_rel(a, NodeId(99), "X", []).is_err());
    }

    #[test]
    fn property_index_tracks_mutations() {
        let mut g = PropertyGraph::new();
        let a = g.add_node(
            &["P"],
            [("name", Value::str("Ada")), ("age", Value::int(3))],
        );
        let b = g.add_node(&["P"], [("name", Value::str("Bo"))]);
        let name = g.interner().get("name").unwrap();
        assert_eq!(g.nodes_with_prop(name, &Value::str("Ada")), vec![a]);
        assert_eq!(g.nodes_with_prop(name, &Value::str("Bo")), vec![b]);
        assert!(g.nodes_with_prop(name, &Value::str("Cy")).is_empty());

        // Update re-indexes.
        g.set_node_prop(a, name, Value::str("Ada2")).unwrap();
        assert!(g.nodes_with_prop(name, &Value::str("Ada")).is_empty());
        assert_eq!(g.nodes_with_prop(name, &Value::str("Ada2")), vec![a]);

        // Setting null removes from the index.
        g.set_node_prop(b, name, Value::Null).unwrap();
        assert!(g.nodes_with_prop(name, &Value::str("Bo")).is_empty());

        // Replace rebuilds.
        let age = g.interner().get("age").unwrap();
        g.replace_node_props(a, vec![(age, Value::int(9))]).unwrap();
        assert!(g.nodes_with_prop(name, &Value::str("Ada2")).is_empty());
        assert_eq!(g.nodes_with_prop(age, &Value::int(9)), vec![a]);

        // Numeric equivalence: 9 and 9.0 share an index entry.
        assert_eq!(g.nodes_with_prop(age, &Value::float(9.0)), vec![a]);

        // Deleting the node cleans the index.
        g.detach_delete_node(a).unwrap();
        assert!(g.nodes_with_prop(age, &Value::int(9)).is_empty());
    }

    #[test]
    fn composite_index_follows_label_and_prop_churn() {
        let mut g = PropertyGraph::new();
        let a = g.add_node(&["P"], [("k", Value::int(1))]);
        let b = g.add_node(&["P", "Q"], [("k", Value::int(1))]);
        let _c = g.add_node(&["P"], [("k", Value::int(2))]);
        let p = g.interner().get("P").unwrap();
        let q = g.interner().get("Q").unwrap();
        let k = g.interner().get("k").unwrap();

        assert_eq!(g.nodes_with_label_prop(p, k, &Value::int(1)), vec![a, b]);
        assert_eq!(g.nodes_with_label_prop(q, k, &Value::int(1)), vec![b]);
        // Numeric equivalence reaches the same bucket.
        assert_eq!(
            g.nodes_with_label_prop(p, k, &Value::float(1.0)),
            vec![a, b]
        );

        // Adding a label back-fills the composite entries for existing
        // properties.
        g.add_label(a, q).unwrap();
        assert_eq!(g.nodes_with_label_prop(q, k, &Value::int(1)), vec![a, b]);
        // Removing it drops them again.
        g.remove_label(a, q).unwrap();
        assert_eq!(g.nodes_with_label_prop(q, k, &Value::int(1)), vec![b]);

        // SET rewrites relocate the entry to the new value's bucket.
        g.set_node_prop(a, k, Value::int(2)).unwrap();
        assert_eq!(g.nodes_with_label_prop(p, k, &Value::int(1)), vec![b]);
        assert!(g.nodes_with_label_prop(p, k, &Value::int(2)).contains(&a));

        // Statistics reflect the index contents.
        let c = g.prop_index_cardinality(k);
        assert_eq!(c.entries, 3);
        assert_eq!(c.distinct, 2);
        let pc = g.label_prop_index_cardinality(p, k);
        assert_eq!(pc.entries, 3);

        // Deletion cleans the composite index.
        g.detach_delete_node(b).unwrap();
        assert!(g.nodes_with_label_prop(q, k, &Value::int(1)).is_empty());
    }

    #[test]
    fn labels_deduplicated() {
        let mut g = PropertyGraph::new();
        let n = g.add_node(&["A", "A"], []);
        assert_eq!(g.labels(n).len(), 1);
    }
}
