//! Multi-version concurrency control for [`PropertyGraph`]: a single
//! writer prepares the next copy-on-write version while any number of
//! readers execute against frozen, immutable published snapshots.
//!
//! ## The protocol
//!
//! * Every committed write batch publishes one [`GraphView`] — an
//!   `Arc`-shared, never-again-mutated [`PropertyGraph`] tagged with the
//!   **transaction id** of the batch that produced it (for durable
//!   databases this is the WAL batch sequence number, so the in-memory
//!   version history and the on-disk log speak the same ids).
//! * [`VersionedGraph::begin_write`] hands the (sole) writer a private
//!   copy-on-write clone of the latest version. Cloning is cheap —
//!   `Arc`-shared chunks and posting lists, no entity data copied (see
//!   `crate::slots`) — and the clone is invisible to readers until
//!   [`WriteTxn::commit`] publishes it. A query batch is therefore
//!   **atomic to readers**: they observe either none of its mutations or
//!   all of them, never a torn mid-batch state.
//! * [`VersionedGraph::latest`] admits a reader to the current version
//!   without any `RwLock` — admission is a few atomic operations on a
//!   slot ring (below), so an in-flight writer never blocks readers and
//!   readers never block the writer.
//!
//! ## Reader admission and epoch-based retirement
//!
//! Published versions live in a fixed ring of `SLOTS` epoch slots.
//! Publishing advances a `current` cursor to the next slot, then
//! **eagerly retires** the superseded slot: once its reader pins drain
//! (the nanosecond-scale admission window), its `Arc` is dropped, so
//! the store itself pins only the latest version. Retirement never
//! frees memory out from under a reader: a [`GraphView`] is itself a
//! strong `Arc`, so each version's memory is reclaimed exactly when the
//! last view of it drops — readers pin precisely what they hold, for as
//! long as they hold it.
//!
//! Admission is the classic Dekker handshake: a reader increments the
//! slot's `readers` count **then** re-checks that the slot is still
//! current; the writer makes a slot non-current **then** waits for its
//! `readers` count to drain before rewriting it. With sequentially
//! consistent ordering on those four operations, either the reader sees
//! the cursor moved (and retries on the new slot) or the writer sees the
//! reader's pin (and spins the nanoseconds until the clone completes).

use crate::graph::PropertyGraph;
use std::cell::UnsafeCell;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Size of the epoch slot ring. Slots exist for the admission
/// handshake, not for history — superseded versions are retired eagerly
/// — but a roomy ring means a reader parked inside the ~4-instruction
/// admission window stalls a publisher only after the cursor laps it.
const SLOTS: usize = 64;

/// An immutable snapshot of the graph at one committed version.
///
/// A `GraphView` is a strong handle: the underlying graph memory stays
/// alive for as long as any view of that version exists, no matter how
/// many newer versions have been published since. Cloning is one `Arc`
/// bump. Derefs to [`PropertyGraph`], so the entire read API is
/// available directly on the view.
#[derive(Clone, Debug)]
pub struct GraphView {
    graph: Arc<PropertyGraph>,
    version: u64,
}

impl GraphView {
    /// Wraps an already-frozen graph as a view at `version`.
    pub fn new(graph: Arc<PropertyGraph>, version: u64) -> GraphView {
        GraphView { graph, version }
    }

    /// The transaction id of the commit that published this view (0 for
    /// the initial version of a fresh graph).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The frozen graph.
    pub fn graph(&self) -> &PropertyGraph {
        &self.graph
    }

    /// The shared ownership handle of the frozen graph.
    pub fn graph_arc(&self) -> &Arc<PropertyGraph> {
        &self.graph
    }
}

impl Deref for GraphView {
    type Target = PropertyGraph;

    fn deref(&self) -> &PropertyGraph {
        &self.graph
    }
}

/// A borrowed handle to the graph a read executes against: either a
/// pinned multi-version snapshot (carrying its version/transaction id)
/// or a plain borrow (the single-owner helpers, version unknown).
///
/// This is the parameter type of the engine's entire read path; both
/// `&PropertyGraph` and `&GraphView` convert into it, so versioned
/// sessions and borrow-based tests share one signature.
#[derive(Clone, Copy, Debug)]
pub struct ViewRef<'a> {
    graph: &'a PropertyGraph,
    version: Option<u64>,
}

impl<'a> ViewRef<'a> {
    /// The graph being read.
    pub fn graph(self) -> &'a PropertyGraph {
        self.graph
    }

    /// The pinned version, when this handle came from a [`GraphView`].
    pub fn version(self) -> Option<u64> {
        self.version
    }
}

impl<'a> From<&'a PropertyGraph> for ViewRef<'a> {
    fn from(graph: &'a PropertyGraph) -> ViewRef<'a> {
        ViewRef {
            graph,
            version: None,
        }
    }
}

impl<'a> From<&'a mut PropertyGraph> for ViewRef<'a> {
    fn from(graph: &'a mut PropertyGraph) -> ViewRef<'a> {
        ViewRef {
            graph,
            version: None,
        }
    }
}

impl<'a> From<&'a GraphView> for ViewRef<'a> {
    fn from(view: &'a GraphView) -> ViewRef<'a> {
        ViewRef {
            graph: view.graph(),
            version: Some(view.version()),
        }
    }
}

/// Waits for a slot's reader pins to drain. The window being waited on
/// is ~4 instructions, so pins drain in nanoseconds — except when a
/// reader is *preempted* inside it: after a short spin burst, yield the
/// core so an oversubscribed scheduler can run that reader instead of
/// letting the writer burn its quantum spinning (it holds the writer
/// token, so every queued write would stall behind the spin).
fn drain_pins(readers: &AtomicUsize) {
    let mut spins = 0u32;
    while readers.load(Ordering::SeqCst) != 0 {
        spins += 1;
        if spins > 64 {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

/// One epoch slot of the publication ring.
struct Slot {
    /// Readers currently inside the admission window for this slot.
    readers: AtomicUsize,
    /// The published view. Written only by the single writer, and only
    /// while the slot is not current and `readers == 0`; read only by
    /// readers that have pinned the slot and re-verified it is current.
    view: UnsafeCell<Option<GraphView>>,
}

// Safety: access to `view` follows the admission/publication handshake
// documented on the module — the writer has exclusive access when it
// writes (slot non-current, readers drained), and readers only read
// while their pin prevents exactly that rewrite. `GraphView` itself is
// `Send + Sync` (it is an `Arc` of a frozen graph).
unsafe impl Sync for Slot {}

/// The multi-version store: a publication ring plus the writer token.
///
/// ```
/// use cypher_graph::{PropertyGraph, Value, VersionedGraph};
///
/// let mut g = PropertyGraph::new();
/// g.add_node(&["Seed"], []);
/// let vg = VersionedGraph::new(g, 0);
///
/// let before = vg.latest(); // frozen at version 0
/// let mut txn = vg.begin_write();
/// txn.graph_mut().add_node(&["New"], [("v", Value::int(1))]);
/// assert_eq!(before.node_count(), 1, "uncommitted writes are invisible");
/// let after = txn.commit();
/// assert_eq!(after.version(), 1);
/// assert_eq!(before.node_count(), 1, "old views are frozen forever");
/// assert_eq!(vg.latest().node_count(), 2);
/// ```
pub struct VersionedGraph {
    slots: Vec<Slot>,
    /// Index of the slot holding the latest published version.
    current: AtomicUsize,
    /// Version of the latest published view (monotonic; readable without
    /// admission for cheap staleness checks).
    version: AtomicU64,
    /// The single-writer token; holds nothing, exists to be locked.
    writer: Mutex<()>,
}

impl std::fmt::Debug for VersionedGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VersionedGraph")
            .field("version", &self.version.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl VersionedGraph {
    /// Publishes `graph` (typically fresh or just recovered) as the
    /// initial version with the given transaction id.
    pub fn new(mut graph: PropertyGraph, initial_version: u64) -> VersionedGraph {
        // Published versions never mutate, so they must not hold a change
        // sink (and clones drop it anyway); strip defensively.
        let _ = graph.take_change_sink();
        let mut slots = Vec::with_capacity(SLOTS);
        for _ in 0..SLOTS {
            slots.push(Slot {
                readers: AtomicUsize::new(0),
                view: UnsafeCell::new(None),
            });
        }
        let vg = VersionedGraph {
            slots,
            current: AtomicUsize::new(0),
            version: AtomicU64::new(initial_version),
            writer: Mutex::new(()),
        };
        // No readers can exist yet; plain initialization of slot 0.
        unsafe {
            *vg.slots[0].view.get() = Some(GraphView::new(Arc::new(graph), initial_version));
        }
        vg
    }

    /// The version of the latest published view. Cheaper than
    /// [`VersionedGraph::latest`] when only the id is needed.
    pub fn latest_version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Admits a reader to the latest published version. Lock-free: a few
    /// atomic operations, never blocked by an in-flight write transaction
    /// (the writer touches the ring only for the pointer-swap instant of
    /// a publish). The returned view is frozen for its whole lifetime.
    pub fn latest(&self) -> GraphView {
        loop {
            let idx = self.current.load(Ordering::SeqCst);
            let slot = &self.slots[idx];
            // Pin first, then re-check: the Dekker handshake with the
            // publisher (see module docs).
            slot.readers.fetch_add(1, Ordering::SeqCst);
            if self.current.load(Ordering::SeqCst) == idx {
                // Safety: our pin plus the re-check guarantee the writer
                // is not rewriting this slot (it drains `readers` after
                // making a slot non-current, and this slot is current).
                let view = unsafe { (*slot.view.get()).clone() };
                slot.readers.fetch_sub(1, Ordering::SeqCst);
                return view.expect("current slot always holds a published view");
            }
            // A publish recycled the cursor under us; retry on the new
            // current slot.
            slot.readers.fetch_sub(1, Ordering::SeqCst);
            std::hint::spin_loop();
        }
    }

    /// Starts the (single) write transaction: takes the writer token and
    /// hands back a private copy-on-write clone of the latest version.
    /// Readers continue to be admitted to published versions throughout.
    pub fn begin_write(&self) -> WriteTxn<'_> {
        let guard = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let base = self.latest();
        let graph = base.graph().clone();
        WriteTxn {
            store: self,
            _token: guard,
            graph,
            base_version: base.version(),
        }
    }

    /// Publishes an externally prepared frozen graph as `version`,
    /// taking the writer token internally. The group-commit pipeline
    /// uses this instead of [`WriteTxn`]: transactions there execute
    /// serialized by the commit queue's own apply lock, and their
    /// pre-built `Arc` snapshots are published in seal order — possibly
    /// from a different thread (the pipelined fsync scheduler) than the
    /// one that executed them. `graph` must not carry a change sink, and
    /// `version` must be strictly newer than the latest published one.
    pub fn publish_view(&self, graph: Arc<PropertyGraph>, version: u64) -> GraphView {
        let _token = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        assert!(
            version > self.version.load(Ordering::Relaxed),
            "versions are monotonic: {} !> {}",
            version,
            self.version.load(Ordering::Relaxed)
        );
        debug_assert!(!graph.has_change_sink(), "published graphs are frozen");
        let view = GraphView::new(graph, version);
        self.publish(view.clone());
        view
    }

    /// Publishes `view` as the new latest version. Caller must hold the
    /// writer token and pass a strictly newer version id.
    fn publish(&self, view: GraphView) {
        debug_assert!(view.version() > self.version.load(Ordering::Relaxed));
        let cur = self.current.load(Ordering::Relaxed);
        let next = (cur + 1) % SLOTS;
        let slot = &self.slots[next];
        // Drain stragglers still inside the admission window of the
        // epoch this slot last served.
        drain_pins(&slot.readers);
        // Safety: slot is not current and has no pinned readers; the
        // writer token makes us the only publisher.
        unsafe {
            *slot.view.get() = Some(view.clone());
        }
        self.current.store(next, Ordering::SeqCst);
        // The advisory version counter is stored *after* the cursor so
        // it lags rather than leads: once `latest_version()` reports N,
        // `latest()` is guaranteed to serve at least N (the reverse
        // order would let a reader see version() == N yet pin N-1).
        self.version.store(view.version(), Ordering::Release);
        // Eagerly retire the superseded version: readers keep whatever
        // they hold alive through their own `GraphView` Arcs, so the
        // ring itself need not pin back-versions — without this, the
        // store would keep the last SLOTS versions (and all the COW'd
        // structure between them) alive even with zero readers. The
        // drain is the same nanosecond-scale admission-window wait as
        // above: stragglers admitted to `cur` before the cursor moved
        // finish their Arc clone and unpin.
        let old = &self.slots[cur];
        drain_pins(&old.readers);
        // Safety: `cur` is no longer current (readers now retry onto
        // `next`) and its pins are drained; we hold the writer token.
        unsafe {
            *old.view.get() = None;
        }
    }
}

/// The writer's private, not-yet-published next version.
///
/// Holds the writer token for its lifetime, serializing writers; readers
/// are unaffected. Dropping the transaction without calling
/// [`WriteTxn::commit`] aborts it — the clone is discarded and nothing
/// was ever visible.
pub struct WriteTxn<'a> {
    store: &'a VersionedGraph,
    _token: MutexGuard<'a, ()>,
    graph: PropertyGraph,
    base_version: u64,
}

impl WriteTxn<'_> {
    /// The version this transaction is based on (what the writer sees
    /// before its own mutations).
    pub fn base_version(&self) -> u64 {
        self.base_version
    }

    /// Read access to the transaction's private graph (own writes
    /// visible).
    pub fn graph(&self) -> &PropertyGraph {
        &self.graph
    }

    /// Mutable access to the transaction's private graph.
    pub fn graph_mut(&mut self) -> &mut PropertyGraph {
        &mut self.graph
    }

    /// Commits at the next version id (`base + 1`).
    pub fn commit(self) -> GraphView {
        let v = self.base_version + 1;
        self.commit_as(v)
    }

    /// Commits, publishing the transaction's graph as `version` (strictly
    /// greater than the base). Durable callers pass the WAL batch
    /// sequence number here *after* the batch is sealed on disk —
    /// "WAL-seal, then version-publish" — so a version is visible to
    /// readers only once it is recoverable.
    pub fn commit_as(mut self, version: u64) -> GraphView {
        assert!(
            version > self.base_version,
            "versions are monotonic: {} !> {}",
            version,
            self.base_version
        );
        // Published graphs are frozen; they must not drag a change sink
        // (and the buffer it feeds) along.
        let _ = self.graph.take_change_sink();
        let view = GraphView::new(Arc::new(self.graph), version);
        self.store.publish(view.clone());
        view
    }

    /// Discards the transaction; equivalent to dropping it.
    pub fn abort(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn handles_are_send_sync() {
        assert_send_sync::<GraphView>();
        assert_send_sync::<VersionedGraph>();
        assert_send_sync::<PropertyGraph>();
    }

    #[test]
    fn snapshot_isolation_batch_atomicity() {
        let mut g = PropertyGraph::new();
        let seed = g.add_node(&["Seed"], [("v", Value::int(0))]);
        let vg = VersionedGraph::new(g, 7);
        let v7 = vg.latest();
        assert_eq!(v7.version(), 7);

        let mut txn = vg.begin_write();
        let a = txn.graph_mut().add_node(&["A"], []);
        txn.graph_mut().add_rel(seed, a, "X", []).unwrap();
        // Mid-batch state is invisible: latest() still serves version 7.
        assert_eq!(vg.latest().version(), 7);
        assert_eq!(vg.latest().node_count(), 1);
        let v8 = txn.commit();
        assert_eq!(v8.version(), 8);
        assert_eq!(v8.node_count(), 2);
        assert_eq!(v8.rel_count(), 1);
        // The old view is frozen forever.
        assert_eq!(v7.node_count(), 1);
        assert_eq!(v7.rel_count(), 0);
        assert_eq!(vg.latest_version(), 8);
    }

    #[test]
    fn abort_discards_everything() {
        let mut g = PropertyGraph::new();
        g.add_node(&["Seed"], []);
        let vg = VersionedGraph::new(g, 0);
        let mut txn = vg.begin_write();
        txn.graph_mut().add_node(&["Gone"], []);
        txn.abort();
        assert_eq!(vg.latest_version(), 0);
        assert_eq!(vg.latest().node_count(), 1);
    }

    #[test]
    fn old_views_survive_ring_retirement() {
        let mut g = PropertyGraph::new();
        g.add_node(&["Seed"], []);
        let vg = VersionedGraph::new(g, 0);
        let pinned = vg.latest();
        // Cycle the ring several times over: slots are recycled and
        // superseded versions eagerly retired, but the pinned view
        // stays valid throughout.
        for i in 0..(SLOTS * 3) {
            let mut txn = vg.begin_write();
            txn.graph_mut()
                .add_node(&["N"], [("i", Value::int(i as i64))]);
            txn.commit();
        }
        assert_eq!(pinned.version(), 0);
        assert_eq!(pinned.node_count(), 1);
        assert_eq!(vg.latest().node_count(), 1 + SLOTS * 3);
        assert_eq!(vg.latest_version(), (SLOTS * 3) as u64);
        // Eager retirement: the store dropped its reference to version 0
        // at the very next publish — this pin is the only thing keeping
        // it alive.
        assert_eq!(Arc::strong_count(pinned.graph_arc()), 1);
    }

    #[test]
    fn concurrent_readers_see_only_committed_versions() {
        // A writer streams commits while readers hammer latest(); every
        // admitted view must be internally consistent: version v ⇔
        // exactly 1 + v nodes (each commit adds one node).
        let mut g = PropertyGraph::new();
        g.add_node(&["Seed"], []);
        let vg = std::sync::Arc::new(VersionedGraph::new(g, 0));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let vg = std::sync::Arc::clone(&vg);
                let stop = std::sync::Arc::clone(&stop);
                s.spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let view = vg.latest();
                        assert_eq!(
                            view.node_count() as u64,
                            1 + view.version(),
                            "torn or mismatched snapshot"
                        );
                        assert!(view.version() >= last, "versions went backwards");
                        last = view.version();
                    }
                });
            }
            for i in 0..200 {
                let mut txn = vg.begin_write();
                txn.graph_mut()
                    .add_node(&["N"], [("i", Value::int(i as i64))]);
                txn.commit();
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(vg.latest_version(), 200);
    }
}
