//! A registry of multiple named property graphs — the substrate for the
//! Cypher 10 multiple-graphs feature (paper Section 6): "named graph
//! references, which represent externally located graphs, graphs created by
//! the query, or graphs created by a previous query in a composition of
//! queries".
//!
//! Graphs are shared under a [`parking_lot::RwLock`] so that a composed
//! query chain can read several source graphs while constructing a new
//! target graph.

use crate::graph::PropertyGraph;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A shared, lockable graph reference (a "graph reference" in Cypher 10
/// terms).
pub type GraphRef = Arc<RwLock<PropertyGraph>>;

/// A catalog of named graphs.
///
/// Iteration order is deterministic (name order) so that query results that
/// enumerate graphs are reproducible.
#[derive(Default, Clone)]
pub struct Catalog {
    graphs: BTreeMap<String, GraphRef>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a graph under `name`, returning its
    /// reference.
    pub fn register(&mut self, name: impl Into<String>, g: PropertyGraph) -> GraphRef {
        let r: GraphRef = Arc::new(RwLock::new(g));
        self.graphs.insert(name.into(), r.clone());
        r
    }

    /// Registers an already-shared graph reference under `name`.
    pub fn register_ref(&mut self, name: impl Into<String>, g: GraphRef) {
        self.graphs.insert(name.into(), g);
    }

    /// Looks up a graph by name.
    pub fn get(&self, name: &str) -> Option<GraphRef> {
        self.graphs.get(name).cloned()
    }

    /// Removes a graph, returning it if present.
    pub fn remove(&mut self, name: &str) -> Option<GraphRef> {
        self.graphs.remove(name)
    }

    /// True iff a graph with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.graphs.contains_key(name)
    }

    /// The registered names, in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.graphs.keys().map(String::as_str)
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True when no graphs are registered.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn register_and_get() {
        let mut cat = Catalog::new();
        let mut g = PropertyGraph::new();
        g.add_node(&["City"], [("name", Value::str("Houston"))]);
        cat.register("soc_net", g);
        assert!(cat.contains("soc_net"));
        assert!(!cat.contains("other"));
        let r = cat.get("soc_net").unwrap();
        assert_eq!(r.read().node_count(), 1);
    }

    #[test]
    fn shared_reference_sees_writes() {
        let mut cat = Catalog::new();
        cat.register("g", PropertyGraph::new());
        let r1 = cat.get("g").unwrap();
        let r2 = cat.get("g").unwrap();
        r1.write().add_node(&[], []);
        assert_eq!(r2.read().node_count(), 1);
    }

    #[test]
    fn names_sorted() {
        let mut cat = Catalog::new();
        cat.register("zeta", PropertyGraph::new());
        cat.register("alpha", PropertyGraph::new());
        let names: Vec<_> = cat.names().collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        assert_eq!(cat.len(), 2);
    }

    #[test]
    fn remove_graph() {
        let mut cat = Catalog::new();
        cat.register("g", PropertyGraph::new());
        assert!(cat.remove("g").is_some());
        assert!(cat.is_empty());
        assert!(cat.remove("g").is_none());
    }
}
