//! Logical change records — the mutation stream of the property graph.
//!
//! Every mutator of [`crate::PropertyGraph`] describes the mutation it
//! performed as a [`Change`] and hands it to the graph's pluggable
//! [`ChangeSink`] (when one is installed). The stream is *logical*: records
//! name entities by their public ids and tokens by their **strings**, never
//! by interner symbols, so a stream is self-describing — replaying it into
//! an empty graph (re-interning every token) reproduces the exact same
//! graph, indexes included. This is the property the durable storage engine
//! (`cypher-storage`) builds on: the write-ahead log is precisely this
//! stream, framed and checksummed on disk.
//!
//! Records are emitted *after* the mutation succeeds, in mutation order;
//! failed mutations emit nothing. Compound mutators decompose: `DETACH
//! DELETE` emits one [`Change::DeleteRel`] per incident relationship
//! followed by a [`Change::DeleteNode`], so every record maps to exactly
//! one primitive store operation and replay never needs compound logic.

use crate::graph::{NodeId, RelId};
use crate::value::Value;
use std::sync::Arc;

/// One logical mutation of a [`crate::PropertyGraph`], named by public ids
/// and token strings (interner-independent).
#[derive(Debug, Clone, PartialEq)]
pub enum Change {
    /// A node was created. `id` is always the next unused node id — ids
    /// are dense and never reused, so replay can verify it.
    AddNode {
        /// The id assigned to the new node.
        id: NodeId,
        /// Its labels, sorted and deduplicated.
        labels: Vec<Arc<str>>,
        /// Its properties after key deduplication and `null` removal.
        props: Vec<(Arc<str>, Value)>,
    },
    /// A relationship was created between two live nodes.
    AddRel {
        /// The id assigned to the new relationship.
        id: RelId,
        /// Source node.
        src: NodeId,
        /// Target node.
        tgt: NodeId,
        /// The relationship type.
        rel_type: Arc<str>,
        /// Its properties after key deduplication and `null` removal.
        props: Vec<(Arc<str>, Value)>,
    },
    /// A node with no incident relationships was deleted.
    DeleteNode {
        /// The deleted node.
        id: NodeId,
    },
    /// A relationship was deleted.
    DeleteRel {
        /// The deleted relationship.
        id: RelId,
    },
    /// `SET n.key = value` (a `null` value removes the key).
    SetNodeProp {
        /// The node.
        id: NodeId,
        /// The property key.
        key: Arc<str>,
        /// The new value (`null` removes).
        value: Value,
    },
    /// `SET r.key = value` for relationships.
    SetRelProp {
        /// The relationship.
        id: RelId,
        /// The property key.
        key: Arc<str>,
        /// The new value (`null` removes).
        value: Value,
    },
    /// `REMOVE n.key`.
    RemoveNodeProp {
        /// The node.
        id: NodeId,
        /// The removed key.
        key: Arc<str>,
    },
    /// `SET n = {…}`: all properties replaced at once.
    ReplaceNodeProps {
        /// The node.
        id: NodeId,
        /// The complete new property set.
        props: Vec<(Arc<str>, Value)>,
    },
    /// `SET n:Label` (emitted only when the label was actually added).
    AddLabel {
        /// The node.
        id: NodeId,
        /// The added label.
        label: Arc<str>,
    },
    /// `REMOVE n:Label` (emitted only when the label was actually removed).
    RemoveLabel {
        /// The node.
        id: NodeId,
        /// The removed label.
        label: Arc<str>,
    },
}

/// The node ids a change batch *touches*, for delta-anchored incremental
/// view maintenance: every row of a (single-path, fully-named) pattern
/// match that differs between the pre- and post-batch graphs binds at
/// least one of these nodes, because every change either alters a node
/// directly or alters a relationship — whose two endpoints the pattern
/// necessarily binds alongside it.
///
/// Relationship-level records that only name a [`RelId`]
/// ([`Change::DeleteRel`], [`Change::SetRelProp`]) resolve their endpoints
/// in `old`, the **pre-batch** graph. A record whose relationship is
/// absent from `old` was added earlier in the *same* batch, and its
/// [`Change::AddRel`] already contributed both endpoints — so the skip
/// loses nothing.
///
/// The result is sorted and deduplicated. Node ids may name nodes that no
/// longer exist post-batch (deletions) or never existed pre-batch
/// (additions); callers anchor into whichever graph they re-evaluate
/// against and must tolerate both.
pub fn affected_nodes(changes: &[Change], old: &crate::PropertyGraph) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = Vec::new();
    let rel_endpoints = |r: RelId, nodes: &mut Vec<NodeId>| {
        if let (Some(s), Some(t)) = (old.src(r), old.tgt(r)) {
            nodes.push(s);
            nodes.push(t);
        }
    };
    for c in changes {
        match c {
            Change::AddNode { id, .. }
            | Change::DeleteNode { id }
            | Change::SetNodeProp { id, .. }
            | Change::RemoveNodeProp { id, .. }
            | Change::ReplaceNodeProps { id, .. }
            | Change::AddLabel { id, .. }
            | Change::RemoveLabel { id, .. } => nodes.push(*id),
            Change::AddRel { src, tgt, .. } => {
                nodes.push(*src);
                nodes.push(*tgt);
            }
            Change::DeleteRel { id } | Change::SetRelProp { id, .. } => {
                rel_endpoints(*id, &mut nodes);
            }
        }
    }
    nodes.sort_unstable();
    nodes.dedup();
    nodes
}

/// A pluggable consumer of the graph's change stream.
///
/// Installed into a [`crate::PropertyGraph`] with
/// [`crate::PropertyGraph::set_change_sink`]; every successful mutation
/// calls [`ChangeSink::record`] exactly once per primitive change, in
/// mutation order. Sinks must be `Send + Sync` because the graph itself is
/// shared across the parallel executor's worker threads (readers never
/// touch the sink — only `&mut` mutators do).
pub trait ChangeSink: Send + Sync {
    /// Consumes one change record.
    fn record(&mut self, change: Change);
}

/// A [`ChangeSink`] that appends into a buffer shared with its creator:
/// the graph owns the sink, the caller keeps a clone and drains the
/// buffered records after each unit of work (the `Database` facade drains
/// once per query to form an atomic WAL batch).
#[derive(Clone, Debug, Default)]
pub struct SharedChangeBuffer {
    inner: Arc<parking_lot::RwLock<Vec<Change>>>,
}

impl SharedChangeBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes every buffered record, leaving the buffer empty.
    pub fn drain(&self) -> Vec<Change> {
        std::mem::take(&mut *self.inner.write())
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

impl ChangeSink for SharedChangeBuffer {
    fn record(&mut self, change: Change) {
        self.inner.write().push(change);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_buffer_drains() {
        let buf = SharedChangeBuffer::new();
        let mut sink = buf.clone();
        sink.record(Change::DeleteRel { id: RelId(3) });
        sink.record(Change::DeleteNode { id: NodeId(1) });
        assert_eq!(buf.len(), 2);
        let drained = buf.drain();
        assert_eq!(drained.len(), 2);
        assert!(buf.is_empty());
        assert_eq!(drained[0], Change::DeleteRel { id: RelId(3) });
    }
}
