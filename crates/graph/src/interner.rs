//! String interning for the token sets of the paper's data model:
//! property keys `K`, node labels `L`, relationship types `T` and names `A`.
//!
//! All four sets are countably infinite in the formalization; the interner
//! realizes the finite fragment actually used by a graph or a query, mapping
//! each distinct string to a dense [`Symbol`] so that label/type/key
//! comparisons inside the matcher are integer comparisons.

use crate::fxhash::FxHashMap;
use std::fmt;
use std::sync::Arc;

/// An interned string. Cheap to copy and compare; resolves back to the
/// original text through the [`Interner`] that produced it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The raw index of this symbol in its interner.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A bidirectional string ↔ [`Symbol`] table.
///
/// A single interner is shared by a [`crate::PropertyGraph`] for its keys,
/// labels and types; queries intern their tokens into the same table when
/// they are bound to a graph, so matching never compares strings.
#[derive(Default, Debug, Clone)]
pub struct Interner {
    map: FxHashMap<Arc<str>, Symbol>,
    strings: Vec<Arc<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its symbol. Idempotent: interning the same
    /// string twice yields the same symbol.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let arc: Arc<str> = Arc::from(s);
        let sym = Symbol(self.strings.len() as u32);
        self.strings.push(arc.clone());
        self.map.insert(arc, sym);
        sym
    }

    /// Looks up a string without interning it. Returns `None` if the string
    /// has never been interned.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if the symbol did not come from this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Resolves a symbol to a shared `Arc<str>` without copying.
    pub fn resolve_arc(&self, sym: Symbol) -> Arc<str> {
        self.strings[sym.index()].clone()
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over all `(Symbol, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("Person");
        let b = i.intern("Person");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("KNOWS");
        let b = i.intern("LIKES");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "KNOWS");
        assert_eq!(i.resolve(b), "LIKES");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("x").is_none());
        let s = i.intern("x");
        assert_eq!(i.get("x"), Some(s));
    }

    #[test]
    fn iter_in_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let all: Vec<_> = i.iter().map(|(_, s)| s.to_string()).collect();
        assert_eq!(all, vec!["a", "b"]);
    }

    #[test]
    fn case_sensitive() {
        let mut i = Interner::new();
        assert_ne!(i.intern("knows"), i.intern("KNOWS"));
    }
}
