//! Path values (paper Section 4.1): `path(n)` and
//! `path(n₁, r₁, n₂, …, n_{m−1}, r_{m−1}, n_m)`, with the concatenation
//! operator `·` which is defined only when the first path ends where the
//! second starts.

use crate::graph::{NodeId, RelId};
use std::fmt;

/// An alternating node/relationship sequence, always starting and ending at
/// a node. The representation (`start` plus `(rel, node)` steps) makes the
/// alternation invariant unrepresentable to violate.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Path {
    start: NodeId,
    steps: Vec<(RelId, NodeId)>,
}

impl Path {
    /// The zero-length path `path(n)`.
    pub fn single(n: NodeId) -> Path {
        Path {
            start: n,
            steps: Vec::new(),
        }
    }

    /// Builds a path from a start node and steps.
    pub fn new(start: NodeId, steps: Vec<(RelId, NodeId)>) -> Path {
        Path { start, steps }
    }

    /// The first node.
    pub fn start(&self) -> NodeId {
        self.start
    }

    /// The last node.
    pub fn end(&self) -> NodeId {
        self.steps.last().map(|&(_, n)| n).unwrap_or(self.start)
    }

    /// Number of relationships in the path (its length).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True for the zero-length path.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// All nodes, in order (length + 1 entries).
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut v = Vec::with_capacity(self.steps.len() + 1);
        v.push(self.start);
        v.extend(self.steps.iter().map(|&(_, n)| n));
        v
    }

    /// All relationships, in order.
    pub fn rels(&self) -> Vec<RelId> {
        self.steps.iter().map(|&(r, _)| r).collect()
    }

    /// The `(rel, node)` steps.
    pub fn steps(&self) -> &[(RelId, NodeId)] {
        &self.steps
    }

    /// True iff `r` occurs in the path. Used to enforce the relationship-
    /// isomorphism precondition of Section 4.2 ("all relationships in p are
    /// distinct").
    pub fn contains_rel(&self, r: RelId) -> bool {
        self.steps.iter().any(|&(s, _)| s == r)
    }

    /// True iff `n` occurs in the path (for node-isomorphism matching).
    pub fn contains_node(&self, n: NodeId) -> bool {
        self.start == n || self.steps.iter().any(|&(_, m)| m == n)
    }

    /// True iff all relationships in the path are pairwise distinct.
    pub fn rels_distinct(&self) -> bool {
        let mut seen: Vec<RelId> = Vec::with_capacity(self.steps.len());
        for &(r, _) in &self.steps {
            if seen.contains(&r) {
                return false;
            }
            seen.push(r);
        }
        true
    }

    /// Appends a step in place.
    pub fn push(&mut self, r: RelId, n: NodeId) {
        self.steps.push((r, n));
    }

    /// Path concatenation `p₁ · p₂` (paper §4.1). Returns `None` when
    /// `p₁` does not end where `p₂` starts, in which case the operation is
    /// undefined.
    pub fn concat(&self, other: &Path) -> Option<Path> {
        if self.end() != other.start {
            return None;
        }
        let mut steps = self.steps.clone();
        steps.extend_from_slice(&other.steps);
        Some(Path {
            start: self.start,
            steps,
        })
    }

    /// The reverse path (traversing the same relationships backwards).
    pub fn reverse(&self) -> Path {
        let nodes = self.nodes();
        let rels = self.rels();
        let mut steps = Vec::with_capacity(rels.len());
        for i in (0..rels.len()).rev() {
            steps.push((rels[i], nodes[i]));
        }
        Path {
            start: self.end(),
            steps,
        }
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}", self.start)?;
        for (r, n) in &self.steps {
            write!(f, " {r} {n}")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u64) -> NodeId {
        NodeId(i)
    }
    fn r(i: u64) -> RelId {
        RelId(i)
    }

    #[test]
    fn single_path() {
        let p = Path::single(n(1));
        assert_eq!(p.start(), n(1));
        assert_eq!(p.end(), n(1));
        assert_eq!(p.len(), 0);
        assert!(p.is_empty());
        assert_eq!(p.nodes(), vec![n(1)]);
        assert!(p.rels().is_empty());
    }

    #[test]
    fn build_and_inspect() {
        let mut p = Path::single(n(1));
        p.push(r(1), n(2));
        p.push(r(2), n(3));
        assert_eq!(p.len(), 2);
        assert_eq!(p.end(), n(3));
        assert_eq!(p.nodes(), vec![n(1), n(2), n(3)]);
        assert_eq!(p.rels(), vec![r(1), r(2)]);
        assert!(p.contains_rel(r(1)));
        assert!(!p.contains_rel(r(9)));
        assert!(p.contains_node(n(1)));
        assert!(p.contains_node(n(3)));
        assert!(!p.contains_node(n(9)));
    }

    #[test]
    fn concat_defined_only_when_compatible() {
        let mut p1 = Path::single(n(1));
        p1.push(r(1), n(2));
        let mut p2 = Path::single(n(2));
        p2.push(r(2), n(3));
        let joined = p1.concat(&p2).expect("compatible endpoints");
        assert_eq!(joined.nodes(), vec![n(1), n(2), n(3)]);

        let p3 = Path::single(n(9));
        assert!(p1.concat(&p3).is_none());
    }

    #[test]
    fn reverse_roundtrip() {
        let mut p = Path::single(n(1));
        p.push(r(1), n(2));
        p.push(r(2), n(3));
        let rev = p.reverse();
        assert_eq!(rev.start(), n(3));
        assert_eq!(rev.end(), n(1));
        assert_eq!(rev.rels(), vec![r(2), r(1)]);
        assert_eq!(rev.reverse(), p);
    }

    #[test]
    fn rels_distinct_detects_repeats() {
        let mut p = Path::single(n(1));
        p.push(r(1), n(2));
        p.push(r(1), n(1));
        assert!(!p.rels_distinct());
    }
}
