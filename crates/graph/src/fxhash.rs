//! A minimal reimplementation of the Firefox/rustc "Fx" hash.
//!
//! The Rust performance guide recommends a fast, low-quality hash for
//! internal integer- and symbol-keyed tables where HashDoS is not a concern.
//! We avoid an external dependency by reimplementing the ~20-line algorithm.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by the Fx hash (64-bit variant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher: a fast multiplicative hash suitable for small keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche (splitmix64-style). The multiplicative core
        // alone leaves the low k bits of the output a function of only
        // the low k bits of the input — and `std::collections::HashMap`
        // indexes slots by the *low* bits. Inputs whose low bits are
        // constant (e.g. `f64::to_bits` of small integers, whose
        // left-aligned mantissas leave 30+ trailing zeros — exactly what
        // `Value::hash_equivalent` feeds the property indexes) then
        // collapse every key into one probe chain, turning index
        // maintenance quadratic. Two xor-shift/multiply rounds spread
        // high-bit entropy everywhere.
        let mut h = self.hash;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^ (h >> 32)
    }
}

/// A `HashMap` using the Fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using the Fx hash.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_distinct_hashes() {
        let mut hashes = FxHashSet::default();
        for i in 0..10_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            hashes.insert(h.finish());
        }
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&2), Some(&"two"));
        assert_eq!(m.get(&3), None);
    }

    #[test]
    fn string_keys_work() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..100 {
            m.insert(format!("key-{i}"), i);
        }
        for i in 0..100 {
            assert_eq!(m[&format!("key-{i}")], i);
        }
    }
}
