//! Temporal types of the Cypher 10 proposal (paper Section 6, "Temporal
//! types"): the instant types `Date`, `LocalTime`, `Time` (here
//! [`ZonedDateTime`]'s time-of-day analogue is folded into the offset
//! handling), `LocalDateTime`, `DateTime`, and the `Duration` type.
//!
//! Everything is implemented from scratch on the proleptic Gregorian
//! calendar using the classic civil-from-days / days-from-civil algorithms,
//! with nanosecond resolution, ISO-8601 parsing and printing, comparison,
//! and duration arithmetic.

use std::cmp::Ordering;
use std::fmt;

/// Errors produced when parsing or constructing temporal values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemporalError(pub String);

impl fmt::Display for TemporalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "temporal error: {}", self.0)
    }
}

impl std::error::Error for TemporalError {}

fn err<T>(msg: impl Into<String>) -> Result<T, TemporalError> {
    Err(TemporalError(msg.into()))
}

// ---------------------------------------------------------------------------
// Civil calendar math
// ---------------------------------------------------------------------------

/// Days since 1970-01-01 for a civil date (proleptic Gregorian).
pub(crate) fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = y - if m <= 2 { 1 } else { 0 };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date `(year, month, day)` for days since 1970-01-01.
pub(crate) fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (y + if m <= 2 { 1 } else { 0 }, m, d)
}

/// True for leap years in the proleptic Gregorian calendar.
pub fn is_leap_year(y: i64) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

/// Number of days in the given month of the given year.
pub fn days_in_month(y: i64, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(y) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

pub(crate) const NANOS_PER_SEC: i64 = 1_000_000_000;
pub(crate) const SECS_PER_DAY: i64 = 86_400;

// ---------------------------------------------------------------------------
// Date
// ---------------------------------------------------------------------------

/// A calendar date: `Date` of the Cypher temporal proposal.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Date {
    /// Days since the epoch 1970-01-01.
    pub epoch_days: i64,
}

impl Date {
    /// Builds a date from year/month/day, validating the calendar.
    pub fn new(year: i64, month: u32, day: u32) -> Result<Self, TemporalError> {
        if !(1..=12).contains(&month) {
            return err(format!("month out of range: {month}"));
        }
        if day == 0 || day > days_in_month(year, month) {
            return err(format!("day out of range: {year}-{month:02}-{day:02}"));
        }
        Ok(Date {
            epoch_days: days_from_civil(year, month, day),
        })
    }

    /// The `(year, month, day)` triple of this date.
    pub fn ymd(self) -> (i64, u32, u32) {
        civil_from_days(self.epoch_days)
    }

    /// Year component.
    pub fn year(self) -> i64 {
        self.ymd().0
    }

    /// Month component (1–12).
    pub fn month(self) -> u32 {
        self.ymd().1
    }

    /// Day-of-month component (1–31).
    pub fn day(self) -> u32 {
        self.ymd().2
    }

    /// ISO day of week, 1 = Monday … 7 = Sunday.
    pub fn weekday(self) -> u32 {
        // 1970-01-01 was a Thursday (ISO weekday 4).
        (((self.epoch_days % 7) + 7 + 3) % 7 + 1) as u32
    }

    /// Adds a duration, applying month arithmetic first (clamping the day to
    /// the end of the target month), then days, then sub-day components
    /// (which are truncated for pure dates, as in the Cypher proposal).
    pub fn plus(self, d: Duration) -> Date {
        let (y, m, day) = self.ymd();
        let total_months = (y * 12 + (m as i64 - 1)) + d.months;
        let ny = total_months.div_euclid(12);
        let nm = (total_months.rem_euclid(12) + 1) as u32;
        let nd = day.min(days_in_month(ny, nm));
        let base = days_from_civil(ny, nm, nd);
        Date {
            epoch_days: base + d.days + d.seconds.div_euclid(SECS_PER_DAY),
        }
    }

    /// Parses `YYYY-MM-DD` (with optional leading `-` for negative years).
    pub fn parse(s: &str) -> Result<Self, TemporalError> {
        let (neg, rest) = match s.strip_prefix('-') {
            Some(r) => (true, r),
            None => (false, s),
        };
        let parts: Vec<&str> = rest.split('-').collect();
        if parts.len() != 3 {
            return err(format!("invalid date: {s}"));
        }
        let y: i64 = parts[0]
            .parse()
            .map_err(|_| TemporalError(format!("invalid year in {s}")))?;
        let m: u32 = parts[1]
            .parse()
            .map_err(|_| TemporalError(format!("invalid month in {s}")))?;
        let d: u32 = parts[2]
            .parse()
            .map_err(|_| TemporalError(format!("invalid day in {s}")))?;
        Date::new(if neg { -y } else { y }, m, d)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

// ---------------------------------------------------------------------------
// LocalTime
// ---------------------------------------------------------------------------

/// A time of day without timezone: `LocalTime`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LocalTime {
    /// Nanoseconds since midnight, in `[0, 86_400 * 10^9)`.
    pub nanos: i64,
}

impl LocalTime {
    /// Builds a local time from components.
    pub fn new(h: u32, min: u32, sec: u32, nano: u32) -> Result<Self, TemporalError> {
        if h > 23 || min > 59 || sec > 59 || nano >= 1_000_000_000 {
            return err(format!("time out of range: {h}:{min}:{sec}.{nano}"));
        }
        Ok(LocalTime {
            nanos: ((h as i64 * 60 + min as i64) * 60 + sec as i64) * NANOS_PER_SEC + nano as i64,
        })
    }

    /// Hour component (0–23).
    pub fn hour(self) -> u32 {
        (self.nanos / NANOS_PER_SEC / 3600) as u32
    }

    /// Minute component (0–59).
    pub fn minute(self) -> u32 {
        ((self.nanos / NANOS_PER_SEC / 60) % 60) as u32
    }

    /// Second component (0–59).
    pub fn second(self) -> u32 {
        ((self.nanos / NANOS_PER_SEC) % 60) as u32
    }

    /// Sub-second nanoseconds (0–999 999 999).
    pub fn nanosecond(self) -> u32 {
        (self.nanos % NANOS_PER_SEC) as u32
    }

    /// Parses `HH:MM`, `HH:MM:SS` or `HH:MM:SS.fraction`.
    pub fn parse(s: &str) -> Result<Self, TemporalError> {
        let (main, frac) = match s.split_once('.') {
            Some((m, f)) => (m, Some(f)),
            None => (s, None),
        };
        let parts: Vec<&str> = main.split(':').collect();
        if parts.len() < 2 || parts.len() > 3 {
            return err(format!("invalid time: {s}"));
        }
        let h: u32 = parts[0]
            .parse()
            .map_err(|_| TemporalError(format!("invalid hour in {s}")))?;
        let m: u32 = parts[1]
            .parse()
            .map_err(|_| TemporalError(format!("invalid minute in {s}")))?;
        let sec: u32 = if parts.len() == 3 {
            parts[2]
                .parse()
                .map_err(|_| TemporalError(format!("invalid second in {s}")))?
        } else {
            0
        };
        let nano = match frac {
            Some(f) if !f.is_empty() && f.len() <= 9 && f.bytes().all(|b| b.is_ascii_digit()) => {
                let mut v: u32 = f.parse().unwrap();
                for _ in f.len()..9 {
                    v *= 10;
                }
                v
            }
            Some(f) => return err(format!("invalid fraction: {f}")),
            None => 0,
        };
        LocalTime::new(h, m, sec, nano)
    }
}

impl fmt::Display for LocalTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.nanosecond();
        if ns == 0 {
            write!(
                f,
                "{:02}:{:02}:{:02}",
                self.hour(),
                self.minute(),
                self.second()
            )
        } else {
            let mut frac = format!("{ns:09}");
            while frac.ends_with('0') {
                frac.pop();
            }
            write!(
                f,
                "{:02}:{:02}:{:02}.{frac}",
                self.hour(),
                self.minute(),
                self.second()
            )
        }
    }
}

// ---------------------------------------------------------------------------
// LocalDateTime & ZonedDateTime
// ---------------------------------------------------------------------------

/// A date paired with a time of day, without timezone: `LocalDateTime`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LocalDateTime {
    /// The calendar date.
    pub date: Date,
    /// The time of day.
    pub time: LocalTime,
}

impl LocalDateTime {
    /// Pairs a date with a time.
    pub fn new(date: Date, time: LocalTime) -> Self {
        LocalDateTime { date, time }
    }

    /// Total nanoseconds since the epoch, ignoring timezone.
    pub fn epoch_nanos(self) -> i128 {
        self.date.epoch_days as i128 * (SECS_PER_DAY as i128 * NANOS_PER_SEC as i128)
            + self.time.nanos as i128
    }

    /// Builds from nanoseconds since the epoch.
    pub fn from_epoch_nanos(n: i128) -> Self {
        let day_nanos = SECS_PER_DAY as i128 * NANOS_PER_SEC as i128;
        let days = n.div_euclid(day_nanos);
        let rem = n.rem_euclid(day_nanos);
        LocalDateTime {
            date: Date {
                epoch_days: days as i64,
            },
            time: LocalTime { nanos: rem as i64 },
        }
    }

    /// Adds a duration: month arithmetic on the date part, then exact
    /// day/second/nanosecond arithmetic.
    pub fn plus(self, d: Duration) -> Self {
        let date = self.date.plus(Duration {
            months: d.months,
            ..Duration::ZERO
        });
        let base = LocalDateTime::new(date, self.time).epoch_nanos();
        let delta = d.days as i128 * SECS_PER_DAY as i128 * NANOS_PER_SEC as i128
            + d.seconds as i128 * NANOS_PER_SEC as i128
            + d.nanos as i128;
        LocalDateTime::from_epoch_nanos(base + delta)
    }

    /// Parses `DATE T TIME`, e.g. `2018-06-10T14:30:00`.
    pub fn parse(s: &str) -> Result<Self, TemporalError> {
        let (d, t) = s
            .split_once('T')
            .ok_or_else(|| TemporalError(format!("invalid datetime: {s}")))?;
        Ok(LocalDateTime::new(Date::parse(d)?, LocalTime::parse(t)?))
    }
}

impl fmt::Display for LocalDateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}T{}", self.date, self.time)
    }
}

/// A datetime with a fixed UTC offset: the proposal's `DateTime`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ZonedDateTime {
    /// The local wall-clock datetime.
    pub local: LocalDateTime,
    /// Offset from UTC in seconds (e.g. `+02:00` is `7200`).
    pub offset_seconds: i32,
}

impl ZonedDateTime {
    /// Pairs a local datetime with a UTC offset in seconds.
    pub fn new(local: LocalDateTime, offset_seconds: i32) -> Self {
        ZonedDateTime {
            local,
            offset_seconds,
        }
    }

    /// The UTC instant in nanoseconds since epoch.
    pub fn instant_nanos(self) -> i128 {
        self.local.epoch_nanos() - self.offset_seconds as i128 * NANOS_PER_SEC as i128
    }

    /// Parses `DATETIME(Z|±HH:MM)`, e.g. `2018-06-10T14:30:00+02:00`.
    pub fn parse(s: &str) -> Result<Self, TemporalError> {
        if let Some(rest) = s.strip_suffix('Z') {
            return Ok(ZonedDateTime::new(LocalDateTime::parse(rest)?, 0));
        }
        // Find a '+' or '-' after the 'T'.
        let t_pos = s
            .find('T')
            .ok_or_else(|| TemporalError(format!("invalid datetime: {s}")))?;
        let tail = &s[t_pos..];
        let sign_rel = tail.rfind(['+', '-']);
        match sign_rel {
            Some(rel) if rel > 0 => {
                let split = t_pos + rel;
                let local = LocalDateTime::parse(&s[..split])?;
                let off = &s[split..];
                let sign = if off.starts_with('-') { -1 } else { 1 };
                let hm: Vec<&str> = off[1..].split(':').collect();
                if hm.len() != 2 {
                    return err(format!("invalid offset: {off}"));
                }
                let h: i32 = hm[0]
                    .parse()
                    .map_err(|_| TemporalError(format!("invalid offset: {off}")))?;
                let m: i32 = hm[1]
                    .parse()
                    .map_err(|_| TemporalError(format!("invalid offset: {off}")))?;
                Ok(ZonedDateTime::new(local, sign * (h * 3600 + m * 60)))
            }
            _ => err(format!("datetime has no offset: {s}")),
        }
    }
}

impl PartialOrd for ZonedDateTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ZonedDateTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.instant_nanos().cmp(&other.instant_nanos())
    }
}

impl fmt::Display for ZonedDateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.offset_seconds == 0 {
            return write!(f, "{}Z", self.local);
        }
        let sign = if self.offset_seconds < 0 { '-' } else { '+' };
        let abs = self.offset_seconds.unsigned_abs();
        write!(
            f,
            "{}{sign}{:02}:{:02}",
            self.local,
            abs / 3600,
            (abs % 3600) / 60
        )
    }
}

// ---------------------------------------------------------------------------
// Duration
// ---------------------------------------------------------------------------

/// A duration with separate month, day and second/nanosecond components, as
/// in the Cypher temporal proposal (months and days do not have a fixed
/// length, so they are kept apart from exact seconds).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Duration {
    /// Whole months.
    pub months: i64,
    /// Whole days.
    pub days: i64,
    /// Whole seconds.
    pub seconds: i64,
    /// Sub-second nanoseconds; normalized into `(-10^9, 10^9)` with the same
    /// sign as `seconds` where possible.
    pub nanos: i64,
}

impl Duration {
    /// The zero duration.
    pub const ZERO: Duration = Duration {
        months: 0,
        days: 0,
        seconds: 0,
        nanos: 0,
    };

    /// Builds a normalized duration.
    pub fn new(months: i64, days: i64, seconds: i64, nanos: i64) -> Self {
        let mut d = Duration {
            months,
            days,
            seconds,
            nanos,
        };
        d.normalize();
        d
    }

    fn normalize(&mut self) {
        self.seconds += self.nanos.div_euclid(NANOS_PER_SEC);
        self.nanos = self.nanos.rem_euclid(NANOS_PER_SEC);
    }

    /// Component-wise sum.
    pub fn plus(self, o: Duration) -> Duration {
        Duration::new(
            self.months + o.months,
            self.days + o.days,
            self.seconds + o.seconds,
            self.nanos + o.nanos,
        )
    }

    /// Component-wise negation.
    pub fn negate(self) -> Duration {
        Duration::new(-self.months, -self.days, -self.seconds, -self.nanos)
    }

    /// Exact duration (days/seconds only) between two dates.
    pub fn between_dates(a: Date, b: Date) -> Duration {
        Duration::new(0, b.epoch_days - a.epoch_days, 0, 0)
    }

    /// Exact duration between two local datetimes (days + seconds + nanos).
    pub fn between(a: LocalDateTime, b: LocalDateTime) -> Duration {
        let diff = b.epoch_nanos() - a.epoch_nanos();
        let day_nanos = SECS_PER_DAY as i128 * NANOS_PER_SEC as i128;
        let days = diff.div_euclid(day_nanos);
        let rem = diff.rem_euclid(day_nanos);
        let seconds = rem.div_euclid(NANOS_PER_SEC as i128);
        let nanos = rem.rem_euclid(NANOS_PER_SEC as i128);
        Duration::new(0, days as i64, seconds as i64, nanos as i64)
    }

    /// Parses an ISO-8601 duration literal, e.g. `P1Y2M3DT4H5M6.5S`.
    pub fn parse(s: &str) -> Result<Self, TemporalError> {
        let (neg, rest) = match s.strip_prefix('-') {
            Some(r) => (true, r),
            None => (false, s),
        };
        let rest = rest
            .strip_prefix('P')
            .ok_or_else(|| TemporalError(format!("duration must start with P: {s}")))?;
        let (date_part, time_part) = match rest.split_once('T') {
            Some((d, t)) => (d, t),
            None => (rest, ""),
        };
        let mut months: i64 = 0;
        let mut days: i64 = 0;
        let mut seconds: i64 = 0;
        let mut nanos: i64 = 0;

        let mut parse_fields = |part: &str, is_time: bool| -> Result<(), TemporalError> {
            let mut num = String::new();
            for c in part.chars() {
                if c.is_ascii_digit() || c == '.' {
                    num.push(c);
                } else {
                    if num.is_empty() {
                        return err(format!("invalid duration: {s}"));
                    }
                    let (int_part, frac_part) = match num.split_once('.') {
                        Some((i, f)) => (i.to_string(), Some(f.to_string())),
                        None => (num.clone(), None),
                    };
                    let v: i64 = int_part
                        .parse()
                        .map_err(|_| TemporalError(format!("invalid duration: {s}")))?;
                    match (is_time, c) {
                        (false, 'Y') => months += v * 12,
                        (false, 'M') => months += v,
                        (false, 'W') => days += v * 7,
                        (false, 'D') => days += v,
                        (true, 'H') => seconds += v * 3600,
                        (true, 'M') => seconds += v * 60,
                        (true, 'S') => {
                            seconds += v;
                            if let Some(f) = &frac_part {
                                let mut ns: i64 = f
                                    .parse()
                                    .map_err(|_| TemporalError(format!("invalid duration: {s}")))?;
                                for _ in f.len()..9 {
                                    ns *= 10;
                                }
                                nanos += ns;
                            }
                        }
                        _ => return err(format!("invalid duration designator {c} in {s}")),
                    }
                    if frac_part.is_some() && c != 'S' {
                        return err(format!("fraction only allowed on seconds: {s}"));
                    }
                    num.clear();
                }
            }
            if !num.is_empty() {
                return err(format!("trailing number in duration: {s}"));
            }
            Ok(())
        };
        parse_fields(date_part, false)?;
        parse_fields(time_part, true)?;
        let d = Duration::new(months, days, seconds, nanos);
        Ok(if neg { d.negate() } else { d })
    }

    /// Total seconds ignoring months/days calendar semantics, used for a
    /// deterministic comparison order (months ≈ 30 days, the openCypher
    /// orderability convention for durations).
    pub fn comparable_nanos(self) -> i128 {
        let days = self.months as i128 * 30 + self.days as i128;
        days * SECS_PER_DAY as i128 * NANOS_PER_SEC as i128
            + self.seconds as i128 * NANOS_PER_SEC as i128
            + self.nanos as i128
    }
}

impl PartialOrd for Duration {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Duration {
    fn cmp(&self, other: &Self) -> Ordering {
        self.comparable_nanos().cmp(&other.comparable_nanos())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Duration::ZERO {
            return write!(f, "PT0S");
        }
        write!(f, "P")?;
        let years = self.months / 12;
        let months = self.months % 12;
        if years != 0 {
            write!(f, "{years}Y")?;
        }
        if months != 0 {
            write!(f, "{months}M")?;
        }
        if self.days != 0 {
            write!(f, "{}D", self.days)?;
        }
        if self.seconds != 0 || self.nanos != 0 {
            write!(f, "T")?;
            let h = self.seconds / 3600;
            let m = (self.seconds % 3600) / 60;
            let s = self.seconds % 60;
            if h != 0 {
                write!(f, "{h}H")?;
            }
            if m != 0 {
                write!(f, "{m}M")?;
            }
            if s != 0 || self.nanos != 0 {
                if self.nanos == 0 {
                    write!(f, "{s}S")?;
                } else {
                    let mut frac = format!("{:09}", self.nanos);
                    while frac.ends_with('0') {
                        frac.pop();
                    }
                    write!(f, "{s}.{frac}S")?;
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Temporal: the tagged union used by `Value`
// ---------------------------------------------------------------------------

/// Any temporal value; this is the variant payload used by
/// [`crate::Value::Temporal`].
#[derive(Clone, Copy, PartialEq, Debug, Hash, Eq)]
pub enum Temporal {
    /// A calendar date.
    Date(Date),
    /// A time of day.
    LocalTime(LocalTime),
    /// A date and time without zone.
    LocalDateTime(LocalDateTime),
    /// A date and time with a fixed UTC offset.
    DateTime(ZonedDateTime),
    /// A duration.
    Duration(Duration),
}

impl Temporal {
    /// A discriminant rank used for cross-type orderability.
    pub fn rank(&self) -> u8 {
        match self {
            Temporal::Date(_) => 0,
            Temporal::LocalTime(_) => 1,
            Temporal::LocalDateTime(_) => 2,
            Temporal::DateTime(_) => 3,
            Temporal::Duration(_) => 4,
        }
    }

    /// Total order: same-type values compare naturally, different temporal
    /// types compare by rank (an arbitrary but stable convention).
    pub fn cmp_order(&self, other: &Temporal) -> Ordering {
        use Temporal::*;
        match (self, other) {
            (Date(a), Date(b)) => a.cmp(b),
            (LocalTime(a), LocalTime(b)) => a.cmp(b),
            (LocalDateTime(a), LocalDateTime(b)) => a.cmp(b),
            (DateTime(a), DateTime(b)) => a.cmp(b),
            (Duration(a), Duration(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl fmt::Display for Temporal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Temporal::Date(d) => write!(f, "{d}"),
            Temporal::LocalTime(t) => write!(f, "{t}"),
            Temporal::LocalDateTime(dt) => write!(f, "{dt}"),
            Temporal::DateTime(z) => write!(f, "{z}"),
            Temporal::Duration(d) => write!(f, "{d}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_roundtrip_epoch() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn civil_roundtrip_many() {
        for days in (-1_000_000..1_000_000).step_by(9973) {
            let (y, m, d) = civil_from_days(days);
            assert_eq!(days_from_civil(y, m, d), days, "roundtrip {y}-{m}-{d}");
        }
    }

    #[test]
    fn leap_years() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(2016));
        assert!(!is_leap_year(2018));
        assert_eq!(days_in_month(2016, 2), 29);
        assert_eq!(days_in_month(2018, 2), 28);
    }

    #[test]
    fn date_parse_display_roundtrip() {
        for s in ["2018-06-10", "1970-01-01", "0001-12-31", "2400-02-29"] {
            assert_eq!(Date::parse(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn date_rejects_invalid() {
        assert!(Date::parse("2018-13-01").is_err());
        assert!(Date::parse("2018-02-29").is_err());
        assert!(Date::parse("2018-00-10").is_err());
        assert!(Date::parse("hello").is_err());
    }

    #[test]
    fn weekday_known() {
        // SIGMOD'18 started Sunday 2018-06-10.
        assert_eq!(Date::parse("2018-06-10").unwrap().weekday(), 7);
        assert_eq!(Date::parse("1970-01-01").unwrap().weekday(), 4); // Thursday
    }

    #[test]
    fn time_parse_variants() {
        assert_eq!(LocalTime::parse("12:30").unwrap().to_string(), "12:30:00");
        assert_eq!(
            LocalTime::parse("12:30:45").unwrap().to_string(),
            "12:30:45"
        );
        assert_eq!(
            LocalTime::parse("12:30:45.5").unwrap().to_string(),
            "12:30:45.5"
        );
        assert_eq!(
            LocalTime::parse("12:30:45.123456789").unwrap().nanosecond(),
            123_456_789
        );
        assert!(LocalTime::parse("25:00").is_err());
    }

    #[test]
    fn datetime_parse_and_order() {
        let a = ZonedDateTime::parse("2018-06-10T12:00:00+02:00").unwrap();
        let b = ZonedDateTime::parse("2018-06-10T11:00:00+00:00").unwrap();
        // 12:00+02:00 is 10:00Z, earlier than 11:00Z.
        assert!(a < b);
        let z = ZonedDateTime::parse("2018-06-10T10:00:00Z").unwrap();
        assert_eq!(a.instant_nanos(), z.instant_nanos());
    }

    #[test]
    fn duration_parse_display() {
        let d = Duration::parse("P1Y2M3DT4H5M6S").unwrap();
        assert_eq!(d.months, 14);
        assert_eq!(d.days, 3);
        assert_eq!(d.seconds, 4 * 3600 + 5 * 60 + 6);
        assert_eq!(d.to_string(), "P1Y2M3DT4H5M6S");
        assert_eq!(Duration::parse("PT0.5S").unwrap().nanos, 500_000_000);
        assert_eq!(Duration::parse("P2W").unwrap().days, 14);
        assert!(Duration::parse("1Y").is_err());
    }

    #[test]
    fn date_plus_months_clamps() {
        let jan31 = Date::new(2018, 1, 31).unwrap();
        let feb = jan31.plus(Duration::new(1, 0, 0, 0));
        assert_eq!(feb.to_string(), "2018-02-28");
        let leap = Date::new(2016, 1, 31)
            .unwrap()
            .plus(Duration::new(1, 0, 0, 0));
        assert_eq!(leap.to_string(), "2016-02-29");
    }

    #[test]
    fn datetime_plus_duration_carries() {
        let dt = LocalDateTime::parse("2018-12-31T23:59:59").unwrap();
        let later = dt.plus(Duration::new(0, 0, 2, 0));
        assert_eq!(later.to_string(), "2019-01-01T00:00:01");
    }

    #[test]
    fn duration_between() {
        let a = LocalDateTime::parse("2018-06-10T00:00:00").unwrap();
        let b = LocalDateTime::parse("2018-06-15T06:00:00").unwrap();
        let d = Duration::between(a, b);
        assert_eq!((d.days, d.seconds), (5, 6 * 3600));
        let back = Duration::between(b, a);
        assert_eq!(back.comparable_nanos(), -d.comparable_nanos());
    }

    #[test]
    fn negative_duration_roundtrip() {
        let d = Duration::parse("-P1D").unwrap();
        assert_eq!(d.days, -1);
        assert_eq!(d.plus(Duration::parse("P1D").unwrap()), Duration::ZERO);
    }

    #[test]
    fn temporal_cross_type_order_is_total() {
        let vals = [
            Temporal::Date(Date::new(2018, 1, 1).unwrap()),
            Temporal::LocalTime(LocalTime::new(1, 0, 0, 0).unwrap()),
            Temporal::Duration(Duration::ZERO),
        ];
        for a in &vals {
            for b in &vals {
                let ab = a.cmp_order(b);
                let ba = b.cmp_order(a);
                assert_eq!(ab, ba.reverse());
            }
        }
    }
}
